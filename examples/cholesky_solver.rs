//! Solve a symmetric positive-definite system on the accelerator — the
//! workload Chapter 6 motivates (the compute core of Kalman filters,
//! least-squares and finite-element solvers).
//!
//! The blocked Cholesky workload runs the full Chol→TRSM→SYRK decomposition
//! of Figure 6.1's algorithm-by-blocks through a `LacEngine` session; the
//! triangular solves then reuse the reference substrate (they are
//! memory-bound level-2 work the host keeps, per the §1.2.2 programming
//! model).
//!
//! ```sh
//! cargo run --release --example cholesky_solver
//! ```

use lap::lac_kernels::{BlockedCholWorkload, Details, Workload};
use lap::lac_power::{EnergyModel, SessionEnergy};
use lap::lac_sim::{LacConfig, LacEngine};
use lap::linalg_ref::{blas2, Matrix};

fn main() {
    // A discrete 1D Laplacian plus mass term: the SPD stiffness system of a
    // 24-node elastic chain.
    let n = 24;
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = 2.5;
        if i > 0 {
            a[(i, i - 1)] = -1.0;
            a[(i - 1, i)] = -1.0;
        }
    }
    // Right-hand side: a point load in the middle.
    let mut f = vec![0.0; n];
    f[n / 2] = 1.0;

    // Factor on the LAC through a session engine.
    let mut eng = LacEngine::builder().config(LacConfig::default()).build();
    let workload = BlockedCholWorkload::new(a.clone());
    let report = workload.run(&mut eng).expect("SPD factorization");
    workload
        .check(&report)
        .expect("factor agrees with linalg-ref");
    let Details::Cholesky { l } = &report.details else {
        unreachable!("chol reports L")
    };

    // Forward/backward substitution on the host (level-2, memory-bound).
    let mut y = f.clone();
    blas2::trsv(l, &mut y);
    // Lᵀ x = y
    let lt = l.transpose();
    let mut x = y.clone();
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in i + 1..n {
            s -= lt[(i, j)] * x[j];
        }
        x[i] = s / lt[(i, i)];
    }

    // Residual check: ‖A x − f‖∞.
    let mut resid = vec![0.0; n];
    blas2::gemv(1.0, &a, false, &x, 0.0, &mut resid);
    let err = resid
        .iter()
        .zip(&f)
        .map(|(r, b)| (r - b).abs())
        .fold(0.0f64, f64::max);
    assert!(err < 1e-10, "residual {err}");

    let stats = &report.stats;
    let energy = eng.energy_summary(&EnergyModel::lac_default());
    println!("Cholesky solve of a {n}-node stiffness system on the LAC");
    println!("  factorization cycles : {}", stats.cycles);
    println!(
        "  MACs / rsqrt ops     : {} / {}",
        stats.mac_ops + stats.fma_ops,
        stats.sfu_ops
    );
    println!(
        "  factorization energy : {:.2} uJ",
        energy.energy_nj / 1000.0
    );
    println!("  displacement at load : {:.6}", x[n / 2]);
    println!("  residual ‖Ax−f‖∞     : {err:.2e}");

    // Sanity of physics: displacement is maximal at the load point.
    let max_idx = x
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    assert_eq!(max_idx, n / 2, "peak displacement under the load");
    println!("  peak displacement under the load: OK");
}
