//! Quickstart: run a GEMM on the cycle-accurate Linear Algebra Core,
//! verify it against the reference BLAS, and read out performance and
//! energy the way the dissertation does.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lap::lac_kernels::{run_gemm, GemmDataLayout, GemmParams};
use lap::lac_power::EnergyModel;
use lap::lac_sim::{ExternalMem, Lac, LacConfig};
use lap::linalg_ref::{gemm, max_abs_diff, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 4×4-PE core with the paper's canonical 16 KB/PE local store.
    let cfg = LacConfig::default();
    let mut lac = Lac::new(cfg);

    // Problem: C (32×64) += A (32×64) · B (64×64).
    let (mc, kc, n) = (32, 64, 64);
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::random(mc, kc, &mut rng);
    let b = Matrix::random(kc, n, &mut rng);
    let c0 = Matrix::random(mc, n, &mut rng);

    // Pack operands into the core's external memory and run the overlapped
    // GEMM microprogram (§3.4 schedule).
    let lay = GemmDataLayout::new(mc, kc, n);
    let mut mem = ExternalMem::from_vec(lay.pack(&a, &b, &c0));
    let report = run_gemm(&mut lac, &mut mem, &lay, &GemmParams::new(mc, kc, n))
        .expect("schedule is hazard-free");

    // Verify against the reference.
    let mut expect = c0.clone();
    gemm(&a, &b, &mut expect);
    let got = lay.unpack_c(mem.as_slice());
    let err = max_abs_diff(&got, &expect);
    assert!(err < 1e-12, "simulator result disagrees: {err}");

    // Performance and energy, exactly as the paper reports them.
    let stats = &report.stats;
    let energy = EnergyModel::lac_default();
    println!("GEMM {mc}x{kc}x{n} on a 4x4 LAC @ 1 GHz (double precision)");
    println!("  cycles            : {}", stats.cycles);
    println!("  MAC operations    : {}", stats.mac_ops);
    println!("  utilization       : {:.1}%", 100.0 * report.utilization);
    println!("  ext. memory traffic: {} reads, {} writes", stats.ext_reads, stats.ext_writes);
    println!("  avg ext bandwidth : {:.2} words/cycle", stats.ext_words_per_cycle());
    println!("  energy            : {:.2} uJ", energy.energy_nj(stats) / 1000.0);
    println!("  average power     : {:.1} mW", energy.avg_power_mw(stats));
    println!("  efficiency        : {:.1} GFLOPS/W", energy.gflops_per_w(stats));
    println!("  max |error| vs ref: {err:.2e}");
}
