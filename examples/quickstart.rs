//! Quickstart: run a GEMM workload through a `LacEngine` session on the
//! cycle-accurate Linear Algebra Core, verify it against the reference
//! BLAS, and read out performance and energy the way the dissertation does.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lap::lac_kernels::{GemmWorkload, Workload};
use lap::lac_power::{EnergyModel, SessionEnergy};
use lap::lac_sim::{LacConfig, LacEngine};
use lap::linalg_ref::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 4×4-PE core with the paper's canonical 16 KB/PE local store,
    // wrapped in a session engine that meters everything run through it.
    let mut eng = LacEngine::builder().config(LacConfig::default()).build();

    // Problem: C (32×64) += A (32×64) · B (64×64).
    let (mc, kc, n) = (32, 64, 64);
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::random(mc, kc, &mut rng);
    let b = Matrix::random(kc, n, &mut rng);
    let c0 = Matrix::random(mc, n, &mut rng);

    // The workload stages its operands into the engine's memory bank and
    // runs the overlapped GEMM microprogram (§3.4 schedule).
    let workload = GemmWorkload::new(a, b, c0);
    let report = workload.run(&mut eng).expect("schedule is hazard-free");

    // Verify against the reference (the workload knows its own ground truth).
    workload
        .check(&report)
        .expect("simulator result agrees with linalg-ref");

    // Performance and energy, exactly as the paper reports them.
    let stats = &report.stats;
    let energy = eng.energy_summary(&EnergyModel::lac_default());
    println!("GEMM {mc}x{kc}x{n} on a 4x4 LAC @ 1 GHz (double precision)");
    println!("  cycles            : {}", stats.cycles);
    println!("  MAC operations    : {}", stats.mac_ops);
    println!("  utilization       : {:.1}%", 100.0 * report.utilization);
    println!(
        "  ext. memory traffic: {} reads, {} writes",
        stats.ext_reads, stats.ext_writes
    );
    println!(
        "  avg ext bandwidth : {:.2} words/cycle",
        eng.ext_words_per_cycle()
    );
    println!("  energy            : {:.2} uJ", energy.energy_nj / 1000.0);
    println!("  average power     : {:.1} mW", energy.avg_power_mw);
    println!("  efficiency        : {:.1} GFLOPS/W", energy.gflops_per_w);
    println!(
        "  session           : {} workload(s), {} flops",
        eng.workloads_run(),
        eng.flops()
    );
}
