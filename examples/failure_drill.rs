//! Failure drill, end to end: kill a chip in the middle of a fleet
//! round and watch the cluster survive it — bit for bit.
//!
//! A 3-chip `LacCluster` serves a round of streamed solver requests.
//! The same round is replayed with a `FaultPlan` that kills chip 1
//! mid-run: the dying chip's in-flight wave is revoked (the work ran —
//! it stays on the meters), its jobs are requeued onto the survivors,
//! and the round completes with outputs **bit-identical** to the
//! fault-free run — chip loss changes the makespan, never the answer.
//!
//! The run's event log — job spans, revoked executions, the fault, every
//! requeue — is exported in Chrome trace format to
//! `target/failure_drill_trace.json`; open it at `chrome://tracing` or
//! <https://ui.perfetto.dev> to see the drill on a timeline.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use lap::lac_kernels::{SolverJob, SolverLoopParams, SolverStream};
use lap::lac_sim::{
    ChipConfig, ClusterConfig, FaultPlan, LacCluster, LacConfig, Scheduler, TenantConfig,
    TraceEvent,
};

fn main() {
    let stream = SolverStream::new(SolverLoopParams {
        n: 8,
        rounds: 1,
        panels: 2,
        width: 4,
        salt: 77,
    });

    // One round of 8 requests on a fresh 3-chip fleet, optionally with a
    // deterministic kill scheduled on the session clock.
    let run_round = |fault: Option<FaultPlan>| {
        let mut cluster: LacCluster<SolverJob> = LacCluster::new(ClusterConfig::homogeneous(
            3,
            ChipConfig::new(2, LacConfig::default()),
        ));
        if let Some(plan) = fault {
            cluster.inject_faults(plan);
        }
        let tenant = cluster.add_tenant(TenantConfig::new("fleet"));
        for i in 0..8 {
            cluster
                .enqueue(tenant, stream.request(0, i).graph().graph)
                .expect("admission is unbounded here");
        }
        let round = cluster
            .run_admitted(Scheduler::CriticalPath)
            .expect("hazard-free round");
        (round, cluster)
    };

    let (healthy, _) = run_round(None);
    println!(
        "fault-free round: 8 requests, {} waves, makespan {} cycles on 3 chips",
        healthy.waves, healthy.stats.makespan_cycles
    );

    // The drill: chip 1 dies halfway through the fault-free makespan.
    let kill_tick = healthy.stats.makespan_cycles / 2;
    let (drilled, cluster) = run_round(Some(FaultPlan::new().kill(1, kill_tick)));
    assert!(cluster.dead_chips()[1], "the kill landed");

    let count = |pred: fn(&TraceEvent) -> bool| drilled.events.count(pred);
    let discarded = count(|e| {
        matches!(
            e,
            TraceEvent::Job {
                discarded: true,
                ..
            }
        )
    });
    let requeues = count(|e| matches!(e, TraceEvent::Requeue { .. }));
    println!(
        "drill: chip 1 killed at tick {kill_tick} -> {} executions revoked, \
         {} jobs requeued onto chips 0/2, makespan {} cycles ({:.2}x recovery overhead), \
         {} survivors carry the next round",
        discarded,
        requeues,
        drilled.stats.makespan_cycles,
        drilled.stats.makespan_cycles as f64 / healthy.stats.makespan_cycles as f64,
        cluster.alive_chips(),
    );

    // The headline: the kill moved work, never bits.
    for (h, d) in healthy.graphs.iter().zip(&drilled.graphs) {
        assert_eq!(h.outputs, d.outputs, "chip loss must never change outputs");
    }
    // And the outputs are *right*, not merely stable: every request
    // checks against the independent linalg-ref chain.
    for (i, g) in drilled.graphs.iter().enumerate() {
        stream
            .request(0, i as u64)
            .check_graph(&g.outputs)
            .expect("drilled outputs match linalg-ref");
    }
    println!("outputs: bit-identical to the fault-free round, verified vs linalg-ref");

    // The observability door: the whole drill as a Chrome trace.
    let trace = drilled.events.to_chrome_trace();
    let path = "target/failure_drill_trace.json";
    std::fs::write(path, &trace).expect("write trace");
    println!(
        "trace: {} events ({} bytes) -> {path} (load in chrome://tracing or ui.perfetto.dev)",
        drilled.events.len(),
        trace.len()
    );
}
