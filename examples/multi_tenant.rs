//! Three tenants streaming solver loops at one 4-core service — the
//! multi-tenant admission door, end to end.
//!
//! Each tenant registers with its own fair-share weight and an in-flight
//! admission budget, then streams dependency graphs at the shared
//! `LacService`. Over-budget submissions bounce with deterministic
//! backpressure (the graph comes back for a retry after the next round
//! drains), admitted graphs interleave wave-by-wave under
//! `Scheduler::FairShare`, and the per-tenant sessions meter throughput,
//! wait-vs-run time and the attributed share of the chip's energy.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use lap::lac_kernels::{SolverJob, SolverLoopParams, SolverLoopWorkload};
use lap::lac_power::ChipEnergyModel;
use lap::lac_sim::{ChipConfig, LacConfig, LacService, Scheduler, TenantConfig};

fn workload(salt: u64) -> SolverLoopWorkload {
    SolverLoopWorkload::new(SolverLoopParams {
        n: 16,
        rounds: 2,
        panels: 4,
        width: 4,
        salt,
    })
}

fn main() {
    let mut service: LacService<SolverJob> =
        LacService::new(ChipConfig::new(4, LacConfig::default()));

    // Alice pays for twice bob's share; carol is budget-bound to one
    // graph in flight.
    let graph_cost = workload(1).graph_cost();
    let alice = service.add_tenant(TenantConfig::new("alice").with_weight(2));
    let bob = service.add_tenant(TenantConfig::new("bob"));
    let carol = service.add_tenant(TenantConfig::new("carol").with_admission_budget(graph_cost));

    // Stream two graphs per tenant. Carol's second bounces — admission
    // control is backpressure, not denial: the graph comes back.
    for (t, salt) in [(alice, 11), (bob, 22), (carol, 33)] {
        service
            .enqueue(t, workload(salt).graph().graph)
            .expect("first graph fits every budget");
    }
    service.enqueue(alice, workload(12).graph().graph).unwrap();
    service.enqueue(bob, workload(23).graph().graph).unwrap();
    let bounced = service
        .enqueue(carol, workload(34).graph().graph)
        .expect_err("carol's in-flight budget holds one graph");
    println!(
        "carol backpressured: cost {} over budget {} with {} in flight",
        bounced.graph_cost, bounced.budget, bounced.inflight_cost
    );

    // Round 1 interleaves the five admitted graphs wave-by-wave.
    let round = service
        .run_admitted(Scheduler::FairShare)
        .expect("hazard-free schedule");
    println!(
        "round 1: {} graphs, {} jobs over {} waves, makespan {} cycles",
        round.graphs.len(),
        round.stats.jobs(),
        round.waves,
        round.stats.makespan_cycles
    );

    // Carol retries her bounced graph now that her budget drained.
    service
        .enqueue(carol, bounced.graph)
        .expect("budget drained after the round");
    service
        .run_admitted(Scheduler::FairShare)
        .expect("hazard-free schedule");

    // Per-tenant accounting over the service lifetime, energy attributed.
    let clock = service.session().clock_cycles;
    let shares = ChipEnergyModel::lap_default().attribute(
        &service.tenant_busy_stats(),
        service.num_cores(),
        clock,
    );
    println!("service lifetime: {clock} cycles");
    for (t, share) in [alice, bob, carol].into_iter().zip(&shares) {
        let s = service.tenant_session(t);
        println!(
            "  {:<6} {} graphs ({} rejected), {} jobs, run {} / wait {} cycles, \
             {:.2} cost/kcycle, {:.1} uJ",
            service.tenant_config(t).name,
            s.graphs_completed,
            s.graphs_rejected,
            s.jobs_run,
            s.run_cycles(),
            s.wait_cycles,
            s.throughput_per_kcycle(clock),
            share.total_nj / 1000.0
        );
    }
}
