//! A fleet of interior-point DDP trajectory optimizations converging
//! through the continuation subsystem.
//!
//! Eight small optimal-control problems (4 states, 4 controls, horizon
//! 12, log-barrier box constraints on the controls) run *to convergence*
//! on one `LacService`: every backward Riccati sweep is a chain of tiny
//! per-timestep device factorizations (4×4 Cholesky + TRSM), and after
//! each sweep the fleet's continuation reads the closing reports and
//! re-appends chains **only for the members that have not converged**.
//! The scheduler never knows the iteration counts in advance — the graph
//! grows until the residuals say stop, which is exactly the workload
//! shape `lac_sim::dynamic` exists for.
//!
//! Watch the segment sizes: members stop at different sweep counts
//! (their box constraints differ), so the appended segments shrink as
//! the fleet drains.
//!
//! ```sh
//! cargo run --release --example ipddp_fleet
//! ```

use lap::lac_kernels::{Details, IpddpFleet};
use lap::lac_sim::{run_dynamic, ChipConfig, LacConfig, LacService, Scheduler, TenantConfig};

fn main() {
    let fleet = IpddpFleet::demo();
    let members = fleet.params.members;
    let horizon = fleet.params.horizon;
    println!(
        "IPDDP fleet: {members} members, horizon {horizon}, tol {:.0e}\n",
        fleet.params.tol
    );

    let mut svc = LacService::new(ChipConfig::new(4, LacConfig::default()));
    let tenant = svc.add_tenant(TenantConfig::new("fleet"));
    let run = run_dynamic(
        &mut svc,
        vec![(tenant, fleet.dynamic())],
        Scheduler::FairShare,
    )
    .expect("hazard-free dynamic run");
    let outcome = &run.outcomes[0];
    fleet
        .check(outcome)
        .expect("every trajectory matches linalg-ref");

    // The draining fleet, sweep by sweep: each segment is one backward+
    // forward sweep for every still-active member (horizon jobs each).
    println!("sweep  active  jobs   closing grads (per member)");
    for (sweep, seg) in outcome.segments.iter().enumerate() {
        let mut grads = Vec::new();
        for r in seg {
            if let Details::Ddp { grad, .. } = &r.details {
                grads.push(format!("{grad:.1e}"));
            }
        }
        println!(
            "{sweep:>5}  {:>6}  {:>5}  {}",
            seg.len() / horizon,
            seg.len(),
            grads.join("  ")
        );
    }

    // Per-member convergence: last sweep each member appears in.
    let mut last_sweep = vec![0usize; members];
    for (sweep, seg) in outcome.segments.iter().enumerate() {
        for r in seg {
            for (m, last) in last_sweep.iter_mut().enumerate() {
                if r.kernel.starts_with(&format!("ipddp-m{m}-")) {
                    *last = sweep;
                }
            }
        }
    }
    println!("\nmember  sweeps to converge");
    for (m, last) in last_sweep.iter().enumerate() {
        println!("{m:>6}  {}", last + 1);
    }

    println!(
        "\ntotal: {} jobs across {} segments, {} serving rounds, \
         {} cost appended after submission, clock {} cycles",
        outcome.jobs,
        outcome.segments.len(),
        run.rounds,
        outcome.appended_cost,
        svc.session().clock_cycles
    );
    println!("non-uniform convergence is the point: the graph shape was discovered, not submitted");
}
