//! Architecture design-space exploration — the codesign loop of Chapters 3
//! and 4 in one program: sweep frequency, local-store size, core count and
//! bandwidth, and pick the most power-efficient LAP that meets a
//! performance target under a power budget.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use lap::lac_model::{ChipGemmModel, CoreGemmModel};
use lap::lac_power::{chip_metrics, PeModel, Precision};

struct Candidate {
    freq_ghz: f64,
    store_kb: usize,
    cores: usize,
    onchip_mb: f64,
    gflops: f64,
    watts: f64,
    gflops_per_w: f64,
    utilization: f64,
}

fn main() {
    let target_gflops = 300.0; // DP performance target
    let power_budget_w = 25.0;
    let n = 2048; // workload: 2048×2048 DGEMM

    let mut best: Option<Candidate> = None;
    let mut considered = 0;
    for &freq in &[0.5f64, 0.8, 1.0, 1.4, 1.8] {
        for &store_kb in &[4usize, 8, 16, 32] {
            for &cores in &[4usize, 8, 12, 16, 24] {
                for &mc in &[64usize, 128, 256] {
                    considered += 1;
                    // Core-level: does this store sustain the kernel?
                    let core_model = CoreGemmModel::new(4, 4.0, 512);
                    let pt = core_model.point_for_local_store(store_kb * 1024 / 8);
                    if pt.kc < mc {
                        continue; // block would not fit the local store
                    }
                    // Chip-level utilization with 4 words/cycle off-chip.
                    let chip_model = ChipGemmModel::new(4, cores, n, mc);
                    let util = chip_model.utilization_offchip(4.0).min(pt.utilization);
                    let pe = PeModel {
                        precision: Precision::Double,
                        local_store_bytes: store_kb * 1024,
                        ..Default::default()
                    };
                    let onchip_bytes = (chip_model.onchip_words() * 8.0) as usize;
                    let m = chip_metrics(&pe, 4, cores, freq, util, onchip_bytes, 4.0);
                    if m.gflops < target_gflops || m.power_w > power_budget_w {
                        continue;
                    }
                    let cand = Candidate {
                        freq_ghz: freq,
                        store_kb,
                        cores,
                        onchip_mb: onchip_bytes as f64 / 1024.0 / 1024.0,
                        gflops: m.gflops,
                        watts: m.power_w,
                        gflops_per_w: m.gflops_per_w,
                        utilization: util,
                    };
                    if best
                        .as_ref()
                        .is_none_or(|b| cand.gflops_per_w > b.gflops_per_w)
                    {
                        best = Some(cand);
                    }
                }
            }
        }
    }

    println!("design-space sweep: {considered} candidate LAP configurations");
    println!("target: ≥{target_gflops} DP GFLOPS within {power_budget_w} W on {n}x{n} DGEMM\n");
    let b = best.expect("at least one feasible design");
    println!("best design:");
    println!("  frequency      : {:.1} GHz", b.freq_ghz);
    println!("  local store    : {} KB/PE", b.store_kb);
    println!("  cores          : {} (4x4 PEs each)", b.cores);
    println!("  on-chip memory : {:.1} MB", b.onchip_mb);
    println!(
        "  performance    : {:.0} GFLOPS at {:.0}% utilization",
        b.gflops,
        100.0 * b.utilization
    );
    println!("  power          : {:.1} W", b.watts);
    println!("  efficiency     : {:.1} GFLOPS/W", b.gflops_per_w);

    // The dissertation's conclusion in one assertion: a DP LAP in the tens
    // of GFLOPS/W, an order of magnitude past contemporary GPUs (~2.6).
    assert!(b.gflops_per_w > 15.0);
    println!(
        "\n(GTX480 runs DGEMM at ~2.6 GFLOPS/W — the codesigned fabric is ~{:.0}x better)",
        b.gflops_per_w / 2.6
    );
}
