//! Spectral analysis on the hybrid LA/FFT core (Chapter 6.2): run the
//! 64-point radix-4 FFT workload through a `LacEngine` session to pick the
//! tones out of a noisy signal — the signal-processing workload the hybrid
//! PE design exists for.
//!
//! ```sh
//! cargo run --release --example fft_spectrum
//! ```

use lap::lac_kernels::{Details, Fft64Workload, Workload};
use lap::lac_sim::{LacConfig, LacEngine};
use lap::linalg_ref::Complex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

fn main() {
    // Two tones (bins 5 and 19) buried in noise.
    let n = 64usize;
    let mut rng = StdRng::seed_from_u64(2026);
    let signal: Vec<Complex> = (0..n)
        .map(|t| {
            let tone1 = Complex::cis(2.0 * PI * 5.0 * t as f64 / n as f64).scale(1.0);
            let tone2 = Complex::cis(2.0 * PI * 19.0 * t as f64 / n as f64).scale(0.6);
            let noise = Complex::new(rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1));
            tone1 + tone2 + noise
        })
        .collect();

    // The workload interleaves the signal into the engine's memory bank
    // and runs the transform; `config` grows the local stores to the
    // kernel's scratch minima when the base configuration is too small
    // (8 words of A/B memory would not hold the butterfly workspace).
    let workload = Fft64Workload::new(signal);
    let cfg = workload.config(LacConfig {
        sram_a_words: 8,
        sram_b_words: 8,
        ..Default::default()
    });
    let mut eng = LacEngine::builder().config(cfg).build();
    let report = workload.run(&mut eng).expect("FFT schedule");
    workload
        .check(&report)
        .expect("matches the reference radix-4 FFT");
    let Details::Fft { spectrum } = &report.details else {
        unreachable!("fft reports spectrum")
    };

    // Find the peaks.
    let magnitude: Vec<f64> = spectrum.iter().map(|v| v.abs()).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| magnitude[b].partial_cmp(&magnitude[a]).unwrap());

    println!("64-point radix-4 FFT on the 4x4 hybrid core");
    println!("  cycles           : {}", report.stats.cycles);
    println!(
        "  bus transfers    : {} row, {} col",
        report.stats.row_bus_transfers, report.stats.col_bus_transfers
    );
    println!("  top spectral bins:");
    for &k in order.iter().take(3) {
        println!("    bin {k:2}  |X| = {:.2}", magnitude[k]);
    }
    assert_eq!(order[0], 5, "strongest tone at bin 5");
    assert_eq!(order[1], 19, "second tone at bin 19");
    assert!(
        magnitude[order[2]] < 0.3 * magnitude[order[1]],
        "noise floor well below"
    );
    println!("  tones detected at bins 5 and 19: OK");
}
