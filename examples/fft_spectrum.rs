//! Spectral analysis on the hybrid LA/FFT core (Chapter 6.2): run the
//! 64-point radix-4 FFT microprogram on the cycle-accurate simulator to
//! pick the tones out of a noisy signal — the signal-processing workload
//! the hybrid PE design exists for.
//!
//! ```sh
//! cargo run --release --example fft_spectrum
//! ```

use lap::lac_kernels::run_fft64;
use lap::lac_sim::{ExternalMem, Lac, LacConfig};
use lap::linalg_ref::Complex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

fn main() {
    // Two tones (bins 5 and 19) buried in noise.
    let n = 64usize;
    let mut rng = StdRng::seed_from_u64(2026);
    let signal: Vec<Complex> = (0..n)
        .map(|t| {
            let tone1 = Complex::cis(2.0 * PI * 5.0 * t as f64 / n as f64).scale(1.0);
            let tone2 = Complex::cis(2.0 * PI * 19.0 * t as f64 / n as f64).scale(0.6);
            let noise = Complex::new(rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1));
            tone1 + tone2 + noise
        })
        .collect();

    // Interleave into the core's external memory and transform.
    let mut mem = vec![0.0; 2 * n];
    for (q, v) in signal.iter().enumerate() {
        mem[2 * q] = v.re;
        mem[2 * q + 1] = v.im;
    }
    let cfg = LacConfig { sram_a_words: 64, sram_b_words: 64, ..Default::default() };
    let mut lac = Lac::new(cfg);
    let mut emem = ExternalMem::from_vec(mem);
    let report = run_fft64(&mut lac, &mut emem).expect("FFT schedule");

    // Read the spectrum and find peaks.
    let spectrum: Vec<f64> = (0..n)
        .map(|q| Complex::new(emem.read(2 * q), emem.read(2 * q + 1)).abs())
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| spectrum[b].partial_cmp(&spectrum[a]).unwrap());

    println!("64-point radix-4 FFT on the 4x4 hybrid core");
    println!("  cycles           : {}", report.stats.cycles);
    println!("  FMAs per PE      : {}", report.fma_per_pe);
    println!("  bus transfers    : {} row, {} col",
        report.stats.row_bus_transfers, report.stats.col_bus_transfers);
    println!("  top spectral bins:");
    for &k in order.iter().take(3) {
        println!("    bin {k:2}  |X| = {:.2}", spectrum[k]);
    }
    assert_eq!(order[0], 5, "strongest tone at bin 5");
    assert_eq!(order[1], 19, "second tone at bin 19");
    assert!(spectrum[order[2]] < 0.3 * spectrum[order[1]], "noise floor well below");

    // Cross-check against the reference radix-4 FFT.
    let mut reference = signal;
    lap::linalg_ref::fft_radix4(&mut reference);
    let max_err = (0..n)
        .map(|q| (Complex::new(emem.read(2 * q), emem.read(2 * q + 1)) - reference[q]).abs())
        .fold(0.0f64, f64::max);
    println!("  |X_sim − X_ref|  : {max_err:.2e}");
    assert!(max_err < 1e-10);
    println!("  tones detected at bins 5 and 19: OK");
}
