//! Open-loop serving, end to end: two latency classes sharing one
//! service under real arrival pressure — including a burst.
//!
//! An *interactive* tenant (tight deadline SLO, gentle Poisson arrivals)
//! shares a 2-core `LacService` with a *batch* tenant that fires bursty
//! on-off trains of solver requests. The `lac_traffic` driver replays a
//! seeded arrival trace on its own clock: it fast-forwards the simulated
//! time between arrivals, admits each request through the tenant's
//! admission door, and charges every completion's sojourn time (arrival →
//! done) to its tenant's log-bucketed histogram.
//!
//! The same trace is replayed twice — plain fair share vs deadline-slack
//! boosted fair share — to show the SLO layer doing its job: the
//! interactive tail (p99) tightens while every output bit stays
//! identical, because the boost only reorders *when* requests run.
//!
//! ```sh
//! cargo run --release --example open_loop
//! ```

use lap::lac_kernels::{SolverJob, SolverLoopParams, SolverStream};
use lap::lac_sim::{ChipConfig, LacConfig, LacService, Scheduler, TenantConfig};
use lap::lac_traffic::{run_open_loop, ArrivalProcess, ArrivalTrace, OpenLoopConfig};

fn main() {
    // Every arrival becomes one small interior-point chain (CHOL → TRSM
    // fan-out → SYRK), operands salted by (tenant, request index).
    let stream = SolverStream::new(SolverLoopParams {
        n: 8,
        rounds: 1,
        panels: 2,
        width: 4,
        salt: 7,
    });

    // One request's standalone service time anchors the rates below.
    let unit = {
        let mut chip = lap::lac_sim::LacChip::new(ChipConfig::new(2, LacConfig::default()));
        chip.run_graph(&stream.request(0, 0).graph().graph, Scheduler::CriticalPath)
            .expect("hazard-free schedule")
            .stats
            .makespan_cycles
    };

    // The traffic: interactive requests trickle in (Poisson, one per
    // ~4 service times); batch work arrives in bursts of ~8 back-to-back
    // requests — the classic tail-latency stress.
    let trace = ArrivalTrace::generate(
        42,
        unit * 150,
        &[
            ArrivalProcess::Poisson {
                mean_gap: 4.0 * unit as f64,
            },
            ArrivalProcess::OnOff {
                mean_gap_on: unit as f64 / 4.0,
                mean_burst: 8.0,
                mean_gap_off: 6.0 * unit as f64,
            },
        ],
    );
    println!(
        "trace: {} interactive + {} batch arrivals over {} cycles (unit service {} cycles)\n",
        trace.count_for(0),
        trace.count_for(1),
        trace.horizon(),
        unit
    );

    let deadline = 6 * unit;
    let replay = |slo_boost: bool| {
        let mut svc: LacService<SolverJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        // Batch pays for 4x the share, so plain fair share serves its
        // backlog first — exactly the regime where the interactive
        // tenant needs its deadline boost.
        let ids = vec![
            svc.add_tenant(TenantConfig::new("interactive").with_deadline(deadline)),
            svc.add_tenant(TenantConfig::new("batch").with_weight(4)),
        ];
        run_open_loop(
            &mut svc,
            &trace,
            &ids,
            |a| stream.request(a.tenant, a.index).graph().graph,
            OpenLoopConfig {
                sched: Scheduler::FairShare,
                slo_boost,
                ..OpenLoopConfig::default()
            },
        )
        .expect("hazard-free open-loop replay")
    };

    let plain = replay(false);
    let boosted = replay(true);

    for (name, report) in [("plain fair share", &plain), ("SLO-boosted", &boosted)] {
        println!("{name} ({} rounds):", report.rounds);
        for (t, label) in [(0, "interactive"), (1, "batch")] {
            let m = &report.per_tenant[t];
            println!(
                "  {label:11}  n={:3}  mean={:7.0}  p50={:6}  p99={:6}  p999={:6}  misses={}",
                m.hist.count(),
                m.hist.mean(),
                m.hist.p50(),
                m.hist.p99(),
                m.hist.p999(),
                m.deadline_misses,
            );
        }
    }

    // The boost trades batch tail for interactive tail — verify the
    // deal, and verify it never touched a single output bit.
    let p99 = |r: &lap::lac_traffic::OpenLoopReport<_>, t: usize| r.per_tenant[t].hist.p99();
    assert!(
        p99(&boosted, 0) <= p99(&plain, 0),
        "SLO boost must not worsen the interactive tail"
    );
    let bits = |r: &lap::lac_traffic::OpenLoopReport<lap::lac_kernels::KernelReport>| {
        let mut v: Vec<_> = r
            .completed
            .iter()
            .map(|c| (c.arrival, c.outputs.clone()))
            .collect();
        v.sort_by_key(|(a, _)| (a.tenant, a.index));
        v
    };
    assert_eq!(
        bits(&plain),
        bits(&boosted),
        "outputs must be bit-identical"
    );

    // And the results are real: every request checks against the
    // independent linalg-ref chain.
    for c in &boosted.completed {
        stream
            .request(c.arrival.tenant, c.arrival.index)
            .check_graph(&c.outputs)
            .expect("streamed outputs match linalg-ref");
    }
    println!(
        "\ninteractive p99: {} -> {} cycles under the boost; outputs bit-identical, \
         all {} requests verified vs linalg-ref",
        p99(&plain, 0),
        p99(&boosted, 0),
        boosted.completed.len()
    );
}
