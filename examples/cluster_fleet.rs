//! A fleet of solver loops sharded across a four-chip cluster — the
//! multi-chip deployment layer, end to end.
//!
//! Eight independent IPM-style solver loops fuse into one `JobGraph`
//! (`SolverFleet`), the cluster's `CostBins` partitioner bin-packs the
//! loops across chips (each loop is one dependency component, so no
//! edge crosses a chip and nothing pays the link), and the run is
//! verified against every loop's own `linalg-ref` chain. A second run
//! with the `Striped` stress partitioner scatters the same jobs across
//! chips to show what the modeled inter-chip transfers cost — same
//! bits out, very different makespan. Finally the cluster's tenant door
//! demonstrates an admission budget that spans all four chips.
//!
//! ```sh
//! cargo run --release --example cluster_fleet
//! ```

use lap::lac_kernels::{SolverFleet, SolverJob, SolverLoopParams};
use lap::lac_power::ClusterEnergyModel;
use lap::lac_sim::{
    ChipConfig, ClusterConfig, LacCluster, LacConfig, Partitioner, Scheduler, TenantConfig,
};

fn params() -> SolverLoopParams {
    SolverLoopParams {
        n: 16,
        rounds: 3,
        panels: 4,
        width: 8,
        salt: 2200,
    }
}

fn main() {
    // Four 2-core chips joined by a 4-words/cycle, 200-cycle-hop link.
    let chip = ChipConfig::new(2, LacConfig::default());
    let cfg = ClusterConfig::homogeneous(4, chip).with_link(4, 200);
    let energy = ClusterEnergyModel::lap_default();

    // --- Component sharding: the partitioner keeps each loop whole. ---
    let mut cluster: LacCluster<SolverJob> = LacCluster::new(cfg.clone());
    let fleet = SolverFleet::new(params(), 8);
    let run = cluster
        .run_graph(&fleet.graph, Scheduler::CriticalPath)
        .expect("hazard-free schedule");
    fleet
        .check(&run.outputs)
        .expect("all loops match linalg-ref");
    assert!(run.transfers.is_empty());
    let e = energy.summarize(&run.stats);
    println!(
        "cost-bins: {} jobs over {} waves on 4 chips",
        run.stats.jobs(),
        run.waves
    );
    println!(
        "  makespan {} cycles ({:.1}x vs serial), loads per chip {:?}",
        run.stats.makespan_cycles,
        run.stats.speedup(),
        run.partition.chip_cost
    );
    println!(
        "  {} link words, {:.1} uJ total ({:.1} uJ links)",
        run.stats.transferred_words,
        e.total_nj / 1000.0,
        e.link_nj / 1000.0
    );

    // --- Striped stress: every round edge crosses the link. ---
    let mut striped: LacCluster<SolverJob> =
        LacCluster::new(cfg.clone()).with_partitioner(Partitioner::Striped);
    let fleet2 = SolverFleet::new(params(), 8);
    let srun = striped
        .run_graph(&fleet2.graph, Scheduler::CriticalPath)
        .expect("striping changes cost, not correctness");
    assert_eq!(run.outputs, srun.outputs, "placement never changes bits");
    println!(
        "striped:   makespan {} cycles ({:.2}x slower), {} cut edges, {} link words, {} stall cycles",
        srun.stats.makespan_cycles,
        srun.stats.makespan_cycles as f64 / run.stats.makespan_cycles as f64,
        srun.partition.cut_edges.len(),
        srun.stats.transferred_words,
        srun.stats.transfer_stall_cycles
    );

    // --- Tenancy spans chips: one budget for the whole deployment. ---
    let mut tenanted: LacCluster<SolverJob> = LacCluster::new(cfg);
    let one_loop = SolverFleet::new(params(), 1);
    let budget = one_loop.total_cost();
    let bounded = tenanted.add_tenant(TenantConfig::new("bounded").with_admission_budget(budget));
    tenanted
        .enqueue(bounded, SolverFleet::new(params(), 1).graph)
        .expect("first loop fits the budget");
    let bounced = tenanted
        .enqueue(bounded, SolverFleet::new(params(), 1).graph)
        .expect_err("second loop exceeds the cluster-wide budget");
    println!(
        "tenancy:   budget {} bounced a {}-cost graph at {} in flight",
        bounced.budget, bounced.graph_cost, bounced.inflight_cost
    );
    let round = tenanted
        .run_admitted(Scheduler::FairShare)
        .expect("admitted round completes");
    println!(
        "  round ran {} graph(s) in {} cycles; budget drained to {}",
        round.graphs.len(),
        round.stats.makespan_cycles,
        tenanted.tenant_session(bounded).inflight_cost
    );
}
