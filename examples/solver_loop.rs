//! A 3-round IPM-style solver loop on a 4-core chip through the
//! submission service — the production shape the dependency-graph API
//! exists for.
//!
//! Each round factors the current system matrix (CHOL), fans four
//! right-hand-side panels out across the cores (blocked TRSM), squares
//! the solutions (SYRK), and folds the updates into the next round's
//! matrix: a diamond-per-round DAG whose serial spine is the factorization
//! and whose width is the panel fan-out. The `LacService` keeps one worker
//! thread per core alive across submissions; every output is verified
//! against an independent `linalg-ref` chain.
//!
//! ```sh
//! cargo run --release --example solver_loop
//! ```

use lap::lac_kernels::{Details, SolverLoopParams, SolverLoopWorkload};
use lap::lac_power::ChipEnergyModel;
use lap::lac_sim::{ChipConfig, LacConfig, LacService, Scheduler};

fn main() {
    let workload = SolverLoopWorkload::new(SolverLoopParams {
        n: 16,
        rounds: 3,
        panels: 4,
        width: 8,
        salt: 7,
    });

    // A persistent 4-core service: workers (and their engine shards) stay
    // warm across submissions.
    let mut service = LacService::new(ChipConfig::new(4, LacConfig::default()));

    let solver_graph = workload.graph();
    let run = service
        .submit(solver_graph.graph, Scheduler::CriticalPath)
        .expect("hazard-free schedule");
    workload
        .check_graph(&run.outputs)
        .expect("every round matches linalg-ref");

    println!(
        "{} jobs over {} waves on {} cores: makespan {} cycles ({:.2}x vs 1 core)",
        run.stats.jobs(),
        run.waves,
        service.num_cores(),
        run.stats.makespan_cycles,
        run.stats.speedup(),
    );
    for (k, &chol) in solver_graph.chol.iter().enumerate() {
        let report = &run.outputs[chol.index()];
        let Details::Cholesky { l } = &report.details else {
            unreachable!("CHOL jobs report their factor")
        };
        println!(
            "  round {k}: factor on core {}, {} cycles, ‖L‖F = {:.3}",
            run.assignment[chol.index()],
            report.stats.cycles,
            l.fro_norm()
        );
    }

    // The service session prices the whole lifetime — add an idle gap
    // between batches and the static uncore keeps burning.
    service.advance_idle(10_000);
    let energy = ChipEnergyModel::lap_default().summarize(&service.session().chip_stats());
    println!(
        "service lifetime: {} cycles ({} busy), {:.1} uJ, {:.1} GFLOPS/W",
        service.session().clock_cycles,
        service.session().chip_stats().aggregate.cycles,
        energy.total_nj / 1000.0,
        energy.gflops_per_w
    );
}
