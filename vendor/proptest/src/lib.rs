//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest surface the workspace's property tests use:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`,
//! range strategies over ints and floats, tuple strategies, and
//! `prop::collection::vec`. Cases are drawn from a deterministic per-test
//! RNG rather than proptest's adaptive engine, and there is no shrinking:
//! a failing case panics with the raw assertion message.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`cases` is the only knob the shim honors).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values of one type. The shim keeps proptest's
/// `Strategy<Value = T>` associated-type shape so `impl Strategy<Value = …>`
/// return positions in test helpers compile unchanged.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(usize, u64, u32, i64, i32, f64);

/// `any::<T>()` — full-domain strategy for primitives.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-test deterministic seed: FNV-1a over the test path, so adding or
/// reordering tests never perturbs another test's stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr) $(#[test] fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
    /// `prop::collection::vec(...)` paths resolve through this alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuples_and_ranges((a, b, s) in (1usize..=8, 1usize..=8, any::<u64>()), x in -2.0f64..2.0) {
            prop_assert!((1..=8).contains(&a) && (1..=8).contains(&b));
            let _ = s;
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_lengths(xs in prop::collection::vec(-1.0f64..1.0, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|v| (-1.0..1.0).contains(v)));
        }
    }
}
