//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the (small, fully deterministic) subset of the rand 0.8 API the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over `f64`
//! ranges, and the `RngCore` plumbing underneath. The generator is
//! xoshiro256++, seeded through SplitMix64 exactly like rand's small RNGs,
//! so streams are reproducible and well distributed; they do *not* match
//! upstream `StdRng` (ChaCha12) bit-for-bit, which no test here relies on.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        (lo..hi.next_up()).sample_single(rng)
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, i64, i32);

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, as in rand 0.8.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the statistical workhorse behind rand's small RNGs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per Blackman & Vigna.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(-1.0..1.0), b.gen_range(-1.0..1.0));
        }
    }

    #[test]
    fn float_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-0.5..2.0);
            assert!((-0.5..2.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
