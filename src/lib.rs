//! # lap — Linear Algebra Processor codesign reproduction
//!
//! Facade crate re-exporting the full reproduction of Pedram's 2013
//! dissertation *"Algorithm/Architecture Codesign of Low Power and High
//! Performance Linear Algebra Compute Fabrics"*:
//!
//! - [`linalg_ref`] — reference BLAS / factorizations / FFT substrate.
//! - [`lac_fpu`] — floating-point unit models (FMAC, reciprocal, rsqrt…).
//! - [`lac_sim`] — cycle-accurate Linear Algebra Core simulator, from one
//!   engine session through the multi-core chip and multi-tenant service
//!   to the multi-chip sharded cluster.
//! - [`lac_kernels`] — algorithm→architecture microprogram generators.
//! - [`lac_model`] — analytical performance / memory-hierarchy models.
//! - [`lac_power`] — power & area models and platform comparisons.
//! - [`lac_traffic`] — open-loop traffic layer: seeded arrival traces,
//!   sojourn-time histograms (p50/p99/p999), SLO-aware serving, and the
//!   dynamic replay door for convergence-driven requests.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the experiment map,
//! and `docs/ARCHITECTURE.md` for the layer diagram (engine → chip →
//! service → cluster → traffic) and the paper-concept glossary.

pub use lac_fpu;
pub use lac_kernels;
pub use lac_model;
pub use lac_power;
pub use lac_sim;
pub use lac_traffic;
pub use linalg_ref;

// The continuation subsystem, flattened: the dynamic-graph API spans
// three crates (trait + driver in `lac_sim::dynamic`, convergence-driven
// clients in `lac_kernels`, the open-loop replay door in `lac_traffic`),
// so the pieces a dynamic client touches are re-exported here together.
pub use lac_kernels::{IpddpFleet, IpddpParams, IppmmParams, IppmmWorkload};
pub use lac_sim::dynamic::{
    run_dynamic, Continuation, Continue, DynamicGraph, DynamicOutcome, DynamicRun,
};
pub use lac_traffic::{run_open_loop_dynamic, DynamicCompleted, DynamicOpenLoopReport};
