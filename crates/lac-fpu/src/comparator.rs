//! Magnitude comparator extension (§A.2, Figure A.1).
//!
//! LU partial pivoting needs `argmax |xᵢ|` over a column. The hardware adds a
//! comparator on the MAC's exponent/mantissa datapath; because IEEE-754
//! magnitudes order the same way as their biased-exponent+mantissa bit
//! patterns, the comparator is a simple unsigned integer compare on the
//! low 63 bits — which is exactly how we model it.

/// `|a| >= |b|` computed the way the hardware comparator does: as an
/// unsigned compare of the sign-stripped bit patterns.
#[inline]
pub fn magnitude_ge(a: f64, b: f64) -> bool {
    let ma = a.to_bits() & 0x7fff_ffff_ffff_ffff;
    let mb = b.to_bits() & 0x7fff_ffff_ffff_ffff;
    ma >= mb
}

/// Index of the largest-magnitude element (first index wins ties), using the
/// bit-pattern comparator. Matches `linalg_ref::blas1::iamax` for all finite
/// inputs.
pub fn magnitude_max_index(xs: &[f64]) -> usize {
    assert!(!xs.is_empty());
    let mut best = 0;
    for i in 1..xs.len() {
        if !magnitude_ge(xs[best], xs[i]) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_compare_matches_abs_compare() {
        let vals = [0.0, -0.0, 1.0, -1.0, 0.5, -2.5, 1e-308, -1e308, 3.25];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(magnitude_ge(a, b), a.abs() >= b.abs(), "a={a}, b={b}");
            }
        }
    }

    #[test]
    fn subnormals_ordered_correctly() {
        let t1 = f64::MIN_POSITIVE / 2.0;
        let t2 = f64::MIN_POSITIVE / 4.0;
        assert!(magnitude_ge(t1, t2));
        assert!(!magnitude_ge(t2, t1));
    }

    #[test]
    fn max_index_matches_iamax_semantics() {
        assert_eq!(magnitude_max_index(&[1.0, -5.0, 3.0]), 1);
        assert_eq!(magnitude_max_index(&[-2.0, 2.0]), 0, "first on ties");
        assert_eq!(magnitude_max_index(&[0.0]), 0);
    }
}
