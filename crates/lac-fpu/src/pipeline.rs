//! A generic fixed-depth pipeline model.
//!
//! Used by the simulator for the MAC datapath and the SFU: an item issued at
//! cycle `t` retires at cycle `t + depth`. The pipeline accepts at most one
//! issue per cycle (throughput one), which is exactly the paper's FMAC with
//! delayed normalization \[141, 142\].

/// Fixed-depth, single-issue-per-cycle pipeline.
#[derive(Clone, Debug)]
pub struct Pipeline<T> {
    depth: usize,
    /// `slots[i]` retires in `i + 1` more steps.
    slots: Vec<Option<T>>,
    issued_this_cycle: bool,
}

impl<T> Pipeline<T> {
    /// Create a pipeline with `depth ≥ 1` stages.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        Self {
            depth,
            slots: (0..depth).map(|_| None).collect(),
            issued_this_cycle: false,
        }
    }

    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Issue an item this cycle. Returns `Err` on a structural hazard
    /// (second issue in the same cycle).
    pub fn issue(&mut self, item: T) -> Result<(), T> {
        if self.issued_this_cycle {
            return Err(item);
        }
        debug_assert!(
            self.slots[self.depth - 1].is_none(),
            "tail slot must be free pre-step"
        );
        self.slots[self.depth - 1] = Some(item);
        self.issued_this_cycle = true;
        Ok(())
    }

    /// Advance one cycle; returns the item retiring this cycle, if any.
    pub fn step(&mut self) -> Option<T> {
        self.issued_this_cycle = false;
        let out = self.slots[0].take();
        self.slots.rotate_left(1);
        out
    }

    /// True when no in-flight items remain.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Number of in-flight items.
    pub fn in_flight(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_equals_depth() {
        let mut p: Pipeline<u32> = Pipeline::new(3);
        p.issue(7).unwrap();
        assert_eq!(p.step(), None);
        assert_eq!(p.step(), None);
        assert_eq!(p.step(), Some(7));
        assert!(p.is_empty());
    }

    #[test]
    fn throughput_one_per_cycle() {
        let mut p: Pipeline<u32> = Pipeline::new(4);
        let mut retired = vec![];
        for t in 0..10u32 {
            if let Some(v) = p.step() {
                retired.push(v);
            }
            p.issue(t).unwrap();
        }
        // after 10 cycles with depth 4, items 0..6 have retired
        assert_eq!(retired, (0..6).collect::<Vec<_>>());
        assert_eq!(p.in_flight(), 4);
    }

    #[test]
    fn double_issue_is_hazard() {
        let mut p: Pipeline<u32> = Pipeline::new(2);
        p.issue(1).unwrap();
        assert!(p.issue(2).is_err());
        p.step();
        p.issue(2).unwrap();
    }

    #[test]
    fn depth_one_retires_next_cycle() {
        let mut p: Pipeline<u32> = Pipeline::new(1);
        p.issue(5).unwrap();
        assert_eq!(p.step(), Some(5));
    }
}
