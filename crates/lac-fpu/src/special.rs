//! Divide / reciprocal / square-root / inverse-square-root support
//! (§6.1.4, §A.3.2, Figure A.2, Table A.1).
//!
//! Three architecture options from Appendix A are modeled:
//!
//! * [`DivSqrtImpl::Software`] — microcoded Goldschmidt iterations on the
//!   PE's existing MAC unit (no extra hardware; occupies the MAC for the
//!   whole operation).
//! * [`DivSqrtImpl::Isolated`] — one dedicated SFU per core with minimax
//!   lookup logic \[113\] (the Figure 1.1 "SFU"); operands travel over the
//!   buses.
//! * [`DivSqrtImpl::DiagonalPes`] — the diagonal PEs' MAC units extended
//!   with the lookup + control overhead so the reciprocal is produced where
//!   Cholesky/LU need it, with no extra bus trips.
//!
//! Functionally all three compute the same multiplicative approximations; we
//! implement table-seeded Newton–Raphson (reciprocal, rsqrt) and Goldschmidt
//! (divide) and test convergence to < 1 ulp after the modeled iteration
//! counts.

/// Which special function is requested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivSqrtOp {
    /// `1/x`
    Reciprocal,
    /// `a/b`
    Divide,
    /// `√x`
    Sqrt,
    /// `1/√x`
    InvSqrt,
}

/// Architecture option for divide/square-root (Appendix A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivSqrtImpl {
    /// Goldschmidt on the PE MAC (microprogrammed; blocks the MAC).
    Software,
    /// Dedicated per-core SFU with minimax table logic.
    Isolated,
    /// Extended MAC units on the diagonal PEs.
    DiagonalPes,
}

impl Default for DivSqrtImpl {
    /// The dissertation's canonical design point (an isolated per-core SFU).
    fn default() -> Self {
        Self::Isolated
    }
}

impl DivSqrtImpl {
    /// Latency in cycles for `op` under this implementation.
    ///
    /// Modeled from Appendix A's description: the software path executes
    /// ~3 Goldschmidt iterations of 2 dependent MACs each through a 5-stage
    /// pipeline plus setup; the isolated minimax unit and the extended
    /// diagonal MAC retire an operation in roughly a pipeline-and-a-half.
    pub fn latency(self, op: DivSqrtOp) -> usize {
        let base = match self {
            DivSqrtImpl::Software => 30,
            DivSqrtImpl::Isolated => 13,
            DivSqrtImpl::DiagonalPes => 9,
        };
        match op {
            DivSqrtOp::Reciprocal => base,
            DivSqrtOp::Divide => base + 2, // extra back-multiply
            DivSqrtOp::Sqrt => base + 3,   // rsqrt then ×x
            DivSqrtOp::InvSqrt => base,
        }
    }

    /// Whether the operation monopolizes the issuing PE's MAC while running.
    pub fn blocks_mac(self) -> bool {
        matches!(self, DivSqrtImpl::Software)
    }

    /// Whether operands must travel over the broadcast buses to reach the
    /// unit (isolated SFU) or are produced in place (diagonal PEs, software).
    pub fn needs_bus_round_trip(self) -> bool {
        matches!(self, DivSqrtImpl::Isolated)
    }
}

/// 2^7-entry reciprocal seed table (the minimax lookup of \[113\]): indexed
/// by the top 7 mantissa bits, returns an initial `1/m` estimate good to
/// ~2^-8.
fn recip_seed(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0);
    // Normalize mantissa into [1, 2).
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mant = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52)); // [1,2)
    let idx = ((mant - 1.0) * 128.0) as usize; // 7-bit index
    let mid = 1.0 + (idx as f64 + 0.5) / 128.0;
    let seed_m = 1.0 / mid; // table entry (precomputable)
    seed_m * 2f64.powi(-exp as i32)
}

/// rsqrt seed: top mantissa bits + exponent parity, good to ~2^-7.
fn rsqrt_seed(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0);
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mant = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    let (m, e) = if exp % 2 == 0 {
        (mant, exp)
    } else {
        (mant * 2.0, exp - 1)
    };
    let idx = ((m - 1.0) * 64.0) as usize; // over [1,4): 6-bit per octave
    let mid = 1.0 + (idx as f64 + 0.5) / 64.0;
    let seed_m = 1.0 / mid.sqrt(); // table entry (precomputable)
    seed_m * 2f64.powi((-e / 2) as i32)
}

/// Reciprocal via table seed + `iters` Newton–Raphson steps
/// (`y ← y (2 - x y)`): each step doubles the number of correct bits.
pub fn recip_newton_raphson(x: f64, iters: usize) -> f64 {
    assert!(x != 0.0, "reciprocal of zero");
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let ax = x.abs();
    let mut y = recip_seed(ax);
    for _ in 0..iters {
        y *= 2.0 - ax * y;
    }
    sign * y
}

/// Inverse square root via table seed + `iters` Newton–Raphson steps
/// (`y ← y (3 - x y²) / 2`).
pub fn rsqrt_newton_raphson(x: f64, iters: usize) -> f64 {
    assert!(x > 0.0, "rsqrt needs a positive argument");
    let mut y = rsqrt_seed(x);
    for _ in 0..iters {
        y *= 0.5 * (3.0 - x * y * y);
    }
    y
}

/// `√x = x · (1/√x)` — how the MAC-based units produce square roots.
pub fn sqrt_via_rsqrt(x: f64, iters: usize) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    x * rsqrt_newton_raphson(x, iters)
}

/// Goldschmidt division `a/b`: both numerator and denominator are repeatedly
/// multiplied by the correction factor; converges quadratically.
pub fn div_goldschmidt(a: f64, b: f64, iters: usize) -> f64 {
    assert!(b != 0.0, "division by zero");
    let sign = if b < 0.0 { -1.0 } else { 1.0 };
    let ab = b.abs();
    let f0 = recip_seed(ab);
    let mut n = a * f0;
    let mut d = ab * f0;
    for _ in 0..iters {
        let f = 2.0 - d;
        n *= f;
        d *= f;
    }
    sign * n
}

/// Default Newton–Raphson iteration count used by the kernels: 3 doublings
/// from an 8-bit seed exceed the 53-bit double-precision mantissa.
pub const DEFAULT_NR_ITERS: usize = 3;

/// The functional result of `op` on `(a, b)` at the modeled iteration
/// counts — exactly what [`SpecialFnUnit::issue`] latches. `b` is ignored
/// except for [`DivSqrtOp::Divide`]. Exposed so the decode-once compiled
/// backend in `lac-sim` can produce bit-identical SFU results without
/// driving the latency model.
pub fn compute(op: DivSqrtOp, a: f64, b: f64) -> f64 {
    match op {
        DivSqrtOp::Reciprocal => recip_newton_raphson(a, DEFAULT_NR_ITERS),
        DivSqrtOp::Divide => div_goldschmidt(a, b, DEFAULT_NR_ITERS),
        DivSqrtOp::Sqrt => sqrt_via_rsqrt(a, DEFAULT_NR_ITERS),
        DivSqrtOp::InvSqrt => rsqrt_newton_raphson(a, DEFAULT_NR_ITERS),
    }
}

/// A latency-modeled special-function unit: issue an op, result retires
/// after [`DivSqrtImpl::latency`] cycles. Single outstanding op (the
/// dissertation's SFU is unpipelined).
#[derive(Clone, Debug)]
pub struct SpecialFnUnit {
    imp: DivSqrtImpl,
    busy_until: Option<(usize, f64)>, // (remaining cycles, result)
    pub ops_issued: u64,
}

impl SpecialFnUnit {
    pub fn new(imp: DivSqrtImpl) -> Self {
        Self {
            imp,
            busy_until: None,
            ops_issued: 0,
        }
    }

    pub fn implementation(&self) -> DivSqrtImpl {
        self.imp
    }

    /// Issue `op` on operand(s); `b` is ignored except for Divide.
    /// Errors if the unit is busy.
    pub fn issue(&mut self, op: DivSqrtOp, a: f64, b: f64) -> Result<(), ()> {
        let result = compute(op, a, b);
        self.issue_precomputed(op, result)
    }

    /// Issue with an externally computed result — used when the operand
    /// arrives in a non-IEEE form (the wide-accumulator square root of the
    /// vector-norm kernel, §A.2), where the datapath, not this model,
    /// prepares the mantissa/exponent pair.
    pub fn issue_precomputed(&mut self, op: DivSqrtOp, result: f64) -> Result<(), ()> {
        if self.busy_until.is_some() {
            return Err(());
        }
        self.busy_until = Some((self.imp.latency(op), result));
        self.ops_issued += 1;
        Ok(())
    }

    /// Advance one cycle; returns the result on the retiring cycle.
    pub fn step(&mut self) -> Option<f64> {
        match self.busy_until.take() {
            None => None,
            Some((1, r)) => Some(r),
            Some((n, r)) => {
                self.busy_until = Some((n - 1, r));
                None
            }
        }
    }

    pub fn idle(&self) -> bool {
        self.busy_until.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulps(a: f64, b: f64) -> i64 {
        (a.to_bits() as i64 - b.to_bits() as i64).abs()
    }

    #[test]
    fn recip_converges_to_ulps() {
        for &x in &[1.0, 1.5, 2.0, 3.0, 0.1, 123456.789, 1e-10, 1e10, -7.5] {
            let y = recip_newton_raphson(x, DEFAULT_NR_ITERS);
            assert!(ulps(y, 1.0 / x) <= 4, "x={x}: got {y}, want {}", 1.0 / x);
        }
    }

    #[test]
    fn rsqrt_converges() {
        for &x in &[1.0, 2.0, 3.0, 4.0, 0.25, 1e-6, 1e6, 987654.321] {
            let y = rsqrt_newton_raphson(x, DEFAULT_NR_ITERS);
            assert!(ulps(y, 1.0 / x.sqrt()) <= 4, "x={x}");
        }
    }

    #[test]
    fn sqrt_and_div_converge() {
        for &x in &[1.0, 2.0, 9.0, 1e-8, 1e8] {
            assert!(
                ulps(sqrt_via_rsqrt(x, DEFAULT_NR_ITERS), x.sqrt()) <= 4,
                "sqrt {x}"
            );
        }
        for &(a, b) in &[(1.0, 3.0), (10.0, 7.0), (-4.0, 2.5), (1e10, -3e-5)] {
            assert!(
                ulps(div_goldschmidt(a, b, DEFAULT_NR_ITERS), a / b) <= 4,
                "{a}/{b}"
            );
        }
    }

    #[test]
    fn seed_accuracy_bounds() {
        // Seeds must be good enough that 3 doublings reach 53 bits:
        // need initial relative error < 2^-7.
        for i in 0..1000 {
            let x = 1.0 + i as f64 / 1000.0; // [1, 2)
            let rel = (recip_seed(x) - 1.0 / x).abs() * x;
            assert!(rel < 1.0 / 128.0, "recip seed err {rel} at {x}");
            let rel2 = (rsqrt_seed(x) - 1.0 / x.sqrt()).abs() * x.sqrt();
            assert!(rel2 < 1.0 / 32.0, "rsqrt seed err {rel2} at {x}");
        }
    }

    #[test]
    fn quadratic_convergence_visible() {
        let x = 1.7;
        let e0 = (recip_newton_raphson(x, 0) - 1.0 / x).abs();
        let e1 = (recip_newton_raphson(x, 1) - 1.0 / x).abs();
        assert!(e1 < e0 * e0 * x * 2.0, "error squares per step");
    }

    #[test]
    fn sfu_latency_model() {
        let mut sfu = SpecialFnUnit::new(DivSqrtImpl::Isolated);
        sfu.issue(DivSqrtOp::Reciprocal, 4.0, 0.0).unwrap();
        assert!(sfu.issue(DivSqrtOp::Reciprocal, 2.0, 0.0).is_err(), "busy");
        let lat = DivSqrtImpl::Isolated.latency(DivSqrtOp::Reciprocal);
        for _ in 0..lat - 1 {
            assert_eq!(sfu.step(), None);
        }
        let r = sfu.step().unwrap();
        assert!((r - 0.25).abs() < 1e-12);
        assert!(sfu.idle());
    }

    #[test]
    fn impl_latency_ordering() {
        // Software slowest, diagonal fastest — the Appendix A conclusion.
        for &op in &[
            DivSqrtOp::Reciprocal,
            DivSqrtOp::Sqrt,
            DivSqrtOp::Divide,
            DivSqrtOp::InvSqrt,
        ] {
            assert!(DivSqrtImpl::Software.latency(op) > DivSqrtImpl::Isolated.latency(op));
            assert!(DivSqrtImpl::Isolated.latency(op) > DivSqrtImpl::DiagonalPes.latency(op));
        }
    }

    #[test]
    fn exponent_edge_cases() {
        // powers of two and values near exponent boundaries
        for &x in &[
            0.5,
            0.25,
            2.0,
            4.0,
            8.0,
            1.999999,
            2.000001,
            f64::MIN_POSITIVE * 1e10,
        ] {
            let y = recip_newton_raphson(x, DEFAULT_NR_ITERS);
            assert!(ulps(y, 1.0 / x) <= 8, "x={x}");
        }
    }
}
