//! Delayed-normalization accumulator with extended exponent range.
//!
//! §A.2/§A.3.1: the MAC keeps `C` in a wide accumulator and normalizes only
//! when the value is read out.  Adding **one extra exponent bit** doubles the
//! representable exponent range, so the sum of squares in a vector norm
//! (`Σ xᵢ²` with `|xᵢ|` up to ~1e308 ⇒ squares up to ~1e616) cannot overflow,
//! eliminating the software scaling pass (Table 6.1 / Figure A.1).
//!
//! We model the wide register as a pair `(mantissa: f64, exp2: i32)` with the
//! mantissa kept in `[1, 2) ∪ {0}` (sign carried by the mantissa) — a
//! software "big exponent" float. Products are formed exactly in this
//! representation before being accumulated, so intermediate overflow is
//! impossible for any finite inputs.

/// Wide accumulator: value = `mantissa × 2^exp2`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExtendedAccumulator {
    mantissa: f64,
    exp2: i32,
}

fn split(x: f64) -> (f64, i32) {
    if x == 0.0 || !x.is_finite() {
        return (x, 0);
    }
    // frexp: x = m * 2^e with |m| in [0.5, 1)
    let bits = x.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    if raw_exp == 0 {
        // subnormal: scale up by 2^64 first
        let scaled = x * 2f64.powi(64);
        let (m, e) = split(scaled);
        return (m, e - 64);
    }
    let e = raw_exp - 1022; // exponent such that |m| in [0.5,1)
    let m = f64::from_bits((bits & !(0x7ffu64 << 52)) | (1022u64 << 52));
    (m, e)
}

fn assemble(m: f64, e: i32) -> f64 {
    // May overflow/underflow to inf/0 — that is the *normalization* step.
    // Apply the exponent in chunks: `powi` itself saturates past ±1023.
    if m == 0.0 {
        return m;
    }
    let mut v = m;
    let mut e = e;
    while e > 1000 {
        v *= 2f64.powi(1000);
        e -= 1000;
        if v.is_infinite() {
            return v;
        }
    }
    while e < -1000 {
        v *= 2f64.powi(-1000);
        e += 1000;
        if v == 0.0 {
            return v;
        }
    }
    v * 2f64.powi(e)
}

impl ExtendedAccumulator {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Initialize from an ordinary double (the `C` preload).
    pub fn from_f64(x: f64) -> Self {
        let (m, e) = split(x);
        Self {
            mantissa: m,
            exp2: e,
        }
    }

    /// Current value normalized back to `f64` (the read-out step; may
    /// overflow to `±inf` if the true value exceeds binary64 range).
    pub fn normalize(&self) -> f64 {
        assemble(self.mantissa, self.exp2)
    }

    /// True value's base-2 exponent (for range assertions in tests).
    pub fn exponent(&self) -> i32 {
        self.exp2
    }

    /// Fused accumulate: `acc += a * b`, formed without intermediate
    /// overflow for any finite `a`, `b`.
    pub fn mac(&mut self, a: f64, b: f64) {
        let (ma, ea) = split(a);
        let (mb, eb) = split(b);
        let mp = ma * mb; // |mp| in [0.25, 1): exactly representable
        if mp == 0.0 {
            return;
        }
        let ep = ea + eb;
        self.add_parts(mp, ep);
    }

    /// Merge another wide accumulator into this one (the wide-datapath
    /// reduction used when partial sums cross PEs in extended format).
    pub fn add_wide(&mut self, other: &ExtendedAccumulator) {
        if other.mantissa != 0.0 {
            self.add_parts(other.mantissa, other.exp2);
        }
    }

    /// Square root in the wide space: `√(m·2^e) = √(m·2^(e-2h))·2^h`.
    pub fn sqrt_wide(&self) -> f64 {
        if self.mantissa == 0.0 {
            return 0.0;
        }
        let h = self.exp2.div_euclid(2);
        let m = assemble(self.mantissa, self.exp2 - 2 * h);
        m.sqrt() * 2f64.powi(h)
    }

    /// Plain add of an ordinary double.
    pub fn add(&mut self, x: f64) {
        let (m, e) = split(x);
        if m == 0.0 {
            return;
        }
        self.add_parts(m, e);
    }

    fn add_parts(&mut self, m: f64, e: i32) {
        if self.mantissa == 0.0 {
            self.mantissa = m;
            self.exp2 = e;
            return;
        }
        // Align to the larger exponent; differences beyond 128 bits make the
        // smaller addend vanish (same as hardware alignment shifters).
        let (mut hi_m, hi_e, lo_m, lo_e) = if self.exp2 >= e {
            (self.mantissa, self.exp2, m, e)
        } else {
            (m, e, self.mantissa, self.exp2)
        };
        let de = hi_e - lo_e;
        if de < 1080 {
            hi_m += lo_m * 2f64.powi(-de);
        }
        // renormalize mantissa into [0.5, 1)
        let (nm, ne) = split(hi_m);
        if nm == 0.0 {
            self.mantissa = 0.0;
            self.exp2 = 0;
        } else {
            self.mantissa = nm;
            self.exp2 = hi_e + ne;
        }
    }
}

impl ExtendedAccumulator {
    /// Normalize after shifting the exponent by `shift` — the hardware
    /// "read out with exponent adjustment" used when a norm's square root
    /// halves the exponent (§A.2).
    pub fn normalize_with_exp_shift(&self, shift: i32) -> f64 {
        assemble(self.mantissa, self.exp2 + shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_assemble_roundtrip() {
        for &x in &[1.0, -3.5, 1e-300, 1e300, 0.1, -0.0, 12345.678] {
            let (m, e) = split(x);
            assert_eq!(assemble(m, e), x, "x={x}");
            if x != 0.0 {
                assert!((0.5..1.0).contains(&m.abs()), "mantissa range for {x}: {m}");
            }
        }
    }

    #[test]
    fn mac_matches_f64_in_normal_range() {
        let mut acc = ExtendedAccumulator::from_f64(0.5);
        let mut refv = 0.5f64;
        let xs = [1.5, -2.25, 0.125, 3.0, -0.75];
        let ys = [2.0, 1.25, -4.0, 0.5, 8.0];
        for (x, y) in xs.iter().zip(&ys) {
            acc.mac(*x, *y);
            refv += x * y;
        }
        assert!((acc.normalize() - refv).abs() < 1e-12);
    }

    #[test]
    fn sum_of_squares_beyond_f64_range() {
        // Σ xᵢ² with xᵢ = 1e200: squares are 1e400, far beyond f64 max.
        let mut acc = ExtendedAccumulator::new();
        for _ in 0..4 {
            acc.mac(1e200, 1e200);
        }
        // value = 4e400 = 2^2 * 1e400; exponent ≈ log2(4e400) ≈ 1330
        assert!(acc.exponent() > 1300, "exponent tracked beyond IEEE range");
        // normalize overflows (as hardware would when writing back)...
        assert!(acc.normalize().is_infinite());
        // ...but sqrt in extended space is fine: ‖x‖ = 2e200.
        let half_exp = acc.exponent() / 2;
        let m = acc.normalize_with_exp_shift(-2 * half_exp);
        let norm = m.sqrt() * 2f64.powi(half_exp);
        assert!((norm / 2e200 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn underflow_products_preserved() {
        let mut acc = ExtendedAccumulator::new();
        acc.mac(1e-200, 1e-200); // 1e-400 underflows in f64
        assert!(acc.exponent() < -1300);
        let v = acc.normalize_with_exp_shift(1340);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn cancellation() {
        let mut acc = ExtendedAccumulator::from_f64(1.0);
        acc.add(-1.0);
        assert_eq!(acc.normalize(), 0.0);
        acc.mac(2.0, 3.0);
        assert_eq!(acc.normalize(), 6.0);
    }

    #[test]
    fn subnormal_inputs() {
        let tiny = f64::MIN_POSITIVE / 8.0; // subnormal
        let mut acc = ExtendedAccumulator::from_f64(tiny);
        assert!((acc.normalize() - tiny).abs() == 0.0);
        acc.add(tiny);
        assert_eq!(acc.normalize(), 2.0 * tiny);
    }
}
