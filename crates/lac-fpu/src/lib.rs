//! Floating-point unit models for the Linear Algebra Core.
//!
//! The dissertation's PE datapath is built around a pipelined **fused
//! multiply-accumulate (FMAC)** unit with a *local accumulator* and *delayed
//! normalization* (one accumulation per cycle, normalize only when the value
//! leaves the accumulator), plus the Appendix-A extensions:
//!
//! - a **comparator** riding on the MAC for LU pivot search,
//! - an **extended exponent bit** in the accumulator so `Σ xᵢ²` cannot
//!   overflow during vector norms,
//! - **divide / reciprocal / square-root / inverse-square-root** support in
//!   one of three forms: software Goldschmidt iterations on the existing MAC,
//!   an isolated special-function unit (SFU) with minimax lookup logic, or
//!   MAC-extended *diagonal* PEs.
//!
//! Everything here is a *software model*: functional results use `f64`
//! arithmetic (checked against closed forms in tests), while latency and
//! energy are explicit metadata consumed by `lac-sim` and `lac-power`.

// The FPU issue ports signal structural back-pressure ("unit busy this
// cycle") with a unit error; a dedicated error type would carry no data.
#![allow(clippy::result_unit_err)]

pub mod accumulator;
pub mod comparator;
pub mod mac;
pub mod pipeline;
pub mod special;

pub use accumulator::ExtendedAccumulator;
pub use comparator::{magnitude_ge, magnitude_max_index};
pub use mac::{FpuConfig, MacUnit, Precision};
pub use pipeline::Pipeline;
pub use special::{
    compute as divsqrt_compute, div_goldschmidt, recip_newton_raphson, rsqrt_newton_raphson,
    sqrt_via_rsqrt, DivSqrtImpl, DivSqrtOp, SpecialFnUnit,
};
