//! The PE's fused multiply-accumulate unit (§3.2, §A.3.1).

use crate::accumulator::ExtendedAccumulator;
use crate::pipeline::Pipeline;

/// Arithmetic precision of the datapath. The same FMAC hardware is assumed
/// reconfigurable between the two (the paper cites \[132\]); single precision
/// rounds every operation through `f32`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    Single,
    Double,
}

impl Precision {
    /// Operand width in bytes (drives bandwidth numbers in the models).
    pub fn bytes(self) -> usize {
        match self {
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }
}

/// Static configuration of the PE floating-point datapath.
#[derive(Clone, Copy, Debug)]
pub struct FpuConfig {
    /// MAC pipeline depth `p` (the paper uses 5–9; TRSM stacking assumes 8).
    pub pipeline_depth: usize,
    /// SFU (divide/square-root) latency `q` in cycles.
    pub sfu_latency: usize,
    pub precision: Precision,
    /// Extended-exponent accumulator (§A.2) present?
    pub exponent_extension: bool,
}

impl Default for FpuConfig {
    fn default() -> Self {
        Self {
            pipeline_depth: 5,
            sfu_latency: 13,
            precision: Precision::Double,
            exponent_extension: false,
        }
    }
}

/// One in-flight multiply-accumulate: `acc += a * b` (or an externally
/// supplied addend `c + a*b` when `into_acc` is false).
#[derive(Clone, Copy, Debug)]
struct MacOp {
    a: f64,
    b: f64,
    /// `None` ⇒ accumulate into the local accumulator;
    /// `Some(c)` ⇒ produce `c ± a·b` to the result latch.
    addend: Option<f64>,
    /// When true the product is subtracted (`c - a·b`, or `acc -= a·b`).
    negate: bool,
}

/// Timing- and range-accurate FMAC model with a local accumulator.
///
/// Semantics follow the paper: throughput one MAC per cycle, results
/// *visible in the accumulator* the cycle after retiring from the `p`-stage
/// pipeline, and accumulation chained without intermediate normalization.
#[derive(Clone, Debug)]
pub struct MacUnit {
    cfg: FpuConfig,
    pipe: Pipeline<MacOp>,
    acc: ExtendedAccumulator,
    /// Result latch for non-accumulator ops (`c + a·b`).
    result: Option<f64>,
    /// Lifetime op count (feeds the energy model).
    pub ops_issued: u64,
}

impl MacUnit {
    pub fn new(cfg: FpuConfig) -> Self {
        Self {
            pipe: Pipeline::new(cfg.pipeline_depth),
            cfg,
            acc: ExtendedAccumulator::new(),
            result: None,
            ops_issued: 0,
        }
    }

    pub fn config(&self) -> &FpuConfig {
        &self.cfg
    }

    fn round(&self, x: f64) -> f64 {
        match self.cfg.precision {
            Precision::Single => x as f32 as f64,
            Precision::Double => x,
        }
    }

    /// Load the accumulator (the `C` preload over the column bus).
    pub fn load_acc(&mut self, v: f64) {
        self.acc = ExtendedAccumulator::from_f64(self.round(v));
    }

    /// Read the accumulator, normalizing (the stream-out step).
    pub fn read_acc(&self) -> f64 {
        self.round(self.acc.normalize())
    }

    /// The wide accumulator itself (the extended-format read port the §A.2
    /// datapath exposes to the sequencer).
    pub fn acc_wide(&self) -> &ExtendedAccumulator {
        &self.acc
    }

    /// Square root of the accumulator computed in the *wide* exponent space
    /// (§A.2): `√(m·2^e) = √(m·2^(e−2h))·2^h` with `h = ⌊e/2⌋`, so a sum of
    /// squares that exceeds binary64 range still yields a finite norm. Only
    /// meaningful with the exponent extension; without it this equals
    /// `read_acc().sqrt()`.
    pub fn read_acc_sqrt(&self) -> f64 {
        let e = self.acc.exponent();
        let h = e.div_euclid(2);
        let m = self.acc.normalize_with_exp_shift(-2 * h);
        self.round(m.sqrt() * 2f64.powi(h))
    }

    /// Issue `acc += a*b` this cycle. Err on double-issue.
    pub fn issue_mac(&mut self, a: f64, b: f64) -> Result<(), ()> {
        self.issue_mac_signed(a, b, false)
    }

    /// Issue `acc ±= a*b` (negate ⇒ subtract the product).
    pub fn issue_mac_signed(&mut self, a: f64, b: f64, negate: bool) -> Result<(), ()> {
        self.pipe
            .issue(MacOp {
                a: self.round(a),
                b: self.round(b),
                addend: None,
                negate,
            })
            .map_err(|_| ())?;
        self.ops_issued += 1;
        Ok(())
    }

    /// Issue a free-standing fused op `c + a*b`; the result appears in the
    /// result latch (`take_result`) after `p` cycles.
    pub fn issue_fma(&mut self, a: f64, b: f64, c: f64) -> Result<(), ()> {
        self.issue_fma_signed(a, b, c, false)
    }

    /// Issue `c ± a*b` (negate ⇒ fused multiply-subtract `c - a·b`).
    pub fn issue_fma_signed(&mut self, a: f64, b: f64, c: f64, negate: bool) -> Result<(), ()> {
        self.pipe
            .issue(MacOp {
                a: self.round(a),
                b: self.round(b),
                addend: Some(self.round(c)),
                negate,
            })
            .map_err(|_| ())?;
        self.ops_issued += 1;
        Ok(())
    }

    /// Advance one cycle; retire at most one op.
    pub fn step(&mut self) {
        if let Some(op) = self.pipe.step() {
            let a = if op.negate { -op.a } else { op.a };
            match op.addend {
                None => self.apply_retired_mac(a, op.b),
                Some(c) => self.result = Some(self.apply_retired_fma(a, op.b, c)),
            }
        }
    }

    /// Apply the retirement arithmetic of an accumulating MAC directly:
    /// `acc += a_signed * b`, with the same wide/narrow accumulator
    /// behavior as [`MacUnit::step`]. Operands must already be rounded to
    /// the configured precision and carry the product sign (the pipeline
    /// rounds at issue and signs at retire; the two commute because
    /// negation is exact). This is the retire door the decode-once
    /// compiled backend in `lac-sim` uses to skip the pipeline queue while
    /// staying bit-identical to the interpreter.
    #[inline]
    pub fn apply_retired_mac(&mut self, a_signed: f64, b: f64) {
        if self.cfg.exponent_extension {
            self.acc.mac(a_signed, b);
        } else {
            // Narrow accumulator: normalize every step, so overflow
            // behaves like plain f64 (the baseline the extension fixes).
            let v = self.round(self.acc.normalize() + a_signed * b);
            self.acc = ExtendedAccumulator::from_f64(v);
        }
    }

    /// The retirement arithmetic of a free-standing FMA: `c + a_signed*b`
    /// rounded to the configured precision. Same contract as
    /// [`MacUnit::apply_retired_mac`]: operands pre-rounded, sign
    /// pre-applied.
    #[inline]
    pub fn apply_retired_fma(&self, a_signed: f64, b: f64, c: f64) -> f64 {
        self.round(c + a_signed * b)
    }

    /// Drain the pipeline (advance until empty), returning cycles spent.
    pub fn drain(&mut self) -> usize {
        let mut cycles = 0;
        while !self.pipe.is_empty() {
            self.step();
            cycles += 1;
        }
        cycles
    }

    /// Take the latched non-accumulator result, if one has retired.
    pub fn take_result(&mut self) -> Option<f64> {
        self.result.take()
    }

    /// True if no work is in flight.
    pub fn idle(&self) -> bool {
        self.pipe.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_dot_product() {
        let mut mac = MacUnit::new(FpuConfig::default());
        mac.load_acc(0.0);
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [5.0, 6.0, 7.0, 8.0];
        for (x, y) in xs.iter().zip(&ys) {
            mac.issue_mac(*x, *y).unwrap();
            mac.step();
        }
        mac.drain();
        assert_eq!(mac.read_acc(), 70.0);
        assert_eq!(mac.ops_issued, 4);
    }

    #[test]
    fn pipeline_latency_respected() {
        let cfg = FpuConfig {
            pipeline_depth: 4,
            ..Default::default()
        };
        let mut mac = MacUnit::new(cfg);
        mac.load_acc(0.0);
        mac.issue_mac(2.0, 3.0).unwrap();
        for _ in 0..3 {
            mac.step();
            assert_eq!(mac.read_acc(), 0.0, "not yet retired");
        }
        mac.step();
        assert_eq!(mac.read_acc(), 6.0);
    }

    #[test]
    fn fma_result_latch() {
        let mut mac = MacUnit::new(FpuConfig {
            pipeline_depth: 2,
            ..Default::default()
        });
        mac.issue_fma(3.0, 4.0, 1.0).unwrap();
        mac.step();
        assert!(mac.take_result().is_none());
        mac.step();
        assert_eq!(mac.take_result(), Some(13.0));
        assert!(mac.take_result().is_none(), "latch cleared after take");
    }

    #[test]
    fn single_precision_rounds() {
        let cfg = FpuConfig {
            precision: Precision::Single,
            ..Default::default()
        };
        let mut mac = MacUnit::new(cfg);
        mac.load_acc(0.0);
        mac.issue_mac(1.0e-8, 1.0).unwrap();
        mac.drain();
        mac.issue_mac(1.0, 1.0).unwrap();
        mac.drain();
        // 1 + 1e-8 rounds to 1 in f32
        assert_eq!(mac.read_acc(), 1.0);
    }

    #[test]
    fn exponent_extension_survives_square_overflow() {
        let base = FpuConfig {
            exponent_extension: false,
            ..Default::default()
        };
        let ext = FpuConfig {
            exponent_extension: true,
            ..Default::default()
        };
        // Without extension: 1e200² overflows the accumulator.
        let mut m1 = MacUnit::new(base);
        m1.load_acc(0.0);
        m1.issue_mac(1e200, 1e200).unwrap();
        m1.drain();
        assert!(m1.read_acc().is_infinite());
        // With extension the wide accumulator holds it; read_acc only
        // overflows at final normalization, which the norm kernel avoids by
        // halving the exponent before the square root.
        let mut m2 = MacUnit::new(ext);
        m2.load_acc(0.0);
        m2.issue_mac(1e200, 1e200).unwrap();
        m2.drain();
        assert!(m2.acc.exponent() > 1000);
    }

    #[test]
    fn double_issue_rejected() {
        let mut mac = MacUnit::new(FpuConfig::default());
        mac.issue_mac(1.0, 1.0).unwrap();
        assert!(mac.issue_mac(1.0, 1.0).is_err());
    }
}
