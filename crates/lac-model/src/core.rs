//! Single-core GEMM performance model (§3.4).
//!
//! For one `C_i += A_{i,p} · B_p` with an `mc × kc` resident `A` block,
//! bandwidth `x` words/cycle between the core and on-chip memory, and an
//! `nr × nr` mesh:
//!
//! ```text
//! cycles = mc·kc/x  +  max( (2mc + kc)·n / x ,  mc·n·kc / nr² )
//! ```
//!
//! — the A block load is not overlapped (partial overlap), while C traffic
//! and B panels stream against the compute. Peak needs the `max` to be
//! compute-bound. Local-store capacity follows §3.4: `(mc + 2nr²)·kc` words
//! aggregated over the PEs for the partial-overlap variant and
//! `2(mc + nr²)·kc` for full overlap.

/// Model of one LAC running the blocked GEMM inner kernel.
#[derive(Clone, Copy, Debug)]
pub struct CoreGemmModel {
    pub nr: usize,
    /// Core ↔ on-chip memory bandwidth in words (elements) per cycle.
    pub bandwidth: f64,
    /// Problem dimension `n` (C is mc×n per block row, the paper uses 512).
    pub n: usize,
    /// MAC pipeline depth (only used by the refined estimate).
    pub pipeline: usize,
}

/// One evaluated design point.
#[derive(Clone, Copy, Debug)]
pub struct CoreModelPoint {
    pub mc: usize,
    pub kc: usize,
    /// Aggregate local store, words (all PEs, partial-overlap variant).
    pub local_store_words: usize,
    /// Local store per PE in KBytes at 8 B/word.
    pub local_store_kb_per_pe: f64,
    pub cycles: f64,
    pub utilization: f64,
}

impl CoreGemmModel {
    pub fn new(nr: usize, bandwidth: f64, n: usize) -> Self {
        Self {
            nr,
            bandwidth,
            n,
            pipeline: 5,
        }
    }

    /// Aggregate local-store words needed for an `mc × kc` block
    /// (partial-overlap variant: current A + double-buffered B panels).
    pub fn local_store_words(&self, mc: usize, kc: usize) -> usize {
        mc * kc + 2 * kc * self.nr * self.nr
    }

    /// Cycles for one `C_i += A_{i,p} B_p` (partial overlap).
    pub fn cycles(&self, mc: usize, kc: usize) -> f64 {
        let x = self.bandwidth;
        let n = self.n as f64;
        let (mc, kc) = (mc as f64, kc as f64);
        let nr2 = (self.nr * self.nr) as f64;
        mc * kc / x + ((2.0 * mc + kc) * n / x).max(mc * n * kc / nr2)
    }

    /// Utilization against the `mc·n·kc / nr²` compute-bound floor.
    pub fn utilization(&self, mc: usize, kc: usize) -> f64 {
        let nr2 = (self.nr * self.nr) as f64;
        let peak = mc as f64 * self.n as f64 * kc as f64 / nr2;
        (peak / self.cycles(mc, kc)).min(1.0)
    }

    /// Evaluate the square-block design point (`mc = kc`) that fits a given
    /// per-PE local store (in words), i.e. one point of Figure 3.4's x-axis.
    pub fn point_for_local_store(&self, words_per_pe: usize) -> CoreModelPoint {
        // Solve (kc² + 2·nr²·kc) / nr² ≤ nr² · wpp  for kc = mc, kc multiple of nr.
        let nr2 = (self.nr * self.nr) as f64;
        let total = nr2 * words_per_pe as f64;
        // kc² + 2·nr²·kc − total = 0
        let kc = ((-2.0 * nr2 + (4.0 * nr2 * nr2 + 4.0 * total).sqrt()) / 2.0).floor() as usize;
        let kc = (kc / self.nr * self.nr).max(self.nr);
        self.point(kc, kc)
    }

    /// Evaluate an explicit `(mc, kc)` point.
    pub fn point(&self, mc: usize, kc: usize) -> CoreModelPoint {
        CoreModelPoint {
            mc,
            kc,
            local_store_words: self.local_store_words(mc, kc),
            local_store_kb_per_pe: self.local_store_words(mc, kc) as f64 * 8.0
                / (self.nr * self.nr) as f64
                / 1024.0,
            cycles: self.cycles(mc, kc),
            utilization: self.utilization(mc, kc),
        }
    }

    /// Minimum bandwidth (words/cycle) for 100% utilization at `mc = kc`
    /// (the Figure 3.5 curve): compute time must cover both transfer terms.
    pub fn peak_bandwidth(&self, kc: usize) -> f64 {
        let n = self.n as f64;
        let kcf = kc as f64;
        let nr2 = (self.nr * self.nr) as f64;
        let compute = kcf * n * kcf / nr2; // mc = kc
                                           // Need (2mc + kc)·n / x ≤ compute AND amortize the A load: the
                                           // paper's peak condition keeps the streaming term under compute.
        (2.0 * kcf + kcf) * n / compute
    }

    /// Refined cycle estimate matching the simulator's overlapped schedule:
    /// per-tile overhead of `p` cycles plus the un-overlapped A-block load
    /// and first B panel (used by the validation tests).
    pub fn cycles_scheduled(&self, mc: usize, kc: usize) -> f64 {
        let nr = self.nr as f64;
        let tiles = (mc / self.nr) as f64 * (self.n / self.nr) as f64;
        let a_load = mc as f64 * kc as f64 / nr.min(self.bandwidth);
        let b_first = kc as f64;
        a_load + b_first + tiles * (kc as f64 + self.pipeline as f64) + 2.0 * nr + 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_monotone_in_bandwidth() {
        let mut last = 0.0;
        for bw in [1.0, 2.0, 3.0, 4.0, 8.0] {
            let m = CoreGemmModel::new(4, bw, 512);
            let u = m.utilization(128, 128);
            assert!(u >= last, "bw {bw}");
            last = u;
        }
        assert!(last > 0.99, "8 words/cycle reaches peak");
    }

    #[test]
    fn utilization_monotone_in_local_store() {
        let m = CoreGemmModel::new(4, 2.0, 512);
        let mut last = 0.0;
        for wpp in [256usize, 512, 1024, 2048, 4096] {
            let pt = m.point_for_local_store(wpp);
            assert!(pt.utilization >= last - 1e-12, "wpp {wpp}");
            last = pt.utilization;
        }
    }

    #[test]
    fn fig3_4_shape_100pct_reachable() {
        // The paper: with 4 B/cycle (0.5 words DP? — the figure's axis is
        // bytes/cycle; at 8-byte words 8 B/cycle = 1 word) nr=4 reaches high
        // utilization for moderate stores. Sanity-check the trend only.
        let m = CoreGemmModel::new(4, 1.0, 512); // 8 B/cycle
        let pt = m.point_for_local_store(2048); // 16 KB/PE
        assert!(pt.utilization > 0.85, "got {}", pt.utilization);
    }

    #[test]
    fn doubling_nr_quadruples_compute_and_doubles_bw_demand() {
        // §3.5: "by doubling the dimension nr while fixing the local store
        // size, the bandwidth demand doubles and performance quadruples".
        let m4 = CoreGemmModel::new(4, 1e9, 512);
        let m8 = CoreGemmModel::new(8, 1e9, 512);
        let c4 = m4.cycles(128, 128);
        let c8 = m8.cycles(128, 128);
        assert!((c4 / c8 - 4.0).abs() < 0.2, "compute ratio {}", c4 / c8);
        assert!((m8.peak_bandwidth(128) / m4.peak_bandwidth(128) - 4.0).abs() < 0.2);
    }

    #[test]
    fn peak_bandwidth_falls_with_kc() {
        let m = CoreGemmModel::new(4, 4.0, 512);
        assert!(m.peak_bandwidth(256) < m.peak_bandwidth(64));
    }

    #[test]
    fn local_store_solver_inverts_capacity() {
        let m = CoreGemmModel::new(4, 4.0, 512);
        for wpp in [512usize, 1024, 2048] {
            let pt = m.point_for_local_store(wpp);
            assert!(pt.local_store_words <= 16 * wpp, "fits");
            // next size up would not fit
            let bigger = m.local_store_words(pt.kc + 4, pt.kc + 4);
            assert!(bigger > 16 * wpp, "maximal");
        }
    }
}
