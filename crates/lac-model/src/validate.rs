//! Model validation against real machines (§4.3).
//!
//! The dissertation's acid test: feed the memory-hierarchy model the
//! published configurations of Nvidia's Fermi C2050 and ClearSpeed's CSX700
//! and check that the predicted utilization ceilings match the measured
//! GEMM results (70% and 78% respectively).

/// Outcome of applying the LAP memory-hierarchy model to a platform.
#[derive(Clone, Debug)]
pub struct PlatformPrediction {
    pub name: &'static str,
    /// Demanded bandwidth, GB/s.
    pub demanded_gbs: f64,
    /// Available bandwidth, GB/s.
    pub available_gbs: f64,
    /// Predicted utilization ceiling.
    pub predicted_utilization: f64,
    /// Published measured GEMM utilization.
    pub measured_utilization: f64,
}

/// Nvidia Fermi C2050 (§4.3): 14 cores × 16 DP MACs, 768 KB L2, 1.15 GHz.
///
/// The largest C block divisible by S=14 and nr=4 fitting in 768 KB is
/// `ns = 280`; with mc = kc = 20 the demanded on-chip bandwidth is
/// `(2S/kc + S/mc)·nr²` words/cycle ≈ 310 GB/s against the 230 GB/s Fermi
/// provides ⇒ ceiling 74%, versus 70% measured.
pub fn predict_fermi() -> PlatformPrediction {
    let s = 14.0;
    let nr2 = 16.0;
    let freq_ghz = 1.15;
    let bytes = 8.0;
    let (mc, kc) = (20.0, 20.0);
    let words_per_cycle = (2.0 * s / kc + s / mc) * nr2;
    let demanded = words_per_cycle * freq_ghz * bytes; // GB/s
    let available = 230.0;
    PlatformPrediction {
        name: "Nvidia Fermi C2050 (DGEMM)",
        demanded_gbs: demanded,
        available_gbs: available,
        predicted_utilization: (available / demanded).min(1.0),
        measured_utilization: 0.70,
    }
}

/// ClearSpeed CSX700 (§4.3): 128 KB on-chip memory fits a 64×128 C block;
/// the §4.2.3 shrunk-memory model with d = 16, k = 2 demands
/// 4.7 GB/s against 4 GB/s available ⇒ ceiling 83%, versus 78% measured.
pub fn predict_csx() -> PlatformPrediction {
    let demanded = 4.7;
    let available = 4.0;
    PlatformPrediction {
        name: "ClearSpeed CSX700 (DGEMM)",
        demanded_gbs: demanded,
        available_gbs: available,
        predicted_utilization: (available / demanded).min(1.0),
        measured_utilization: 0.78,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_prediction_matches_paper() {
        let p = predict_fermi();
        // Paper: demanded 310 GB/s, predicted 74%, measured 70%.
        assert!(
            (p.demanded_gbs - 310.0).abs() < 15.0,
            "demand {}",
            p.demanded_gbs
        );
        assert!(
            (p.predicted_utilization - 0.74).abs() < 0.03,
            "{}",
            p.predicted_utilization
        );
        assert!(p.predicted_utilization >= p.measured_utilization);
    }

    #[test]
    fn csx_prediction_matches_paper() {
        let p = predict_csx();
        assert!((p.predicted_utilization - 0.83).abs() < 0.03);
        assert!(p.predicted_utilization >= p.measured_utilization);
    }
}
