//! FFT requirement models (Appendix B.3.1 — Table B.1, Figures B.5–B.7).
//!
//! Large transforms are decomposed into 64-point core kernels: a 4096-point
//! 1D FFT is two passes (64 × 64 with twiddle scaling), a 64K-point 1D FFT
//! three passes, and an `N × N` 2D FFT is a row pass and a column pass of
//! 1D transforms. Each 64-point kernel moves 64 complex values in and out
//! (256 words round trip), so the core's column buses (4 doubles/cycle
//! ceiling) bound the overlap of compute with streaming.

/// Whether transfers overlap compute (double-buffered local stores).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FftVariant {
    NonOverlapped,
    Overlapped,
}

/// Model of the FFT-capable core (Appendix B).
#[derive(Clone, Copy, Debug)]
pub struct FftCoreModel {
    pub nr: usize,
    /// Cycles one 64-point kernel spends computing (3 stages of butterflies
    /// plus the on-core exchanges); ~150 for the FMA-optimized design.
    pub kernel_compute_cycles: f64,
}

impl Default for FftCoreModel {
    fn default() -> Self {
        Self {
            nr: 4,
            kernel_compute_cycles: 150.0,
        }
    }
}

impl FftCoreModel {
    /// Number of 64-point kernel invocations for an n-point 1D FFT
    /// (n = 64^s): `s · n/64` kernels (each pass touches all points).
    pub fn kernels_1d(&self, n: usize) -> f64 {
        let stages = (n as f64).log(64.0).ceil();
        stages * n as f64 / 64.0
    }

    /// Words moved per kernel invocation (64 complex in + out).
    pub fn words_per_kernel(&self) -> f64 {
        4.0 * 64.0 // 2 words per complex, in and out
    }

    /// Bandwidth (words/cycle) needed for full overlap of one kernel's
    /// streaming with its compute (Figure B.5). Capped conceptually by the
    /// 4 doubles/cycle the column buses can carry.
    pub fn overlap_bandwidth(&self) -> f64 {
        self.words_per_kernel() / self.kernel_compute_cycles
    }

    /// Local store per PE in words (Figure B.6): each PE holds 4 complex
    /// points plus scratch; overlap double-buffers the working set.
    pub fn local_store_per_pe(&self, variant: FftVariant) -> usize {
        let base = 8 + 32; // working points + butterfly scratch
        match variant {
            FftVariant::NonOverlapped => base,
            FftVariant::Overlapped => base + 8, // second input buffer
        }
    }

    /// Core utilization: compute / (compute + exposed transfer time).
    pub fn utilization(&self, variant: FftVariant, bandwidth: f64) -> f64 {
        let transfer = self.words_per_kernel() / bandwidth.min(self.nr as f64);
        match variant {
            FftVariant::NonOverlapped => {
                self.kernel_compute_cycles / (self.kernel_compute_cycles + transfer)
            }
            FftVariant::Overlapped => {
                self.kernel_compute_cycles / self.kernel_compute_cycles.max(transfer)
            }
        }
    }

    /// Total cycles for an n-point 1D FFT (`n = 64^s`).
    pub fn cycles_1d(&self, n: usize, variant: FftVariant, bandwidth: f64) -> f64 {
        self.kernels_1d(n) * self.kernel_compute_cycles / self.utilization(variant, bandwidth)
    }

    /// Total cycles for an `N × N` 2D FFT: `2N` row/column transforms of
    /// length N (Figure B.4 right).
    pub fn cycles_2d(&self, n: usize, variant: FftVariant, bandwidth: f64) -> f64 {
        2.0 * n as f64 * self.cycles_1d(n, variant, bandwidth)
    }

    /// GFLOPS at `freq_ghz`, counting `5·n·log2(n)` real ops per transform.
    pub fn gflops_1d(&self, n: usize, variant: FftVariant, bandwidth: f64, freq_ghz: f64) -> f64 {
        let flops = 5.0 * n as f64 * (n as f64).log2();
        flops / self.cycles_1d(n, variant, bandwidth) * freq_ghz
    }

    /// Average words/cycle the core exchanges during an n-point 1D FFT
    /// (Figure B.7's communication load).
    pub fn avg_comm_load(&self, n: usize, variant: FftVariant, bandwidth: f64) -> f64 {
        let words = self.kernels_1d(n) * self.words_per_kernel();
        words / self.cycles_1d(n, variant, bandwidth)
    }

    /// Table B.1 row: `(local store/PE, bandwidth needed)` for a problem.
    pub fn requirements(&self, variant: FftVariant) -> (usize, f64) {
        let bw = match variant {
            FftVariant::NonOverlapped => 0.0,
            FftVariant::Overlapped => self.overlap_bandwidth(),
        };
        (self.local_store_per_pe(variant), bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_bandwidth_under_bus_ceiling() {
        // Figure B.5: "four doubles/cycle is the maximum capacity" — the
        // 64-point kernel's overlap demand must be below it.
        let m = FftCoreModel::default();
        assert!(m.overlap_bandwidth() < 4.0, "got {}", m.overlap_bandwidth());
        assert!(m.overlap_bandwidth() > 1.0);
    }

    #[test]
    fn overlapped_needs_more_store_but_runs_faster() {
        let m = FftCoreModel::default();
        let (s_no, _) = m.requirements(FftVariant::NonOverlapped);
        let (s_ov, _) = m.requirements(FftVariant::Overlapped);
        assert!(s_ov > s_no);
        let c_no = m.cycles_1d(4096, FftVariant::NonOverlapped, 4.0);
        let c_ov = m.cycles_1d(4096, FftVariant::Overlapped, 4.0);
        assert!(c_ov < c_no);
    }

    #[test]
    fn stage_counts() {
        let m = FftCoreModel::default();
        assert_eq!(m.kernels_1d(64), 1.0);
        assert_eq!(m.kernels_1d(4096), 2.0 * 64.0);
        assert_eq!(m.kernels_1d(65536), 3.0 * 1024.0);
    }

    #[test]
    fn comm_load_bounded_by_bus_capacity() {
        let m = FftCoreModel::default();
        let load = m.avg_comm_load(65536, FftVariant::Overlapped, 4.0);
        assert!(load <= 4.0 + 1e-9);
        assert!(load > 0.5);
    }

    #[test]
    fn utilization_full_when_bandwidth_ample() {
        let m = FftCoreModel::default();
        assert!((m.utilization(FftVariant::Overlapped, 4.0) - 1.0).abs() < 1e-9);
        assert!(m.utilization(FftVariant::NonOverlapped, 4.0) < 1.0);
    }
}
