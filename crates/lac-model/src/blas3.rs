//! Level-3 BLAS utilization models (§5.3.3, §5.4 — Figures 5.8–5.10,
//! Table 5.1).
//!
//! The models mirror the kernel schedules in `lac-kernels`: compute phases
//! at one MAC per PE per cycle, traffic phases limited by the core↔memory
//! bandwidth `x` (words/cycle), and the latency-bound diagonal kernels of
//! SYRK and TRSM, whose lower-order cost fades as the problem grows.

/// SYRK utilization for `C(mc×mc) += A(mc×kc)·Aᵀ` on an `nr×nr` core with
/// bandwidth `x` words/cycle and MAC depth `p`.
pub fn syrk_utilization(nr: usize, mc: usize, kc: usize, x: f64, p: usize) -> f64 {
    let nrf = nr as f64;
    let nblocks = (mc / nr) as f64;
    let tiles = nblocks * (nblocks + 1.0) / 2.0;
    let useful = tiles * nrf * nrf * kc as f64;
    // A load (not overlapped) + per-tile compute/traffic.
    let a_load = mc as f64 * kc as f64 / x.min(nrf);
    let diag = nblocks * (kc as f64 + 1.0 + p as f64 + tile_traffic(nr, x));
    let offd = (tiles - nblocks) * (kc as f64 + p as f64 + tile_traffic(nr, x));
    let cycles = a_load + diag + offd;
    (useful / (cycles * nrf * nrf)).min(1.0)
}

/// SYR2K at the *same local store* as a SYRK with panel width `kc`: both
/// operand blocks must be resident, so each holds only `kc/2` columns, and
/// each tile is updated by two cross products with C travelling twice —
/// double the communication for the same useful work (§5.4: "not bandwidth
/// efficient compared to solving a bigger SYRK problem").
pub fn syr2k_utilization(nr: usize, mc: usize, kc: usize, x: f64, p: usize) -> f64 {
    let nrf = nr as f64;
    let kch = (kc / 2) as f64; // per-operand panel width at equal store
    let nblocks = (mc / nr) as f64;
    let tiles = nblocks * (nblocks + 1.0) / 2.0;
    let useful = 2.0 * tiles * nrf * nrf * kch;
    let a_load = 2.0 * mc as f64 * kch / x.min(nrf);
    let diag = nblocks * (2.0 * (kch + 1.0) + p as f64 + 2.0 * tile_traffic(nr, x));
    let offd = (tiles - nblocks) * (2.0 * kch + p as f64 + 2.0 * tile_traffic(nr, x));
    let cycles = a_load + diag + offd;
    (useful / (cycles * nrf * nrf)).min(1.0)
}

/// Cycles to move one `nr×nr` C tile in and out at `x` words/cycle (at most
/// `nr` buses usable).
fn tile_traffic(nr: usize, x: f64) -> f64 {
    2.0 * (nr * nr) as f64 / x.min(nr as f64)
}

/// Utilization of the software-pipelined `nr × g·p·nr` TRSM kernel
/// (§5.3.1): `g(nr+1) / (2(g+1)nr)` — ≈60% for nr=4 and large g.
pub fn trsm_utilization(nr: usize, g: usize) -> f64 {
    let (nrf, gf) = (nr as f64, g as f64);
    gf * (nrf + 1.0) / (2.0 * (gf + 1.0) * nrf)
}

/// Utilization of the *blocked* TRSM (§5.3.3): with `k` diagonal blocks the
/// GEMM updates dominate and
///
/// ```text
/// util(k) = Σ_{i=0}^{k} (i + 1/2) / Σ_{i=0}^{k} (i + 1)
/// ```
///
/// which reaches ~90% for a 32×128 problem (k = 8) and → 1 as k grows.
pub fn trsm_utilization_blocked(k: usize) -> f64 {
    let num: f64 = (0..=k).map(|i| i as f64 + 0.5).sum();
    let den: f64 = (0..=k).map(|i| i as f64 + 1.0).sum();
    num / den
}

/// TRSM utilization including the bandwidth-limited traffic (Figure 5.9
/// style): blocked TRSM over a `K×K` L (K = k·nr) and `K×W` B.
pub fn trsm_utilization_bw(nr: usize, k: usize, w: usize, x: f64, p: usize) -> f64 {
    let nrf = nr as f64;
    let m = (w / nr) as f64;
    let q = 13.0; // isolated reciprocal unit latency
    let mut useful = 0.0;
    let mut cycles = 0.0;
    for i in 0..k {
        // GEMM update of the i-th row panel: nr × (i·nr) × W
        let kc = (i * nr) as f64;
        useful += nrf * kc * w as f64;
        if i > 0 {
            let compute = kc * w as f64 / nrf; // nr rows on nr² PEs
            let traffic = (2.0 * nrf * w as f64 + nrf * kc) / x.min(nrf);
            cycles += compute.max(traffic);
        }
        // Diagonal stacked solve.
        useful += nrf * w as f64 + w as f64 * nrf * (nrf - 1.0) / 2.0;
        cycles += nrf * (m + 2.0 * p as f64 + q + 1.0) + 2.0 * m * nrf / x.min(nrf);
    }
    (useful / (cycles * nrf * nrf)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swp_trsm_matches_paper_estimate() {
        // §5.3.1: "≈ 60%, where nr = 4" for large g.
        let u = trsm_utilization(4, 32);
        assert!((u - 0.6).abs() < 0.03, "got {u}");
    }

    #[test]
    fn blocked_trsm_90pct_at_32x128() {
        // §5.3.3: "the utilization number for a 32 × 128 TRSM operation
        // becomes 90%".
        let u = trsm_utilization_blocked(8);
        assert!((u - 0.9).abs() < 0.02, "got {u}");
    }

    #[test]
    fn blocked_trsm_tends_to_one() {
        assert!(trsm_utilization_blocked(1000) > 0.99);
        assert!(trsm_utilization_blocked(1) < trsm_utilization_blocked(10));
    }

    #[test]
    fn syrk_utilization_ordering_fig5_10() {
        // Figure 5.10 / Table 5.1 ordering at the paper's design point
        // (mc = kc = 256, 4 words/cycle): GEMM ≥ TRSM ≥ SYRK ≥ SYR2K.
        let syrk = syrk_utilization(4, 256, 256, 4.0, 5);
        let syr2k = syr2k_utilization(4, 256, 256, 4.0, 5);
        let trsm = trsm_utilization_bw(4, 64, 256, 4.0, 5);
        assert!(syrk > 0.85, "SYRK {syrk}");
        assert!(syr2k < syrk, "SYR2K {syr2k} < SYRK {syrk}");
        assert!(trsm > 0.8, "TRSM {trsm}");
    }

    #[test]
    fn syrk_grows_with_problem_size() {
        let small = syrk_utilization(4, 32, 32, 4.0, 5);
        let big = syrk_utilization(4, 256, 256, 4.0, 5);
        assert!(big > small);
    }

    #[test]
    fn bandwidth_starvation_hurts() {
        let starved = syrk_utilization(4, 128, 128, 0.5, 5);
        let fed = syrk_utilization(4, 128, 128, 4.0, 5);
        assert!(starved < fed);
    }
}
