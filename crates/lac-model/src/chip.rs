//! Chip-level (multi-core LAP) models (§4.1–4.2, Table 4.1).
//!
//! `S` cores share an on-chip memory holding the `n × n` C block plus the
//! current panels; the models relate on-chip memory size, intra-chip
//! bandwidth `y`, off-chip bandwidth `z`, and core count to utilization —
//! Figures 4.2, 4.3, 4.5 and 4.6.

/// One row of Table 4.1 (sizes in words, bandwidths in words/cycle).
#[derive(Clone, Debug)]
pub struct HierarchyRow {
    pub level: &'static str,
    pub variant: &'static str,
    pub size_words: f64,
    pub bandwidth: f64,
}

/// The multi-core LAP running blocked GEMM on an `n × n` problem.
#[derive(Clone, Copy, Debug)]
pub struct ChipGemmModel {
    pub nr: usize,
    /// Number of cores `S`.
    pub s: usize,
    /// Problem dimension (C is n×n).
    pub n: usize,
    /// Core blocking (`mc = kc` unless noted).
    pub mc: usize,
    pub kc: usize,
}

impl ChipGemmModel {
    pub fn new(nr: usize, s: usize, n: usize, mc: usize) -> Self {
        Self {
            nr,
            s,
            n,
            mc,
            kc: mc,
        }
    }

    /// On-chip memory for the partial-overlap variant:
    /// `n² + S·mc·kc + 2·kc·n` words (Table 4.1).
    pub fn onchip_words(&self) -> f64 {
        (self.n * self.n + self.s * self.mc * self.kc + 2 * self.kc * self.n) as f64
    }

    /// On-chip memory, full overlap: `2n² + S·mc·kc + 2·kc·n`.
    pub fn onchip_words_full(&self) -> f64 {
        (2 * self.n * self.n + self.s * self.mc * self.kc + 2 * self.kc * self.n) as f64
    }

    /// Intra-chip bandwidth demand `(2S/kc + S/mc)·nr²` words/cycle
    /// (Table 4.1, partial overlap).
    pub fn onchip_bandwidth(&self) -> f64 {
        let nr2 = (self.nr * self.nr) as f64;
        (2.0 * self.s as f64 / self.kc as f64 + self.s as f64 / self.mc as f64) * nr2
    }

    /// Off-chip bandwidth demand `2S·nr²/n` (partial) per Table 4.1.
    pub fn offchip_bandwidth(&self) -> f64 {
        2.0 * self.s as f64 * (self.nr * self.nr) as f64 / self.n as f64
    }

    /// Off-chip bandwidth demand, full overlap: `4S·nr²/n`.
    pub fn offchip_bandwidth_full(&self) -> f64 {
        2.0 * self.offchip_bandwidth()
    }

    /// Cycles for `C += A_p B_p` given intra-chip bandwidth `y` (§4.1):
    /// `n/(S·mc) · ( S·mc·kc/y + max((2S·mc + kc)·n/y, mc·n·kc/nr²) )`.
    pub fn cycles_panel(&self, y: f64) -> f64 {
        let (s, n, mc, kc) = (self.s as f64, self.n as f64, self.mc as f64, self.kc as f64);
        let nr2 = (self.nr * self.nr) as f64;
        (n / (s * mc)) * (s * mc * kc / y + ((2.0 * s * mc + kc) * n / y).max(mc * n * kc / nr2))
    }

    /// Utilization of the whole chip given intra-chip bandwidth `y`.
    pub fn utilization(&self, y: f64) -> f64 {
        let (s, n, mc, kc) = (self.s as f64, self.n as f64, self.mc as f64, self.kc as f64);
        let nr2 = (self.nr * self.nr) as f64;
        let peak = (n / (s * mc)) * (mc * n * kc / nr2);
        (peak / self.cycles_panel(y)).min(1.0)
    }

    /// Whole-problem cycles given off-chip bandwidth `z` (§4.1):
    /// `2n²/z + max(2n²/z, n³/(S·nr²))`.
    pub fn cycles_total_offchip(&self, z: f64) -> f64 {
        let n = self.n as f64;
        let snr2 = (self.s * self.nr * self.nr) as f64;
        2.0 * n * n / z + (2.0 * n * n / z).max(n * n * n / snr2)
    }

    /// Chip utilization limited by off-chip bandwidth `z`.
    pub fn utilization_offchip(&self, z: f64) -> f64 {
        let n = self.n as f64;
        let snr2 = (self.s * self.nr * self.nr) as f64;
        (n * n * n / snr2 / self.cycles_total_offchip(z)).min(1.0)
    }

    /// §4.2.3 blocking-layer model: with the on-chip memory shrunk so only
    /// `k_sub ≤ d` sub-blocks of size `ns × ns` fit (`d = n / ns`), the
    /// off-chip demand becomes `(2k + (k+1)d) / (k·n)` words/cycle.
    pub fn offchip_bandwidth_shrunk(&self, ns: usize, k_sub: usize) -> f64 {
        let d = self.n as f64 / ns as f64;
        let k = k_sub as f64;
        // words per cycle, times the chip's MAC throughput normalization:
        // the paper's expression is per-élément of compute at peak.
        (2.0 * k + (k + 1.0) * d) / (k * self.n as f64) * (self.s * self.nr * self.nr) as f64
    }

    /// Table 4.1 as data.
    pub fn hierarchy_table(&self) -> Vec<HierarchyRow> {
        let nr2 = (self.nr * self.nr) as f64;
        let (s, n, mc, kc) = (self.s as f64, self.n as f64, self.mc as f64, self.kc as f64);
        let core_words_partial = mc * kc / nr2 + 2.0 * kc;
        let core_words_full = 2.0 * mc * kc / nr2 + 2.0 * kc;
        let nrf = self.nr as f64;
        vec![
            HierarchyRow {
                level: "core local store (words/PE)",
                variant: "partial",
                size_words: core_words_partial,
                bandwidth: nrf * (1.0 + 2.0 / kc + 1.0 / mc),
            },
            HierarchyRow {
                level: "core local store (words/PE)",
                variant: "full",
                size_words: core_words_full,
                bandwidth: nrf * (1.0 + 2.0 / kc + 1.0 / mc + 1.0 / n),
            },
            HierarchyRow {
                level: "chip on-chip memory (words)",
                variant: "partial",
                size_words: self.onchip_words(),
                bandwidth: self.onchip_bandwidth(),
            },
            HierarchyRow {
                level: "chip on-chip memory (words)",
                variant: "full",
                size_words: self.onchip_words_full(),
                bandwidth: (2.0 * s / kc + s / mc + s / n) * nr2,
            },
            HierarchyRow {
                level: "off-chip interface (words/cycle)",
                variant: "partial",
                size_words: f64::NAN,
                bandwidth: self.offchip_bandwidth(),
            },
            HierarchyRow {
                level: "off-chip interface (words/cycle)",
                variant: "full",
                size_words: f64::NAN,
                bandwidth: self.offchip_bandwidth_full(),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_cores_need_less_onchip_bandwidth() {
        // Figure 4.2's headline: S=2, nr=8 demands much less bandwidth than
        // S=8, nr=4 at equal total PEs *and equal aggregate block memory*
        // (2·mc'² = 8·mc² ⇒ mc' = 2mc).
        let small_cores = ChipGemmModel::new(4, 8, 1024, 128);
        let big_cores = ChipGemmModel::new(8, 2, 1024, 256);
        assert!(big_cores.onchip_bandwidth() < small_cores.onchip_bandwidth() * 0.6);
    }

    #[test]
    fn bandwidth_quadratic_as_memory_shrinks() {
        // Halving mc=kc roughly doubles on-chip bandwidth demand while the
        // S·mc·kc memory term quarters (Figure 4.2's shape).
        let a = ChipGemmModel::new(4, 8, 2048, 256);
        let b = ChipGemmModel::new(4, 8, 2048, 128);
        assert!(b.onchip_bandwidth() / a.onchip_bandwidth() > 1.9);
    }

    #[test]
    fn more_cores_alone_gain_nothing_when_bandwidth_bound() {
        // §4.2.2: with small memory (small mc) the chip is bandwidth-bound
        // and performance is set by y, not S — quadrupling the cores at
        // fixed bandwidth leaves performance nearly unchanged.
        let s4 = ChipGemmModel::new(4, 4, 512, 32);
        let s16 = ChipGemmModel::new(4, 16, 512, 32);
        let perf4 = 4.0 * s4.utilization(2.0);
        let perf16 = 16.0 * s16.utilization(2.0);
        assert!(
            (perf16 / perf4 - 1.0).abs() < 0.15,
            "perf16 {perf16:.2} vs perf4 {perf4:.2}"
        );
    }

    #[test]
    fn offchip_demand_falls_with_problem_size() {
        let small = ChipGemmModel::new(4, 8, 512, 128);
        let big = ChipGemmModel::new(4, 8, 2048, 128);
        assert!(big.offchip_bandwidth() < small.offchip_bandwidth());
    }

    #[test]
    fn shrunk_memory_raises_offchip_demand() {
        let m = ChipGemmModel::new(4, 8, 2048, 128);
        let full = m.offchip_bandwidth_shrunk(2048, 1);
        let half = m.offchip_bandwidth_shrunk(1024, 2);
        let quarter = m.offchip_bandwidth_shrunk(512, 4);
        assert!(half > full);
        assert!(quarter > half);
    }

    #[test]
    fn paper_design_point_600_gflops() {
        // §4.2.3: "with 16 cores, 5 MB of shared on-chip memory and an
        // external bandwidth of 16 B/cycle, we can achieve 600 GFLOPS out of
        // 700 GFLOPS peak" at 1.4 GHz. 16 B/cycle = 2 words/cycle.
        let m = ChipGemmModel::new(4, 16, 768, 128);
        let util = m.utilization_offchip(2.0);
        let peak_gflops = 2.0 * (16 * 16) as f64 * 1.4; // 716.8
        let gflops = peak_gflops * util;
        assert!(
            (500.0..700.0).contains(&gflops),
            "modeled {gflops:.0} GFLOPS (util {util:.2})"
        );
    }

    #[test]
    fn hierarchy_table_has_six_rows() {
        let rows = ChipGemmModel::new(4, 8, 2048, 256).hierarchy_table();
        assert_eq!(rows.len(), 6);
        assert!(
            rows[1].size_words > rows[0].size_words,
            "full overlap needs more store"
        );
    }
}
