//! Analytical performance models of the LAC/LAP (§3.4, §4.1–4.3, §5.3.3,
//! Appendix B.3.1).
//!
//! The dissertation pairs its cycle-accurate simulator with closed-form
//! models of every level of the memory hierarchy; the design-space figures
//! (3.4, 3.5, 4.2, 4.3, 4.5, 4.6, 5.8–5.10, B.5–B.7) are all generated from
//! those formulas. This crate reimplements them:
//!
//! * [`core`] — single-core GEMM: utilization as a function of local-store
//!   size and core↔on-chip bandwidth.
//! * [`chip`] — multi-core LAP: on-chip memory size vs on-chip bandwidth,
//!   core count scaling, off-chip bandwidth and the extra blocking layer.
//! * [`blas3`] — SYRK/TRSM/SYR2K utilization models.
//! * [`fft`] — Appendix B requirement models for 1D/2D transforms.
//! * [`validate`] — the §4.3 predictors for Nvidia Fermi C2050 and
//!   ClearSpeed CSX700 utilization.
//!
//! The test suites cross-check selected model points against the
//! cycle-accurate simulator (`lac-sim` + `lac-kernels`), reproducing the
//! paper's own validation methodology (§1.3.1).

pub mod blas3;
pub mod chip;
pub mod core;
pub mod fft;
pub mod validate;

pub use crate::core::{CoreGemmModel, CoreModelPoint};
pub use blas3::{
    syr2k_utilization, syrk_utilization, trsm_utilization, trsm_utilization_blocked,
    trsm_utilization_bw,
};
pub use chip::{ChipGemmModel, HierarchyRow};
pub use fft::{FftCoreModel, FftVariant};
pub use validate::{predict_csx, predict_fermi, PlatformPrediction};
