//! Chip-level cross-validation: the multi-core `LacChip` simulation against
//! the Chapter 4 analytical `ChipGemmModel` — the same methodology the
//! single-core `model_vs_sim` suite applies to `CoreGemmModel`.
//!
//! Design point: one `C += A·B` with C `n × n`, decomposed into `n/mc`
//! row-panel jobs of depth `kc`, dispatched over `S` cores that each get
//! the paper's `x = 4` words/cycle share of the chip's intra-chip
//! bandwidth `y = 4S`.

use lac_kernels::{GemmWorkload, Workload};
use lac_model::ChipGemmModel;
use lac_sim::{ChipConfig, JobGraph, LacChip, LacConfig, Scheduler};
use linalg_ref::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MC: usize = 16;
const KC: usize = 128;
const X_PER_CORE: usize = 4;

/// The row-panel job queue for an `n × n` chip problem, `n/MC` GEMM
/// workloads of one panel each. `n = max(S·MC, 128)`: the model's panel
/// loop needs `n ≥ S·mc`, and padding `n` up for small `S` keeps the
/// per-job shape in the compute-bound regime the model assumes — so for
/// the small `S` tested here each core drains *several* jobs, not one.
fn queue(s: usize) -> (usize, Vec<Box<dyn Workload>>) {
    let n = (s * MC).max(128);
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::random(n, KC, &mut rng);
    let b = Matrix::random(KC, n, &mut rng);
    let c = Matrix::random(n, n, &mut rng);
    let jobs = (0..n / MC)
        .map(|p| {
            Box::new(GemmWorkload::new(
                a.block(p * MC, 0, MC, KC),
                b.clone(),
                c.block(p * MC, 0, MC, n),
            )) as Box<dyn Workload>
        })
        .collect();
    (n, jobs)
}

#[test]
fn chip_gemm_utilization_within_5pct_of_model() {
    for s in [2usize, 4] {
        let (n, jobs) = queue(s);
        let cfg = ChipConfig::new(s, LacConfig::default()).with_bandwidth_budget(X_PER_CORE * s);
        let mut chip = LacChip::new(cfg);
        let graph: JobGraph<&Box<dyn Workload>> = jobs.iter().collect();
        let run = chip.run_graph(&graph, Scheduler::LeastLoaded).unwrap();

        // Functional truth first: every panel verifies against linalg-ref.
        for (w, report) in jobs.iter().zip(&run.outputs) {
            w.check(report).unwrap_or_else(|e| panic!("S={s}: {e}"));
        }

        let sim_util = run.stats.utilization(LacConfig::default().nr);
        let model = ChipGemmModel {
            nr: LacConfig::default().nr,
            s,
            n,
            mc: MC,
            kc: KC,
        };
        let model_util = model.utilization((X_PER_CORE * s) as f64);
        let rel_err = (sim_util - model_util).abs() / model_util;
        assert!(
            rel_err < 0.05,
            "S={s}: sim utilization {sim_util:.4} vs model {model_util:.4} \
             ({:.1}% off)",
            rel_err * 100.0
        );
        // The closed form ignores pipeline drains, so it must sit above the
        // measurement, never below.
        assert!(model_util >= sim_util, "model cannot be beaten by the sim");
    }
}

#[test]
fn chip_makespan_tracks_model_panel_cycles() {
    let s = 4;
    let (n, jobs) = queue(s);
    let cfg = ChipConfig::new(s, LacConfig::default()).with_bandwidth_budget(X_PER_CORE * s);
    let mut chip = LacChip::new(cfg);
    let graph: JobGraph<&Box<dyn Workload>> = jobs.iter().collect();
    let run = chip.run_graph(&graph, Scheduler::LeastLoaded).unwrap();

    // cycles_panel(y) is one rank-kc update of the whole C across all S
    // cores — exactly one queue drain at n = S·mc per-core panels.
    let model = ChipGemmModel {
        nr: LacConfig::default().nr,
        s,
        n,
        mc: MC,
        kc: KC,
    };
    let predicted = model.cycles_panel((X_PER_CORE * s) as f64);
    let rel_err = (run.stats.makespan_cycles as f64 - predicted).abs() / predicted;
    assert!(
        rel_err < 0.06,
        "makespan {} vs model {predicted:.0} ({:.1}% off)",
        run.stats.makespan_cycles,
        rel_err * 100.0
    );
}

#[test]
fn doubling_cores_halves_makespan_at_fixed_problem() {
    // §4.1's scaling claim, executed: same 8-panel problem, 2 vs 4 cores.
    let (_, jobs) = queue(8);
    let mut makespans = Vec::new();
    for s in [2usize, 4] {
        let cfg = ChipConfig::new(s, LacConfig::default()).with_bandwidth_budget(X_PER_CORE * s);
        let mut chip = LacChip::new(cfg);
        let graph: JobGraph<&Box<dyn Workload>> = jobs.iter().collect();
        let run = chip.run_graph(&graph, Scheduler::LeastLoaded).unwrap();
        makespans.push(run.stats.makespan_cycles as f64);
    }
    let ratio = makespans[0] / makespans[1];
    assert!(
        (ratio - 2.0).abs() < 0.02,
        "2→4 cores speedup {ratio:.3}, expected ~2"
    );
}
