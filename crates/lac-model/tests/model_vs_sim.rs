//! Cross-validation of the analytical models against the cycle-accurate
//! simulator — the paper's own methodology (§1.3.1: "We have verified our
//! analytical formulae against our in-house cycle-accurate simulator").

use lac_kernels::{BlockedTrsmWorkload, GemmWorkload, Workload};
use lac_model::CoreGemmModel;
use lac_sim::LacEngine;
use linalg_ref::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sim_gemm_cycles(mc: usize, kc: usize, n: usize) -> (u64, f64) {
    let mut rng = StdRng::seed_from_u64(99);
    let a = Matrix::random(mc, kc, &mut rng);
    let b = Matrix::random(kc, n, &mut rng);
    let c = Matrix::random(mc, n, &mut rng);
    let mut eng = LacEngine::builder().build();
    let rep = GemmWorkload::new(a, b, c).run(&mut eng).unwrap();
    (rep.stats.cycles, rep.utilization)
}

#[test]
fn scheduled_model_tracks_simulator_within_5pct() {
    for &(mc, kc, n) in &[(16usize, 32usize, 32usize), (32, 64, 32), (16, 128, 64)] {
        let (sim_cycles, _) = sim_gemm_cycles(mc, kc, n);
        let mut model = CoreGemmModel::new(4, 4.0, n);
        model.pipeline = 5;
        let predicted = model.cycles_scheduled(mc, kc);
        let err = (predicted - sim_cycles as f64).abs() / sim_cycles as f64;
        assert!(
            err < 0.05,
            "({mc},{kc},{n}): sim {sim_cycles} vs model {predicted:.0} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn analytic_utilization_brackets_simulator() {
    // The §3.4 closed form ignores pipeline drains, so it should sit at or
    // slightly above the measured utilization, never far below.
    for &(mc, kc, n) in &[(32usize, 64usize, 64usize), (16, 128, 64)] {
        let (_, sim_util) = sim_gemm_cycles(mc, kc, n);
        let model = CoreGemmModel::new(4, 4.0, n);
        let model_util = model.utilization(mc, kc);
        assert!(
            model_util + 0.02 >= sim_util,
            "model {model_util:.3} vs sim {sim_util:.3}"
        );
        assert!(
            model_util - sim_util < 0.25,
            "model too optimistic: {model_util} vs {sim_util}"
        );
    }
}

#[test]
fn trsm_blocked_utilization_model_tracks_sim() {
    let mut rng = StdRng::seed_from_u64(5);
    let kk = 32;
    let w = 32;
    let l = Matrix::random_lower_triangular(kk, &mut rng);
    let b0 = Matrix::random(kk, w, &mut rng);
    let mut eng = LacEngine::builder().build();
    let rep = BlockedTrsmWorkload::new(l, b0).run(&mut eng).unwrap();
    let stats = &rep.stats;
    let useful: u64 = stats.mac_ops + stats.fma_ops;
    let sim_util = useful as f64 / (stats.cycles as f64 * 16.0);
    let model_util = lac_model::trsm_utilization_bw(4, kk / 4, w, 4.0, 5);
    // Same ballpark: the model idealizes staging, the sim pays it all.
    assert!(
        (model_util - sim_util).abs() < 0.35,
        "model {model_util:.2} vs sim {sim_util:.2}"
    );
    assert!(sim_util > 0.1);
}
