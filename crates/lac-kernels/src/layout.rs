//! Data layouts: how matrices map onto PE local stores and external memory.
//!
//! The `A` operand is distributed **2D round-robin** (§3.1): element
//! `α(i, p)` lives in PE `(i mod nr, p mod nr)`. The `B` operand is
//! **replicated by column** (§3.2.1): every PE in mesh column `c` holds a
//! copy of the B-panel column it will consume, so column broadcasts are never
//! needed during compute and the column buses stay free for prefetching.

use linalg_ref::Matrix;

/// Round-robin layout of an `mc × kc` block of `A` over an `nr × nr` mesh.
#[derive(Clone, Copy, Debug)]
pub struct ALayout {
    /// Block height, rows.
    pub mc: usize,
    /// Block depth, columns.
    pub kc: usize,
    /// Mesh dimension.
    pub nr: usize,
}

impl ALayout {
    /// Lay an `mc × kc` block over an `nr × nr` mesh (dimensions must
    /// be multiples of `nr`).
    pub fn new(mc: usize, kc: usize, nr: usize) -> Self {
        assert!(
            mc.is_multiple_of(nr) && kc.is_multiple_of(nr),
            "mc, kc must be multiples of nr"
        );
        Self { mc, kc, nr }
    }

    /// Mesh coordinates of the PE owning `α(i, p)`.
    pub fn owner(&self, i: usize, p: usize) -> (usize, usize) {
        (i % self.nr, p % self.nr)
    }

    /// Local SRAM-A address of `α(i, p)` within its owner.
    pub fn addr(&self, i: usize, p: usize) -> usize {
        (i / self.nr) * (self.kc / self.nr) + p / self.nr
    }

    /// Words of SRAM-A needed per PE.
    pub fn words_per_pe(&self) -> usize {
        (self.mc / self.nr) * (self.kc / self.nr)
    }
}

/// External-memory layout for a GEMM working set
/// (`C(mc×n) += A(mc×kc) · B(kc×n)`), all column-major.
#[derive(Clone, Copy, Debug)]
pub struct GemmDataLayout {
    /// Row-panel height.
    pub mc: usize,
    /// Panel depth.
    pub kc: usize,
    /// Output width.
    pub n: usize,
    /// Word offset of `A` in the image.
    pub a_off: usize,
    /// Word offset of `B` in the image.
    pub b_off: usize,
    /// Word offset of `C` in the image.
    pub c_off: usize,
}

impl GemmDataLayout {
    /// Pack `A`, then `B`, then `C` back to back from offset 0.
    pub fn new(mc: usize, kc: usize, n: usize) -> Self {
        let a_off = 0;
        let b_off = a_off + mc * kc;
        let c_off = b_off + kc * n;
        Self {
            mc,
            kc,
            n,
            a_off,
            b_off,
            c_off,
        }
    }

    /// Size of the whole working-set image, words.
    pub fn total_words(&self) -> usize {
        self.c_off + self.mc * self.n
    }

    /// Image address of `A(i, p)`.
    pub fn a_addr(&self, i: usize, p: usize) -> usize {
        debug_assert!(i < self.mc && p < self.kc);
        self.a_off + p * self.mc + i
    }

    /// Image address of `B(p, j)`.
    pub fn b_addr(&self, p: usize, j: usize) -> usize {
        debug_assert!(p < self.kc && j < self.n);
        self.b_off + j * self.kc + p
    }

    /// Image address of `C(i, j)`.
    pub fn c_addr(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.mc && j < self.n);
        self.c_off + j * self.mc + i
    }

    /// Pack `A`, `B`, `C` into a fresh external-memory image.
    pub fn pack(&self, a: &Matrix, b: &Matrix, c: &Matrix) -> Vec<f64> {
        assert_eq!((a.rows(), a.cols()), (self.mc, self.kc));
        assert_eq!((b.rows(), b.cols()), (self.kc, self.n));
        assert_eq!((c.rows(), c.cols()), (self.mc, self.n));
        let mut mem = vec![0.0; self.total_words()];
        for p in 0..self.kc {
            for i in 0..self.mc {
                mem[self.a_addr(i, p)] = a[(i, p)];
            }
        }
        for j in 0..self.n {
            for p in 0..self.kc {
                mem[self.b_addr(p, j)] = b[(p, j)];
            }
        }
        for j in 0..self.n {
            for i in 0..self.mc {
                mem[self.c_addr(i, j)] = c[(i, j)];
            }
        }
        mem
    }

    /// Extract the `C` result from an external-memory image.
    pub fn unpack_c(&self, mem: &[f64]) -> Matrix {
        Matrix::from_fn(self.mc, self.n, |i, j| mem[self.c_addr(i, j)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn a_layout_round_robin() {
        let l = ALayout::new(8, 8, 4);
        assert_eq!(l.owner(0, 0), (0, 0));
        assert_eq!(l.owner(5, 6), (1, 2));
        assert_eq!(l.addr(0, 0), 0);
        assert_eq!(l.addr(4, 0), 2); // i/nr = 1, kc/nr = 2
        assert_eq!(l.addr(0, 4), 1);
        assert_eq!(l.words_per_pe(), 4);
    }

    #[test]
    fn every_a_element_has_unique_slot() {
        let l = ALayout::new(8, 12, 4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 {
            for p in 0..12 {
                let key = (l.owner(i, p), l.addr(i, p));
                assert!(seen.insert(key), "collision at ({i},{p})");
                assert!(l.addr(i, p) < l.words_per_pe());
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let lay = GemmDataLayout::new(8, 4, 12);
        let a = Matrix::random(8, 4, &mut rng);
        let b = Matrix::random(4, 12, &mut rng);
        let c = Matrix::random(8, 12, &mut rng);
        let mem = lay.pack(&a, &b, &c);
        assert_eq!(mem.len(), lay.total_words());
        let c2 = lay.unpack_c(&mem);
        assert_eq!(c, c2);
        assert_eq!(mem[lay.a_addr(3, 2)], a[(3, 2)]);
        assert_eq!(mem[lay.b_addr(1, 7)], b[(1, 7)]);
    }
}
