//! LU factorization with partial pivoting on the LAC (§6.1.2, Figure 6.2).
//!
//! Factors a `K × nr` panel (`K = k·nr`) held in the dual-ported B memories
//! (read-modify-write every cycle — the reason the paper makes that memory
//! dual-ported). Each iteration runs the four steps of Figure 6.2:
//!
//! * **S1** pivot search — local comparator scans in each column-PE, then a
//!   cross-PE reduction over the column bus. With the §A.2 comparator
//!   extension a compare retires every cycle; without it each compare is a
//!   full FPU pass (`p` cycles), which is exactly the efficiency gap
//!   Figure 6.7 plots.
//! * **S2** row interchange over the column buses, with the pivot value
//!   concurrently routed to the reciprocal unit.
//! * **S3** scale the pivot column by `1/pivot`.
//! * **S4** rank-1 downdate of the trailing columns.
//!
//! The pivot *index* is data-dependent, so this kernel is a co-simulation
//! driver: it runs the search phase, reads the comparator registers (as the
//! hardware sequencer would), and emits the next phase — every cycle and bus
//! transfer is still paid through the simulator.

use lac_fpu::DivSqrtOp;
use lac_sim::{CmpUpdate, ExecStats, ExtOp, ExternalMem, Lac, ProgramBuilder, SimError, Source};
use linalg_ref::Matrix;

/// Architecture options for the LU kernel (the Table A.2 axes).
#[derive(Clone, Copy, Debug)]
pub struct LuOptions {
    /// §A.2 comparator extension present (1 compare/cycle vs 1 per `p`).
    pub comparator: bool,
}

impl Default for LuOptions {
    fn default() -> Self {
        Self { comparator: true }
    }
}

/// Report of an LU panel factorization.
#[derive(Clone, Debug)]
pub struct LuReport {
    /// Event counters of the run.
    pub stats: ExecStats,
    /// Pivot row chosen at each of the `nr` iterations.
    pub pivots: Vec<usize>,
}

const REG_SWAP: usize = 0;
const REG_U: usize = 1;
const REG_PIV_VAL: usize = 2;
const REG_PIV_TAG: usize = 3;

/// Factor the `K × nr` panel stored column-major at offset 0 of `mem`
/// (`addr = j·K + i`). On return the panel holds `L\U` packed LAPACK-style
/// and the report carries the pivot rows.
pub(crate) fn lu_panel_run(
    lac: &mut Lac,
    mem: &mut ExternalMem,
    k: usize,
    opts: &LuOptions,
) -> Result<LuReport, SimError> {
    let nr = lac.config().nr;
    let p = lac.config().fpu.pipeline_depth;
    let q = lac.config().divsqrt.latency(DivSqrtOp::Reciprocal);
    let kk = k * nr;
    assert!(
        k <= lac.config().sram_b_words,
        "panel too tall for B memory"
    );
    let ext_addr = |i: usize, j: usize| j * kk + i;
    let mut total = ExecStats::default();
    let mut pivots = Vec::with_capacity(nr);

    // ---- stage the panel into the B memories ------------------------------
    {
        let mut b = ProgramBuilder::new(nr);
        for i in 0..kk {
            let step = b.push_step();
            for c in 0..nr {
                b.ext(
                    step,
                    ExtOp::Load {
                        col: c,
                        addr: ext_addr(i, c),
                    },
                );
                b.pe_mut(step, i % nr, c).sram_b_write = Some((i / nr, Source::ColBus));
            }
        }
        total.merge(&lac.run(&b.build(), mem)?);
    }

    for jj in 0..nr {
        // ---- S1: local pivot scan in column jj ----------------------------
        {
            let mut b = ProgramBuilder::new(nr);
            let t0 = b.push_step();
            for r in 0..nr {
                b.pe_mut(t0, r, jj).reg_write = Some((REG_PIV_VAL, Source::Const(0.0)));
            }
            let t1 = b.push_step();
            for r in 0..nr {
                b.pe_mut(t1, r, jj).reg_write = Some((REG_PIV_TAG, Source::Const(-1.0)));
            }
            for s in 0..k {
                let step = b.push_step();
                for r in 0..nr {
                    if s * nr + r >= jj {
                        b.pe_mut(step, r, jj).cmp_update = Some(CmpUpdate {
                            value: Source::SramB(s),
                            tag: s as f64,
                            val_reg: REG_PIV_VAL,
                            tag_reg: REG_PIV_TAG,
                        });
                    }
                }
                if !opts.comparator {
                    // Software compare: one FPU pass per element.
                    b.idle(p - 1);
                }
            }
            // Cross-PE reduction: each candidate crosses the column bus once
            // (the sequencer observes the comparator output).
            for r in 0..nr {
                let step = b.push_step();
                b.pe_mut(step, r, jj).col_write = Some(Source::Reg(REG_PIV_VAL));
                if !opts.comparator && r + 1 < nr {
                    b.idle(p - 1);
                }
            }
            total.merge(&lac.run(&b.build(), mem)?);
        }

        // The sequencer reads the comparator registers to pick the winner.
        let mut piv_row = usize::MAX;
        let mut piv_val = 0.0f64;
        for r in 0..nr {
            let v = lac.reg(r, jj, REG_PIV_VAL);
            let tag = lac.reg(r, jj, REG_PIV_TAG);
            if tag >= 0.0 && !lac_fpu::magnitude_ge(piv_val, v) {
                piv_val = v;
                piv_row = tag as usize * nr + r;
            }
        }
        if piv_row == usize::MAX || piv_val == 0.0 {
            // Singular column: mirror the reference's error path by
            // reporting a pivot of the current row and continuing is not
            // meaningful — surface as a simulator-level panic-free error.
            return Err(SimError {
                cycle: total.cycles as usize,
                pe: Some((jj % nr, jj)),
                kind: lac_sim::error::HazardKind::SfuResultEmpty,
            });
        }
        pivots.push(piv_row);

        // ---- S2: row interchange + reciprocal ------------------------------
        {
            let mut b = ProgramBuilder::new(nr);
            let (ri, si) = (jj % nr, jj / nr);
            let (rp, sp) = (piv_row % nr, piv_row / nr);
            if piv_row != jj {
                if ri == rp {
                    // Same PE row: exchange through the register file.
                    let t = b.push_step();
                    for j in 0..nr {
                        b.pe_mut(t, ri, j).reg_write = Some((REG_SWAP, Source::SramB(si)));
                    }
                    let t = b.push_step();
                    for j in 0..nr {
                        b.pe_mut(t, ri, j).reg_write = Some((REG_U, Source::SramB(sp)));
                    }
                    let t = b.push_step();
                    for j in 0..nr {
                        b.pe_mut(t, ri, j).sram_b_write = Some((si, Source::Reg(REG_U)));
                    }
                    let t = b.push_step();
                    for j in 0..nr {
                        b.pe_mut(t, ri, j).sram_b_write = Some((sp, Source::Reg(REG_SWAP)));
                    }
                } else {
                    // Different PE rows: exchange over the column buses.
                    let t = b.push_step();
                    for j in 0..nr {
                        b.pe_mut(t, ri, j).col_write = Some(Source::SramB(si));
                        b.pe_mut(t, rp, j).reg_write = Some((REG_SWAP, Source::ColBus));
                    }
                    let t = b.push_step();
                    for j in 0..nr {
                        b.pe_mut(t, rp, j).col_write = Some(Source::SramB(sp));
                        b.pe_mut(t, ri, j).sram_b_write = Some((si, Source::ColBus));
                    }
                    let t = b.push_step();
                    for j in 0..nr {
                        b.pe_mut(t, rp, j).sram_b_write = Some((sp, Source::Reg(REG_SWAP)));
                    }
                }
            }
            // Reciprocal: pivot (now at row jj) broadcast along its PE row to
            // the diagonal PE (ri, ri), which feeds its SFU.
            let t = b.push_step();
            b.pe_mut(t, ri, jj).row_write = Some(Source::SramB(si));
            b.pe_mut(t, ri, ri).sfu =
                Some((DivSqrtOp::Reciprocal, Source::RowBus, Source::Const(0.0)));
            b.idle(q);
            // Route 1/pivot to the column-jj PEs: row bus to (ri, jj), then
            // down column bus jj.
            let t = b.push_step();
            b.pe_mut(t, ri, ri).row_write = Some(Source::SfuResult);
            b.pe_mut(t, ri, jj).reg_write = Some((REG_U, Source::RowBus));
            let t = b.push_step();
            b.pe_mut(t, ri, jj).col_write = Some(Source::Reg(REG_U));
            for r in 0..nr {
                b.pe_mut(t, r, jj).reg_write = Some((REG_U, Source::ColBus));
            }
            total.merge(&lac.run(&b.build(), mem)?);
        }

        // ---- S3: scale the pivot column below row jj -----------------------
        {
            let mut b = ProgramBuilder::new(nr);
            // Eligible slots per PE row r: global i = s·nr + r > jj.
            let eligible = |r: usize| (0..k).filter(move |s| s * nr + r > jj).collect::<Vec<_>>();
            let maxlen = (0..nr).map(|r| eligible(r).len()).max().unwrap_or(0);
            let w0 = b.len();
            for _ in 0..maxlen + p {
                b.push_step();
            }
            for r in 0..nr {
                for (t, s) in eligible(r).into_iter().enumerate() {
                    let pe = b.pe_mut(w0 + t, r, jj);
                    pe.fma = Some((Source::SramB(s), Source::Reg(REG_U), Source::Const(0.0)));
                    b.pe_mut(w0 + t + p, r, jj).sram_b_write = Some((s, Source::MacResult));
                }
            }
            total.merge(&lac.run(&b.build(), mem)?);
        }

        // ---- S4: rank-1 downdate of the trailing columns -------------------
        if jj + 1 < nr {
            let mut b = ProgramBuilder::new(nr);
            let (ri, si) = (jj % nr, jj / nr);
            // Broadcast the pivot row u(jj, c) down each trailing column.
            let t = b.push_step();
            for c in jj + 1..nr {
                b.pe_mut(t, ri, c).col_write = Some(Source::SramB(si));
                for r in 0..nr {
                    b.pe_mut(t, r, c).reg_write = Some((REG_U, Source::ColBus));
                }
            }
            // Stream the multipliers along the row buses; fused downdates.
            let w0 = b.len();
            for _ in 0..k + p {
                b.push_step();
            }
            for s in 0..k {
                for r in 0..nr {
                    if s * nr + r > jj {
                        b.pe_mut(w0 + s, r, jj).row_write = Some(Source::SramB(s));
                        for c in jj + 1..nr {
                            let pe = b.pe_mut(w0 + s, r, c);
                            pe.fma = Some((Source::RowBus, Source::Reg(REG_U), Source::SramB(s)));
                            pe.negate_product = true;
                            b.pe_mut(w0 + s + p, r, c).sram_b_write = Some((s, Source::MacResult));
                        }
                    }
                }
            }
            total.merge(&lac.run(&b.build(), mem)?);
        }
    }

    // ---- stream the factored panel back ------------------------------------
    {
        let mut b = ProgramBuilder::new(nr);
        for i in 0..kk {
            let step = b.push_step();
            for c in 0..nr {
                b.pe_mut(step, i % nr, c).col_write = Some(Source::SramB(i / nr));
                b.ext(
                    step,
                    ExtOp::Store {
                        col: c,
                        addr: ext_addr(i, c),
                    },
                );
            }
        }
        total.merge(&lac.run(&b.build(), mem)?);
    }

    Ok(LuReport {
        stats: total,
        pivots,
    })
}

/// Assemble simulator output into the reference crate's [`linalg_ref::LuFactors`]
/// (for solves and residual checks).
pub fn pack_to_factors(packed: Matrix, pivots: Vec<usize>) -> linalg_ref::LuFactors {
    linalg_ref::LuFactors {
        factors: packed,
        pivots,
    }
}

/// Convenience wrapper: factor a `Matrix` panel, returning packed factors,
/// pivots, and stats.
pub(crate) fn lu_panel_matrix_run(
    lac: &mut Lac,
    a: &Matrix,
    opts: &LuOptions,
) -> Result<(Matrix, Vec<usize>, ExecStats), SimError> {
    let nr = lac.config().nr;
    assert_eq!(a.cols(), nr);
    assert!(a.rows().is_multiple_of(nr));
    let k = a.rows() / nr;
    let kk = a.rows();
    let mut mem = vec![0.0; kk * nr];
    for j in 0..nr {
        for i in 0..kk {
            mem[j * kk + i] = a[(i, j)];
        }
    }
    let mut emem = ExternalMem::from_vec(mem);
    let rep = lu_panel_run(lac, &mut emem, k, opts)?;
    let out = Matrix::from_fn(kk, nr, |i, j| emem.read(j * kk + i));
    Ok((out, rep.pivots, rep.stats))
}

/// Blocked right-looking LU with partial pivoting of a square `K × K`
/// matrix (`K = k·nr`), composing the panel kernel with stacked TRSM row
/// updates and negated GEMM trailing updates (the standard LAPACK `getrf`
/// structure mapped onto the LAC kernels).
///
/// Returns `(packed factors, pivots, stats)` matching
/// [`linalg_ref::lu_partial_pivot`].
pub(crate) fn blocked_lu_run(
    lac: &mut Lac,
    a: &Matrix,
    opts: &LuOptions,
) -> Result<(Matrix, Vec<usize>, ExecStats), SimError> {
    use crate::gemm::{gemm_run, GemmParams};
    use crate::layout::GemmDataLayout;
    use crate::trsm::trsm_stacked_run;

    let nr = lac.config().nr;
    let kk = a.rows();
    assert_eq!(a.cols(), kk);
    assert!(kk.is_multiple_of(nr));
    let kblocks = kk / nr;
    let mut work = a.clone();
    let mut pivots = Vec::with_capacity(kk);
    let mut total = ExecStats::default();

    for jb in 0..kblocks {
        let c0 = jb * nr;
        let rows = kk - c0;
        // 1. Panel factorization on the LAC.
        let panel = work.block(c0, c0, rows, nr);
        let (factored, ppiv, stats) = lu_panel_matrix_run(lac, &panel, opts)?;
        total.merge(&stats);
        work.set_block(c0, c0, &factored);
        // 2. Apply the panel's row interchanges to the rest of the matrix
        // (left of and right of the panel), and record global pivots.
        for (local, &p) in ppiv.iter().enumerate() {
            let (gi, gp) = (c0 + local, c0 + p);
            pivots.push(gp);
            if gi != gp {
                for j in 0..kk {
                    if j >= c0 && j < c0 + nr {
                        continue; // panel columns already swapped in-kernel
                    }
                    let t = work[(gi, j)];
                    work[(gi, j)] = work[(gp, j)];
                    work[(gp, j)] = t;
                }
            }
        }
        let right = kk - c0 - nr;
        if right == 0 {
            continue;
        }
        // 3. Row update: U12 := L11⁻¹ A12 (unit-lower stacked TRSM).
        let mut l11 = Matrix::identity(nr);
        for j in 0..nr {
            for i in j + 1..nr {
                l11[(i, j)] = work[(c0 + i, c0 + j)];
            }
        }
        let a12 = work.block(c0, c0 + nr, nr, right);
        let mut mem = vec![0.0; nr * nr + nr * right];
        for j in 0..nr {
            for i in 0..nr {
                mem[j * nr + i] = l11[(i, j)];
            }
        }
        for j in 0..right {
            for i in 0..nr {
                mem[nr * nr + j * nr + i] = a12[(i, j)];
            }
        }
        let mut emem = lac_sim::ExternalMem::from_vec(mem);
        let rep = trsm_stacked_run(lac, &mut emem, right)?;
        total.merge(&rep.stats);
        let u12 = Matrix::from_fn(nr, right, |i, j| emem.read(nr * nr + j * nr + i));
        work.set_block(c0, c0 + nr, &u12);
        // 4. Trailing update: A22 -= L21 · U12 (negated GEMM).
        let below = kk - c0 - nr;
        let l21 = work.block(c0 + nr, c0, below, nr);
        let a22 = work.block(c0 + nr, c0 + nr, below, right);
        let lay = GemmDataLayout::new(below, nr, right);
        let mut mem = lac_sim::ExternalMem::from_vec(lay.pack(&l21, &u12, &a22));
        let params = GemmParams {
            mc: below,
            kc: nr,
            n: right,
            overlap: false,
            negate: true,
        };
        let rep = gemm_run(lac, &mut mem, &lay, &params)?;
        total.merge(&rep.stats);
        work.set_block(c0 + nr, c0 + nr, &lay.unpack_c(mem.as_slice()));
    }
    Ok((work, pivots, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::LacConfig;
    use linalg_ref::{lu_partial_pivot, max_abs_diff};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_panel(k: usize, seed: u64, opts: LuOptions) -> ExecStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(k * 4, 4, &mut rng);
        let mut lac = Lac::new(LacConfig::default());
        let (got, pivots, stats) = lu_panel_matrix_run(&mut lac, &a, &opts).unwrap();
        let expect = lu_partial_pivot(&a).unwrap();
        assert_eq!(pivots, expect.pivots, "pivot sequence");
        assert!(
            max_abs_diff(&got, &expect.factors) < 1e-9,
            "k={k}: {got:?} vs {:?}",
            expect.factors
        );
        stats
    }

    #[test]
    fn single_block_panel() {
        check_panel(1, 1, LuOptions::default());
    }

    #[test]
    fn tall_panels() {
        for k in [2usize, 4, 8] {
            check_panel(k, 10 + k as u64, LuOptions::default());
        }
    }

    #[test]
    fn without_comparator_same_result_more_cycles() {
        let fast = check_panel(4, 3, LuOptions { comparator: true });
        let slow = check_panel(4, 3, LuOptions { comparator: false });
        assert!(
            slow.cycles > fast.cycles + 3 * 16,
            "{} vs {}",
            slow.cycles,
            fast.cycles
        );
        assert_eq!(slow.cmp_ops, fast.cmp_ops, "same compares, different speed");
    }

    #[test]
    fn blocked_lu_matches_reference() {
        let mut rng = StdRng::seed_from_u64(31);
        for kk in [4usize, 8, 16] {
            let a = Matrix::random(kk, kk, &mut rng);
            let mut lac = Lac::new(LacConfig::default());
            let (packed, pivots, _) = blocked_lu_run(&mut lac, &a, &LuOptions::default()).unwrap();
            let reference = lu_partial_pivot(&a).unwrap();
            assert_eq!(pivots, reference.pivots, "kk={kk}");
            assert!(
                max_abs_diff(&packed, &reference.factors) < 1e-8,
                "kk={kk}: {packed:?} vs {:?}",
                reference.factors
            );
        }
    }

    #[test]
    fn blocked_lu_solves_systems() {
        let mut rng = StdRng::seed_from_u64(32);
        let kk = 12;
        let a = Matrix::random(kk, kk, &mut rng);
        let mut lac = Lac::new(LacConfig::default());
        let (packed, pivots, _) = blocked_lu_run(&mut lac, &a, &LuOptions::default()).unwrap();
        let lu = crate::lu::pack_to_factors(packed, pivots);
        let x_true: Vec<f64> = (0..kk).map(|i| (i as f64).cos()).collect();
        let mut b = vec![0.0; kk];
        linalg_ref::blas2::gemv(1.0, &a, false, &x_true, 0.0, &mut b);
        let x = lu.solve(&b);
        for (xa, xe) in x.iter().zip(&x_true) {
            assert!((xa - xe).abs() < 1e-8);
        }
    }

    #[test]
    fn pivot_rows_bounded_multipliers() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::random(16, 4, &mut rng);
        let mut lac = Lac::new(LacConfig::default());
        let (got, _, _) = lu_panel_matrix_run(&mut lac, &a, &LuOptions::default()).unwrap();
        for j in 0..4 {
            for i in j + 1..16 {
                assert!(got[(i, j)].abs() <= 1.0 + 1e-12, "multiplier ({i},{j})");
            }
        }
    }
}
