//! IP-PMM: an interior-point proximal method of multipliers for convex
//! QP — the first *convergence-driven* client of the continuation
//! subsystem ([`lac_sim::dynamic`]).
//!
//! Following Gondzio & Pougkakiotis (see PAPERS.md), the solver iterates
//! a primal-dual interior-point step on
//!
//! ```text
//!     min ½·xᵀQx + cᵀx   s.t.  A·x = b,  x ≥ 0
//! ```
//!
//! with proximal regularization: the Newton system of iteration `k` is
//! damped by `ρ‖x − ξₖ‖²` / `δ‖y − λₖ‖²` terms around the proximal
//! centers `(ξₖ, λₖ)` = the current iterate, with `ρ, δ` tied to the
//! barrier parameter `μ`. Each iteration reduces to **normal equations**
//! solved by Cholesky — exactly the kernel mix the LAC was designed for:
//!
//! ```text
//!     G  = Q + X⁻¹Z + ρI           L  = chol(G)        (n × n, device)
//!     V  = L⁻¹Aᵀ,  w = L⁻¹g                            (blocked TRSM, device)
//!     M  = VᵀV + δI                Lₘ = chol(M)        (SYRK + CHOL, device)
//!     Δy from Lₘ, Δx from L, Δz from complementarity   (device + host)
//! ```
//!
//! The defining property — and the reason this lives behind a
//! [`DynamicGraph`] — is that the **iteration count is unknown at
//! submission time**: the loop runs until the primal/dual residuals and
//! `μ` fall below tolerance (hard-capped at
//! [`IppmmParams::max_iters`]). Each iteration is one four-job graph
//! segment; the closing job emits [`Details::Ipm`] and the continuation
//! appends the next segment only if that output says "not converged".
//! The decision is a pure function of the segment's outputs, so the
//! whole solve — iterates *and* iteration count — is bit-identical
//! across scheduler policies, backends and reruns.
//!
//! [`IppmmWorkload::reference`] runs the same iteration in pure
//! `linalg-ref` arithmetic (its own factorizations, no simulator);
//! [`IppmmWorkload::check`] verifies a dynamic run against it plus an
//! independent KKT-residual recomputation.

use crate::chol::blocked_cholesky_run;
use crate::solver::{device_syrk, step_report};
use crate::trsm::blocked_trsm_run;
use crate::workload::{demo_matrix, demo_spd, demo_value, expect_details, Details, KernelReport};
use lac_sim::dynamic::{Continue, DynamicGraph, DynamicOutcome};
use lac_sim::{ChipJob, JobGraph, LacEngine, SimError};
use linalg_ref::{cholesky, Matrix};
use std::sync::{Arc, Mutex};

/// Shape and stopping rule of one IP-PMM solve. Dimensions follow the
/// 4×4 core's blocked kernels: `n` and `m` multiples of `nr`, `m < n`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IppmmParams {
    /// Primal dimension (the Hessian is `n × n`).
    pub n: usize,
    /// Equality-constraint count (the constraint matrix is `m × n`).
    pub m: usize,
    /// Relative convergence tolerance on the primal/dual residuals and
    /// absolute tolerance on `μ`.
    pub tol: f64,
    /// Hard iteration cap — the continuation stops appending segments
    /// here even if unconverged (surfaced by
    /// [`IppmmWorkload::check`] as an error).
    pub max_iters: usize,
    /// Seed for the deterministic demo operands.
    pub salt: u64,
}

impl Default for IppmmParams {
    /// A 16-variable, 8-constraint QP at `1e-7` — converges in ~20
    /// iterations, small enough for tests and bench sweeps.
    fn default() -> Self {
        Self {
            n: 16,
            m: 8,
            tol: 1e-7,
            max_iters: 40,
            salt: 70,
        }
    }
}

/// Fixed centering parameter `σ`: each step targets `σ·μ`.
const SIGMA: f64 = 0.3;
/// Fraction-to-boundary step damping.
const STEP_FRACTION: f64 = 0.995;
/// Proximal-regularization clamp: `ρ = δ = clamp(μ, MIN, MAX)`.
const REG_MIN: f64 = 1e-10;
const REG_MAX: f64 = 1e-3;

/// The problem data plus derived tolerances — immutable across the
/// solve, shared by every job through an `Arc`.
struct IpmProblem {
    n: usize,
    m: usize,
    q: Matrix,
    a: Matrix,
    b: Vec<f64>,
    c: Vec<f64>,
    /// Primal residual threshold: `tol · (1 + ‖b‖∞)`.
    eps_p: f64,
    /// Dual residual threshold: `tol · (1 + ‖c‖∞)`.
    eps_d: f64,
    /// Complementarity threshold (`μ ≤ tol`).
    eps_mu: f64,
}

/// The mutable iterate the four jobs of a segment communicate through.
/// Graph edges order every access; the contents are a pure function of
/// the problem, so they are placement-independent.
struct IpmIterate {
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    /// `ρ = δ` of the current iteration (from the pre-step `μ`).
    reg: f64,
    /// Newton right-hand side `g = −r_d + X⁻¹(σμe − XZe)`.
    g: Vec<f64>,
    /// `L = chol(G)`.
    l: Matrix,
    /// `V = L⁻¹Aᵀ` (`n × m`).
    v: Matrix,
    /// `w = L⁻¹g`.
    w: Vec<f64>,
    /// `Lₘ = chol(VᵀV + δI)`.
    lm: Matrix,
    /// Schur right-hand side `r_p − Vᵀw`.
    rhs_y: Vec<f64>,
}

/// `‖v‖∞`.
pub(crate) fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |acc, &x| acc.max(x.abs()))
}

/// `A·x` by rows, fixed order.
pub(crate) fn mat_vec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    (0..a.rows())
        .map(|i| (0..a.cols()).map(|j| a[(i, j)] * x[j]).sum())
        .collect()
}

/// `Aᵀ·y` by columns, fixed order.
pub(crate) fn mat_tvec(a: &Matrix, y: &[f64]) -> Vec<f64> {
    (0..a.cols())
        .map(|j| (0..a.rows()).map(|i| a[(i, j)] * y[i]).sum())
        .collect()
}

/// Solve `Lᵀ·x = v` for lower-triangular `L` by back-substitution —
/// the host half of every `G⁻¹`/`M⁻¹` application (the device solves the
/// forward half with the blocked TRSM kernel). Shared by the device and
/// reference twins so the transpose solve is the identical arithmetic.
pub(crate) fn backward_solve(l: &Matrix, v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut x = v.to_vec();
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in i + 1..n {
            s -= l[(j, i)] * x[j];
        }
        x[i] = s / l[(i, i)];
    }
    x
}

/// Solve `L·x = v` by forward substitution (reference twin only; the
/// device twin runs the blocked TRSM kernel instead).
pub(crate) fn forward_solve(l: &Matrix, v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut x = v.to_vec();
    for i in 0..n {
        let mut s = x[i];
        for j in 0..i {
            s -= l[(i, j)] * x[j];
        }
        x[i] = s / l[(i, i)];
    }
    x
}

/// The residuals of the current iterate: `(r_p, r_d, μ)` with
/// `r_p = b − Ax` and `r_d = c + Qx − Aᵀy − z`, in fixed evaluation
/// order.
fn residuals(p: &IpmProblem, x: &[f64], y: &[f64], z: &[f64]) -> (Vec<f64>, Vec<f64>, f64) {
    let ax = mat_vec(&p.a, x);
    let qx = mat_vec(&p.q, x);
    let aty = mat_tvec(&p.a, y);
    let rp: Vec<f64> = (0..p.m).map(|i| p.b[i] - ax[i]).collect();
    let rd: Vec<f64> = (0..p.n).map(|i| p.c[i] + qx[i] - aty[i] - z[i]).collect();
    let mu = x.iter().zip(z).map(|(xi, zi)| xi * zi).sum::<f64>() / p.n as f64;
    (rp, rd, mu)
}

/// Host tail of one Newton step, shared bit-for-bit by the device and
/// reference twins: given the segment's factors/solves, recover
/// `(Δx, Δy, Δz)`, take the damped step, and return the post-step
/// residual norms.
#[allow(clippy::too_many_arguments)]
fn apply_step(
    p: &IpmProblem,
    x: &mut [f64],
    y: &mut [f64],
    z: &mut [f64],
    l: &Matrix,
    v: &Matrix,
    w: &[f64],
    lm: &Matrix,
    u: &[f64],
    g: &[f64],
    mu_pre: f64,
) -> (f64, f64, f64) {
    // Δy = Lₘ⁻ᵀ·u (u = Lₘ⁻¹·rhs_y came from the forward solve).
    let dy = backward_solve(lm, u);
    // L⁻¹(g + AᵀΔy) = w + V·Δy — the V panel saves a second solve.
    let vdy: Vec<f64> = (0..p.n)
        .map(|i| w[i] + (0..p.m).map(|j| v[(i, j)] * dy[j]).sum::<f64>())
        .collect();
    let dx = backward_solve(l, &vdy);
    let target = SIGMA * mu_pre;
    let dz: Vec<f64> = (0..p.n)
        .map(|i| (target - x[i] * z[i] - z[i] * dx[i]) / x[i])
        .collect();
    // Fraction-to-boundary step lengths keep x, z strictly positive.
    let mut alpha_p = 1.0f64;
    let mut alpha_d = 1.0f64;
    for i in 0..p.n {
        if dx[i] < 0.0 {
            alpha_p = alpha_p.min(-STEP_FRACTION * x[i] / dx[i]);
        }
        if dz[i] < 0.0 {
            alpha_d = alpha_d.min(-STEP_FRACTION * z[i] / dz[i]);
        }
    }
    for i in 0..p.n {
        x[i] += alpha_p * dx[i];
        z[i] += alpha_d * dz[i];
    }
    for j in 0..p.m {
        y[j] += alpha_d * dy[j];
    }
    let (rp, rd, mu) = residuals(p, x, y, z);
    let _ = g;
    (inf_norm(&rp), inf_norm(&rd), mu)
}

/// The IP-PMM convex-QP workload over deterministic demo operands with a
/// known KKT point: `Q` SPD, `A` full-rank, and `(b, c)` constructed
/// from a strictly complementary primal-dual solution.
#[derive(Clone, Debug)]
pub struct IppmmWorkload {
    /// The solve's shape and stopping rule.
    pub params: IppmmParams,
    /// The Hessian (`n × n`, SPD).
    pub q: Matrix,
    /// The constraint matrix (`m × n`).
    pub a: Matrix,
    /// The constraint right-hand side.
    pub b: Vec<f64>,
    /// The linear cost.
    pub c: Vec<f64>,
}

/// Ground truth computed by [`IppmmWorkload::reference`]: the same
/// iteration in pure `linalg-ref` arithmetic.
pub struct IpmReference {
    /// The converged primal iterate.
    pub x: Vec<f64>,
    /// The converged equality multiplier.
    pub y: Vec<f64>,
    /// The converged bound multiplier.
    pub z: Vec<f64>,
    /// Iterations the reference solve took.
    pub iterations: usize,
}

impl IppmmWorkload {
    /// A QP shaped by `params` over deterministic demo operands.
    pub fn new(params: IppmmParams) -> Self {
        let nr = 4; // the blocked kernels' register dimension
        assert!(
            params.n.is_multiple_of(nr) && params.m.is_multiple_of(nr),
            "n, m must be multiples of nr"
        );
        assert!(params.m < params.n, "normal equations need m < n");
        assert!(params.max_iters >= 1);
        let q = demo_spd(params.n, params.salt);
        let a = demo_matrix(params.m, params.n, params.salt + 1);
        // A strictly complementary KKT point: even coordinates inactive
        // (x* > 0, z* = 0), odd coordinates active (x* = 0, z* > 0).
        let xs: Vec<f64> = (0..params.n)
            .map(|i| {
                if i % 2 == 0 {
                    1.0 + 0.5 * demo_value(i, 7, params.salt + 2).abs()
                } else {
                    0.0
                }
            })
            .collect();
        let zs: Vec<f64> = (0..params.n)
            .map(|i| {
                if i % 2 == 0 {
                    0.0
                } else {
                    1.0 + 0.5 * demo_value(i, 11, params.salt + 2).abs()
                }
            })
            .collect();
        let ys: Vec<f64> = (0..params.m)
            .map(|j| demo_value(j, 13, params.salt + 3))
            .collect();
        let b = mat_vec(&a, &xs);
        let qx = mat_vec(&q, &xs);
        let aty = mat_tvec(&a, &ys);
        // c = Aᵀy* + z* − Qx*  ⇒  (x*, y*, z*) satisfies the KKT system.
        let c = (0..params.n).map(|i| aty[i] + zs[i] - qx[i]).collect();
        Self { params, q, a, b, c }
    }

    /// The default registry-sized solve.
    pub fn demo() -> Self {
        Self::new(IppmmParams::default())
    }

    fn problem(&self) -> IpmProblem {
        IpmProblem {
            n: self.params.n,
            m: self.params.m,
            q: self.q.clone(),
            a: self.a.clone(),
            b: self.b.clone(),
            c: self.c.clone(),
            eps_p: self.params.tol * (1.0 + inf_norm(&self.b)),
            eps_d: self.params.tol * (1.0 + inf_norm(&self.c)),
            eps_mu: self.params.tol,
        }
    }

    /// Cost hint of one iteration's four-job segment — what one appended
    /// segment charges against the tenant's admission budget.
    pub fn iteration_cost(&self) -> u64 {
        let (n, m) = (self.params.n as u64, self.params.m as u64);
        let solve_w = Self::solve_width(self.params.m) as u64;
        // factor G + panel solve + (SYRK + factor M) + step solve.
        (n * n * n / 3) + (n * n * solve_w) + (m * m * n + m * m * m / 3) + (m * m * 4)
    }

    /// Width of the fused `[Aᵀ | g]` TRSM panel, padded to the blocked
    /// kernels' `nr` granularity.
    fn solve_width(m: usize) -> usize {
        (m + 1).div_ceil(4) * 4
    }

    /// The solve as a dynamic request: the initial iteration's segment
    /// plus the continuation that appends one segment per iteration until
    /// the closing job's [`Details::Ipm`] output says converged (or the
    /// iteration cap is hit). Submit through
    /// [`lac_sim::dynamic::run_dynamic`] or the open-loop dynamic driver.
    pub fn dynamic(&self) -> DynamicGraph<IpmJob> {
        let problem = Arc::new(self.problem());
        let n = problem.n;
        let iterate = Arc::new(Mutex::new(IpmIterate {
            x: vec![1.0; n],
            y: vec![0.0; problem.m],
            z: vec![1.0; n],
            reg: REG_MAX,
            g: vec![0.0; n],
            l: Matrix::zeros(n, n),
            v: Matrix::zeros(n, problem.m),
            w: vec![0.0; n],
            lm: Matrix::zeros(problem.m, problem.m),
            rhs_y: vec![0.0; problem.m],
        }));
        let initial = segment(&problem, &iterate, 0);
        let (p, it) = (Arc::clone(&problem), Arc::clone(&iterate));
        let max_iters = self.params.max_iters;
        DynamicGraph::new(initial, move |seg: usize, outputs: &[KernelReport]| {
            let Some(last) = outputs.last() else {
                return Continue::Done;
            };
            let Details::Ipm { rp, rd, mu, .. } = &last.details else {
                return Continue::Done;
            };
            let converged = *rp <= p.eps_p && *rd <= p.eps_d && *mu <= p.eps_mu;
            if converged || seg + 1 >= max_iters {
                Continue::Done
            } else {
                Continue::Append(segment(&p, &it, seg + 1))
            }
        })
    }

    /// The same iteration in pure `linalg-ref` arithmetic — its own
    /// Cholesky factorizations, fully independent of the simulator.
    pub fn reference(&self) -> Result<IpmReference, String> {
        let p = self.problem();
        let mut x = vec![1.0; p.n];
        let mut y = vec![0.0; p.m];
        let mut z = vec![1.0; p.n];
        for iter in 0..self.params.max_iters {
            let (rp, rd, mu) = residuals(&p, &x, &y, &z);
            if inf_norm(&rp) <= p.eps_p && inf_norm(&rd) <= p.eps_d && mu <= p.eps_mu {
                return Ok(IpmReference {
                    x,
                    y,
                    z,
                    iterations: iter,
                });
            }
            let reg = mu.clamp(REG_MIN, REG_MAX);
            let gmat = newton_matrix(&p, &x, &z, reg);
            let l = cholesky(&gmat).map_err(|e| format!("ippmm reference iter {iter}: {e:?}"))?;
            let g = newton_rhs(&p, &x, &z, &rd, mu);
            // V = L⁻¹Aᵀ, w = L⁻¹g, column by column.
            let mut v = Matrix::zeros(p.n, p.m);
            for j in 0..p.m {
                let col: Vec<f64> = (0..p.n).map(|i| p.a[(j, i)]).collect();
                let s = forward_solve(&l, &col);
                for i in 0..p.n {
                    v[(i, j)] = s[i];
                }
            }
            let w = forward_solve(&l, &g);
            let m = schur_matrix(&v, reg);
            let lm =
                cholesky(&m).map_err(|e| format!("ippmm reference iter {iter} (Schur): {e:?}"))?;
            let rhs_y = schur_rhs(&p, &v, &w, &rp);
            let u = forward_solve(&lm, &rhs_y);
            apply_step(&p, &mut x, &mut y, &mut z, &l, &v, &w, &lm, &u, &g, mu);
        }
        Err(format!(
            "ippmm reference: no convergence within {} iterations",
            self.params.max_iters
        ))
    }

    /// Verify a dynamic run against the reference solve: the last
    /// segment's [`Details::Ipm`] output must report convergence, an
    /// independent KKT-residual recomputation from that output must agree,
    /// and the primal iterate must match [`IppmmWorkload::reference`]'s.
    pub fn check(&self, outcome: &DynamicOutcome<KernelReport>) -> Result<(), String> {
        let last = outcome
            .segments
            .last()
            .and_then(|s| s.last())
            .ok_or("ippmm: empty dynamic outcome")?;
        let Details::Ipm {
            x,
            y,
            z,
            rp,
            rd,
            mu,
        } = &last.details
        else {
            return Err(expect_details("ippmm", "Ipm"));
        };
        let p = self.problem();
        if !(*rp <= p.eps_p && *rd <= p.eps_d && *mu <= p.eps_mu) {
            return Err(format!(
                "ippmm: not converged after {} iterations (rp {rp:.2e}, rd {rd:.2e}, mu {mu:.2e})",
                outcome.segments.len()
            ));
        }
        // Independent recomputation of the KKT residuals from the
        // reported iterate (same operands, separate code path).
        let xv: Vec<f64> = (0..p.n).map(|i| x[(i, 0)]).collect();
        let yv: Vec<f64> = (0..p.m).map(|i| y[(i, 0)]).collect();
        let zv: Vec<f64> = (0..p.n).map(|i| z[(i, 0)]).collect();
        let (rp2, rd2, mu2) = residuals(&p, &xv, &yv, &zv);
        if inf_norm(&rp2) > 10.0 * p.eps_p
            || inf_norm(&rd2) > 10.0 * p.eps_d
            || mu2 > 10.0 * p.eps_mu
        {
            return Err(format!(
                "ippmm: reported convergence but recomputed KKT residuals disagree \
                 (rp {:.2e}, rd {:.2e}, mu {:.2e})",
                inf_norm(&rp2),
                inf_norm(&rd2),
                mu2
            ));
        }
        // The QP is strictly convex, so the primal solution is unique:
        // the device iterate must land where the reference landed.
        let reference = self.reference()?;
        let scale = 1.0 + inf_norm(&reference.x);
        let diff = (0..p.n)
            .map(|i| (xv[i] - reference.x[i]).abs())
            .fold(0.0f64, f64::max);
        if diff / scale > 1e-4 {
            return Err(format!(
                "ippmm: device solution differs from linalg-ref reference by {:.2e}",
                diff / scale
            ));
        }
        Ok(())
    }
}

/// `G = Q + X⁻¹Z + ρI`.
fn newton_matrix(p: &IpmProblem, x: &[f64], z: &[f64], reg: f64) -> Matrix {
    Matrix::from_fn(p.n, p.n, |i, j| {
        p.q[(i, j)] + if i == j { z[i] / x[i] + reg } else { 0.0 }
    })
}

/// `g = −r_d + X⁻¹(σμe − XZe)`.
fn newton_rhs(p: &IpmProblem, x: &[f64], z: &[f64], rd: &[f64], mu: f64) -> Vec<f64> {
    let target = SIGMA * mu;
    (0..p.n)
        .map(|i| -rd[i] + (target - x[i] * z[i]) / x[i])
        .collect()
}

/// `M = VᵀV + δI`, full symmetric.
fn schur_matrix(v: &Matrix, reg: f64) -> Matrix {
    let m = v.cols();
    let n = v.rows();
    Matrix::from_fn(m, m, |i, j| {
        let dot: f64 = (0..n).map(|k| v[(k, i)] * v[(k, j)]).sum();
        dot + if i == j { reg } else { 0.0 }
    })
}

/// `rhs_y = r_p − Vᵀw`.
fn schur_rhs(p: &IpmProblem, v: &Matrix, w: &[f64], rp: &[f64]) -> Vec<f64> {
    (0..p.m)
        .map(|j| rp[j] - (0..p.n).map(|i| v[(i, j)] * w[i]).sum::<f64>())
        .collect()
}

/// Build one iteration's four-job segment: factor → panel solve → Schur
/// → step, chained.
fn segment(
    problem: &Arc<IpmProblem>,
    iterate: &Arc<Mutex<IpmIterate>>,
    iter: usize,
) -> JobGraph<IpmJob> {
    let (n, m) = (problem.n as u64, problem.m as u64);
    let solve_w = IppmmWorkload::solve_width(problem.m) as u64;
    let job = |step: IpmStep, cost: u64, words: u64| IpmJob {
        problem: Arc::clone(problem),
        iterate: Arc::clone(iterate),
        cost,
        words,
        step,
    };
    let mut g = JobGraph::new();
    let f = g.add(job(IpmStep::Factor, n * n * n / 3, n * (n + 1) / 2));
    let s = g.add_after(job(IpmStep::Solve, n * n * solve_w, n * solve_w), &[f]);
    let sc = g.add_after(
        job(IpmStep::Schur, m * m * n + m * m * m / 3, m * (m + 1) / 2),
        &[s],
    );
    g.add_after(job(IpmStep::Step { iter }, m * m * 4, n + m), &[sc]);
    g
}

/// One step of an IP-PMM iteration as a chip job. Steps communicate
/// through the iterate behind the segment's dependency edges.
pub struct IpmJob {
    problem: Arc<IpmProblem>,
    iterate: Arc<Mutex<IpmIterate>>,
    cost: u64,
    words: u64,
    step: IpmStep,
}

enum IpmStep {
    /// Assemble `G = Q + X⁻¹Z + ρI` and factor it on the device.
    Factor,
    /// Blocked TRSM of the fused `[Aᵀ | g]` panel against `L`.
    Solve,
    /// `M = VᵀV + δI` by device SYRK, then factor `M` on the device.
    Schur,
    /// Solve for `Δy`, recover `(Δx, Δz)`, take the damped step, emit
    /// the post-step iterate and residuals.
    Step {
        /// The iteration this segment implements (0-based), for the
        /// report's kernel label.
        iter: usize,
    },
}

impl ChipJob for IpmJob {
    type Output = KernelReport;

    fn cost_hint(&self) -> u64 {
        self.cost.max(1)
    }

    fn transfer_words(&self) -> u64 {
        self.words.max(1)
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let p = &self.problem;
        match &self.step {
            IpmStep::Factor => {
                let gmat = {
                    let mut st = self.iterate.lock().expect("ipm state poisoned");
                    let mu =
                        st.x.iter().zip(&st.z).map(|(xi, zi)| xi * zi).sum::<f64>() / p.n as f64;
                    st.reg = mu.clamp(REG_MIN, REG_MAX);
                    let (_, rd, _) = residuals(p, &st.x, &st.y, &st.z);
                    st.g = newton_rhs(p, &st.x, &st.z, &rd, mu);
                    newton_matrix(p, &st.x, &st.z, st.reg)
                };
                let (l, stats) = blocked_cholesky_run(eng.core_mut(), &gmat)?;
                self.iterate.lock().expect("ipm state poisoned").l = l.clone();
                Ok(step_report(
                    eng,
                    "ippmm-factor",
                    stats,
                    Details::Cholesky { l },
                ))
            }
            IpmStep::Solve => {
                let (l, panel) = {
                    let st = self.iterate.lock().expect("ipm state poisoned");
                    let w = IppmmWorkload::solve_width(p.m);
                    // Fused right-hand sides: [Aᵀ | g | 0-pad].
                    let panel = Matrix::from_fn(p.n, w, |i, j| {
                        if j < p.m {
                            p.a[(j, i)]
                        } else if j == p.m {
                            st.g[i]
                        } else {
                            0.0
                        }
                    });
                    (st.l.clone(), panel)
                };
                let (x, stats) = blocked_trsm_run(eng.core_mut(), &l, &panel)?;
                {
                    let mut st = self.iterate.lock().expect("ipm state poisoned");
                    st.v = Matrix::from_fn(p.n, p.m, |i, j| x[(i, j)]);
                    st.w = (0..p.n).map(|i| x[(i, p.m)]).collect();
                }
                Ok(step_report(eng, "ippmm-solve", stats, Details::Trsm { x }))
            }
            IpmStep::Schur => {
                let (vt, reg) = {
                    let st = self.iterate.lock().expect("ipm state poisoned");
                    (st.v.transpose(), st.reg)
                };
                // S = Vᵀ·(Vᵀ)ᵀ = VᵀV, lower triangle, on the device.
                let (s, syrk_stats) = device_syrk(eng, &vt)?;
                let m = Matrix::from_fn(p.m, p.m, |i, j| {
                    let v = if i >= j { s[(i, j)] } else { s[(j, i)] };
                    v + if i == j { reg } else { 0.0 }
                });
                let (lm, chol_stats) = blocked_cholesky_run(eng.core_mut(), &m)?;
                {
                    let mut st = self.iterate.lock().expect("ipm state poisoned");
                    let (rp, _, _) = residuals(p, &st.x, &st.y, &st.z);
                    st.rhs_y = schur_rhs(p, &st.v, &st.w, &rp);
                    st.lm = lm.clone();
                }
                let mut stats = syrk_stats;
                stats.merge(&chol_stats);
                Ok(step_report(
                    eng,
                    "ippmm-schur",
                    stats,
                    Details::Cholesky { l: lm },
                ))
            }
            IpmStep::Step { iter } => {
                let (lm, rhs_panel) = {
                    let st = self.iterate.lock().expect("ipm state poisoned");
                    let panel =
                        Matrix::from_fn(p.m, 4, |i, j| if j == 0 { st.rhs_y[i] } else { 0.0 });
                    (st.lm.clone(), panel)
                };
                let (sol, stats) = blocked_trsm_run(eng.core_mut(), &lm, &rhs_panel)?;
                let u: Vec<f64> = (0..p.m).map(|i| sol[(i, 0)]).collect();
                let (x, y, z, rp, rd, mu) = {
                    let mut st = self.iterate.lock().expect("ipm state poisoned");
                    let mu_pre =
                        st.x.iter().zip(&st.z).map(|(xi, zi)| xi * zi).sum::<f64>() / p.n as f64;
                    let IpmIterate {
                        ref mut x,
                        ref mut y,
                        ref mut z,
                        ref l,
                        ref v,
                        ref w,
                        ref lm,
                        ref g,
                        ..
                    } = *st;
                    let (rp, rd, mu) = apply_step(p, x, y, z, l, v, w, lm, &u, g, mu_pre);
                    (
                        Matrix::from_fn(p.n, 1, |i, _| x[i]),
                        Matrix::from_fn(p.m, 1, |i, _| y[i]),
                        Matrix::from_fn(p.n, 1, |i, _| z[i]),
                        rp,
                        rd,
                        mu,
                    )
                };
                Ok(step_report(
                    eng,
                    &format!("ippmm-step-{iter}"),
                    stats,
                    Details::Ipm {
                        x,
                        y,
                        z,
                        rp,
                        rd,
                        mu,
                    },
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::dynamic::run_dynamic;
    use lac_sim::{ChipConfig, LacConfig, LacService, Scheduler, TenantConfig};

    #[test]
    fn reference_converges_to_the_planted_kkt_point() {
        let w = IppmmWorkload::demo();
        let r = w.reference().unwrap();
        assert!(r.iterations >= 5, "an IPM takes real iterations");
        assert!(r.iterations < w.params.max_iters);
        // Even coordinates were planted inactive, odd active.
        for i in 0..w.params.n {
            if i % 2 == 0 {
                assert!(r.x[i] > 0.5, "x[{i}] should be inactive");
                assert!(r.z[i] < 1e-3);
            } else {
                assert!(r.x[i] < 1e-3, "x[{i}] should be active");
                assert!(r.z[i] > 0.5);
            }
        }
    }

    #[test]
    fn dynamic_solve_converges_and_checks_out() {
        let w = IppmmWorkload::demo();
        let mut svc: LacService<IpmJob> = LacService::new(ChipConfig::new(2, LacConfig::default()));
        let t = svc.add_tenant(TenantConfig::new("qp"));
        let run = run_dynamic(&mut svc, vec![(t, w.dynamic())], Scheduler::FairShare).unwrap();
        let out = &run.outcomes[0];
        w.check(out).unwrap();
        assert!(out.iterations() >= 5, "convergence took real iterations");
        assert!(out.iterations() < w.params.max_iters);
        assert_eq!(out.jobs, 4 * out.iterations());
        assert!(out.appended_cost > 0, "the graph grew at run time");
    }

    #[test]
    fn iteration_count_is_identical_across_policies() {
        let w = IppmmWorkload::new(IppmmParams {
            n: 8,
            m: 4,
            ..IppmmParams::default()
        });
        let mut counts = Vec::new();
        let mut outputs = Vec::new();
        for sched in [
            Scheduler::Fifo,
            Scheduler::CriticalPath,
            Scheduler::FairShare,
        ] {
            let mut svc: LacService<IpmJob> =
                LacService::new(ChipConfig::new(3, LacConfig::default()));
            let t = svc.add_tenant(TenantConfig::new("qp"));
            let run = run_dynamic(&mut svc, vec![(t, w.dynamic())], sched).unwrap();
            w.check(&run.outcomes[0]).unwrap();
            counts.push(run.outcomes[0].iterations());
            outputs.push(run.outcomes[0].segments.clone());
        }
        assert!(counts.windows(2).all(|c| c[0] == c[1]), "{counts:?}");
        assert!(
            outputs.windows(2).all(|o| o[0] == o[1]),
            "outputs must be bit-identical across policies"
        );
    }
}
