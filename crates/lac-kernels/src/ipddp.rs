//! Batched IPDDP: a fleet of interior-point differential dynamic
//! programming solves — the continuation subsystem's scheduler stress
//! test.
//!
//! Following Pavlov, Shames & Manzie (see PAPERS.md), each fleet member
//! solves a box-constrained discrete-time optimal-control problem
//!
//! ```text
//!     min Σₜ ½xₜᵀQxₜ + ½uₜᵀRuₜ + ½x_TᵀQf·x_T
//!     s.t. xₜ₊₁ = A·xₜ + B·uₜ,   |uₜⱼ| < u_max
//! ```
//!
//! by primal log-barrier DDP: the control bound enters the stage cost as
//! `−μ·Σⱼ[log(u_max−uⱼ) + log(u_max+uⱼ)]`, each **backward sweep**
//! factors one tiny `nu × nu` `Q_uu` block per timestep (Riccati chain),
//! and the **forward pass** rolls the gains out through a backtracking
//! line search. The barrier weight `μ` shrinks geometrically once the
//! gain gradient stalls at the current `μ`; a member is converged when
//! both `μ` and the gradient are below tolerance.
//!
//! The LAC-shaped property is the *batch*: one sweep of the fleet is
//! `members × horizon` independent little CHOL+TRSM factorizations
//! (thousands at bench sizes), chained per member but parallel across
//! members — and members converge after *different* sweep counts, so
//! the appended segments shrink as the fleet drains. That non-uniform,
//! convergence-driven completion is exactly what
//! [`lac_sim::dynamic`] exists to schedule; determinism of every
//! trajectory and sweep count across policies/backends/reruns is the
//! subsystem's acceptance test.
//!
//! [`IpddpFleet::reference`] re-runs every member in pure `linalg-ref`
//! arithmetic; [`IpddpFleet::check`] verifies convergence, strict bound
//! feasibility and agreement of the final control trajectories.

use crate::chol::blocked_cholesky_run;
use crate::ippmm::{backward_solve, forward_solve, inf_norm, mat_tvec, mat_vec};
use crate::solver::step_report;
use crate::trsm::blocked_trsm_run;
use crate::workload::{demo_value, Details, KernelReport};
use lac_sim::dynamic::{Continue, DynamicGraph, DynamicOutcome};
use lac_sim::{ChipJob, JobGraph, LacEngine, SimError};
use linalg_ref::{cholesky, Matrix};
use std::sync::{Arc, Mutex};

/// State dimension of every member (fixed to the core's register size).
const NX: usize = 4;
/// Control dimension of every member.
const NU: usize = 4;
/// Initial barrier weight.
const MU0: f64 = 0.1;
/// Geometric barrier shrink factor.
const MU_SHRINK: f64 = 0.2;
/// Line-search step fractions tried in order (α = 2⁻ᵏ).
const LS_STEPS: usize = 16;

/// Shape and stopping rule of one IPDDP fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IpddpParams {
    /// Fleet size — independent trajectory optimizations batched into
    /// one dynamic request.
    pub members: usize,
    /// Horizon `T`: timesteps per trajectory, factorizations per sweep
    /// per member.
    pub horizon: usize,
    /// Gradient tolerance (max over `t` of `‖kₜ‖∞`) *and* final barrier
    /// floor: a member is converged when `grad ≤ tol` at `μ ≤ tol`.
    pub tol: f64,
    /// Hard cap on sweeps per member; the continuation stops appending
    /// there even if unconverged (flagged by [`IpddpFleet::check`]).
    pub max_sweeps: usize,
    /// Seed for the deterministic demo dynamics and start states.
    pub salt: u64,
}

impl Default for IpddpParams {
    /// Eight members over a 12-step horizon at `1e-6` — big enough for
    /// visibly non-uniform completion, small enough for tests.
    fn default() -> Self {
        Self {
            members: 8,
            horizon: 12,
            tol: 1e-6,
            max_sweeps: 80,
            salt: 80,
        }
    }
}

/// A candidate forward pass: the new state and control trajectories plus
/// the barrier-augmented cost they achieve.
type Trajectory = (Vec<Vec<f64>>, Vec<Vec<f64>>, f64);

/// One member's immutable problem data.
struct DdpProblem {
    /// Member index within the fleet (labels reports).
    index: usize,
    horizon: usize,
    /// Control box half-width; varies per member so completion is
    /// non-uniform (tighter boxes need more barrier continuation).
    umax: f64,
    /// State transition (`nx × nx`, spectral radius < 1).
    a: Matrix,
    /// Control matrix (`nx × nu`).
    b: Matrix,
    /// Start state.
    x0: Vec<f64>,
    /// Stage state weight (diagonal value).
    qx: f64,
    /// Stage control weight (diagonal value).
    ru: f64,
    /// Terminal state weight (diagonal value).
    qf: f64,
    tol: f64,
}

impl DdpProblem {
    fn new(index: usize, horizon: usize, tol: f64, salt: u64) -> Self {
        let s = salt.wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let a = Matrix::from_fn(NX, NX, |i, j| {
            0.1 * demo_value(i, j, s) + if i == j { 0.85 } else { 0.0 }
        });
        let b = Matrix::from_fn(NX, NU, |i, j| demo_value(i, j, s + 1));
        let x0 = (0..NX).map(|i| 2.0 * demo_value(i, 5, s + 2)).collect();
        Self {
            index,
            horizon,
            umax: 0.4 + 0.1 * (index % 5) as f64,
            a,
            b,
            x0,
            qx: 1.0,
            ru: 0.1,
            qf: 10.0,
            tol,
        }
    }

    /// Barrier value at `u` (`∞` if infeasible).
    fn barrier(&self, u: &[f64], mu: f64) -> f64 {
        let mut s = 0.0;
        for &uj in u {
            let (lo, hi) = (self.umax + uj, self.umax - uj);
            if lo <= 0.0 || hi <= 0.0 {
                return f64::INFINITY;
            }
            s -= mu * (lo.ln() + hi.ln());
        }
        s
    }

    /// Total trajectory cost including barrier terms.
    fn cost(&self, xs: &[Vec<f64>], us: &[Vec<f64>], mu: f64) -> f64 {
        let mut j = 0.0;
        for t in 0..self.horizon {
            j += 0.5 * self.qx * xs[t].iter().map(|v| v * v).sum::<f64>();
            j += 0.5 * self.ru * us[t].iter().map(|v| v * v).sum::<f64>();
            j += self.barrier(&us[t], mu);
        }
        j + 0.5 * self.qf * xs[self.horizon].iter().map(|v| v * v).sum::<f64>()
    }

    /// Roll `x0` forward under controls produced by the affine gain
    /// policy `u = ū + α·k + K·(x − x̄)`; `None` if any control leaves
    /// the box.
    #[allow(clippy::too_many_arguments)]
    fn rollout(
        &self,
        alpha: f64,
        xs: &[Vec<f64>],
        us: &[Vec<f64>],
        ks: &[Vec<f64>],
        kks: &[Matrix],
        mu: f64,
    ) -> Option<Trajectory> {
        let mut nx = vec![self.x0.clone()];
        let mut nu_traj = Vec::with_capacity(self.horizon);
        for t in 0..self.horizon {
            let dx: Vec<f64> = (0..NX).map(|i| nx[t][i] - xs[t][i]).collect();
            let u: Vec<f64> = (0..NU)
                .map(|i| {
                    us[t][i]
                        + alpha * ks[t][i]
                        + (0..NX).map(|j| kks[t][(i, j)] * dx[j]).sum::<f64>()
                })
                .collect();
            if u.iter().any(|&uj| uj.abs() >= self.umax) {
                return None;
            }
            let ax = mat_vec(&self.a, &nx[t]);
            let bu = mat_vec(&self.b, &u);
            nx.push((0..NX).map(|i| ax[i] + bu[i]).collect());
            nu_traj.push(u);
        }
        let cost = self.cost(&nx, &nu_traj, mu);
        Some((nx, nu_traj, cost))
    }

    /// One backward step at timestep `t`: the Q-expansion, the `Q_uu`
    /// factor `L` (passed in from whichever twin factored it), the gains
    /// and the value-function recursion. Shared bit-for-bit by the
    /// device and reference twins. Returns the `(Q_u, Q_ux)` panel so
    /// the device twin can charge the TRSM against the real right-hand
    /// sides.
    fn backward_step(&self, st: &mut DdpState, t: usize, l: &Matrix) -> (Vec<f64>, Matrix) {
        let (vx, vxx) = (st.vx.clone(), st.vxx.clone());
        let at_vx = mat_tvec(&self.a, &vx);
        let bt_vx = mat_tvec(&self.b, &vx);
        let qu: Vec<f64> = (0..NU)
            .map(|i| {
                let uj = st.us[t][i];
                self.ru * uj + st.mu * (1.0 / (self.umax - uj) - 1.0 / (self.umax + uj)) + bt_vx[i]
            })
            .collect();
        let qx: Vec<f64> = (0..NX).map(|i| self.qx * st.xs[t][i] + at_vx[i]).collect();
        let vxx_a = mul(&vxx, &self.a);
        let vxx_b = mul(&vxx, &self.b);
        let qxx = Matrix::from_fn(NX, NX, |i, j| {
            col_dot(&self.a, i, &vxx_a, j) + if i == j { self.qx } else { 0.0 }
        });
        let qux = Matrix::from_fn(NU, NX, |i, j| col_dot(&self.b, i, &vxx_a, j));
        // k = −Q_uu⁻¹·Q_u and K = −Q_uu⁻¹·Q_ux from the caller's factor.
        let k: Vec<f64> = backward_solve(l, &forward_solve(l, &qu))
            .iter()
            .map(|v| -v)
            .collect();
        let mut kk = Matrix::zeros(NU, NX);
        for j in 0..NX {
            let col: Vec<f64> = (0..NU).map(|i| qux[(i, j)]).collect();
            let s = backward_solve(l, &forward_solve(l, &col));
            for i in 0..NU {
                kk[(i, j)] = -s[i];
            }
        }
        // V recursion with the exact (not Newton-approximate) terms:
        //   Vx  = Qx + Kᵀ(Q_uu·k + Q_u) + Q_uxᵀ·k
        //   Vxx = Qxx + Kᵀ·Q_uu·K + Kᵀ·Q_ux + Q_uxᵀ·K, symmetrized.
        let quu = self.quu(st, t, &vxx_b);
        let quu_k = mat_vec(&quu, &k);
        let new_vx: Vec<f64> = (0..NX)
            .map(|i| {
                qx[i]
                    + (0..NU)
                        .map(|u| kk[(u, i)] * (quu_k[u] + qu[u]) + qux[(u, i)] * k[u])
                        .sum::<f64>()
            })
            .collect();
        let quu_kk = mul(&quu, &kk);
        let raw = Matrix::from_fn(NX, NX, |i, j| {
            qxx[(i, j)]
                + (0..NU)
                    .map(|u| {
                        kk[(u, i)] * quu_kk[(u, j)]
                            + kk[(u, i)] * qux[(u, j)]
                            + qux[(u, i)] * kk[(u, j)]
                    })
                    .sum::<f64>()
        });
        st.vx = new_vx;
        st.vxx = Matrix::from_fn(NX, NX, |i, j| 0.5 * (raw[(i, j)] + raw[(j, i)]));
        st.ks[t] = k;
        st.kks[t] = kk;
        (qu, qux)
    }

    /// `Q_uu = R + diag(barrier″) + Bᵀ·Vxx·B` at timestep `t`.
    fn quu(&self, st: &DdpState, t: usize, vxx_b: &Matrix) -> Matrix {
        Matrix::from_fn(NU, NU, |i, j| {
            let mut v = col_dot(&self.b, i, vxx_b, j);
            if i == j {
                let uj = st.us[t][i];
                let (lo, hi) = (self.umax + uj, self.umax - uj);
                v += self.ru + st.mu * (1.0 / (hi * hi) + 1.0 / (lo * lo));
            }
            v
        })
    }

    /// The forward pass closing one sweep: line search, trajectory
    /// update, gradient measurement and the barrier schedule. Returns
    /// `(grad, μ_pre)` — convergence is judged at the *pre-update* `μ`
    /// so the decision matches the sweep that was actually run.
    fn forward_pass(&self, st: &mut DdpState) -> (f64, f64) {
        let mu_pre = st.mu;
        let grad = st.ks.iter().map(|k| inf_norm(k)).fold(0.0, f64::max);
        let cost_old = self.cost(&st.xs, &st.us, st.mu);
        for k in 0..LS_STEPS {
            let alpha = 0.5f64.powi(k as i32);
            if let Some((xs, us, cost)) =
                self.rollout(alpha, &st.xs, &st.us, &st.ks, &st.kks, st.mu)
            {
                if cost < cost_old + 1e-12 {
                    st.xs = xs;
                    st.us = us;
                    st.cost = cost;
                    break;
                }
            }
        }
        // Shrink the barrier once this μ's subproblem has stalled.
        if grad <= self.tol.max(st.mu) && st.mu > self.tol {
            st.mu = (st.mu * MU_SHRINK).max(self.tol);
        }
        (grad, mu_pre)
    }

    /// Converged at `(grad, μ_pre)`?
    fn converged(&self, grad: f64, mu_pre: f64) -> bool {
        grad <= self.tol && mu_pre <= self.tol
    }
}

/// `M · N`.
fn mul(m: &Matrix, n: &Matrix) -> Matrix {
    Matrix::from_fn(m.rows(), n.cols(), |i, j| {
        (0..m.cols()).map(|k| m[(i, k)] * n[(k, j)]).sum()
    })
}

/// `(column i of M)ᵀ · (column j of N)` — the `MᵀN` entry without
/// forming the transpose.
fn col_dot(m: &Matrix, i: usize, n: &Matrix, j: usize) -> f64 {
    (0..m.rows()).map(|k| m[(k, i)] * n[(k, j)]).sum()
}

/// One member's mutable solve state, shared by its chain of jobs.
struct DdpState {
    xs: Vec<Vec<f64>>,
    us: Vec<Vec<f64>>,
    cost: f64,
    mu: f64,
    vx: Vec<f64>,
    vxx: Matrix,
    ks: Vec<Vec<f64>>,
    kks: Vec<Matrix>,
}

impl DdpState {
    fn fresh(p: &DdpProblem) -> Self {
        // Zero controls are strictly interior, so the start is feasible.
        let us = vec![vec![0.0; NU]; p.horizon];
        let mut xs = vec![p.x0.clone()];
        for t in 0..p.horizon {
            let ax = mat_vec(&p.a, &xs[t]);
            xs.push(ax);
        }
        let cost = p.cost(&xs, &us, MU0);
        Self {
            xs,
            us,
            cost,
            mu: MU0,
            vx: vec![0.0; NX],
            vxx: Matrix::zeros(NX, NX),
            ks: vec![vec![0.0; NU]; p.horizon],
            kks: vec![Matrix::zeros(NU, NX); p.horizon],
        }
    }
}

/// Ground truth for one member from [`IpddpFleet::reference`].
pub struct DdpReference {
    /// Final control trajectory, one `nu`-vector per timestep.
    pub us: Vec<Vec<f64>>,
    /// Final cost (at the terminal barrier weight).
    pub cost: f64,
    /// Sweeps the member took to converge.
    pub sweeps: usize,
}

/// The batched IPDDP fleet workload.
pub struct IpddpFleet {
    /// The fleet's shape and stopping rule.
    pub params: IpddpParams,
    members: Vec<Arc<DdpProblem>>,
}

impl IpddpFleet {
    /// A fleet shaped by `params` over deterministic demo dynamics.
    pub fn new(params: IpddpParams) -> Self {
        assert!(params.members >= 1 && params.horizon >= 1 && params.max_sweeps >= 1);
        let members = (0..params.members)
            .map(|i| Arc::new(DdpProblem::new(i, params.horizon, params.tol, params.salt)))
            .collect();
        Self { params, members }
    }

    /// The default registry-sized fleet.
    pub fn demo() -> Self {
        Self::new(IpddpParams::default())
    }

    /// Cost hint of one member's sweep chain — what one appended sweep
    /// charges against the tenant's admission budget.
    pub fn sweep_cost(&self) -> u64 {
        self.params.horizon as u64 * per_step_cost()
    }

    /// The fleet as one dynamic request: sweep 0 for every member fused
    /// into the initial graph, then a continuation that re-appends
    /// chains only for members whose closing job reported "not
    /// converged" — so segments shrink as the fleet drains.
    pub fn dynamic(&self) -> DynamicGraph<DdpJob> {
        let states: Vec<Arc<Mutex<DdpState>>> = self
            .members
            .iter()
            .map(|p| Arc::new(Mutex::new(DdpState::fresh(p))))
            .collect();
        let all: Vec<usize> = (0..self.members.len()).collect();
        let initial = self.sweep_graph(&states, &all, 0);
        let members = self.members.clone();
        let horizon = self.params.horizon;
        let max_sweeps = self.params.max_sweeps;
        let mut active = all;
        DynamicGraph::new(initial, move |seg: usize, outputs: &[KernelReport]| {
            // Member active[j]'s closing job is the last of its
            // `horizon`-long chain within this segment's graph.
            let mut still = Vec::new();
            for (j, &m) in active.iter().enumerate() {
                let closing = &outputs[j * horizon + horizon - 1];
                let Details::Ddp { grad, mu, .. } = &closing.details else {
                    continue;
                };
                if !members[m].converged(*grad, *mu) {
                    still.push(m);
                }
            }
            active = still;
            if active.is_empty() || seg + 1 >= max_sweeps {
                return Continue::Done;
            }
            let mut g = JobGraph::new();
            for &m in &active {
                let chain = sweep_chain(&members[m], &states[m], seg + 1);
                g.append(chain);
            }
            Continue::Append(g)
        })
    }

    /// Sweep `sweep` for the given member subset, fused into one graph.
    fn sweep_graph(
        &self,
        states: &[Arc<Mutex<DdpState>>],
        members: &[usize],
        sweep: usize,
    ) -> JobGraph<DdpJob> {
        let mut g = JobGraph::new();
        for &m in members {
            g.append(sweep_chain(&self.members[m], &states[m], sweep));
        }
        g
    }

    /// Every member solved in pure `linalg-ref` arithmetic.
    pub fn reference(&self) -> Result<Vec<DdpReference>, String> {
        self.members
            .iter()
            .map(|p| {
                let mut st = DdpState::fresh(p);
                for sweep in 0..self.params.max_sweeps {
                    for t in (0..p.horizon).rev() {
                        if t == p.horizon - 1 {
                            st.vx = st.xs[p.horizon].iter().map(|&x| p.qf * x).collect();
                            st.vxx =
                                Matrix::from_fn(NX, NX, |i, j| if i == j { p.qf } else { 0.0 });
                        }
                        let vxx_b = mul(&st.vxx, &p.b);
                        let quu = p.quu(&st, t, &vxx_b);
                        let l = cholesky(&quu).map_err(|e| {
                            format!("ipddp reference m{} sweep {sweep} t{t}: {e:?}", p.index)
                        })?;
                        p.backward_step(&mut st, t, &l);
                    }
                    let (grad, mu_pre) = p.forward_pass(&mut st);
                    if p.converged(grad, mu_pre) {
                        return Ok(DdpReference {
                            us: st.us,
                            cost: st.cost,
                            sweeps: sweep + 1,
                        });
                    }
                }
                Err(format!(
                    "ipddp reference m{}: no convergence within {} sweeps",
                    p.index, self.params.max_sweeps
                ))
            })
            .collect()
    }

    /// Verify a dynamic run: every member's last closing report must say
    /// converged, its controls must be strictly inside the box, and its
    /// trajectory and cost must match the `linalg-ref` reference twin.
    pub fn check(&self, outcome: &DynamicOutcome<KernelReport>) -> Result<(), String> {
        let reference = self.reference()?;
        for (m, (p, r)) in self.members.iter().zip(&reference).enumerate() {
            // The closing job labels itself with the member index; take
            // the last sweep's report for this member.
            let tag = format!("ipddp-m{m}-");
            let last = outcome
                .segments
                .iter()
                .flatten()
                .filter(|rep| rep.kernel.starts_with(&tag))
                .fold(None, |_, rep| Some(rep))
                .ok_or_else(|| format!("ipddp: no closing report for member {m}"))?;
            let Details::Ddp { u, cost, grad, mu } = &last.details else {
                return Err(format!(
                    "ipddp m{m}: closing report carries foreign details"
                ));
            };
            if !p.converged(*grad, *mu) {
                return Err(format!(
                    "ipddp m{m}: not converged (grad {grad:.2e}, mu {mu:.2e})"
                ));
            }
            let mut max_diff = 0.0f64;
            for t in 0..p.horizon {
                for i in 0..NU {
                    let uij = u[(i, t)];
                    if uij.abs() >= p.umax {
                        return Err(format!(
                            "ipddp m{m}: u[{i},{t}] = {uij} breaches the |u| < {} box",
                            p.umax
                        ));
                    }
                    max_diff = max_diff.max((uij - r.us[t][i]).abs());
                }
            }
            if max_diff > 1e-4 * (1.0 + p.umax) {
                return Err(format!(
                    "ipddp m{m}: device controls differ from linalg-ref by {max_diff:.2e}"
                ));
            }
            let cost_diff = (cost - r.cost).abs() / (1.0 + r.cost.abs());
            if cost_diff > 1e-6 {
                return Err(format!(
                    "ipddp m{m}: device cost differs from linalg-ref by {cost_diff:.2e}"
                ));
            }
        }
        Ok(())
    }
}

/// Scheduler cost hint of one timestep's job (4×4 CHOL + 4×8 TRSM).
fn per_step_cost() -> u64 {
    let (nu, nx) = (NU as u64, NX as u64);
    nu * nu * nu / 3 + nu * nu * (nx + 4)
}

/// One member's sweep as a chain of `horizon` jobs, `t = T−1` first so
/// job ids ascend as the Riccati recursion descends.
fn sweep_chain(p: &Arc<DdpProblem>, st: &Arc<Mutex<DdpState>>, sweep: usize) -> JobGraph<DdpJob> {
    let mut g = JobGraph::new();
    let mut prev = None;
    for t in (0..p.horizon).rev() {
        let job = DdpJob {
            problem: Arc::clone(p),
            state: Arc::clone(st),
            t,
            sweep,
        };
        let id = match prev {
            None => g.add(job),
            Some(prev) => g.add_after(job, &[prev]),
        };
        prev = Some(id);
    }
    g
}

/// One timestep of one member's backward sweep as a chip job; the `t = 0`
/// job additionally folds the forward pass and closes the sweep with a
/// [`Details::Ddp`] report.
pub struct DdpJob {
    problem: Arc<DdpProblem>,
    state: Arc<Mutex<DdpState>>,
    t: usize,
    sweep: usize,
}

impl ChipJob for DdpJob {
    type Output = KernelReport;

    fn cost_hint(&self) -> u64 {
        per_step_cost().max(1)
    }

    fn transfer_words(&self) -> u64 {
        (NU * (NU + 1) / 2 + NU * (1 + NX)) as u64
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let p = &self.problem;
        let t = self.t;
        // Assemble Q_uu from the incoming value function (seeding it at
        // the terminal step), factor it on the device, and run the
        // Riccati recursion around the factor.
        let quu = {
            let mut st = self.state.lock().expect("ddp state poisoned");
            if t == p.horizon - 1 {
                st.vx = st.xs[p.horizon].iter().map(|&x| p.qf * x).collect();
                st.vxx = Matrix::from_fn(NX, NX, |i, j| if i == j { p.qf } else { 0.0 });
            }
            let vxx_b = mul(&st.vxx, &p.b);
            p.quu(&st, t, &vxx_b)
        };
        let (l, mut stats) = blocked_cholesky_run(eng.core_mut(), &quu)?;
        let (qu, qux) = {
            let mut st = self.state.lock().expect("ddp state poisoned");
            p.backward_step(&mut st, t, &l)
        };
        // The gains need Q_uu⁻¹·[Q_u | Q_ux]: run the forward half as a
        // blocked TRSM so the device pays for the panel. The recursion
        // itself solved both halves host-side inside `backward_step`,
        // bit-identically to the reference twin.
        let panel = Matrix::from_fn(NU, (1 + NX).div_ceil(4) * 4, |i, j| {
            if j == 0 {
                qu[i]
            } else if j <= NX {
                qux[(i, j - 1)]
            } else {
                0.0
            }
        });
        let (_, trsm_stats) = blocked_trsm_run(eng.core_mut(), &l, &panel)?;
        stats.merge(&trsm_stats);
        if t == 0 {
            let (grad, mu_pre, u, cost) = {
                let mut st = self.state.lock().expect("ddp state poisoned");
                let (grad, mu_pre) = p.forward_pass(&mut st);
                let u = Matrix::from_fn(NU, p.horizon, |i, tt| st.us[tt][i]);
                (grad, mu_pre, u, st.cost)
            };
            Ok(step_report(
                eng,
                &format!("ipddp-m{}-sweep-{}", p.index, self.sweep),
                stats,
                Details::Ddp {
                    u,
                    cost,
                    grad,
                    mu: mu_pre,
                },
            ))
        } else {
            Ok(step_report(
                eng,
                &format!("ipddp-m{}-t{}", p.index, t),
                stats,
                Details::Cholesky { l },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::dynamic::run_dynamic;
    use lac_sim::{ChipConfig, LacConfig, LacService, Scheduler, TenantConfig};

    #[test]
    fn reference_members_converge_non_uniformly() {
        let fleet = IpddpFleet::new(IpddpParams {
            members: 5,
            ..IpddpParams::default()
        });
        let refs = fleet.reference().unwrap();
        let sweeps: Vec<usize> = refs.iter().map(|r| r.sweeps).collect();
        assert!(sweeps.iter().all(|&s| s >= 5), "{sweeps:?}");
        assert!(
            sweeps.windows(2).any(|w| w[0] != w[1]),
            "members should converge after different sweep counts: {sweeps:?}"
        );
    }

    #[test]
    fn fleet_converges_and_checks_out() {
        let fleet = IpddpFleet::new(IpddpParams {
            members: 3,
            horizon: 8,
            ..IpddpParams::default()
        });
        let mut svc: LacService<DdpJob> = LacService::new(ChipConfig::new(3, LacConfig::default()));
        let t = svc.add_tenant(TenantConfig::new("ddp"));
        let run = run_dynamic(&mut svc, vec![(t, fleet.dynamic())], Scheduler::FairShare).unwrap();
        fleet.check(&run.outcomes[0]).unwrap();
        let out = &run.outcomes[0];
        assert!(out.iterations() >= 5);
        // Segments shrink as members converge: the last sweep holds
        // fewer jobs than the first.
        let first = out.segments.first().unwrap().len();
        let last = out.segments.last().unwrap().len();
        assert!(last < first, "fleet should drain ({first} -> {last} jobs)");
    }

    #[test]
    fn sweep_counts_are_identical_across_policies() {
        let fleet = IpddpFleet::new(IpddpParams {
            members: 2,
            horizon: 8,
            ..IpddpParams::default()
        });
        let mut shapes = Vec::new();
        for sched in [
            Scheduler::Fifo,
            Scheduler::LeastLoaded,
            Scheduler::FairShare,
        ] {
            let mut svc: LacService<DdpJob> =
                LacService::new(ChipConfig::new(2, LacConfig::default()));
            let t = svc.add_tenant(TenantConfig::new("ddp"));
            let run = run_dynamic(&mut svc, vec![(t, fleet.dynamic())], sched).unwrap();
            fleet.check(&run.outcomes[0]).unwrap();
            shapes.push(
                run.outcomes[0]
                    .segments
                    .iter()
                    .map(|s| s.len())
                    .collect::<Vec<_>>(),
            );
        }
        assert!(shapes.windows(2).all(|s| s[0] == s[1]), "{shapes:?}");
    }
}
