//! GEMM on the LAC (§3.1–§3.4): `C(mc×n) += A(mc×kc) · B(kc×n)` as a
//! sequence of rank-1 updates over the broadcast buses.
//!
//! Two schedules are provided:
//!
//! * **simple** — load/compute/store phases strictly sequenced (the paper's
//!   un-overlapped baseline);
//! * **overlap** — the §3.4 schedule: the `nr×nr` C tile stays in the
//!   accumulators; the *previous* tile streams out of register 0 and the
//!   *next* tile prefetches into register 1 over the otherwise-idle column
//!   buses during the `kc` MAC cycles, and the next B panel is double
//!   buffered into the dual-ported B memory the same way. Per-tile overhead
//!   drops from `2nr + p` to `p` cycles.

use crate::layout::{ALayout, GemmDataLayout};
use lac_sim::{ExecStats, ExtOp, Lac, Program, ProgramBuilder, SimError, Source};

/// Parameters for a GEMM inner-kernel run.
#[derive(Clone, Copy, Debug)]
pub struct GemmParams {
    /// Row-panel height (rows of `A` and `C`).
    pub mc: usize,
    /// Panel depth (columns of `A`, rows of `B`).
    pub kc: usize,
    /// Output width (columns of `B` and `C`).
    pub n: usize,
    /// Use the overlapped (register-double-buffered) schedule.
    pub overlap: bool,
    /// Compute `C -= A·B` instead (used by blocked TRSM / Cholesky).
    pub negate: bool,
}

impl Default for GemmParams {
    /// Canonical small problem (16³, overlapped) — a base for
    /// struct-update syntax: `GemmParams { negate: true, ..Default::default() }`.
    fn default() -> Self {
        Self::new(16, 16, 16)
    }
}

impl GemmParams {
    /// The overlapped (register-double-buffered) schedule.
    pub fn new(mc: usize, kc: usize, n: usize) -> Self {
        Self {
            mc,
            kc,
            n,
            overlap: true,
            negate: false,
        }
    }

    /// The naive (non-overlapped) schedule — the §3.3 baseline.
    pub fn simple(mc: usize, kc: usize, n: usize) -> Self {
        Self {
            mc,
            kc,
            n,
            overlap: false,
            negate: false,
        }
    }
}

/// Result of a GEMM kernel run.
#[derive(Clone, Debug)]
pub struct GemmReport {
    /// Event counters of the run.
    pub stats: ExecStats,
    /// Useful MAC operations (`mc · kc · n`).
    pub useful_macs: u64,
    /// Utilization against peak (`useful_macs / (cycles · nr²)`).
    pub utilization: f64,
}

/// Registers used by the overlapped schedule.
const REG_STREAM_OUT: usize = 0;
const REG_PREFETCH: usize = 1;

/// Build the GEMM microprogram for `lay`/`params` on an `nr × nr` mesh with
/// MAC pipeline depth `p`.
///
/// The program is a pure function of the *shapes* — operand values live in
/// the memory image — so one program can be built once and reused across
/// any number of same-shape jobs (e.g. the row-panel queue a multi-core
/// chip drains). Reuse matters: a production-sized program is hundreds of
/// megabytes of micro-instructions, and rebuilding it per job costs more
/// than simulating it.
pub fn gemm_program(nr: usize, p: usize, lay: &GemmDataLayout, params: &GemmParams) -> Program {
    let GemmParams {
        mc,
        kc,
        n,
        overlap,
        negate,
    } = *params;
    assert!(
        mc % nr == 0 && kc % nr == 0 && n % nr == 0,
        "dimensions must be multiples of nr"
    );
    assert_eq!(
        (lay.mc, lay.kc, lay.n),
        (mc, kc, n),
        "layout/params mismatch"
    );
    let alay = ALayout::new(mc, kc, nr);
    assert!(
        !overlap || kc >= 2 * nr,
        "overlap schedule needs kc >= 2·nr for the C traffic"
    );
    let nblocks = mc / nr;
    let npanels = n / nr;
    // Overlapped B prefetch only fits if the per-block chunk leaves room
    // after the 2·nr cycles of C traffic.
    let b_chunk = kc.div_ceil(nblocks);
    let overlap_b = overlap && kc >= 2 * nr + b_chunk;

    let mut b = ProgramBuilder::new(nr);

    // ---- phase 1: stream the A block into the local stores --------------
    // Bus c carries the A columns congruent to c (mod nr), element by element.
    {
        let cols_per_bus = kc / nr; // A-columns streamed by each bus
        for t in 0..mc * cols_per_bus {
            let step = b.push_step();
            for c in 0..nr {
                // t enumerates (local column index, row) pairs for bus c.
                let lc = t / mc; // which of this bus's A-columns
                let i = t % mc;
                let pcol = lc * nr + c;
                b.ext(
                    step,
                    ExtOp::Load {
                        col: c,
                        addr: lay.a_addr(i, pcol),
                    },
                );
                let r = i % nr;
                b.pe_mut(step, r, c).sram_a_write = Some((alay.addr(i, pcol), Source::ColBus));
            }
        }
    }

    // ---- phase 2: panels --------------------------------------------------
    // Tracks the (block, panel) whose C currently sits in REG_STREAM_OUT.
    let mut pending_store: Option<(usize, usize)> = None;

    for jp in 0..npanels {
        let buf = if overlap_b { (jp % 2) * kc } else { 0 };

        // B panel load (first panel always; later panels only when not
        // prefetched during the previous panel's MAC cycles).
        if jp == 0 || !overlap_b {
            for pp in 0..kc {
                let step = b.push_step();
                for c in 0..nr {
                    b.ext(
                        step,
                        ExtOp::Load {
                            col: c,
                            addr: lay.b_addr(pp, jp * nr + c),
                        },
                    );
                    for r in 0..nr {
                        b.pe_mut(step, r, c).sram_b_write = Some((buf + pp, Source::ColBus));
                    }
                }
            }
        }

        // C prologue: only the very first panel needs an explicit prefetch
        // of its first tile (later ones were prefetched during the previous
        // panel). The simple schedule preloads accumulators directly.
        if jp == 0 {
            for s in 0..nr {
                let step = b.push_step();
                for c in 0..nr {
                    b.ext(
                        step,
                        ExtOp::Load {
                            col: c,
                            addr: lay.c_addr(s, jp * nr + c),
                        },
                    );
                    if overlap {
                        b.pe_mut(step, s, c).reg_write = Some((REG_PREFETCH, Source::ColBus));
                    } else {
                        b.pe_mut(step, s, c).acc_load = Some(Source::ColBus);
                    }
                }
            }
            if overlap {
                let step = b.push_step();
                for r in 0..nr {
                    for c in 0..nr {
                        b.pe_mut(step, r, c).acc_load = Some(Source::Reg(REG_PREFETCH));
                    }
                }
            }
        }

        let mut b_prefetched = 0usize; // words of next panel's B loaded so far

        for blk in 0..nblocks {
            // ---- kc MAC cycles ------------------------------------------
            let mac_start = b.len();
            for pp in 0..kc {
                let step = b.push_step();
                for r in 0..nr {
                    let owner_c = pp % nr;
                    let i = blk * nr + r;
                    b.pe_mut(step, r, owner_c).row_write = Some(Source::SramA(alay.addr(i, pp)));
                }
                for r in 0..nr {
                    for c in 0..nr {
                        let pe = b.pe_mut(step, r, c);
                        pe.mac = Some((Source::RowBus, Source::SramB(buf + pp)));
                        pe.negate_product = negate;
                    }
                }
            }

            if overlap {
                // Stream out the previously finished tile (cycles 0..nr).
                if let Some((pb, pj)) = pending_store.take() {
                    for s in 0..nr {
                        let step = mac_start + s;
                        for c in 0..nr {
                            b.pe_mut(step, s, c).col_write = Some(Source::Reg(REG_STREAM_OUT));
                            b.ext(
                                step,
                                ExtOp::Store {
                                    col: c,
                                    addr: lay.c_addr(pb * nr + s, pj * nr + c),
                                },
                            );
                        }
                    }
                }
                // Prefetch the next tile's C (cycles nr..2nr).
                let next = if blk + 1 < nblocks {
                    Some((blk + 1, jp))
                } else if jp + 1 < npanels {
                    Some((0, jp + 1))
                } else {
                    None
                };
                if let Some((nb, nj)) = next {
                    for s in 0..nr {
                        let step = mac_start + nr + s;
                        for c in 0..nr {
                            b.ext(
                                step,
                                ExtOp::Load {
                                    col: c,
                                    addr: lay.c_addr(nb * nr + s, nj * nr + c),
                                },
                            );
                            b.pe_mut(step, s, c).reg_write = Some((REG_PREFETCH, Source::ColBus));
                        }
                    }
                }
                // Spread the next B panel's load over the remaining cycles.
                if overlap_b && jp + 1 < npanels {
                    let next_buf = ((jp + 1) % 2) * kc;
                    let mut t = 2 * nr;
                    while b_prefetched < kc && t < kc {
                        let pp = b_prefetched;
                        let step = mac_start + t;
                        for c in 0..nr {
                            b.ext(
                                step,
                                ExtOp::Load {
                                    col: c,
                                    addr: lay.b_addr(pp, (jp + 1) * nr + c),
                                },
                            );
                            for r in 0..nr {
                                b.pe_mut(step, r, c).sram_b_write =
                                    Some((next_buf + pp, Source::ColBus));
                            }
                        }
                        b_prefetched += 1;
                        t += 1;
                    }
                }
            }

            // ---- drain + tile turnover ----------------------------------
            b.idle(p - 1);
            if overlap {
                // One cycle: acc → reg0, reg1 → acc, for all PEs at once.
                let step = b.push_step();
                let more = blk + 1 < nblocks || jp + 1 < npanels;
                for r in 0..nr {
                    for c in 0..nr {
                        let pe = b.pe_mut(step, r, c);
                        pe.reg_write = Some((REG_STREAM_OUT, Source::Acc));
                        if more {
                            pe.acc_load = Some(Source::Reg(REG_PREFETCH));
                        }
                    }
                }
                pending_store = Some((blk, jp));
            } else {
                // Simple schedule: one idle to finish the drain, then store
                // the tile and preload the next directly into the
                // accumulators.
                b.idle(1);
                for s in 0..nr {
                    let step = b.push_step();
                    for c in 0..nr {
                        b.pe_mut(step, s, c).col_write = Some(Source::Acc);
                        b.ext(
                            step,
                            ExtOp::Store {
                                col: c,
                                addr: lay.c_addr(blk * nr + s, jp * nr + c),
                            },
                        );
                    }
                }
                let next = if blk + 1 < nblocks {
                    Some((blk + 1, jp))
                } else if jp + 1 < npanels {
                    Some((0, jp + 1))
                } else {
                    None
                };
                if let Some((nb, nj)) = next {
                    for s in 0..nr {
                        let step = b.push_step();
                        for c in 0..nr {
                            b.ext(
                                step,
                                ExtOp::Load {
                                    col: c,
                                    addr: lay.c_addr(nb * nr + s, nj * nr + c),
                                },
                            );
                            b.pe_mut(step, s, c).acc_load = Some(Source::ColBus);
                        }
                    }
                }
            }
        }
    }

    // ---- epilogue: flush the last tile -----------------------------------
    if let Some((pb, pj)) = pending_store.take() {
        for s in 0..nr {
            let step = b.push_step();
            for c in 0..nr {
                b.pe_mut(step, s, c).col_write = Some(Source::Reg(REG_STREAM_OUT));
                b.ext(
                    step,
                    ExtOp::Store {
                        col: c,
                        addr: lay.c_addr(pb * nr + s, pj * nr + c),
                    },
                );
            }
        }
    }

    b.build()
}

/// Run the GEMM inner kernel on `lac` against `mem` laid out by `lay`.
///
/// `mem` must contain A, B and C per `lay`; on success C has been updated in
/// place and the returned report carries the cycle/energy counters.
pub(crate) fn gemm_run(
    lac: &mut Lac,
    mem: &mut lac_sim::ExternalMem,
    lay: &GemmDataLayout,
    params: &GemmParams,
) -> Result<GemmReport, SimError> {
    let nr = lac.config().nr;
    let p = lac.config().fpu.pipeline_depth;
    let alay = ALayout::new(params.mc, params.kc, nr);
    assert!(
        alay.words_per_pe() <= lac.config().sram_a_words,
        "A block does not fit the local store"
    );
    let b_words_needed = if params.overlap {
        2 * params.kc
    } else {
        params.kc
    };
    assert!(
        b_words_needed <= lac.config().sram_b_words,
        "B panel does not fit the local store"
    );
    let prog = crate::memo::program(
        "gemm",
        &[
            nr as u64,
            p as u64,
            lay.mc as u64,
            lay.kc as u64,
            lay.n as u64,
            lay.a_off as u64,
            lay.b_off as u64,
            lay.c_off as u64,
            params.mc as u64,
            params.kc as u64,
            params.n as u64,
            params.overlap as u64,
            params.negate as u64,
        ],
        || gemm_program(nr, p, lay, params),
    );
    let stats = lac.run(&prog, mem)?;
    let useful = (params.mc * params.kc * params.n) as u64;
    Ok(GemmReport {
        stats,
        useful_macs: useful,
        utilization: useful as f64 / (stats.cycles as f64 * (nr * nr) as f64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::{ExternalMem, LacConfig};
    use linalg_ref::{gemm, max_abs_diff, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        mc: usize,
        kc: usize,
        n: usize,
        seed: u64,
    ) -> (Matrix, Matrix, Matrix, GemmDataLayout, ExternalMem) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(mc, kc, &mut rng);
        let bm = Matrix::random(kc, n, &mut rng);
        let c = Matrix::random(mc, n, &mut rng);
        let lay = GemmDataLayout::new(mc, kc, n);
        let mem = ExternalMem::from_vec(lay.pack(&a, &bm, &c));
        (a, bm, c, lay, mem)
    }

    fn reference(a: &Matrix, b: &Matrix, c: &Matrix, negate: bool) -> Matrix {
        let mut expect = c.clone();
        if negate {
            let neg = Matrix::from_fn(a.rows(), a.cols(), |i, j| -a[(i, j)]);
            gemm(&neg, b, &mut expect);
        } else {
            gemm(a, b, &mut expect);
        }
        expect
    }

    #[test]
    fn simple_schedule_matches_reference() {
        let (a, bm, c, lay, mut mem) = setup(8, 8, 8, 1);
        let mut lac = Lac::new(LacConfig::default());
        let params = GemmParams::simple(8, 8, 8);
        let rep = gemm_run(&mut lac, &mut mem, &lay, &params).unwrap();
        let got = lay.unpack_c(mem.as_slice());
        let expect = reference(&a, &bm, &c, false);
        assert!(max_abs_diff(&got, &expect) < 1e-12);
        assert_eq!(rep.stats.mac_ops, 8 * 8 * 8);
    }

    #[test]
    fn overlap_schedule_matches_reference() {
        let (a, bm, c, lay, mut mem) = setup(16, 16, 16, 2);
        let mut lac = Lac::new(LacConfig::default());
        let params = GemmParams::new(16, 16, 16);
        let rep = gemm_run(&mut lac, &mut mem, &lay, &params).unwrap();
        let got = lay.unpack_c(mem.as_slice());
        let expect = reference(&a, &bm, &c, false);
        assert!(max_abs_diff(&got, &expect) < 1e-12);
        assert!(rep.utilization > 0.5, "util {}", rep.utilization);
    }

    #[test]
    fn overlap_beats_simple_utilization() {
        for &(mc, kc, n) in &[(16, 32, 16), (32, 32, 32)] {
            let (_, _, _, lay, mut mem1) = setup(mc, kc, n, 3);
            let mut mem2 = mem1.clone();
            let mut lac1 = Lac::new(LacConfig::default());
            let mut lac2 = Lac::new(LacConfig::default());
            let r1 = gemm_run(&mut lac1, &mut mem1, &lay, &GemmParams::simple(mc, kc, n)).unwrap();
            let r2 = gemm_run(&mut lac2, &mut mem2, &lay, &GemmParams::new(mc, kc, n)).unwrap();
            assert!(
                r2.utilization > r1.utilization,
                "overlap {} vs simple {}",
                r2.utilization,
                r1.utilization
            );
        }
    }

    #[test]
    fn negate_computes_c_minus_ab() {
        let (a, bm, c, lay, mut mem) = setup(8, 8, 8, 4);
        let mut lac = Lac::new(LacConfig::default());
        let params = GemmParams {
            negate: true,
            ..GemmParams::new(8, 8, 8)
        };
        gemm_run(&mut lac, &mut mem, &lay, &params).unwrap();
        let got = lay.unpack_c(mem.as_slice());
        let expect = reference(&a, &bm, &c, true);
        assert!(max_abs_diff(&got, &expect) < 1e-12);
    }

    #[test]
    fn utilization_grows_with_kc() {
        // The §3.4 analysis: overhead per tile is ~p cycles, so utilization
        // approaches 1 as kc grows.
        let mut last = 0.0;
        for &kc in &[16usize, 64, 128] {
            let (_, _, _, lay, mut mem) = setup(16, kc, 64, 5);
            let mut lac = Lac::new(LacConfig::default());
            let rep = gemm_run(&mut lac, &mut mem, &lay, &GemmParams::new(16, kc, 64)).unwrap();
            assert!(rep.utilization > last, "kc={kc}");
            last = rep.utilization;
        }
        assert!(
            last > 0.85,
            "large-kc utilization should approach peak, got {last}"
        );
    }

    #[test]
    fn tall_block_and_wide_panel() {
        let (a, bm, c, lay, mut mem) = setup(24, 8, 32, 6);
        let mut lac = Lac::new(LacConfig::default());
        gemm_run(&mut lac, &mut mem, &lay, &GemmParams::new(24, 8, 32)).unwrap();
        let got = lay.unpack_c(mem.as_slice());
        assert!(max_abs_diff(&got, &reference(&a, &bm, &c, false)) < 1e-12);
    }

    #[test]
    fn respects_bandwidth_cap_when_not_exceeded() {
        // nr words/cycle is the natural cap (one per column bus).
        let cfg = LacConfig {
            ext_words_per_cycle: Some(4),
            ..Default::default()
        };
        let (_, _, _, lay, mut mem) = setup(8, 8, 8, 7);
        let mut lac = Lac::new(cfg);
        gemm_run(&mut lac, &mut mem, &lay, &GemmParams::new(8, 8, 8)).unwrap();
    }

    #[test]
    fn stats_account_external_traffic() {
        let (_, _, _, lay, mut mem) = setup(8, 8, 8, 8);
        let mut lac = Lac::new(LacConfig::default());
        let rep = gemm_run(&mut lac, &mut mem, &lay, &GemmParams::simple(8, 8, 8)).unwrap();
        // A once (mc·kc), B once (kc·n), C in once (mc·n).
        let expected_reads = 8 * 8 + 8 * 8 + 8 * 8;
        assert_eq!(rep.stats.ext_reads, expected_reads as u64);
        assert_eq!(rep.stats.ext_writes, 8 * 8);
    }
}
