//! The unified workload API: every kernel as a [`Workload`] run through a
//! [`LacEngine`] session.
//!
//! The dissertation evaluates one core across a dozen kernels; production
//! use (e.g. the repeated Cholesky factorizations inside an interior-point
//! solver) queues many of them against the same core. This module gives
//! all of them one shape:
//!
//! * [`Workload`] — a problem instance (operands + schedule options) that
//!   knows how to stage itself into a [`LacEngine`], run, and report;
//! * [`KernelReport`] — the uniform result: session-mergeable [`ExecStats`],
//!   useful-flop count, utilization, and a [`Details`] variant carrying the
//!   kernel's functional outputs;
//! * [`registry`] — one canonical instance of every workload, so harnesses
//!   (benchmark drivers, integration tests, `run_all`) iterate data-driven
//!   instead of hard-coding kernels.
//!
//! ```no_run
//! use lac_kernels::{registry, Workload};
//! use lac_sim::{LacConfig, LacEngine};
//!
//! for w in registry() {
//!     let mut eng = LacEngine::builder().config(w.config(LacConfig::default())).build();
//!     let report = w.run(&mut eng).expect("hazard-free schedule");
//!     w.check(&report).expect("matches linalg-ref");
//!     println!("{:<14} {:>8} cycles", report.kernel, report.stats.cycles);
//! }
//! ```

use crate::chol::{blocked_cholesky_run, cholesky_kernel_run};
use crate::fft::fft64_run;
use crate::gemm::{gemm_run, GemmParams};
use crate::layout::GemmDataLayout;
use crate::lu::{blocked_lu_run, lu_panel_matrix_run, LuOptions};
use crate::qr::qr_panel_run;
use crate::symm::blocked_symm_run;
use crate::syrk::{syrk_run, SyrkDataLayout, SyrkParams};
use crate::trmm::blocked_trmm_run;
use crate::trsm::{blocked_trsm_run, trsm_stacked_run};
use crate::vecnorm::{vecnorm_run, VnormOptions};
use lac_fpu::FpuConfig;
use lac_sim::{ChipJob, ExecStats, LacConfig, LacEngine, SimError};
use linalg_ref::householder::HouseholderReflector;
use linalg_ref::{
    cholesky, fft_radix4, gemm, lu_partial_pivot, max_abs_diff, nrm2, qr_householder, symm, trmm,
    trsm, Complex, Matrix, Side, Triangle,
};

/// One workload: a problem instance that stages itself into a session
/// engine, runs, and reports uniformly.
///
/// `Send + Sync` is part of the contract so workloads can be queued onto a
/// multi-core [`lac_sim::LacChip`] (every implementor is plain operand
/// data).
///
/// ```
/// use lac_kernels::{Details, GemmWorkload, Workload};
/// use lac_sim::{LacConfig, LacEngine};
///
/// let w = GemmWorkload::demo(); // 16×16×16, deterministic operands
/// let mut eng = LacEngine::builder()
///     .config(w.config(LacConfig::default()))
///     .build();
/// let report = w.run(&mut eng).expect("hazard-free schedule");
///
/// // Every workload self-verifies against linalg-ref…
/// w.check(&report).expect("matches the reference");
/// // …reports uniformly…
/// assert_eq!(report.kernel, "gemm");
/// assert_eq!(report.useful_flops, 2 * 16 * 16 * 16);
/// let Details::Gemm { c } = &report.details else { panic!() };
/// assert_eq!((c.rows(), c.cols()), (16, 16));
/// // …and meters the session engine.
/// assert_eq!(eng.workloads_run(), 1);
/// ```
pub trait Workload: Send + Sync {
    /// Stable kernel name (registry key, display label).
    fn name(&self) -> &str;

    /// Adapt a base core configuration to this workload's requirements
    /// (identity for most kernels; e.g. the wide-accumulator vector norm
    /// turns on the exponent extension).
    fn config(&self, base: LacConfig) -> LacConfig {
        base
    }

    /// Estimated useful flops — the scheduler's load unit for least-loaded
    /// placement on a chip. Only relative magnitudes matter; the default
    /// makes all jobs equal.
    fn cost_hint(&self) -> u64 {
        1
    }

    /// Execute on the engine. Stats are metered into the engine's session
    /// accumulator as well as returned in the report.
    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError>;

    /// Cross-check the report's functional outputs against `linalg-ref`.
    fn check(&self, report: &KernelReport) -> Result<(), String>;
}

/// Workload queues dispatch directly onto a [`lac_sim::LacChip`]: the job's
/// cost is the workload's flop estimate and its output is the uniform
/// [`KernelReport`].
impl ChipJob for Box<dyn Workload> {
    type Output = KernelReport;

    fn cost_hint(&self) -> u64 {
        Workload::cost_hint(self.as_ref())
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        self.run(eng)
    }
}

/// Uniform result of one workload run.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelReport {
    /// Which workload produced this ([`Workload::name`]).
    pub kernel: String,
    /// Event counters of this run only (the engine's session accumulator
    /// has them merged already).
    pub stats: ExecStats,
    /// Mathematically necessary flops (2 per useful MAC); falls back to
    /// the executed-flop count for kernels without a closed-form count.
    pub useful_flops: u64,
    /// Useful-MAC utilization against the core's peak.
    pub utilization: f64,
    /// Per-kernel functional outputs.
    pub details: Details,
}

/// Per-kernel extras riding on the unified report.
#[derive(Clone, Debug, PartialEq)]
pub enum Details {
    /// Updated `C` of a GEMM-class kernel (also TRMM's product and SYMM's
    /// accumulation).
    Gemm {
        /// The updated output matrix.
        c: Matrix,
    },
    /// Updated lower triangle of SYRK's `C`.
    Syrk {
        /// The updated output (lower triangle significant).
        c: Matrix,
    },
    /// Solution panel `X` of a triangular solve.
    Trsm {
        /// The solution panel.
        x: Matrix,
    },
    /// Cholesky factor `L` (lower).
    Cholesky {
        /// The factor.
        l: Matrix,
    },
    /// LAPACK-packed `L\U` factors plus pivot rows.
    Lu {
        /// `L\U` packed LAPACK-style.
        factors: Matrix,
        /// Pivot row per iteration.
        pivots: Vec<usize>,
    },
    /// Upper-triangular `R` and the Householder reflectors of a QR panel.
    Qr {
        /// The triangular factor.
        r: Matrix,
        /// One reflector per factored column.
        reflectors: Vec<HouseholderReflector>,
    },
    /// The computed ‖x‖₂.
    Vecnorm {
        /// The norm.
        norm: f64,
    },
    /// The 64-point spectrum, natural order.
    Fft {
        /// The transform.
        spectrum: Vec<Complex>,
    },
    /// The per-round Cholesky factors and final system matrix of a
    /// [`crate::solver::SolverLoopWorkload`].
    Solver {
        /// `Lₖ` per round.
        factors: Vec<Matrix>,
        /// The system matrix after the last update.
        final_a: Matrix,
    },
    /// Post-step iterate and residuals emitted by the closing job of one
    /// IP-PMM interior-point iteration ([`crate::ippmm`]) — what the
    /// iteration's continuation decides convergence from.
    Ipm {
        /// Primal iterate after the step (`n × 1`).
        x: Matrix,
        /// Equality multiplier after the step (`m × 1`).
        y: Matrix,
        /// Bound multiplier after the step (`n × 1`).
        z: Matrix,
        /// ∞-norm of the primal residual `b − Ax` after the step.
        rp: f64,
        /// ∞-norm of the dual residual `c + Qx − Aᵀy − z` after the step.
        rd: f64,
        /// Complementarity measure `xᵀz / n` after the step.
        mu: f64,
    },
    /// Post-sweep summary emitted by the closing job of one IPDDP
    /// backward/forward sweep ([`crate::ipddp`]) — what the fleet
    /// member's continuation decides convergence from.
    Ddp {
        /// Control trajectory after the sweep (`nu × T`).
        u: Matrix,
        /// Total objective of the new nominal trajectory (stage +
        /// terminal quadratic cost, barrier excluded).
        cost: f64,
        /// ∞-norm of the feedforward gains — the sweep's stationarity
        /// measure.
        grad: f64,
        /// Barrier weight after the sweep.
        mu: f64,
    },
}

/// Meter a finished run into the session and assemble the uniform report.
pub(crate) fn finish(
    eng: &mut LacEngine,
    name: &str,
    stats: ExecStats,
    useful_macs: Option<u64>,
    details: Details,
) -> KernelReport {
    eng.absorb(&stats);
    eng.note_workload();
    let nr = eng.config().nr;
    let (useful_flops, utilization) = match useful_macs {
        Some(m) => (2 * m, m as f64 / (stats.cycles as f64 * (nr * nr) as f64)),
        None => (stats.flops(), stats.utilization(nr)),
    };
    KernelReport {
        kernel: name.to_string(),
        stats,
        useful_flops,
        utilization,
        details,
    }
}

pub(crate) fn expect_details(kernel: &str, wanted: &str) -> String {
    format!("{kernel}: report carries foreign details (wanted {wanted})")
}

pub(crate) fn close(kernel: &str, what: &str, err: f64, tol: f64) -> Result<(), String> {
    if err < tol {
        Ok(())
    } else {
        Err(format!(
            "{kernel}: {what} differs from linalg-ref by {err:.3e} (tol {tol:.0e})"
        ))
    }
}

// ---- deterministic demo operands (registry instances) ---------------------

/// SplitMix64-style hash → [-1, 1); keeps demo problems reproducible
/// without a rand dependency in the library.
pub(crate) fn demo_value(i: usize, j: usize, salt: u64) -> f64 {
    let mut z = (i as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(salt.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
}

pub(crate) fn demo_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| demo_value(i, j, salt))
}

/// SPD: `M·Mᵀ + n·I` over a demo matrix.
pub(crate) fn demo_spd(n: usize, salt: u64) -> Matrix {
    let m = demo_matrix(n, n, salt);
    Matrix::from_fn(n, n, |i, j| {
        let dot: f64 = (0..n).map(|p| m[(i, p)] * m[(j, p)]).sum();
        dot + if i == j { n as f64 } else { 0.0 }
    })
}

/// Lower-triangular with diagonal bounded away from zero.
pub(crate) fn demo_lower(n: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if i > j {
            demo_value(i, j, salt)
        } else if i == j {
            1.5 + 0.4 * demo_value(i, i, salt)
        } else {
            0.0
        }
    })
}

// ---- GEMM -----------------------------------------------------------------

/// `C += A·B` through the rank-1-update schedule of §3.1–3.4.
#[derive(Clone, Debug)]
pub struct GemmWorkload {
    /// Left operand.
    pub a: Matrix,
    /// Right operand.
    pub b: Matrix,
    /// Accumulator / output.
    pub c: Matrix,
    /// Blocking and schedule options.
    pub params: GemmParams,
}

impl GemmWorkload {
    /// Overlapped schedule over the operands' natural dimensions.
    pub fn new(a: Matrix, b: Matrix, c: Matrix) -> Self {
        let params = GemmParams::new(a.rows(), a.cols(), b.cols());
        assert_eq!(b.rows(), a.cols());
        assert_eq!((c.rows(), c.cols()), (a.rows(), b.cols()));
        Self { a, b, c, params }
    }

    /// Override the schedule options.
    pub fn with_params(mut self, params: GemmParams) -> Self {
        self.params = params;
        self
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(
            demo_matrix(16, 16, 1),
            demo_matrix(16, 16, 2),
            demo_matrix(16, 16, 3),
        )
    }
}

impl Workload for GemmWorkload {
    fn name(&self) -> &str {
        "gemm"
    }

    fn cost_hint(&self) -> u64 {
        (2 * self.a.rows() * self.a.cols() * self.b.cols()) as u64
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let lay = GemmDataLayout::new(self.params.mc, self.params.kc, self.params.n);
        eng.load_image(lay.pack(&self.a, &self.b, &self.c));
        let (lac, mem) = eng.parts();
        let rep = gemm_run(lac, mem, &lay, &self.params)?;
        let c = lay.unpack_c(eng.mem().as_slice());
        Ok(finish(
            eng,
            self.name(),
            rep.stats,
            Some(rep.useful_macs),
            Details::Gemm { c },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Gemm { c } = &report.details else {
            return Err(expect_details(self.name(), "Gemm"));
        };
        let mut expect = self.c.clone();
        let a = if self.params.negate {
            Matrix::from_fn(self.a.rows(), self.a.cols(), |i, j| -self.a[(i, j)])
        } else {
            self.a.clone()
        };
        gemm(&a, &self.b, &mut expect);
        close(self.name(), "C", max_abs_diff(c, &expect), 1e-10)
    }
}

// ---- SYRK -----------------------------------------------------------------

/// `C (lower) += A·Aᵀ` with the bus-transpose of §5.2.
#[derive(Clone, Debug)]
pub struct SyrkWorkload {
    /// The rank-`kc` factor.
    pub a: Matrix,
    /// Accumulator / output (lower triangle significant).
    pub c: Matrix,
    /// Shape options.
    pub params: SyrkParams,
}

impl SyrkWorkload {
    /// An accumulating run over the operands' natural dimensions.
    pub fn new(a: Matrix, c: Matrix) -> Self {
        let params = SyrkParams::new(a.rows(), a.cols());
        assert_eq!((c.rows(), c.cols()), (a.rows(), a.rows()));
        Self { a, c, params }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(
            demo_matrix(16, 8, 4),
            demo_matrix(16, 16, 5).symmetrize_from_lower(),
        )
    }
}

impl Workload for SyrkWorkload {
    fn name(&self) -> &str {
        "syrk"
    }

    fn cost_hint(&self) -> u64 {
        (self.a.rows() * (self.a.rows() + 1) * self.a.cols()) as u64
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let SyrkParams { mc, kc, .. } = self.params;
        let lay = SyrkDataLayout::new(mc, kc);
        let mut image = vec![0.0; lay.total_words()];
        for p in 0..kc {
            for i in 0..mc {
                image[lay.a_addr(i, p)] = self.a[(i, p)];
            }
        }
        for j in 0..mc {
            for i in j..mc {
                image[lay.c_addr(i, j)] = self.c[(i, j)];
            }
        }
        eng.load_image(image);
        let (lac, mem) = eng.parts();
        let rep = syrk_run(lac, mem, &lay, &self.params)?;
        let c = Matrix::from_fn(mc, mc, |i, j| {
            if i >= j {
                eng.mem().read(lay.c_addr(i, j))
            } else {
                0.0
            }
        });
        Ok(finish(
            eng,
            self.name(),
            rep.stats,
            Some(rep.useful_macs),
            Details::Syrk { c },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Syrk { c } = &report.details else {
            return Err(expect_details(self.name(), "Syrk"));
        };
        let mut expect = self.c.clone();
        let at = self.a.transpose();
        let a = if self.params.negate {
            Matrix::from_fn(self.a.rows(), self.a.cols(), |i, j| -self.a[(i, j)])
        } else {
            self.a.clone()
        };
        gemm(&a, &at, &mut expect);
        close(
            self.name(),
            "C (lower)",
            max_abs_diff(&expect.tril(), c),
            1e-10,
        )
    }
}

// ---- TRSM -----------------------------------------------------------------

/// Stacked diagonal solve `L X = B` of Figure 5.5 (`L` is `nr × nr`).
#[derive(Clone, Debug)]
pub struct TrsmStackedWorkload {
    /// The `nr × nr` lower-triangular factor.
    pub l: Matrix,
    /// Right-hand sides.
    pub b: Matrix,
}

impl TrsmStackedWorkload {
    /// Solve `L X = B` for the given operands.
    pub fn new(l: Matrix, b: Matrix) -> Self {
        assert_eq!(l.rows(), l.cols());
        assert_eq!(b.rows(), l.rows());
        Self { l, b }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(demo_lower(4, 6), demo_matrix(4, 16, 7))
    }
}

impl Workload for TrsmStackedWorkload {
    fn name(&self) -> &str {
        "trsm-stacked"
    }

    fn cost_hint(&self) -> u64 {
        (self.l.rows() * self.l.rows() * self.b.cols()) as u64
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let nr = self.l.rows();
        let w = self.b.cols();
        let mut image = vec![0.0; nr * nr + nr * w];
        for j in 0..nr {
            for i in 0..nr {
                image[j * nr + i] = self.l[(i, j)];
            }
        }
        for j in 0..w {
            for i in 0..nr {
                image[nr * nr + j * nr + i] = self.b[(i, j)];
            }
        }
        eng.load_image(image);
        let (lac, mem) = eng.parts();
        let rep = trsm_stacked_run(lac, mem, w)?;
        let x = Matrix::from_fn(nr, w, |i, j| eng.mem().read(nr * nr + j * nr + i));
        Ok(finish(
            eng,
            self.name(),
            rep.stats,
            Some(rep.useful_macs),
            Details::Trsm { x },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Trsm { x } = &report.details else {
            return Err(expect_details(self.name(), "Trsm"));
        };
        let mut expect = self.b.clone();
        trsm(Side::Left, Triangle::Lower, &self.l, &mut expect);
        close(self.name(), "X", max_abs_diff(x, &expect), 1e-8)
    }
}

/// Blocked `L X = B` (Figure 5.7): GEMM updates alternating with stacked
/// diagonal solves.
#[derive(Clone, Debug)]
pub struct BlockedTrsmWorkload {
    /// The lower-triangular factor.
    pub l: Matrix,
    /// Right-hand sides.
    pub b: Matrix,
}

impl BlockedTrsmWorkload {
    /// Solve `L X = B` for the given operands.
    pub fn new(l: Matrix, b: Matrix) -> Self {
        assert_eq!(l.rows(), l.cols());
        assert_eq!(b.rows(), l.rows());
        Self { l, b }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(demo_lower(16, 8), demo_matrix(16, 8, 9))
    }
}

impl Workload for BlockedTrsmWorkload {
    fn name(&self) -> &str {
        "trsm"
    }

    fn cost_hint(&self) -> u64 {
        (self.l.rows() * self.l.rows() * self.b.cols()) as u64
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let (x, stats) = blocked_trsm_run(eng.core_mut(), &self.l, &self.b)?;
        Ok(finish(eng, self.name(), stats, None, Details::Trsm { x }))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Trsm { x } = &report.details else {
            return Err(expect_details(self.name(), "Trsm"));
        };
        let mut expect = self.b.clone();
        trsm(Side::Left, Triangle::Lower, &self.l, &mut expect);
        close(self.name(), "X", max_abs_diff(x, &expect), 1e-8)
    }
}

// ---- TRMM -----------------------------------------------------------------

/// `B := L·B` as growing-panel GEMMs (§5.1).
#[derive(Clone, Debug)]
pub struct TrmmWorkload {
    /// The lower-triangular multiplier.
    pub l: Matrix,
    /// The panel to multiply in place.
    pub b: Matrix,
}

impl TrmmWorkload {
    /// Compute `B := L·B` for the given operands.
    pub fn new(l: Matrix, b: Matrix) -> Self {
        assert_eq!(l.rows(), l.cols());
        assert_eq!(b.rows(), l.rows());
        Self { l, b }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(demo_lower(16, 10), demo_matrix(16, 8, 11))
    }
}

impl Workload for TrmmWorkload {
    fn name(&self) -> &str {
        "trmm"
    }

    fn cost_hint(&self) -> u64 {
        (self.l.rows() * self.l.rows() * self.b.cols()) as u64
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let (b, stats) = blocked_trmm_run(eng.core_mut(), &self.l, &self.b)?;
        Ok(finish(
            eng,
            self.name(),
            stats,
            None,
            Details::Gemm { c: b },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Gemm { c } = &report.details else {
            return Err(expect_details(self.name(), "Gemm"));
        };
        let mut expect = self.b.clone();
        trmm(Side::Left, Triangle::Lower, &self.l, &mut expect);
        close(self.name(), "L·B", max_abs_diff(c, &expect), 1e-10)
    }
}

// ---- SYMM -----------------------------------------------------------------

/// `C += A·B` with symmetric `A` stored in its lower triangle (§5.1).
#[derive(Clone, Debug)]
pub struct SymmWorkload {
    /// Symmetric `A`, stored in its lower triangle.
    pub a_lower: Matrix,
    /// Right operand.
    pub b: Matrix,
    /// Accumulator / output.
    pub c: Matrix,
}

impl SymmWorkload {
    /// Compute `C += A·B` for the given operands.
    pub fn new(a_lower: Matrix, b: Matrix, c: Matrix) -> Self {
        assert_eq!(a_lower.rows(), a_lower.cols());
        assert_eq!(b.rows(), a_lower.rows());
        assert_eq!((c.rows(), c.cols()), (b.rows(), b.cols()));
        Self { a_lower, b, c }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(
            demo_matrix(16, 16, 12).tril(),
            demo_matrix(16, 8, 13),
            demo_matrix(16, 8, 14),
        )
    }
}

impl Workload for SymmWorkload {
    fn name(&self) -> &str {
        "symm"
    }

    fn cost_hint(&self) -> u64 {
        (2 * self.a_lower.rows() * self.a_lower.rows() * self.b.cols()) as u64
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let (c, stats) = blocked_symm_run(eng.core_mut(), &self.a_lower, &self.b, &self.c)?;
        Ok(finish(eng, self.name(), stats, None, Details::Gemm { c }))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Gemm { c } = &report.details else {
            return Err(expect_details(self.name(), "Gemm"));
        };
        let mut expect = self.c.clone();
        symm(
            Side::Left,
            Triangle::Lower,
            &self.a_lower,
            &self.b,
            &mut expect,
        );
        close(self.name(), "C", max_abs_diff(c, &expect), 1e-10)
    }
}

// ---- Cholesky -------------------------------------------------------------

/// The `nr × nr` Cholesky tile kernel of §6.1.1.
#[derive(Clone, Debug)]
pub struct CholKernelWorkload {
    /// The SPD tile to factor.
    pub a: Matrix,
}

impl CholKernelWorkload {
    /// Factor the given `nr × nr` SPD tile.
    pub fn new(a: Matrix) -> Self {
        assert_eq!(a.rows(), a.cols());
        Self { a }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(demo_spd(4, 15))
    }
}

impl Workload for CholKernelWorkload {
    fn name(&self) -> &str {
        "chol-kernel"
    }

    fn cost_hint(&self) -> u64 {
        (self.a.rows().pow(3) / 3).max(1) as u64
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let nr = self.a.rows();
        eng.load_image((0..nr * nr).map(|x| self.a[(x % nr, x / nr)]).collect());
        let (lac, mem) = eng.parts();
        let rep = cholesky_kernel_run(lac, mem)?;
        let l = Matrix::from_fn(nr, nr, |i, j| {
            if i >= j {
                eng.mem().read(j * nr + i)
            } else {
                0.0
            }
        });
        Ok(finish(
            eng,
            self.name(),
            rep.stats,
            None,
            Details::Cholesky { l },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Cholesky { l } = &report.details else {
            return Err(expect_details(self.name(), "Cholesky"));
        };
        let expect = cholesky(&self.a).map_err(|e| format!("{}: reference: {e:?}", self.name()))?;
        close(self.name(), "L", max_abs_diff(l, &expect), 1e-9)
    }
}

/// Blocked right-looking Cholesky (Chol → TRSM → SYRK, Figure 6.1).
#[derive(Clone, Debug)]
pub struct BlockedCholWorkload {
    /// The SPD matrix to factor.
    pub a: Matrix,
}

impl BlockedCholWorkload {
    /// Factor the given SPD matrix.
    pub fn new(a: Matrix) -> Self {
        assert_eq!(a.rows(), a.cols());
        Self { a }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(demo_spd(16, 16))
    }
}

impl Workload for BlockedCholWorkload {
    fn name(&self) -> &str {
        "chol"
    }

    fn cost_hint(&self) -> u64 {
        (self.a.rows().pow(3) / 3).max(1) as u64
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let (l, stats) = blocked_cholesky_run(eng.core_mut(), &self.a)?;
        Ok(finish(
            eng,
            self.name(),
            stats,
            None,
            Details::Cholesky { l },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Cholesky { l } = &report.details else {
            return Err(expect_details(self.name(), "Cholesky"));
        };
        let expect = cholesky(&self.a).map_err(|e| format!("{}: reference: {e:?}", self.name()))?;
        close(self.name(), "L", max_abs_diff(l, &expect), 1e-7)
    }
}

// ---- LU -------------------------------------------------------------------

/// Panel LU with partial pivoting (§6.1.2), `K × nr`.
#[derive(Clone, Debug)]
pub struct LuPanelWorkload {
    /// The `K × nr` panel to factor.
    pub a: Matrix,
    /// Pivot-search implementation options.
    pub opts: LuOptions,
}

impl LuPanelWorkload {
    /// Factor the given panel.
    pub fn new(a: Matrix, opts: LuOptions) -> Self {
        Self { a, opts }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(demo_matrix(16, 4, 17), LuOptions::default())
    }
}

impl Workload for LuPanelWorkload {
    fn name(&self) -> &str {
        "lu-panel"
    }

    fn cost_hint(&self) -> u64 {
        (2 * self.a.rows() * self.a.cols() * self.a.cols()) as u64
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let (factors, pivots, stats) = lu_panel_matrix_run(eng.core_mut(), &self.a, &self.opts)?;
        Ok(finish(
            eng,
            self.name(),
            stats,
            None,
            Details::Lu { factors, pivots },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Lu { factors, pivots } = &report.details else {
            return Err(expect_details(self.name(), "Lu"));
        };
        let expect =
            lu_partial_pivot(&self.a).map_err(|e| format!("{}: reference: {e:?}", self.name()))?;
        if *pivots != expect.pivots {
            return Err(format!(
                "{}: pivots {pivots:?} vs reference {:?}",
                self.name(),
                expect.pivots
            ));
        }
        close(
            self.name(),
            "L\\U",
            max_abs_diff(factors, &expect.factors),
            1e-9,
        )
    }
}

/// Blocked LU with partial pivoting over a square matrix.
#[derive(Clone, Debug)]
pub struct BlockedLuWorkload {
    /// The square matrix to factor.
    pub a: Matrix,
    /// Pivot-search implementation options.
    pub opts: LuOptions,
}

impl BlockedLuWorkload {
    /// Factor the given matrix.
    pub fn new(a: Matrix, opts: LuOptions) -> Self {
        assert_eq!(a.rows(), a.cols());
        Self { a, opts }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(demo_matrix(16, 16, 18), LuOptions::default())
    }
}

impl Workload for BlockedLuWorkload {
    fn name(&self) -> &str {
        "lu"
    }

    fn cost_hint(&self) -> u64 {
        (2 * self.a.rows().pow(3) / 3).max(1) as u64
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let (factors, pivots, stats) = blocked_lu_run(eng.core_mut(), &self.a, &self.opts)?;
        Ok(finish(
            eng,
            self.name(),
            stats,
            None,
            Details::Lu { factors, pivots },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Lu { factors, pivots } = &report.details else {
            return Err(expect_details(self.name(), "Lu"));
        };
        let expect =
            lu_partial_pivot(&self.a).map_err(|e| format!("{}: reference: {e:?}", self.name()))?;
        if *pivots != expect.pivots {
            return Err(format!(
                "{}: pivots {pivots:?} vs reference {:?}",
                self.name(),
                expect.pivots
            ));
        }
        close(
            self.name(),
            "L\\U",
            max_abs_diff(factors, &expect.factors),
            1e-8,
        )
    }
}

// ---- QR -------------------------------------------------------------------

/// Householder QR panel driven by the vector-norm kernel (§6.1.3).
#[derive(Clone, Debug)]
pub struct QrPanelWorkload {
    /// The tall panel to factor (`rows ≥ cols`).
    pub a: Matrix,
    /// Norm-kernel options for the column norms.
    pub opts: VnormOptions,
}

impl QrPanelWorkload {
    /// Factor the given panel.
    pub fn new(a: Matrix, opts: VnormOptions) -> Self {
        assert!(a.rows() >= a.cols());
        Self { a, opts }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        Self::new(
            demo_matrix(16, 4, 19),
            VnormOptions {
                exponent_extension: true,
                comparator: false,
            },
        )
    }
}

impl Workload for QrPanelWorkload {
    fn name(&self) -> &str {
        "qr-panel"
    }

    fn cost_hint(&self) -> u64 {
        (2 * self.a.rows() * self.a.cols() * self.a.cols()) as u64
    }

    fn config(&self, base: LacConfig) -> LacConfig {
        LacConfig {
            fpu: FpuConfig {
                exponent_extension: self.opts.exponent_extension || base.fpu.exponent_extension,
                ..base.fpu
            },
            ..base
        }
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let rep = qr_panel_run(eng.core_mut(), &self.a, &self.opts)?;
        Ok(finish(
            eng,
            self.name(),
            rep.stats,
            None,
            Details::Qr {
                r: rep.r,
                reflectors: rep.reflectors,
            },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Qr { r, .. } = &report.details else {
            return Err(expect_details(self.name(), "Qr"));
        };
        let reference = qr_householder(&self.a);
        close(self.name(), "R", max_abs_diff(r, &reference.r), 1e-8)
    }
}

// ---- vector norm ----------------------------------------------------------

/// ‖x‖₂ with the §A.2 extension options (Figure 6.6).
#[derive(Clone, Debug)]
pub struct VecnormWorkload {
    /// The vector (length a positive multiple of 8).
    pub x: Vec<f64>,
    /// Extension options (wide accumulator, SFU form).
    pub opts: VnormOptions,
}

impl VecnormWorkload {
    /// Compute `‖x‖₂` for the given vector.
    pub fn new(x: Vec<f64>, opts: VnormOptions) -> Self {
        assert!(
            x.len().is_multiple_of(8) && !x.is_empty(),
            "length must be a positive multiple of 8"
        );
        Self { x, opts }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        let x = (0..64).map(|i| demo_value(i, 0, 20)).collect();
        Self::new(
            x,
            VnormOptions {
                exponent_extension: false,
                comparator: true,
            },
        )
    }
}

impl Workload for VecnormWorkload {
    fn name(&self) -> &str {
        "vecnorm"
    }

    fn cost_hint(&self) -> u64 {
        (2 * self.x.len()) as u64
    }

    fn config(&self, base: LacConfig) -> LacConfig {
        LacConfig {
            fpu: FpuConfig {
                exponent_extension: self.opts.exponent_extension || base.fpu.exponent_extension,
                ..base.fpu
            },
            ..base
        }
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let k = self.x.len() / 4;
        eng.load_image(self.x.clone());
        let (lac, mem) = eng.parts();
        let rep = vecnorm_run(lac, mem, k, &self.opts)?;
        Ok(finish(
            eng,
            self.name(),
            rep.stats,
            None,
            Details::Vecnorm { norm: rep.result },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Vecnorm { norm } = report.details else {
            return Err(expect_details(self.name(), "Vecnorm"));
        };
        let expect = nrm2(&self.x);
        let err = if expect == 0.0 {
            norm.abs()
        } else {
            (norm / expect - 1.0).abs()
        };
        close(self.name(), "‖x‖₂ (relative)", err, 1e-9)
    }
}

// ---- FFT ------------------------------------------------------------------

/// 64-point radix-4 complex FFT on the hybrid core (§6.2 / Appendix B).
#[derive(Clone, Debug)]
pub struct Fft64Workload {
    /// The 64-point input signal.
    pub signal: Vec<Complex>,
}

impl Fft64Workload {
    /// Transform the given 64-point signal.
    pub fn new(signal: Vec<Complex>) -> Self {
        assert_eq!(signal.len(), 64, "the kernel transforms exactly 64 points");
        Self { signal }
    }

    /// The registry's canonical instance (deterministic demo operands).
    pub fn demo() -> Self {
        let signal = (0..64)
            .map(|i| Complex::new(demo_value(i, 1, 21), demo_value(i, 2, 21)))
            .collect();
        Self::new(signal)
    }
}

impl Workload for Fft64Workload {
    fn name(&self) -> &str {
        "fft64"
    }

    fn cost_hint(&self) -> u64 {
        64 * 6 * 3 // n/4·log4(n) radix-4 butterflies, ~complex-mul flops each
    }

    /// Grow the local stores to the kernel's scratch minima if the base
    /// configuration is smaller (the hybrid core's B-memory holds the
    /// butterfly workspace).
    fn config(&self, base: LacConfig) -> LacConfig {
        LacConfig {
            sram_a_words: base.sram_a_words.max(8),
            sram_b_words: base.sram_b_words.max(crate::fft::B_WORDS_NEEDED),
            rf_entries: base.rf_entries.max(4),
            ..base
        }
    }

    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let mut image = vec![0.0; 128];
        for (q, v) in self.signal.iter().enumerate() {
            image[2 * q] = v.re;
            image[2 * q + 1] = v.im;
        }
        eng.load_image(image);
        let (lac, mem) = eng.parts();
        let rep = fft64_run(lac, mem)?;
        let spectrum = (0..64)
            .map(|q| Complex::new(eng.mem().read(2 * q), eng.mem().read(2 * q + 1)))
            .collect();
        Ok(finish(
            eng,
            self.name(),
            rep.stats,
            None,
            Details::Fft { spectrum },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Fft { spectrum } = &report.details else {
            return Err(expect_details(self.name(), "Fft"));
        };
        let mut reference = self.signal.clone();
        fft_radix4(&mut reference);
        let err = spectrum
            .iter()
            .zip(&reference)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        close(self.name(), "spectrum", err, 1e-10)
    }
}

// ---- registry -------------------------------------------------------------

/// One canonical instance of every workload, sized to run on the default
/// 4×4 core. Harnesses iterate this instead of hard-coding kernels.
pub fn registry() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(GemmWorkload::demo()),
        Box::new(SyrkWorkload::demo()),
        Box::new(TrsmStackedWorkload::demo()),
        Box::new(BlockedTrsmWorkload::demo()),
        Box::new(TrmmWorkload::demo()),
        Box::new(SymmWorkload::demo()),
        Box::new(CholKernelWorkload::demo()),
        Box::new(BlockedCholWorkload::demo()),
        Box::new(LuPanelWorkload::demo()),
        Box::new(BlockedLuWorkload::demo()),
        Box::new(QrPanelWorkload::demo()),
        Box::new(VecnormWorkload::demo()),
        Box::new(Fft64Workload::demo()),
        Box::new(crate::solver::SolverLoopWorkload::demo()),
    ]
}

/// Problem scale of a [`registry_sized`] instance. Every scale keeps the
/// constraints of the 4×4 core (dimensions multiples of `nr`, QR panels
/// tall, GEMM's overlap needing `kc ≥ 2·nr`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProblemSize {
    /// The smallest instances the schedules admit.
    Small,
    /// The demo scale ([`registry`] equivalents, different operands).
    Medium,
    /// Several blocking steps per kernel — exercises the blocked drivers.
    Large,
}

impl ProblemSize {
    /// The three scales, small to large.
    pub const ALL: [ProblemSize; 3] = [ProblemSize::Small, ProblemSize::Medium, ProblemSize::Large];
}

/// Every registry workload at a chosen problem scale, with operands salted
/// by `size` so the three suites factor different matrices. Fixed-size
/// kernels (the `nr×nr` Cholesky tile, the 64-point FFT) vary operands
/// only.
pub fn registry_sized(size: ProblemSize) -> Vec<Box<dyn Workload>> {
    // Per-size dimensions: (square block n, panel width w, vector length).
    let (n, w, len, salt) = match size {
        ProblemSize::Small => (8, 4, 16, 100),
        ProblemSize::Medium => (16, 8, 64, 200),
        ProblemSize::Large => (32, 12, 256, 300),
    };
    let spd = demo_spd(n, salt);
    vec![
        Box::new(GemmWorkload::new(
            demo_matrix(n, n, salt + 1),
            demo_matrix(n, n, salt + 2),
            demo_matrix(n, n, salt + 3),
        )),
        Box::new(SyrkWorkload::new(
            demo_matrix(n, n / 2, salt + 4),
            demo_matrix(n, n, salt + 5).symmetrize_from_lower(),
        )),
        Box::new(TrsmStackedWorkload::new(
            demo_lower(4, salt + 6),
            demo_matrix(4, 4 * w, salt + 7),
        )),
        Box::new(BlockedTrsmWorkload::new(
            demo_lower(n, salt + 8),
            demo_matrix(n, w, salt + 9),
        )),
        Box::new(TrmmWorkload::new(
            demo_lower(n, salt + 10),
            demo_matrix(n, w, salt + 11),
        )),
        Box::new(SymmWorkload::new(
            demo_matrix(n, n, salt + 12).tril(),
            demo_matrix(n, w, salt + 13),
            demo_matrix(n, w, salt + 14),
        )),
        Box::new(CholKernelWorkload::new(demo_spd(4, salt + 15))),
        Box::new(BlockedCholWorkload::new(spd)),
        Box::new(LuPanelWorkload::new(
            demo_matrix(2 * n, 4, salt + 17),
            LuOptions::default(),
        )),
        Box::new(BlockedLuWorkload::new(
            demo_matrix(n, n, salt + 18),
            LuOptions::default(),
        )),
        Box::new(QrPanelWorkload::new(
            demo_matrix(2 * n, 4, salt + 19),
            VnormOptions {
                exponent_extension: true,
                comparator: false,
            },
        )),
        Box::new(VecnormWorkload::new(
            (0..len).map(|i| demo_value(i, 0, salt + 20)).collect(),
            VnormOptions {
                exponent_extension: false,
                comparator: true,
            },
        )),
        Box::new(Fft64Workload::new(
            (0..64)
                .map(|i| Complex::new(demo_value(i, 1, salt + 21), demo_value(i, 2, salt + 21)))
                .collect(),
        )),
        Box::new(crate::solver::SolverLoopWorkload::new(
            crate::solver::SolverLoopParams {
                // The chained rounds already multiply the work, so the
                // solver scales fan-out rather than the system dimension.
                n: if size == ProblemSize::Small { 8 } else { 16 },
                rounds: if size == ProblemSize::Large { 3 } else { 2 },
                panels: if size == ProblemSize::Large { 4 } else { 2 },
                width: if size == ProblemSize::Small { 4 } else { 8 },
                salt: salt + 22,
            },
        )),
    ]
}

/// One core configuration every registry workload can run on: the base
/// config folded through each workload's [`Workload::config`] adaptation.
/// This is the config to build [`lac_sim::LacChip`] shards with when mixed
/// registry queues are dispatched across cores.
pub fn registry_chip_config(base: LacConfig) -> LacConfig {
    registry()
        .iter()
        .chain(&registry_sized(ProblemSize::Large))
        .fold(base, |cfg, w| w.config(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names: Vec<String> = registry().iter().map(|w| w.name().to_string()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            names.len(),
            "duplicate workload names: {names:?}"
        );
        assert!(names.iter().any(|n| n == "gemm"));
        assert!(names.iter().any(|n| n == "chol"));
        assert!(names.iter().any(|n| n == "fft64"));
        assert!(names.len() >= 12, "registry should cover every kernel");
    }

    #[test]
    fn session_accumulates_two_workloads() {
        let mut eng = LacEngine::builder().config(LacConfig::default()).build();
        let g = GemmWorkload::demo();
        let r1 = g.run(&mut eng).unwrap();
        let before = eng.cycles();
        let c = BlockedCholWorkload::demo();
        let r2 = c.run(&mut eng).unwrap();
        assert_eq!(eng.workloads_run(), 2);
        assert_eq!(eng.cycles(), r1.stats.cycles + r2.stats.cycles);
        assert!(eng.cycles() > before);
        g.check(&r1).unwrap();
        c.check(&r2).unwrap();
    }

    #[test]
    fn check_rejects_foreign_details() {
        let mut eng = LacEngine::builder().build();
        let g = GemmWorkload::demo();
        let rep = g.run(&mut eng).unwrap();
        assert!(Fft64Workload::demo().check(&rep).is_err());
    }

    #[test]
    fn demo_values_are_deterministic_and_spread() {
        assert_eq!(demo_value(3, 5, 1), demo_value(3, 5, 1));
        assert_ne!(demo_value(3, 5, 1), demo_value(3, 5, 2));
        let spd = demo_spd(8, 3);
        assert!(cholesky(&spd).is_ok(), "demo SPD must factor");
        let l = demo_lower(8, 4);
        for i in 0..8 {
            assert!(l[(i, i)].abs() > 1.0, "diagonal bounded away from zero");
        }
    }
}
