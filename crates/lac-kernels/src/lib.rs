#![warn(missing_docs)]
//! Algorithm → architecture mappings for the Linear Algebra Core.
//!
//! Each module turns one of the dissertation's algorithms into LAC
//! microprograms and *drives* the cycle-accurate simulator with them,
//! mirroring the hardware's microprogrammed state machines. Data-dependent
//! control (LU's pivot selection) is resolved the way the hardware does it —
//! the driver inspects the comparator registers between program phases and
//! emits the next phase accordingly, while still paying every bus transfer
//! and compare cycle.
//!
//! Every kernel is exposed through the unified [`Workload`] trait and run
//! on a [`lac_sim::LacEngine`] session (see [`workload`]); [`registry`]
//! enumerates one canonical instance of each for data-driven harnesses.
//! Program generators are pure functions of the job *shape*, so each
//! distinct shape's program is built once and shared process-wide — see
//! `docs/PERFORMANCE.md` for how that feeds the simulator's compile
//! cache.
//!
//! All kernels are functionally verified against `linalg-ref` in their tests,
//! and their measured cycle counts are compared against the dissertation's
//! analytical estimates in `lac-model`'s validation suite.
//!
//! | Module | Dissertation section | Operation | Workloads |
//! |---|---|---|---|
//! | [`gemm`] | §3.1–3.4 | rank-1-update GEMM, C-prefetch overlap | [`GemmWorkload`] |
//! | [`syrk`] | §5.2 | SYRK with bus-transpose | [`SyrkWorkload`] |
//! | [`trsm`] | §5.3 | stacked TRSM + blocked driver | [`TrsmStackedWorkload`], [`BlockedTrsmWorkload`] |
//! | [`trmm`] | §5.1 | TRMM as growing-panel GEMMs | [`TrmmWorkload`] |
//! | [`symm`] | §5.1 | SYMM with transposed-block recovery | [`SymmWorkload`] |
//! | [`chol`] | §6.1.1 | nr×nr Cholesky kernel + blocked driver | [`CholKernelWorkload`], [`BlockedCholWorkload`] |
//! | [`lu`] | §6.1.2 | panel LU with partial pivoting | [`LuPanelWorkload`], [`BlockedLuWorkload`] |
//! | [`qr`] | §6.1.3 | Householder QR panel | [`QrPanelWorkload`] |
//! | [`vecnorm`] | §6.1.3 | vector norm with/without MAC extensions | [`VecnormWorkload`] |
//! | [`fft`] | §6.2 / App. B | 64-point radix-4 FFT on the core | [`Fft64Workload`] |

pub mod chol;
pub mod fft;
pub mod gemm;
pub mod ipddp;
pub mod ippmm;
pub mod layout;
pub mod lu;
mod memo;
pub mod qr;
pub mod solver;
pub mod symm;
pub mod syrk;
pub mod trmm;
pub mod trsm;
pub mod vecnorm;
pub mod workload;

pub use chol::CholReport;
pub use fft::Fft64Report;
pub use gemm::{gemm_program, GemmParams, GemmReport};
pub use ipddp::{DdpJob, DdpReference, IpddpFleet, IpddpParams};
pub use ippmm::{IpmJob, IpmReference, IppmmParams, IppmmWorkload};
pub use layout::{ALayout, GemmDataLayout};
pub use lu::{pack_to_factors, LuOptions, LuReport};
pub use qr::QrPanelReport;
pub use solver::{
    SolverFleet, SolverGraph, SolverJob, SolverLoopParams, SolverLoopWorkload, SolverReference,
    SolverStream,
};
pub use syrk::{SyrkDataLayout, SyrkParams, SyrkReport};
pub use trsm::TrsmReport;
pub use vecnorm::{VnormOptions, VnormReport};
pub use workload::{
    registry, registry_chip_config, registry_sized, BlockedCholWorkload, BlockedLuWorkload,
    BlockedTrsmWorkload, CholKernelWorkload, Details, Fft64Workload, GemmWorkload, KernelReport,
    LuPanelWorkload, ProblemSize, QrPanelWorkload, SymmWorkload, SyrkWorkload, TrmmWorkload,
    TrsmStackedWorkload, VecnormWorkload, Workload,
};
