//! Algorithm → architecture mappings for the Linear Algebra Core.
//!
//! Each module turns one of the dissertation's algorithms into LAC
//! microprograms and *drives* the cycle-accurate simulator with them,
//! mirroring the hardware's microprogrammed state machines. Data-dependent
//! control (LU's pivot selection) is resolved the way the hardware does it —
//! the driver inspects the comparator registers between program phases and
//! emits the next phase accordingly, while still paying every bus transfer
//! and compare cycle.
//!
//! All kernels are functionally verified against `linalg-ref` in their tests,
//! and their measured cycle counts are compared against the dissertation's
//! analytical estimates in `lac-model`'s validation suite.
//!
//! | Module | Dissertation section | Operation |
//! |---|---|---|
//! | [`gemm`] | §3.1–3.4 | rank-1-update GEMM, C-prefetch overlap |
//! | [`syrk`] | §5.2 | SYRK with bus-transpose |
//! | [`trsm`] | §5.3 | stacked TRSM + blocked driver |
//! | [`chol`] | §6.1.1 | nr×nr Cholesky kernel + blocked driver |
//! | [`lu`] | §6.1.2 | panel LU with partial pivoting |
//! | [`vecnorm`] | §6.1.3 | vector norm with/without MAC extensions |
//! | [`fft`] | §6.2 / App. B | 64-point radix-4 FFT on the core |

pub mod chol;
pub mod fft;
pub mod gemm;
pub mod layout;
pub mod lu;
pub mod qr;
pub mod symm;
pub mod syrk;
pub mod trmm;
pub mod trsm;
pub mod vecnorm;

pub use chol::{run_blocked_cholesky, run_cholesky_kernel, CholReport};
pub use fft::{run_fft64, Fft64Report};
pub use gemm::{run_gemm, GemmParams, GemmReport};
pub use layout::{ALayout, GemmDataLayout};
pub use lu::{lu_panel_matrix, run_blocked_lu, run_lu_panel, LuOptions, LuReport};
pub use qr::{run_qr_panel, QrPanelReport};
pub use symm::run_blocked_symm;
pub use syrk::{run_syrk, SyrkDataLayout, SyrkParams, SyrkReport};
pub use trmm::run_blocked_trmm;
pub use trsm::{run_blocked_trsm, run_trsm_stacked, TrsmReport};
pub use vecnorm::{run_vecnorm, VnormOptions, VnormReport};
