//! TRMM on the LAC (§5.1): `B := L·B` with lower-triangular `L`.
//!
//! "This operation uses the same block panel multiplication as in GEMM.
//! However, the length of the panels increases in each iteration" — each
//! result row panel `i` is the product of `L`'s row panel (length
//! `(i+1)·nr`) with the original leading rows of `B`. Processing bottom-up
//! keeps every input row panel unmodified until it is consumed, so the whole
//! operation is a sequence of GEMM kernels of growing `kc`.

use crate::gemm::{gemm_run, GemmParams};
use crate::layout::GemmDataLayout;
use lac_sim::{ExecStats, ExternalMem, Lac, SimError};
use linalg_ref::Matrix;

/// `B := L·B` for lower-triangular `L (K×K)` and `B (K×W)`, `K = k·nr`.
/// Returns the product and the summed stats of the GEMM phases.
pub(crate) fn blocked_trmm_run(
    lac: &mut Lac,
    l: &Matrix,
    b0: &Matrix,
) -> Result<(Matrix, ExecStats), SimError> {
    let nr = lac.config().nr;
    let kk = l.rows();
    assert_eq!(l.cols(), kk);
    assert!(kk.is_multiple_of(nr));
    let k = kk / nr;
    let w = b0.cols();
    assert!(w.is_multiple_of(nr));
    let mut out = b0.clone();
    let mut total = ExecStats::default();

    // Bottom-up: row panel i reads only original rows 0..=(i+1)·nr of B.
    for i in (0..k).rev() {
        let r0 = i * nr;
        let klen = r0 + nr; // panel length grows with i (the §5.1 point)
        let a_blk = l.block(r0, 0, nr, klen);
        let b_blk = b0.block(0, 0, klen, w);
        let c_zero = Matrix::zeros(nr, w);
        let lay = GemmDataLayout::new(nr, klen, w);
        let mut mem = ExternalMem::from_vec(lay.pack(&a_blk, &b_blk, &c_zero));
        let params = GemmParams {
            mc: nr,
            kc: klen,
            n: w,
            overlap: klen >= 2 * nr,
            negate: false,
        };
        let rep = gemm_run(lac, &mut mem, &lay, &params)?;
        total.merge(&rep.stats);
        out.set_block(r0, 0, &lay.unpack_c(mem.as_slice()));
    }
    Ok((out, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::LacConfig;
    use linalg_ref::{max_abs_diff, trmm, Side, Triangle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blocked_trmm_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(kk, w) in &[(8usize, 8usize), (16, 12), (24, 8)] {
            let l = Matrix::random_lower_triangular(kk, &mut rng);
            let b0 = Matrix::random(kk, w, &mut rng);
            let mut lac = Lac::new(LacConfig::default());
            let (got, stats) = blocked_trmm_run(&mut lac, &l, &b0).unwrap();
            let mut expect = b0;
            trmm(Side::Left, Triangle::Lower, &l, &mut expect);
            assert!(max_abs_diff(&got, &expect) < 1e-10, "kk={kk} w={w}");
            assert!(stats.mac_ops > 0);
        }
    }

    #[test]
    fn panel_length_grows_with_iteration() {
        // Useful MACs should be ~half of a square GEMM of the same size
        // (the triangular profile).
        let mut rng = StdRng::seed_from_u64(2);
        let kk = 16;
        let l = Matrix::random_lower_triangular(kk, &mut rng);
        let b0 = Matrix::random(kk, 8, &mut rng);
        let mut lac = Lac::new(LacConfig::default());
        let (_, stats) = blocked_trmm_run(&mut lac, &l, &b0).unwrap();
        let full = (kk * kk * 8) as u64;
        assert!(stats.mac_ops < full, "triangular profile saves MACs");
        assert!(stats.mac_ops > full / 2, "but more than half remain");
    }
}
