//! Householder QR panel factorization driven by the LAC's vector-norm
//! kernel (§6.1.3).
//!
//! "The overall mapping of QR factorization to the LAC is similar to that of
//! LU" — the distinguishing inner kernel is the **Householder vector**
//! computation: a vector norm (whose safe evaluation is what the §A.2
//! exponent extension buys), a reciprocal scale, and a `τ` update
//! (Table 6.1's efficient form). This driver computes every reflector's
//! norm on the simulated core with the selected extension options and
//! assembles the factorization, so the per-column cycle/energy cost of each
//! architecture option is measured end-to-end.

use crate::vecnorm::{vecnorm_run, VnormOptions};
use lac_sim::{ExecStats, ExternalMem, Lac, SimError};
use linalg_ref::householder::HouseholderReflector;
use linalg_ref::Matrix;

/// Result of a QR panel factorization on the LAC.
#[derive(Clone, Debug)]
pub struct QrPanelReport {
    /// The upper-triangular factor `R`.
    pub r: Matrix,
    /// One Householder reflector per factored column.
    pub reflectors: Vec<HouseholderReflector>,
    /// Event counters of the run.
    pub stats: ExecStats,
}

/// Factor an `m × n` panel (`m` a multiple of `4·2` so the norm kernel's
/// column split works; `m ≥ n`). Vector norms run on the simulated LAC;
/// reflector application is the GEMM-class update the other kernels cover.
pub(crate) fn qr_panel_run(
    lac: &mut Lac,
    a: &Matrix,
    opts: &VnormOptions,
) -> Result<QrPanelReport, SimError> {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n);
    let mut work = a.clone();
    let mut reflectors = Vec::with_capacity(n);
    let mut total = ExecStats::default();

    for kcol in 0..n {
        let alpha1 = work[(kcol, kcol)];
        let tail: Vec<f64> = (kcol + 1..m).map(|i| work[(i, kcol)]).collect();

        // ‖a21‖ on the LAC (padded to the kernel's K = k·nr, k even shape).
        let chi2 = if tail.iter().all(|v| *v == 0.0) {
            0.0
        } else {
            let k = (tail.len().div_ceil(8)).max(1) * 2; // k even
            let mut padded = tail.clone();
            padded.resize(k * 4, 0.0);
            let mut mem = ExternalMem::from_vec(padded);
            let rep = vecnorm_run(lac, &mut mem, k, opts)?;
            total.merge(&rep.stats);
            rep.result
        };

        // Table 6.1 (right column): the efficient computation.
        let h = if chi2 == 0.0 {
            HouseholderReflector {
                u2: vec![0.0; tail.len()],
                tau: f64::INFINITY,
                rho: alpha1,
            }
        } else {
            let alpha = (alpha1 * alpha1 + chi2 * chi2).sqrt();
            let rho = -alpha1.signum() * alpha;
            let nu1 = alpha1 - rho;
            let u2: Vec<f64> = tail.iter().map(|v| v / nu1).collect();
            let chi2s = chi2 / nu1.abs();
            HouseholderReflector {
                u2,
                tau: (1.0 + chi2s * chi2s) / 2.0,
                rho,
            }
        };

        // Apply to the panel (the rank-1 update the LAC runs as in LU S4).
        work[(kcol, kcol)] = h.rho;
        for i in kcol + 1..m {
            work[(i, kcol)] = 0.0;
        }
        for j in kcol + 1..n {
            let mut head = work[(kcol, j)];
            let mut tail_j: Vec<f64> = (kcol + 1..m).map(|i| work[(i, j)]).collect();
            h.apply(&mut head, &mut tail_j);
            work[(kcol, j)] = head;
            for (off, v) in tail_j.iter().enumerate() {
                work[(kcol + 1 + off, j)] = *v;
            }
        }
        reflectors.push(h);
    }
    Ok(QrPanelReport {
        r: work.block(0, 0, n, n).triu(),
        reflectors,
        stats: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_fpu::FpuConfig;
    use lac_sim::LacConfig;
    use linalg_ref::{max_abs_diff, qr_householder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(exp_ext: bool) -> LacConfig {
        LacConfig {
            fpu: FpuConfig {
                exponent_extension: exp_ext,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn r_matches_reference_qr() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, n) in &[(16usize, 4usize), (24, 6)] {
            let a = Matrix::random(m, n, &mut rng);
            let mut lac = Lac::new(cfg(true));
            let opts = VnormOptions {
                exponent_extension: true,
                comparator: false,
            };
            let rep = qr_panel_run(&mut lac, &a, &opts).unwrap();
            let reference = qr_householder(&a);
            assert!(max_abs_diff(&rep.r, &reference.r) < 1e-8, "({m},{n})");
            assert!(
                rep.stats.sfu_ops >= n as u64,
                "one sqrt per column at least"
            );
        }
    }

    #[test]
    fn extension_options_same_result_different_cycles() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::random(16, 4, &mut rng);
        let run = |exp_ext: bool, comparator: bool| {
            let mut lac = Lac::new(cfg(exp_ext));
            let opts = VnormOptions {
                exponent_extension: exp_ext,
                comparator,
            };
            qr_panel_run(&mut lac, &a, &opts).unwrap()
        };
        let fast = run(true, false);
        let mid = run(false, true);
        let slow = run(false, false);
        assert!(max_abs_diff(&fast.r, &mid.r) < 1e-9);
        assert!(max_abs_diff(&fast.r, &slow.r) < 1e-9);
        assert!(fast.stats.cycles < mid.stats.cycles);
        assert!(mid.stats.cycles < slow.stats.cycles);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // column assembly by index
    fn orthogonality_of_assembled_q() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::random(16, 4, &mut rng);
        let mut lac = Lac::new(cfg(true));
        let opts = VnormOptions {
            exponent_extension: true,
            comparator: false,
        };
        let rep = qr_panel_run(&mut lac, &a, &opts).unwrap();
        // Verify A ≈ Q·R by applying the reflectors to R-extended columns.
        let m = 16;
        let mut qr_prod = Matrix::zeros(m, 4);
        for j in 0..4 {
            let mut v = vec![0.0; m];
            for i in 0..=j {
                v[i] = rep.r[(i, j)];
            }
            for (kcol, h) in rep.reflectors.iter().enumerate().rev() {
                let (head, tail) = v[kcol..].split_at_mut(1);
                h.apply(&mut head[0], tail);
            }
            for i in 0..m {
                qr_prod[(i, j)] = v[i];
            }
        }
        assert!(max_abs_diff(&qr_prod, &a) < 1e-9);
    }
}
