//! SYRK on the LAC (§5.2): `C := C + A·Aᵀ` (lower triangle), with the
//! transpose formed *in flight* on the broadcast buses.
//!
//! The diagonal `nr×nr` tiles run the unblocked kernel of Figure 5.2: while
//! column `p` of `A` is broadcast along the **row** buses, the *previous*
//! column rebounds off the diagonal PEs onto the **column** buses — producing
//! `aᵀ` one cycle behind `a` at zero extra cost. Every PE simultaneously
//! latches the transposed element into its B memory, so the subsequent
//! off-diagonal tiles (`C_bd += A_b·A_dᵀ`) are ordinary GEMM updates against
//! the locally stored `A_dᵀ` panel (Figure 5.3).

use crate::layout::ALayout;
use lac_sim::{ExecStats, ExtOp, Lac, ProgramBuilder, SimError, Source};

/// Parameters for a SYRK run: `C (mc×mc, lower) += A (mc×kc) · Aᵀ`.
#[derive(Clone, Copy, Debug)]
pub struct SyrkParams {
    /// Output dimension (`C` is `mc × mc`).
    pub mc: usize,
    /// Inner (rank) dimension.
    pub kc: usize,
    /// Compute `C -= A·Aᵀ` instead (the trailing downdate of blocked
    /// Cholesky).
    pub negate: bool,
}

impl Default for SyrkParams {
    /// Canonical small problem — a base for struct-update syntax:
    /// `SyrkParams { negate: true, ..Default::default() }`.
    fn default() -> Self {
        Self::new(16, 16)
    }
}

impl SyrkParams {
    /// An accumulating (`C += A·Aᵀ`) run.
    pub fn new(mc: usize, kc: usize) -> Self {
        Self {
            mc,
            kc,
            negate: false,
        }
    }
}

/// External-memory layout for SYRK: `A` then full `C` (lower significant).
#[derive(Clone, Copy, Debug)]
pub struct SyrkDataLayout {
    /// Output dimension.
    pub mc: usize,
    /// Inner dimension.
    pub kc: usize,
    /// Word offset of `C` in the image.
    pub c_off: usize,
}

impl SyrkDataLayout {
    /// Pack `A` from offset 0 with `C` right behind it.
    pub fn new(mc: usize, kc: usize) -> Self {
        Self {
            mc,
            kc,
            c_off: mc * kc,
        }
    }

    /// Size of the whole working-set image, words.
    pub fn total_words(&self) -> usize {
        self.c_off + self.mc * self.mc
    }

    /// Image address of `A(i, p)`.
    pub fn a_addr(&self, i: usize, p: usize) -> usize {
        p * self.mc + i
    }

    /// Image address of `C(i, j)` (stored full, lower significant).
    pub fn c_addr(&self, i: usize, j: usize) -> usize {
        self.c_off + j * self.mc + i
    }

    /// Symmetrized C read address: `(i,j)` maps to the stored lower triangle.
    pub fn c_addr_sym(&self, i: usize, j: usize) -> usize {
        if i >= j {
            self.c_addr(i, j)
        } else {
            self.c_addr(j, i)
        }
    }
}

/// Report of a SYRK run.
#[derive(Clone, Debug)]
pub struct SyrkReport {
    /// Event counters of the run.
    pub stats: ExecStats,
    /// Useful MACs: tiles on/below the diagonal (what contributes to the
    /// stored lower triangle).
    pub useful_macs: u64,
    /// Utilization against peak over the run.
    pub utilization: f64,
}

const REG_A_CUR: usize = 2;

/// Run blocked SYRK. `mem` must hold `A` and `C` per `lay`; on return the
/// lower triangle of `C` has been updated.
pub(crate) fn syrk_run(
    lac: &mut Lac,
    mem: &mut lac_sim::ExternalMem,
    lay: &SyrkDataLayout,
    params: &SyrkParams,
) -> Result<SyrkReport, SimError> {
    let nr = lac.config().nr;
    let p = lac.config().fpu.pipeline_depth;
    let SyrkParams { mc, kc, negate } = *params;
    assert!(mc % nr == 0 && kc % nr == 0);
    assert!(
        ALayout::new(mc, kc, nr).words_per_pe() <= lac.config().sram_a_words,
        "A block too large"
    );
    assert!(
        kc <= lac.config().sram_b_words,
        "Aᵀ panel too large for B memory"
    );
    let prog = crate::memo::program(
        "syrk",
        &[
            nr as u64,
            p as u64,
            lay.mc as u64,
            lay.kc as u64,
            lay.c_off as u64,
            mc as u64,
            kc as u64,
            negate as u64,
        ],
        || syrk_program(nr, p, lay, params),
    );
    let stats = lac.run(&prog, mem)?;
    let nblocks = mc / nr;
    let tiles = (nblocks * (nblocks + 1) / 2) as u64;
    let useful = tiles * (nr * nr * kc) as u64;
    Ok(SyrkReport {
        stats,
        useful_macs: useful,
        utilization: useful as f64 / (stats.cycles as f64 * (nr * nr) as f64),
    })
}

/// The blocked-SYRK microprogram — a pure function of the shape (mesh
/// size, FPU depth, operand layout and block parameters).
fn syrk_program(
    nr: usize,
    p: usize,
    lay: &SyrkDataLayout,
    params: &SyrkParams,
) -> lac_sim::Program {
    let SyrkParams { mc, kc, negate } = *params;
    let alay = ALayout::new(mc, kc, nr);

    let nblocks = mc / nr;
    let mut b = ProgramBuilder::new(nr);

    // ---- load A ----------------------------------------------------------
    {
        let cols_per_bus = kc / nr;
        for t in 0..mc * cols_per_bus {
            let step = b.push_step();
            for c in 0..nr {
                let lc = t / mc;
                let i = t % mc;
                let pcol = lc * nr + c;
                b.ext(
                    step,
                    ExtOp::Load {
                        col: c,
                        addr: lay.a_addr(i, pcol),
                    },
                );
                b.pe_mut(step, i % nr, c).sram_a_write = Some((alay.addr(i, pcol), Source::ColBus));
            }
        }
    }

    for d in 0..nblocks {
        // ---- preload C_dd (symmetrized) into the accumulators ------------
        for s in 0..nr {
            let step = b.push_step();
            for c in 0..nr {
                b.ext(
                    step,
                    ExtOp::Load {
                        col: c,
                        addr: lay.c_addr_sym(d * nr + s, d * nr + c),
                    },
                );
                b.pe_mut(step, s, c).acc_load = Some(Source::ColBus);
            }
        }

        // ---- unblocked SYRK on the diagonal tile (Figure 5.2) -------------
        // Cycle q broadcasts a_q on the row buses while a_{q-1} rebounds off
        // the diagonal onto the column buses for the rank-1 update; the
        // transposed element is captured into B memory as it passes.
        for q in 0..=kc {
            let step = b.push_step();
            if q < kc {
                for r in 0..nr {
                    let owner_c = q % nr;
                    b.pe_mut(step, r, owner_c).row_write =
                        Some(Source::SramA(alay.addr(d * nr + r, q)));
                }
                for r in 0..nr {
                    for c in 0..nr {
                        b.pe_mut(step, r, c).reg_write = Some((REG_A_CUR, Source::RowBus));
                    }
                }
            }
            if q >= 1 {
                let pp = q - 1;
                for c in 0..nr {
                    b.pe_mut(step, c, c).col_write = Some(Source::Reg(REG_A_CUR));
                }
                for r in 0..nr {
                    for c in 0..nr {
                        let pe = b.pe_mut(step, r, c);
                        pe.mac = Some((Source::Reg(REG_A_CUR), Source::ColBus));
                        pe.negate_product = negate;
                        pe.sram_b_write = Some((pp, Source::ColBus));
                    }
                }
            }
        }
        b.idle(p - 1);

        // ---- stream out the lower part of C_dd ---------------------------
        for s in 0..nr {
            let step = b.push_step();
            for c in 0..nr {
                b.pe_mut(step, s, c).col_write = Some(Source::Acc);
                if c <= s {
                    b.ext(
                        step,
                        ExtOp::Store {
                            col: c,
                            addr: lay.c_addr(d * nr + s, d * nr + c),
                        },
                    );
                }
            }
        }

        // ---- off-diagonal tiles: C_bd += A_b · A_dᵀ (GEMM updates) --------
        for blk in d + 1..nblocks {
            for s in 0..nr {
                let step = b.push_step();
                for c in 0..nr {
                    b.ext(
                        step,
                        ExtOp::Load {
                            col: c,
                            addr: lay.c_addr(blk * nr + s, d * nr + c),
                        },
                    );
                    b.pe_mut(step, s, c).acc_load = Some(Source::ColBus);
                }
            }
            for pp in 0..kc {
                let step = b.push_step();
                for r in 0..nr {
                    let owner_c = pp % nr;
                    b.pe_mut(step, r, owner_c).row_write =
                        Some(Source::SramA(alay.addr(blk * nr + r, pp)));
                }
                for r in 0..nr {
                    for c in 0..nr {
                        let pe = b.pe_mut(step, r, c);
                        pe.mac = Some((Source::RowBus, Source::SramB(pp)));
                        pe.negate_product = negate;
                    }
                }
            }
            b.idle(p - 1);
            for s in 0..nr {
                let step = b.push_step();
                for c in 0..nr {
                    b.pe_mut(step, s, c).col_write = Some(Source::Acc);
                    b.ext(
                        step,
                        ExtOp::Store {
                            col: c,
                            addr: lay.c_addr(blk * nr + s, d * nr + c),
                        },
                    );
                }
            }
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::{ExternalMem, LacConfig};
    use linalg_ref::{max_abs_diff, syrk, Matrix, Triangle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_case(mc: usize, kc: usize, seed: u64) -> (Matrix, Matrix, SyrkReport) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(mc, kc, &mut rng);
        let c0 = Matrix::random(mc, mc, &mut rng).tril();
        let lay = SyrkDataLayout::new(mc, kc);
        let mut mem = vec![0.0; lay.total_words()];
        for pcol in 0..kc {
            for i in 0..mc {
                mem[lay.a_addr(i, pcol)] = a[(i, pcol)];
            }
        }
        for j in 0..mc {
            for i in j..mc {
                mem[lay.c_addr(i, j)] = c0[(i, j)];
            }
        }
        let mut emem = ExternalMem::from_vec(mem);
        let mut lac = Lac::new(LacConfig::default());
        let rep = syrk_run(&mut lac, &mut emem, &lay, &SyrkParams::new(mc, kc)).unwrap();
        let mut expect = c0;
        syrk(Triangle::Lower, &a, &mut expect);
        let got = Matrix::from_fn(mc, mc, |i, j| {
            if i >= j {
                emem.read(lay.c_addr(i, j))
            } else {
                0.0
            }
        });
        (got, expect, rep)
    }

    #[test]
    fn single_diagonal_tile() {
        let (got, expect, _) = run_case(4, 8, 1);
        assert!(max_abs_diff(&got, &expect.tril()) < 1e-12);
    }

    #[test]
    fn blocked_multiple_tiles() {
        let (got, expect, rep) = run_case(16, 16, 2);
        assert!(max_abs_diff(&got, &expect.tril()) < 1e-12);
        assert!(rep.utilization > 0.3);
    }

    #[test]
    fn wide_k_panel() {
        let (got, expect, _) = run_case(8, 32, 3);
        assert!(max_abs_diff(&got, &expect.tril()) < 1e-12);
    }

    #[test]
    fn utilization_approaches_triangle_fraction() {
        // As mc grows the off-diagonal GEMM tiles dominate and utilization
        // climbs toward the GEMM level (§5.4: "overall performance
        // approaches the peak as the size of problem grows").
        let (_, _, small) = run_case(8, 16, 4);
        let (_, _, big) = run_case(32, 16, 5);
        assert!(big.utilization > small.utilization);
    }

    #[test]
    fn transpose_panel_lands_in_b_memory() {
        // After the run, PE(r,c) must hold A(d·nr + c, p) in sram_b[p] for
        // the last diagonal block d — the in-flight transpose.
        let mc = 8;
        let kc = 8;
        let mut rng = StdRng::seed_from_u64(6);
        let a = Matrix::random(mc, kc, &mut rng);
        let lay = SyrkDataLayout::new(mc, kc);
        let mut mem = vec![0.0; lay.total_words()];
        for pcol in 0..kc {
            for i in 0..mc {
                mem[lay.a_addr(i, pcol)] = a[(i, pcol)];
            }
        }
        let mut emem = ExternalMem::from_vec(mem);
        let mut lac = Lac::new(LacConfig::default());
        syrk_run(&mut lac, &mut emem, &lay, &SyrkParams::new(mc, kc)).unwrap();
        let d = mc / 4 - 1; // last diagonal block for nr = 4
        for r in 0..4 {
            for c in 0..4 {
                for pp in 0..kc {
                    let got = lac.sram_b_mut(r, c)[pp];
                    assert_eq!(got, a[(d * 4 + c, pp)], "PE({r},{c}) slot {pp}");
                }
            }
        }
    }
}
