//! Vector 2-norm on the LAC (§6.1.3, Figure 6.4) — the inner kernel of
//! Householder QR.
//!
//! A `K = k·nr` vector owned by one PE column is normed in three steps:
//! **S1** share half the elements with the adjacent column and accumulate
//! partial sums of squares in both; **S2** reduce the neighbour column back;
//! **S3** reduce within the owner column, take the square root, and
//! broadcast the result.
//!
//! The §A.2 extension story is the whole point:
//!
//! * [`VnormOptions::exponent_extension`] — the wide accumulator makes
//!   overflow impossible, so the kernel is a straight sum of squares.
//! * [`VnormOptions::comparator`] (without the exponent extension) — a
//!   hardware max-scan finds the scaling factor in one pass at one element
//!   per cycle, then the scaled two-pass algorithm runs.
//! * neither — the max-scan runs through the FPU at one compare per `p`
//!   cycles: the software baseline of Figure 6.6.

use lac_fpu::DivSqrtOp;
use lac_sim::{CmpUpdate, ExecStats, ExtOp, ExternalMem, Lac, ProgramBuilder, SimError, Source};

/// Extension options for the vector-norm kernel (Figure 6.6's bars).
#[derive(Clone, Copy, Debug, Default)]
pub struct VnormOptions {
    /// Wide-exponent accumulator present (implies no scaling pass needed).
    pub exponent_extension: bool,
    /// Comparator extension present (fast max-scan when scaling is needed).
    pub comparator: bool,
}

/// Report of a vector-norm run.
#[derive(Clone, Debug)]
pub struct VnormReport {
    /// Event counters of the run.
    pub stats: ExecStats,
    /// The computed ‖x‖₂.
    pub result: f64,
}

const OWNER_COL: usize = 2; // the paper's example: vector in the third column
const REG_MAX: usize = 2;
const REG_TAG: usize = 3;
const REG_SCALE: usize = 1;
const REG_RESULT: usize = 0;

/// Compute the 2-norm of the `K = k·nr` vector stored at offset 0 of `mem`.
///
/// Requires `nr ≥ 2` (owner column plus helper), `k` even, and — for
/// `exponent_extension` — a core configured with the wide accumulator.
pub(crate) fn vecnorm_run(
    lac: &mut Lac,
    mem: &mut ExternalMem,
    k: usize,
    opts: &VnormOptions,
) -> Result<VnormReport, SimError> {
    let nr = lac.config().nr;
    let p = lac.config().fpu.pipeline_depth;
    assert!(nr >= 4, "kernel written for the canonical 4×4 core");
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even");
    if opts.exponent_extension {
        assert!(
            lac.config().fpu.exponent_extension,
            "exponent_extension option requires a wide-accumulator core"
        );
    }
    let cc = OWNER_COL;
    let helper = cc + 1;
    let half = k / 2;
    let mut total = ExecStats::default();

    // ---- stage x into the owner column's B memories ------------------------
    {
        let mut b = ProgramBuilder::new(nr);
        for i in 0..k * nr {
            let step = b.push_step();
            b.ext(step, ExtOp::Load { col: cc, addr: i });
            b.pe_mut(step, i % nr, cc).sram_b_write = Some((i / nr, Source::ColBus));
        }
        total.merge(&lac.run(&b.build(), mem)?);
    }

    // ---- optional scaling pre-pass (no wide accumulator) --------------------
    // Find t = max|xᵢ|, compute 1/t, and scale the vector in place.
    let mut scale_t = 1.0f64;
    if !opts.exponent_extension {
        // Max-scan, owner column only (scan precedes the share step so the
        // helper column receives already-scaled values).
        {
            let mut b = ProgramBuilder::new(nr);
            let t0 = b.push_step();
            for r in 0..nr {
                b.pe_mut(t0, r, cc).reg_write = Some((REG_MAX, Source::Const(0.0)));
            }
            for s in 0..k {
                let step = b.push_step();
                for r in 0..nr {
                    b.pe_mut(step, r, cc).cmp_update = Some(CmpUpdate {
                        value: Source::SramB(s),
                        tag: s as f64,
                        val_reg: REG_MAX,
                        tag_reg: REG_TAG,
                    });
                }
                if !opts.comparator {
                    b.idle(p - 1); // software compare through the FPU
                }
            }
            // Cross-PE reduction of the four local maxima over the column bus.
            for r in 0..nr {
                let step = b.push_step();
                b.pe_mut(step, r, cc).col_write = Some(Source::Reg(REG_MAX));
                if !opts.comparator && r + 1 < nr {
                    b.idle(p - 1);
                }
            }
            total.merge(&lac.run(&b.build(), mem)?);
        }
        // Sequencer reads the maxima (hardware reduction result).
        let mut t = 0.0f64;
        for r in 0..nr {
            let v = lac.reg(r, cc, REG_MAX);
            if !lac_fpu::magnitude_ge(t, v) {
                t = v;
            }
        }
        let t = t.abs();
        assert!(t > 0.0, "zero vector norm handled by caller");
        scale_t = t;
        // 1/t on the diagonal SFU of the owner column's row, then broadcast
        // and scale in place.
        {
            let mut b = ProgramBuilder::new(nr);
            let step = b.push_step();
            b.pe_mut(step, cc, cc).sfu =
                Some((DivSqrtOp::Reciprocal, Source::Const(t), Source::Const(0.0)));
            b.idle(lac.config().divsqrt.latency(DivSqrtOp::Reciprocal));
            let step = b.push_step();
            b.pe_mut(step, cc, cc).col_write = Some(Source::SfuResult);
            for r in 0..nr {
                b.pe_mut(step, r, cc).reg_write = Some((REG_SCALE, Source::ColBus));
            }
            // Scale pass: one fused multiply per element, pipelined.
            let w0 = b.len();
            for _ in 0..k + p {
                b.push_step();
            }
            for s in 0..k {
                for r in 0..nr {
                    let pe = b.pe_mut(w0 + s, r, cc);
                    pe.fma = Some((Source::SramB(s), Source::Reg(REG_SCALE), Source::Const(0.0)));
                    b.pe_mut(w0 + s + p, r, cc).sram_b_write = Some((s, Source::MacResult));
                }
            }
            total.merge(&lac.run(&b.build(), mem)?);
        }
    }

    // ---- S1: share the upper half with the helper column, then accumulate --
    {
        let mut b = ProgramBuilder::new(nr);
        for s in half..k {
            let step = b.push_step();
            for r in 0..nr {
                b.pe_mut(step, r, cc).row_write = Some(Source::SramB(s));
                b.pe_mut(step, r, helper).sram_b_write = Some((s, Source::RowBus));
            }
        }
        // Zero both columns' accumulators, then sum squares.
        let step = b.push_step();
        for r in 0..nr {
            b.pe_mut(step, r, cc).acc_load = Some(Source::Const(0.0));
            b.pe_mut(step, r, helper).acc_load = Some(Source::Const(0.0));
        }
        for t in 0..half {
            let step = b.push_step();
            for r in 0..nr {
                b.pe_mut(step, r, cc).mac = Some((Source::SramB(t), Source::SramB(t)));
                b.pe_mut(step, r, helper).mac =
                    Some((Source::SramB(half + t), Source::SramB(half + t)));
            }
        }
        b.idle(p);
        total.merge(&lac.run(&b.build(), mem)?);
    }

    // Decide whether the partial sums fit ordinary doubles. In range the
    // reduction runs entirely in-simulator; out of range (only reachable
    // with the exponent extension) the partials cross the buses in the wide
    // format, which the driver stands in for — same cycles, same transfers,
    // exact wide arithmetic (see module docs).
    let wide_needed = opts.exponent_extension
        && (0..nr).any(|r| {
            lac.acc_wide(r, cc).exponent() > 1020 || lac.acc_wide(r, helper).exponent() > 1020
        });

    {
        let mut b = ProgramBuilder::new(nr);
        // ---- S2: reduce the helper column back into the owner column -------
        let step = b.push_step();
        for r in 0..nr {
            b.pe_mut(step, r, helper).row_write = Some(Source::Acc);
            if wide_needed {
                b.pe_mut(step, r, cc).reg_write = Some((REG_TAG, Source::RowBus));
            } else {
                b.pe_mut(step, r, cc).mac = Some((Source::RowBus, Source::Const(1.0)));
            }
        }
        b.idle(p);
        // ---- S3: reduce within the owner column into the diagonal PE -------
        // PE(cc, cc) sits in the owner column *and* on the mesh diagonal, so
        // the square root is issuable under every divide/sqrt option.
        for r in 0..nr {
            if r == cc {
                continue;
            }
            let step = b.push_step();
            b.pe_mut(step, r, cc).col_write = Some(Source::Acc);
            if wide_needed {
                b.pe_mut(step, cc, cc).reg_write = Some((REG_TAG, Source::ColBus));
            } else {
                b.pe_mut(step, cc, cc).mac = Some((Source::ColBus, Source::Const(1.0)));
            }
        }
        b.idle(p);
        // Square root on the diagonal PE; the wide-accumulator path (§A.2)
        // handles the out-of-range case when the exponent extension is on.
        let step = b.push_step();
        b.pe_mut(step, cc, cc).sfu = Some((DivSqrtOp::Sqrt, Source::Acc, Source::Const(0.0)));
        b.idle(lac.config().divsqrt.latency(DivSqrtOp::Sqrt));
        // Broadcast the result to the whole owner column (Figure 6.4 S3).
        let step = b.push_step();
        b.pe_mut(step, cc, cc).col_write = Some(Source::SfuResult);
        for r in 0..nr {
            b.pe_mut(step, r, cc).reg_write = Some((REG_RESULT, Source::ColBus));
        }
        total.merge(&lac.run(&b.build(), mem)?);
    }

    // Undo the scaling: ‖x‖ = t · ‖x/t‖ (one more multiply through the FPU).
    let mut result = if wide_needed {
        // Wide-datapath reduction (driver stands in for the extended-format
        // bus transfers already accounted above).
        let mut acc = lac_fpu::ExtendedAccumulator::new();
        for r in 0..nr {
            acc.add_wide(&lac.acc_wide(r, cc));
            acc.add_wide(&lac.acc_wide(r, helper));
        }
        acc.sqrt_wide()
    } else {
        lac.reg(0, cc, REG_RESULT)
    };
    if !opts.exponent_extension {
        let mut b = ProgramBuilder::new(nr);
        let w0 = b.push_step();
        b.pe_mut(w0, 0, cc).fma = Some((
            Source::Reg(REG_RESULT),
            Source::Const(scale_t),
            Source::Const(0.0),
        ));
        b.idle(p - 1);
        let step = b.push_step();
        b.pe_mut(step, 0, cc).reg_write = Some((REG_RESULT, Source::MacResult));
        total.merge(&lac.run(&b.build(), mem)?);
        result = lac.reg(0, cc, REG_RESULT);
    }

    Ok(VnormReport {
        stats: total,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_fpu::FpuConfig;
    use lac_sim::LacConfig;
    use linalg_ref::nrm2;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cfg(exp_ext: bool) -> LacConfig {
        LacConfig {
            fpu: FpuConfig {
                exponent_extension: exp_ext,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn run_case(x: &[f64], opts: VnormOptions) -> (f64, ExecStats) {
        let k = x.len() / 4;
        let mut lac = Lac::new(cfg(opts.exponent_extension));
        let mut mem = ExternalMem::from_vec(x.to_vec());
        let rep = vecnorm_run(&mut lac, &mut mem, k, &opts).unwrap();
        (rep.result, rep.stats)
    }

    fn random_x(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    #[test]
    fn all_variants_match_reference() {
        let x = random_x(32, 1);
        let expect = nrm2(&x);
        for opts in [
            VnormOptions {
                exponent_extension: true,
                comparator: false,
            },
            VnormOptions {
                exponent_extension: false,
                comparator: true,
            },
            VnormOptions {
                exponent_extension: false,
                comparator: false,
            },
        ] {
            let (got, _) = run_case(&x, opts);
            assert!(
                (got / expect - 1.0).abs() < 1e-9,
                "{opts:?}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn exponent_extension_survives_huge_values() {
        // Squares overflow f64; only the wide accumulator (or scaling)
        // survives. This is the §A.2 claim.
        let mut x = vec![0.0; 16];
        x[3] = 1e200;
        x[7] = 1e200;
        let expect = 1e200 * 2.0f64.sqrt();
        let (got, _) = run_case(
            &x,
            VnormOptions {
                exponent_extension: true,
                comparator: false,
            },
        );
        assert!((got / expect - 1.0).abs() < 1e-9, "wide-acc path: {got}");
        let (got2, _) = run_case(
            &x,
            VnormOptions {
                exponent_extension: false,
                comparator: true,
            },
        );
        assert!((got2 / expect - 1.0).abs() < 1e-9, "scaled path: {got2}");
    }

    #[test]
    fn extension_cycle_ordering() {
        // exp-ext < comparator < software — Figure 6.6's efficiency order
        // comes straight from these cycle counts.
        let x = random_x(64, 2);
        let (_, ext) = run_case(
            &x,
            VnormOptions {
                exponent_extension: true,
                comparator: false,
            },
        );
        let (_, cmp) = run_case(
            &x,
            VnormOptions {
                exponent_extension: false,
                comparator: true,
            },
        );
        let (_, sw) = run_case(
            &x,
            VnormOptions {
                exponent_extension: false,
                comparator: false,
            },
        );
        assert!(ext.cycles < cmp.cycles, "{} !< {}", ext.cycles, cmp.cycles);
        assert!(cmp.cycles < sw.cycles, "{} !< {}", cmp.cycles, sw.cycles);
    }

    #[test]
    fn underflow_handled_by_scaling() {
        let mut x = vec![0.0; 16];
        x[0] = 1e-200;
        x[5] = 1e-200;
        let expect = 1e-200 * 2.0f64.sqrt();
        let (got, _) = run_case(
            &x,
            VnormOptions {
                exponent_extension: false,
                comparator: true,
            },
        );
        assert!((got / expect - 1.0).abs() < 1e-9);
    }
}
