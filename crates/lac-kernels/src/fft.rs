//! 64-point radix-4 FFT on the LAC (§6.2, Appendix B, Figures B.1–B.3).
//!
//! The 64-point transform is three radix-4 stages on the 4×4 core, one
//! butterfly per PE per stage:
//!
//! * **stage 1** — all four inputs local to each PE (no communication, no
//!   twiddles);
//! * **stage 2** — operands exchanged along the **row** buses;
//! * **stage 3** — operands exchanged along the **column** buses —
//!
//! exactly the Figure B.2 access pattern. Each butterfly is decomposed into
//! FMA layers scheduled per Figure B.1: twiddle products, the `t`-layer
//! (including the free multiply-by-`−i`), and the output layer, with
//! intermediate values ping-ponged between the single-ported A memory, the
//! dual-ported B memory, and the register file so no port is ever
//! oversubscribed. The dissertation's hybrid PE (Figure 6.8) exists
//! precisely to provide this second memory port for FFT.

use lac_sim::{ExecStats, ExtOp, ExternalMem, Lac, ProgramBuilder, SimError, Source};
use linalg_ref::Complex;
use std::f64::consts::PI;

/// Report of a 64-point FFT run.
#[derive(Clone, Debug)]
pub struct Fft64Report {
    /// Event counters of the run.
    pub stats: ExecStats,
    /// FMA operations issued per butterfly stage ≈ the paper's 24-FMA
    /// optimized butterfly plus the add layers.
    pub fma_per_pe: u64,
}

// --- PE-local memory map ---------------------------------------------------
// A memory: butterfly inputs (a,b for stage 1; a,b,c,d for stages 2–3).
// B memory regions:
const HOME: usize = 0; // persistent 4 complex points between stages
const CD: usize = 8; // stage-1 c,d inputs
const T1: usize = 12; // twiddle partial products
const T2: usize = 18; // twiddled operands b', c', d'
const TT: usize = 24; // t-layer results
const Y: usize = 32; // butterfly outputs
pub(crate) const B_WORDS_NEEDED: usize = 40;

/// One scalar FMA in a butterfly layer: `dest ← c ± a·b`, optionally also
/// captured into a register at retire (the bypass network of Figure B.1).
#[derive(Clone, Copy, Debug)]
struct FftOp {
    a: Source,
    b: Source,
    c: Source,
    neg: bool,
    dest: usize,
    cap: Option<usize>,
}

fn op(a: Source, b: Source, c: Source, neg: bool, dest: usize) -> FftOp {
    FftOp {
        a,
        b,
        c,
        neg,
        dest,
        cap: None,
    }
}

fn opc(a: Source, b: Source, c: Source, neg: bool, dest: usize, cap: usize) -> FftOp {
    FftOp {
        a,
        b,
        c,
        neg,
        dest,
        cap: Some(cap),
    }
}

const ONE: Source = Source::Const(1.0);
const ZERO: Source = Source::Const(0.0);

/// The no-twiddle butterfly (stage 1): inputs a,b in A\[0..4\], c,d in
/// B\[CD..CD+4\]; outputs to B\[Y..Y+8\].
fn stage1_layers() -> Vec<Vec<FftOp>> {
    use Source::{Reg, SramA as A, SramB as B};
    let l3 = vec![
        op(ONE, B(CD), A(0), false, TT),             // t0re = a_re + c_re
        op(ONE, B(CD + 1), A(1), false, TT + 1),     // t0im
        op(ONE, B(CD), A(0), true, TT + 2),          // t1re = a_re - c_re
        op(ONE, B(CD + 1), A(1), true, TT + 3),      // t1im
        opc(ONE, B(CD + 2), A(2), false, TT + 4, 0), // t2re = b_re + d_re
        opc(ONE, B(CD + 3), A(3), false, TT + 5, 1), // t2im
        opc(ONE, B(CD + 3), A(3), true, TT + 6, 2),  // t3re = b_im - d_im
        opc(ONE, A(2), B(CD + 2), true, TT + 7, 3),  // t3im = d_re - b_re
    ];
    let l4 = output_layer();
    // keep Reg import used when layers are composed
    let _ = Reg(0);
    vec![l3, l4]
}

/// The shared output layer: `y0 = t0+t2, y1 = t1+t3, y2 = t0−t2, y3 = t1−t3`
/// with t2/t3 arriving through registers 0..3.
fn output_layer() -> Vec<FftOp> {
    use Source::{Reg, SramB as B};
    vec![
        op(ONE, Reg(0), B(TT), false, Y),         // y0re
        op(ONE, Reg(1), B(TT + 1), false, Y + 1), // y0im
        op(ONE, Reg(2), B(TT + 2), false, Y + 2), // y1re
        op(ONE, Reg(3), B(TT + 3), false, Y + 3), // y1im
        op(ONE, Reg(0), B(TT), true, Y + 4),      // y2re
        op(ONE, Reg(1), B(TT + 1), true, Y + 5),  // y2im
        op(ONE, Reg(2), B(TT + 2), true, Y + 6),  // y3re
        op(ONE, Reg(3), B(TT + 3), true, Y + 7),  // y3im
    ]
}

/// Twiddled butterfly (stages 2–3): inputs a,b,c,d in A\[0..8\], twiddles as
/// microcode constants, outputs to B\[Y..Y+8\].
fn twiddle_layers(w1: Complex, w2: Complex, w3: Complex) -> Vec<Vec<FftOp>> {
    use Source::{Const, Reg, SramA as A, SramB as B};
    let l1 = vec![
        op(Const(w1.re), A(2), ZERO, false, T1), // b1re = w1r·b_re
        op(Const(w1.im), A(2), ZERO, false, T1 + 1), // b1im = w1i·b_re
        op(Const(w2.re), A(4), ZERO, false, T1 + 2),
        op(Const(w2.im), A(4), ZERO, false, T1 + 3),
        op(Const(w3.re), A(6), ZERO, false, T1 + 4),
        op(Const(w3.im), A(6), ZERO, false, T1 + 5),
    ];
    let l2 = vec![
        opc(Const(w1.im), A(3), B(T1), true, T2, 0), // b're = b1re − w1i·b_im
        opc(Const(w1.re), A(3), B(T1 + 1), false, T2 + 1, 1), // b'im = b1im + w1r·b_im
        op(Const(w2.im), A(5), B(T1 + 2), true, T2 + 2),
        op(Const(w2.re), A(5), B(T1 + 3), false, T2 + 3),
        op(Const(w3.im), A(7), B(T1 + 4), true, T2 + 4),
        op(Const(w3.re), A(7), B(T1 + 5), false, T2 + 5),
    ];
    let l3 = vec![
        op(ONE, B(T2 + 2), A(0), false, TT),     // t0re = a_re + c're
        op(ONE, B(T2 + 3), A(1), false, TT + 1), // t0im
        op(ONE, B(T2 + 2), A(0), true, TT + 2),  // t1re = a_re − c're
        op(ONE, B(T2 + 3), A(1), true, TT + 3),  // t1im
        opc(ONE, Reg(0), B(T2 + 4), false, TT + 4, 0), // t2re = b're + d're
        opc(ONE, Reg(1), B(T2 + 5), false, TT + 5, 1), // t2im = b'im + d'im
        opc(ONE, B(T2 + 5), Reg(1), true, TT + 6, 2), // t3re = b'im − d'im
        opc(ONE, Reg(0), B(T2 + 4), true, TT + 7, 3), // t3im = d're − b're
    ];
    vec![l1, l2, l3, output_layer()]
}

/// Emit a set of per-PE butterfly layers synchronously: every PE issues one
/// FMA per cycle within a layer, results retire `p` cycles later into
/// B memory (and optionally the register file); the next layer starts after
/// the previous one has fully retired.
#[allow(clippy::needless_range_loop)] // layer indexes parallel per-PE op lists
fn emit_layers(b: &mut ProgramBuilder, p: usize, per_pe: &[Vec<Vec<FftOp>>]) {
    let nr = b.nr();
    let nlayers = per_pe[0].len();
    assert!(per_pe.iter().all(|l| l.len() == nlayers));
    for layer in 0..nlayers {
        let len = per_pe[0][layer].len();
        let w0 = b.len();
        for _ in 0..len + p {
            b.push_step();
        }
        for r in 0..nr {
            for c in 0..nr {
                let ops = &per_pe[r * nr + c][layer];
                assert_eq!(ops.len(), len, "ragged layer");
                for (i, o) in ops.iter().enumerate() {
                    let pe = b.pe_mut(w0 + i, r, c);
                    pe.fma = Some((o.a, o.b, o.c));
                    pe.negate_product = o.neg;
                    let pe = b.pe_mut(w0 + i + p, r, c);
                    pe.sram_b_write = Some((o.dest, Source::MacResult));
                    if let Some(reg) = o.cap {
                        pe.reg_write = Some((reg, Source::MacResult));
                    }
                }
            }
        }
    }
}

fn digit_reverse_64(q: usize) -> usize {
    ((q & 3) << 4) | (q & 0xc) | (q >> 4)
}

/// Run a 64-point complex FFT. `mem` holds the input signal interleaved
/// (`re` at `2q`, `im` at `2q+1`, natural order) and receives the transform
/// in the same format.
pub(crate) fn fft64_run(lac: &mut Lac, mem: &mut ExternalMem) -> Result<Fft64Report, SimError> {
    let nr = lac.config().nr;
    assert_eq!(nr, 4, "the 64-point kernel is written for the 4×4 core");
    let p = lac.config().fpu.pipeline_depth;
    assert!(
        lac.config().sram_b_words >= B_WORDS_NEEDED,
        "B memory too small for FFT scratch"
    );
    assert!(lac.config().sram_a_words >= 8);
    assert!(lac.config().rf_entries >= 4);

    let mut b = ProgramBuilder::new(nr);

    // ---- load with digit reversal (Figure B.2's input staging) -----------
    // PE(r,c) slot s holds x_dr[4g + s], g = 4r + c; slots 0,1 → A, 2,3 → B.
    for t in 0..32 {
        let step = b.push_step();
        for c in 0..nr {
            let r = t / 8;
            let word = t % 8; // slot s = word/2, re/im = word%2
            let s = word / 2;
            let reim = word % 2;
            let g = 4 * r + c;
            let src = 2 * digit_reverse_64(4 * g + s) + reim;
            b.ext(step, ExtOp::Load { col: c, addr: src });
            let pe = b.pe_mut(step, r, c);
            if s < 2 {
                pe.sram_a_write = Some((2 * s + reim, Source::ColBus));
            } else {
                pe.sram_b_write = Some((CD + 2 * (s - 2) + reim, Source::ColBus));
            }
        }
    }

    // ---- stage 1: local butterflies, no twiddles --------------------------
    let s1: Vec<Vec<Vec<FftOp>>> = (0..16).map(|_| stage1_layers()).collect();
    emit_layers(&mut b, p, &s1);

    // ---- row exchange into stage-2 inputs ---------------------------------
    // Receiver PE(h,k) input slot c ← PE(h,c)'s Y slot k.
    {
        let mut cycle_ops: Vec<(usize, usize, usize)> = Vec::new(); // (k, c, reim)
        for k in 0..4 {
            for c in 0..4 {
                if c != k {
                    cycle_ops.push((k, c, 0));
                    cycle_ops.push((k, c, 1));
                }
            }
        }
        for (k, c, reim) in cycle_ops {
            let step = b.push_step();
            for h in 0..4 {
                b.pe_mut(step, h, c).row_write = Some(Source::SramB(Y + 2 * k + reim));
                b.pe_mut(step, h, k).sram_a_write = Some((2 * c + reim, Source::RowBus));
            }
        }
        for reim in 0..2 {
            let step = b.push_step();
            for h in 0..4 {
                for k in 0..4 {
                    b.pe_mut(step, h, k).sram_a_write =
                        Some((2 * k + reim, Source::SramB(Y + 2 * k + reim)));
                }
            }
        }
    }

    // ---- stage 2: twiddled butterflies (w = e^{-2πik/16}) -----------------
    let s2: Vec<Vec<Vec<FftOp>>> = (0..16)
        .map(|idx| {
            let k = idx % 4; // mesh column = butterfly index
            let ang = -2.0 * PI * k as f64 / 16.0;
            twiddle_layers(
                Complex::cis(ang),
                Complex::cis(2.0 * ang),
                Complex::cis(3.0 * ang),
            )
        })
        .collect();
    emit_layers(&mut b, p, &s2);

    // ---- row scatter: y_m of PE(h,k) → HOME slot k of PE(h,m) --------------
    {
        for k in 0..4 {
            for m in 0..4 {
                if m != k {
                    for reim in 0..2 {
                        let step = b.push_step();
                        for h in 0..4 {
                            b.pe_mut(step, h, k).row_write = Some(Source::SramB(Y + 2 * m + reim));
                            b.pe_mut(step, h, m).sram_b_write =
                                Some((HOME + 2 * k + reim, Source::RowBus));
                        }
                    }
                }
            }
        }
        for reim in 0..2 {
            let step = b.push_step();
            for h in 0..4 {
                for k in 0..4 {
                    b.pe_mut(step, h, k).sram_b_write =
                        Some((HOME + 2 * k + reim, Source::SramB(Y + 2 * k + reim)));
                }
            }
        }
    }

    // ---- column exchange into stage-3 inputs -------------------------------
    // Receiver PE(bb,a) input slot m ← PE(m,a)'s HOME slot bb.
    {
        for bb in 0..4 {
            for m in 0..4 {
                if m != bb {
                    for reim in 0..2 {
                        let step = b.push_step();
                        for a in 0..4 {
                            b.pe_mut(step, m, a).col_write =
                                Some(Source::SramB(HOME + 2 * bb + reim));
                            b.pe_mut(step, bb, a).sram_a_write =
                                Some((2 * m + reim, Source::ColBus));
                        }
                    }
                }
            }
        }
        for reim in 0..2 {
            let step = b.push_step();
            for a in 0..4 {
                for bb in 0..4 {
                    b.pe_mut(step, bb, a).sram_a_write =
                        Some((2 * bb + reim, Source::SramB(HOME + 2 * bb + reim)));
                }
            }
        }
    }

    // ---- stage 3: twiddled butterflies (w = e^{-2πik3/64}, k3 = 4a + b) ----
    let s3: Vec<Vec<Vec<FftOp>>> = (0..16)
        .map(|idx| {
            let (bb, a) = (idx / 4, idx % 4);
            let k3 = (4 * a + bb) as f64;
            let ang = -2.0 * PI * k3 / 64.0;
            twiddle_layers(
                Complex::cis(ang),
                Complex::cis(2.0 * ang),
                Complex::cis(3.0 * ang),
            )
        })
        .collect();
    emit_layers(&mut b, p, &s3);

    // ---- column scatter: y_m of PE(bb,a) → HOME slot bb of PE(m,a) ---------
    {
        for bb in 0..4 {
            for m in 0..4 {
                if m != bb {
                    for reim in 0..2 {
                        let step = b.push_step();
                        for a in 0..4 {
                            b.pe_mut(step, bb, a).col_write = Some(Source::SramB(Y + 2 * m + reim));
                            b.pe_mut(step, m, a).sram_b_write =
                                Some((HOME + 2 * bb + reim, Source::ColBus));
                        }
                    }
                }
            }
        }
        for reim in 0..2 {
            let step = b.push_step();
            for a in 0..4 {
                for bb in 0..4 {
                    b.pe_mut(step, bb, a).sram_b_write =
                        Some((HOME + 2 * bb + reim, Source::SramB(Y + 2 * bb + reim)));
                }
            }
        }
    }

    // ---- store: natural order ----------------------------------------------
    for t in 0..32 {
        let step = b.push_step();
        for c in 0..nr {
            let r = t / 8;
            let word = t % 8;
            let s = word / 2;
            let reim = word % 2;
            let g = 4 * r + c;
            let dst = 2 * (4 * g + s) + reim;
            b.pe_mut(step, r, c).col_write = Some(Source::SramB(HOME + 2 * s + reim));
            b.ext(step, ExtOp::Store { col: c, addr: dst });
        }
    }

    let prog = b.build();
    let stats = lac.run(&prog, mem)?;
    Ok(Fft64Report {
        stats,
        fma_per_pe: stats.fma_ops / 16,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::LacConfig;
    use linalg_ref::complex::max_cdiff;
    use linalg_ref::fft_radix4;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fft_cfg() -> LacConfig {
        LacConfig {
            sram_b_words: 64,
            sram_a_words: 64,
            ..Default::default()
        }
    }

    fn run_case(x: &[Complex]) -> (Vec<Complex>, Fft64Report) {
        let mut mem = vec![0.0; 128];
        for (q, v) in x.iter().enumerate() {
            mem[2 * q] = v.re;
            mem[2 * q + 1] = v.im;
        }
        let mut emem = ExternalMem::from_vec(mem);
        let mut lac = Lac::new(fft_cfg());
        let rep = fft64_run(&mut lac, &mut emem).unwrap();
        let out: Vec<Complex> = (0..64)
            .map(|q| Complex::new(emem.read(2 * q), emem.read(2 * q + 1)))
            .collect();
        (out, rep)
    }

    #[test]
    fn impulse() {
        let mut x = vec![Complex::ZERO; 64];
        x[0] = Complex::ONE;
        let (out, _) = run_case(&x);
        for v in &out {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn matches_reference_fft() {
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let (out, rep) = run_case(&x);
        let mut expect = x;
        fft_radix4(&mut expect);
        assert!(max_cdiff(&out, &expect) < 1e-10);
        // 3 stages/PE: 16 + 28 + 28 FMAs.
        assert_eq!(rep.fma_per_pe, 72);
    }

    #[test]
    fn pure_tone_picks_single_bin() {
        let f = 5usize;
        let x: Vec<Complex> = (0..64)
            .map(|q| Complex::cis(2.0 * PI * (f * q) as f64 / 64.0))
            .collect();
        let (out, _) = run_case(&x);
        for (k, v) in out.iter().enumerate() {
            if k == f {
                assert!((v.re - 64.0).abs() < 1e-9, "bin {k}: {v:?}");
            } else {
                assert!(v.abs() < 1e-9, "bin {k} leak: {v:?}");
            }
        }
    }

    #[test]
    fn cycle_budget_reasonable() {
        // Load(32) + 3 compute stages + 4 exchanges + store(32): the whole
        // transform should land in a few hundred cycles (Appendix B's
        // cache-contained regime).
        let x = vec![Complex::ONE; 64];
        let (_, rep) = run_case(&x);
        assert!(rep.stats.cycles < 600, "cycles = {}", rep.stats.cycles);
        assert!(rep.stats.cycles > 150);
    }
}
