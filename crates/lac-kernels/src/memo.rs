//! Shape-keyed memoization of kernel microprograms.
//!
//! Kernel generators are pure functions of the problem *shape* (mesh
//! dimension, pipeline depth, SFU latency, block sizes) — the data flows
//! through external memory at run time. Rebuilding the identical
//! [`Program`] on every call wastes exactly the work the compiled
//! backend's [`lac_sim::ProgramCache`] is designed to skip: a fresh
//! `Program` has an empty structural-hash memo, so every run would
//! re-hash the whole instruction stream just to discover it is a cache
//! hit. This module keeps one `Arc<Program>` per `(kernel, shape)`
//! process-wide; repeated runs share the instance, its hash memoizes
//! once, and every compile-cache lookup after the first is O(1).
//!
//! The table is never evicted — a simulation campaign touches a handful
//! of shapes, each worth a few MB at most.

use lac_sim::Program;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

type Key = (&'static str, Vec<u64>);

fn table() -> &'static Mutex<HashMap<Key, Arc<Program>>> {
    static TABLE: OnceLock<Mutex<HashMap<Key, Arc<Program>>>> = OnceLock::new();
    TABLE.get_or_init(Default::default)
}

/// One `Arc<Program>` per `(kernel, shape)`, built on first use.
///
/// `shape` must encode *every* input the generator reads — two calls
/// with equal keys get the same program back verbatim.
pub(crate) fn program(
    kernel: &'static str,
    shape: &[u64],
    build: impl FnOnce() -> Program,
) -> Arc<Program> {
    let key: Key = (kernel, shape.to_vec());
    if let Some(p) = table().lock().unwrap().get(&key) {
        return Arc::clone(p);
    }
    // Build outside the lock (generators can be sizable). If two threads
    // race, the first insert wins and the loser's build is dropped.
    let built = Arc::new(build());
    Arc::clone(table().lock().unwrap().entry(key).or_insert(built))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::ProgramBuilder;

    #[test]
    fn same_shape_shares_the_instance() {
        let build = || {
            let mut b = ProgramBuilder::new(2);
            b.idle(3);
            b.build()
        };
        let a = program("memo-test", &[2, 3], build);
        let b = program("memo-test", &[2, 3], build);
        assert!(Arc::ptr_eq(&a, &b));
        // The shared instance memoizes its structural hash once.
        assert_eq!(a.structural_hash(), b.structural_hash());
        let c = program("memo-test", &[2, 4], || {
            let mut b = ProgramBuilder::new(2);
            b.idle(4);
            b.build()
        });
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
