//! TRSM on the LAC (§5.3): solve `L X = B` with `L` lower-triangular.
//!
//! The `nr × nr` diagonal solve is the latency-bound part: every iteration
//! needs a reciprocal, a scaled row, and a rank-1 update, each dependent on
//! the last. `trsm_stacked_run` implements the *stacked* schedule of
//! Figure 5.5 — `m = W/nr` independent right-hand-side tiles are pushed
//! through the MAC pipelines back to back, so the scale of tile `s+p` issues
//! while tile `s` retires and the FPU stages stay full.
//!
//! `blocked_trsm_run` is the Figure 5.7 driver: each row panel is first
//! updated with a (negated) GEMM against the already-solved panels, then
//! solved with the stacked kernel.

use crate::gemm::{gemm_run, GemmParams};
use crate::layout::GemmDataLayout;
use lac_fpu::DivSqrtOp;
use lac_sim::{ExecStats, ExtOp, ExternalMem, Lac, ProgramBuilder, SimError, Source};
use linalg_ref::Matrix;

/// Report of a TRSM run.
#[derive(Clone, Debug)]
pub struct TrsmReport {
    /// Event counters of the run.
    pub stats: ExecStats,
    /// Useful MACs: `W · nr(nr+1)/2` plus the scale multiplies.
    pub useful_macs: u64,
    /// Utilization against peak over the run.
    pub utilization: f64,
}

const REG_L: usize = 2;

/// Solve `L X = B` for an `nr × nr` lower-triangular `L` and an `nr × W`
/// panel `B` (W a multiple of nr), overwriting `B` in external memory.
///
/// Memory layout: `L` column-major at offset 0 (`nr × nr`), `B` column-major
/// at offset `nr²`.
pub(crate) fn trsm_stacked_run(
    lac: &mut Lac,
    mem: &mut ExternalMem,
    w: usize,
) -> Result<TrsmReport, SimError> {
    let nr = lac.config().nr;
    let p = lac.config().fpu.pipeline_depth;
    let q = lac.config().divsqrt.latency(DivSqrtOp::Reciprocal);
    assert!(w.is_multiple_of(nr) && w > 0);
    let m = w / nr; // stacked tiles
    assert!(
        m <= lac.config().sram_b_words,
        "B panel too large for B memory"
    );
    let prog = crate::memo::program(
        "trsm-stacked",
        &[nr as u64, p as u64, q as u64, m as u64],
        || trsm_stacked_program(nr, p, q, m),
    );
    let stats = lac.run(&prog, mem)?;
    // scale multiplies (nr·W) + rank-1 update MACs (W·nr(nr-1)/2)
    let useful = (nr * w + w * nr * (nr - 1) / 2) as u64;
    Ok(TrsmReport {
        stats,
        useful_macs: useful,
        utilization: useful as f64 / (stats.cycles as f64 * (nr * nr) as f64),
    })
}

/// The stacked-TRSM microprogram — a pure function of the shape (mesh
/// size, FPU depth `p`, reciprocal latency `q`, stacked tile count `m`).
fn trsm_stacked_program(nr: usize, p: usize, q: usize, m: usize) -> lac_sim::Program {
    let l_addr = |i: usize, j: usize| j * nr + i;
    let b_addr = |i: usize, j: usize| nr * nr + j * nr + i;

    let mut b = ProgramBuilder::new(nr);

    // ---- stage L into registers and B into the B memories -----------------
    for i in 0..nr {
        let step = b.push_step();
        for c in 0..nr {
            b.ext(
                step,
                ExtOp::Load {
                    col: c,
                    addr: l_addr(i, c),
                },
            );
            b.pe_mut(step, i, c).reg_write = Some((REG_L, Source::ColBus));
        }
    }
    for t in 0..m * nr {
        let step = b.push_step();
        let s = t / nr;
        let i = t % nr;
        for c in 0..nr {
            b.ext(
                step,
                ExtOp::Load {
                    col: c,
                    addr: b_addr(i, s * nr + c),
                },
            );
            b.pe_mut(step, i, c).sram_b_write = Some((s, Source::ColBus));
        }
    }

    // ---- iterations --------------------------------------------------------
    for i in 0..nr {
        // S1: reciprocal of the diagonal element.
        let step = b.push_step();
        b.pe_mut(step, i, i).sfu = Some((
            DivSqrtOp::Reciprocal,
            Source::Reg(REG_L),
            Source::Const(0.0),
        ));
        b.idle(q);

        // S2 + S3 fused window: scale issues at w0+s, retires (and feeds the
        // rank-1 update) at w0+s+p; the update retires at w0+s+2p.
        let w0 = b.len();
        for _ in 0..m + 2 * p {
            b.push_step();
        }
        for s in 0..m {
            // scale issue
            {
                let step = w0 + s;
                b.pe_mut(step, i, i).row_write = Some(Source::SfuResult);
                for j in 0..nr {
                    let pe = b.pe_mut(step, i, j);
                    pe.fma = Some((Source::RowBus, Source::SramB(s), Source::Const(0.0)));
                }
            }
            // scale retire → write back + column broadcast; update issue
            {
                let step = w0 + s + p;
                for j in 0..nr {
                    let pe = b.pe_mut(step, i, j);
                    pe.sram_b_write = Some((s, Source::MacResult));
                    pe.col_write = Some(Source::MacResult);
                }
                for r in i + 1..nr {
                    b.pe_mut(step, r, i).row_write = Some(Source::Reg(REG_L));
                    for j in 0..nr {
                        let pe = b.pe_mut(step, r, j);
                        pe.fma = Some((Source::RowBus, Source::ColBus, Source::SramB(s)));
                        pe.negate_product = true;
                    }
                }
            }
            // update retire
            if i + 1 < nr {
                let step = w0 + s + 2 * p;
                for r in i + 1..nr {
                    for j in 0..nr {
                        b.pe_mut(step, r, j).sram_b_write = Some((s, Source::MacResult));
                    }
                }
            }
        }
    }

    // ---- stream the solved panel back --------------------------------------
    for t in 0..m * nr {
        let step = b.push_step();
        let s = t / nr;
        let i = t % nr;
        for c in 0..nr {
            b.pe_mut(step, i, c).col_write = Some(Source::SramB(s));
            b.ext(
                step,
                ExtOp::Store {
                    col: c,
                    addr: b_addr(i, s * nr + c),
                },
            );
        }
    }

    b.build()
}

/// Blocked TRSM (Figure 5.7): solve `L X = B` for `L` lower-triangular
/// `K × K` (`K = k·nr`) and `B` of size `K × W`, as alternating GEMM updates
/// and stacked diagonal solves. Returns the solution and the summed stats of
/// all phases.
///
/// The driver stages each phase's operands into the kernel layouts
/// (modelling the flexible address generators of the PE controllers) and
/// accounts every staged cycle.
pub(crate) fn blocked_trsm_run(
    lac: &mut Lac,
    l: &Matrix,
    b0: &Matrix,
) -> Result<(Matrix, ExecStats), SimError> {
    let nr = lac.config().nr;
    let kk = l.rows();
    assert_eq!(l.cols(), kk);
    assert!(
        kk.is_multiple_of(nr),
        "L dimension must be a multiple of nr"
    );
    let k = kk / nr;
    let w = b0.cols();
    assert!(w.is_multiple_of(nr));
    let mut x = b0.clone();
    let mut total = ExecStats::default();

    for it in 0..k {
        let r0 = it * nr;
        // GEMM update: B_it -= L(it, 0..it) · X(0..it, :)
        if it > 0 {
            let a_blk = l.block(r0, 0, nr, r0); // nr × (it·nr)
            let bsrc = x.block(0, 0, r0, w); // (it·nr) × W
            let cdst = x.block(r0, 0, nr, w); // nr × W
            let lay = GemmDataLayout::new(nr, r0, w);
            let mut mem = ExternalMem::from_vec(lay.pack(&a_blk, &bsrc, &cdst));
            let params = GemmParams {
                mc: nr,
                kc: r0,
                n: w,
                overlap: r0 >= 2 * nr,
                negate: true,
            };
            let rep = gemm_run(lac, &mut mem, &lay, &params)?;
            total.merge(&rep.stats);
            x.set_block(r0, 0, &lay.unpack_c(mem.as_slice()));
        }
        // Diagonal solve on the updated row panel.
        let l11 = l.block(r0, r0, nr, nr);
        let panel = x.block(r0, 0, nr, w);
        let mut mem = vec![0.0; nr * nr + nr * w];
        for j in 0..nr {
            for i in 0..nr {
                mem[j * nr + i] = l11[(i, j)];
            }
        }
        for j in 0..w {
            for i in 0..nr {
                mem[nr * nr + j * nr + i] = panel[(i, j)];
            }
        }
        let mut emem = ExternalMem::from_vec(mem);
        let rep = trsm_stacked_run(lac, &mut emem, w)?;
        total.merge(&rep.stats);
        let solved = Matrix::from_fn(nr, w, |i, j| emem.read(nr * nr + j * nr + i));
        x.set_block(r0, 0, &solved);
    }
    Ok((x, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::LacConfig;
    use linalg_ref::{max_abs_diff, trsm, Side, Triangle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stacked_case(w: usize, seed: u64) -> (Matrix, Matrix, TrsmReport) {
        let nr = 4;
        let mut rng = StdRng::seed_from_u64(seed);
        let l = Matrix::random_lower_triangular(nr, &mut rng);
        let b0 = Matrix::random(nr, w, &mut rng);
        let mut mem = vec![0.0; nr * nr + nr * w];
        for j in 0..nr {
            for i in 0..nr {
                mem[j * nr + i] = l[(i, j)];
            }
        }
        for j in 0..w {
            for i in 0..nr {
                mem[nr * nr + j * nr + i] = b0[(i, j)];
            }
        }
        let mut emem = ExternalMem::from_vec(mem);
        let mut lac = Lac::new(LacConfig::default());
        let rep = trsm_stacked_run(&mut lac, &mut emem, w).unwrap();
        let got = Matrix::from_fn(nr, w, |i, j| emem.read(nr * nr + j * nr + i));
        let mut expect = b0;
        trsm(Side::Left, Triangle::Lower, &l, &mut expect);
        (got, expect, rep)
    }

    #[test]
    fn single_tile_solve() {
        let (got, expect, _) = stacked_case(4, 1);
        assert!(max_abs_diff(&got, &expect) < 1e-9, "{got:?} vs {expect:?}");
    }

    #[test]
    fn stacked_many_tiles() {
        let (got, expect, rep) = stacked_case(32, 2);
        assert!(max_abs_diff(&got, &expect) < 1e-9);
        assert!(rep.stats.sfu_ops == 4, "one reciprocal per iteration");
    }

    #[test]
    fn stacking_amortizes_latency() {
        // Cycles grow far slower than W: the pipeline absorbs the extra
        // tiles (Figure 5.5's point).
        let (_, _, r1) = stacked_case(4, 3);
        let (_, _, r8) = stacked_case(32, 3);
        let per_tile_1 = r1.stats.cycles as f64 / 1.0;
        let per_tile_8 = r8.stats.cycles as f64 / 8.0;
        assert!(
            per_tile_8 < per_tile_1 / 2.0,
            "stacked: {per_tile_8:.1} cyc/tile vs single {per_tile_1:.1}"
        );
    }

    #[test]
    fn blocked_trsm_matches_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        for &(kk, w) in &[(8usize, 8usize), (16, 16), (12, 24)] {
            let l = Matrix::random_lower_triangular(kk, &mut rng);
            let b0 = Matrix::random(kk, w, &mut rng);
            let mut lac = Lac::new(LacConfig::default());
            let (x, stats) = blocked_trsm_run(&mut lac, &l, &b0).unwrap();
            let mut expect = b0;
            trsm(Side::Left, Triangle::Lower, &l, &mut expect);
            assert!(max_abs_diff(&x, &expect) < 1e-8, "kk={kk} w={w}");
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn utilization_reported() {
        let (_, _, rep) = stacked_case(64, 5);
        assert!(rep.utilization > 0.05 && rep.utilization < 1.0);
    }
}
