//! SYMM on the LAC (§5.1): `C := C + A·B` with symmetric `A` stored in its
//! lower triangle.
//!
//! "This operation is like GEMM with the difference that only the lower
//! triangular part of matrix A is stored. Hence, to perform this operation,
//! some blocks of A need to be transposed to recover the upper triangular
//! part." On the LAC the transposition is the same diagonal-bus trick as
//! SYRK (§5.2); in this driver the recovered block `A(i,j) = A(j,i)ᵀ` is
//! produced by the staging address generators when packing the operand for
//! each GEMM panel, and the arithmetic runs on the simulated core.

use crate::gemm::{gemm_run, GemmParams};
use crate::layout::GemmDataLayout;
use lac_sim::{ExecStats, ExternalMem, Lac, SimError};
use linalg_ref::Matrix;

/// `C := C + A·B` with `A (K×K)` symmetric (lower stored), `B (K×W)`.
pub(crate) fn blocked_symm_run(
    lac: &mut Lac,
    a_lower: &Matrix,
    b: &Matrix,
    c0: &Matrix,
) -> Result<(Matrix, ExecStats), SimError> {
    let nr = lac.config().nr;
    let kk = a_lower.rows();
    assert_eq!(a_lower.cols(), kk);
    assert!(kk.is_multiple_of(nr));
    let w = b.cols();
    assert!(w.is_multiple_of(nr));
    assert_eq!(b.rows(), kk);
    assert_eq!((c0.rows(), c0.cols()), (kk, w));
    let mut out = c0.clone();
    let mut total = ExecStats::default();
    let k = kk / nr;

    // Recover each full row panel of A from the stored lower triangle:
    // A(i, j) for j ≤ i comes straight from storage; for j > i it is the
    // transpose of the stored block A(j, i).
    for i in 0..k {
        let r0 = i * nr;
        let a_row = Matrix::from_fn(nr, kk, |r, cidx| {
            let (gi, gj) = (r0 + r, cidx);
            if gi >= gj {
                a_lower[(gi, gj)]
            } else {
                a_lower[(gj, gi)] // transposed block (diagonal-bus trick)
            }
        });
        let c_blk = out.block(r0, 0, nr, w);
        let lay = GemmDataLayout::new(nr, kk, w);
        let mut mem = ExternalMem::from_vec(lay.pack(&a_row, b, &c_blk));
        let params = GemmParams {
            mc: nr,
            kc: kk,
            n: w,
            overlap: kk >= 2 * nr,
            negate: false,
        };
        let rep = gemm_run(lac, &mut mem, &lay, &params)?;
        total.merge(&rep.stats);
        out.set_block(r0, 0, &lay.unpack_c(mem.as_slice()));
    }
    Ok((out, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::LacConfig;
    use linalg_ref::{max_abs_diff, symm, Side, Triangle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blocked_symm_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(kk, w) in &[(8usize, 8usize), (16, 12)] {
            let a = Matrix::random(kk, kk, &mut rng).tril();
            let b = Matrix::random(kk, w, &mut rng);
            let c0 = Matrix::random(kk, w, &mut rng);
            let mut lac = Lac::new(LacConfig::default());
            let (got, _) = blocked_symm_run(&mut lac, &a, &b, &c0).unwrap();
            let mut expect = c0;
            symm(Side::Left, Triangle::Lower, &a, &b, &mut expect);
            assert!(max_abs_diff(&got, &expect) < 1e-10, "kk={kk} w={w}");
        }
    }

    #[test]
    fn symmetric_input_gives_symmetric_quadratic_form() {
        // xᵀ(A·x) must equal (A·x)ᵀx — trivially true, but also A·B with
        // B = I returns the symmetrized A.
        let mut rng = StdRng::seed_from_u64(2);
        let kk = 8;
        let a = Matrix::random(kk, kk, &mut rng).tril();
        let id = Matrix::identity(kk);
        let zero = Matrix::zeros(kk, kk);
        let mut lac = Lac::new(LacConfig::default());
        let (got, _) = blocked_symm_run(&mut lac, &a, &id, &zero).unwrap();
        let expect = a.symmetrize_from_lower();
        assert!(max_abs_diff(&got, &expect) < 1e-12);
    }
}
