//! Cholesky factorization on the LAC (§6.1.1, Figure 6.1).
//!
//! The `nr × nr` kernel holds the (symmetrized) tile in the PE registers.
//! Each iteration: the diagonal PE computes `1/√λ` on the special-function
//! unit, the result is broadcast along its row *and* column to scale them,
//! and a rank-1 downdate of the trailing tile follows — `2p` FPU passes plus
//! one SFU pass per iteration, exactly the dependency chain the paper counts
//! as `2p(nr−1) + q·nr` cycles.
//!
//! `blocked_cholesky_run` composes it with the stacked TRSM and negated
//! SYRK kernels into the right-looking blocked algorithm (Chol → TRSM →
//! SYRK) the dissertation maps across the memory hierarchy.

use crate::syrk::{syrk_run, SyrkDataLayout, SyrkParams};
use crate::trsm::trsm_stacked_run;
use lac_fpu::DivSqrtOp;
use lac_sim::{ExecStats, ExtOp, ExternalMem, Lac, ProgramBuilder, SimError, Source};
use linalg_ref::Matrix;

/// Report of a Cholesky kernel run.
#[derive(Clone, Debug)]
pub struct CholReport {
    /// Event counters of the run.
    pub stats: ExecStats,
}

const REG_A: usize = 3;

/// Factor an `nr × nr` SPD tile stored column-major at offset 0 of `mem`
/// (full matrix; only the lower triangle is significant). On return the
/// lower triangle holds `L` with `A = L·Lᵀ`.
pub(crate) fn cholesky_kernel_run(
    lac: &mut Lac,
    mem: &mut ExternalMem,
) -> Result<CholReport, SimError> {
    let nr = lac.config().nr;
    let p = lac.config().fpu.pipeline_depth;
    let q = lac.config().divsqrt.latency(DivSqrtOp::InvSqrt);
    let prog = crate::memo::program("chol", &[nr as u64, p as u64, q as u64], || {
        cholesky_kernel_program(nr, p, q)
    });
    let stats = lac.run(&prog, mem)?;
    Ok(CholReport { stats })
}

/// The `nr × nr` Cholesky microprogram — a pure function of the shape
/// (mesh size, FPU depth `p`, inverse-square-root latency `q`).
fn cholesky_kernel_program(nr: usize, p: usize, q: usize) -> lac_sim::Program {
    let addr = |i: usize, j: usize| if i >= j { j * nr + i } else { i * nr + j };

    let mut b = ProgramBuilder::new(nr);

    // Stage the tile (symmetrized) into register REG_A of every PE.
    for i in 0..nr {
        let step = b.push_step();
        for c in 0..nr {
            b.ext(
                step,
                ExtOp::Load {
                    col: c,
                    addr: addr(i, c),
                },
            );
            b.pe_mut(step, i, c).reg_write = Some((REG_A, Source::ColBus));
        }
    }

    for i in 0..nr {
        // S1: inverse square root of the pivot.
        let step = b.push_step();
        b.pe_mut(step, i, i).sfu =
            Some((DivSqrtOp::InvSqrt, Source::Reg(REG_A), Source::Const(0.0)));
        b.idle(q);

        // S2: broadcast 1/√λ along row i and column i; scale both (and the
        // pivot itself becomes √λ = λ·(1/√λ)).
        let step = b.push_step();
        b.pe_mut(step, i, i).row_write = Some(Source::SfuResult);
        b.pe_mut(step, i, i).col_write = Some(Source::SfuResult);
        for j in 0..nr {
            if j >= i {
                b.pe_mut(step, i, j).fma =
                    Some((Source::RowBus, Source::Reg(REG_A), Source::Const(0.0)));
            }
            if j > i {
                b.pe_mut(step, j, i).fma =
                    Some((Source::ColBus, Source::Reg(REG_A), Source::Const(0.0)));
            }
        }
        b.idle(p - 1);
        let step = b.push_step();
        for j in 0..nr {
            if j >= i {
                b.pe_mut(step, i, j).reg_write = Some((REG_A, Source::MacResult));
            }
            if j > i {
                b.pe_mut(step, j, i).reg_write = Some((REG_A, Source::MacResult));
            }
        }

        // S3: rank-1 downdate of the trailing tile.
        if i + 1 < nr {
            let step = b.push_step();
            for r in i + 1..nr {
                b.pe_mut(step, r, i).row_write = Some(Source::Reg(REG_A));
                b.pe_mut(step, i, r).col_write = Some(Source::Reg(REG_A));
            }
            for r in i + 1..nr {
                for c in i + 1..nr {
                    let pe = b.pe_mut(step, r, c);
                    pe.fma = Some((Source::RowBus, Source::ColBus, Source::Reg(REG_A)));
                    pe.negate_product = true;
                }
            }
            b.idle(p - 1);
            let step = b.push_step();
            for r in i + 1..nr {
                for c in i + 1..nr {
                    b.pe_mut(step, r, c).reg_write = Some((REG_A, Source::MacResult));
                }
            }
        }
    }

    // Stream out the lower triangle.
    for s in 0..nr {
        let step = b.push_step();
        for c in 0..=s {
            b.pe_mut(step, s, c).col_write = Some(Source::Reg(REG_A));
            b.ext(
                step,
                ExtOp::Store {
                    col: c,
                    addr: c * nr + s,
                },
            );
        }
    }

    b.build()
}

/// Blocked right-looking Cholesky of a `K × K` SPD matrix (`K = k·nr`):
/// per iteration, factor the diagonal tile on the LAC, solve the
/// sub-diagonal panel with the stacked TRSM kernel, and downdate the
/// trailing matrix with the negated SYRK kernel. Returns `L` (lower) and the
/// summed stats.
pub(crate) fn blocked_cholesky_run(
    lac: &mut Lac,
    a: &Matrix,
) -> Result<(Matrix, ExecStats), SimError> {
    let nr = lac.config().nr;
    let kk = a.rows();
    assert_eq!(a.cols(), kk);
    assert!(kk.is_multiple_of(nr));
    let k = kk / nr;
    let mut work = a.clone();
    let mut total = ExecStats::default();

    for it in 0..k {
        let r0 = it * nr;
        // 1. Diagonal tile.
        let tile = work.block(r0, r0, nr, nr);
        let mut mem = ExternalMem::from_vec(
            (0..nr * nr)
                .map(|x| tile[(x % nr, x / nr)])
                .collect::<Vec<_>>(),
        );
        let rep = cholesky_kernel_run(lac, &mut mem)?;
        total.merge(&rep.stats);
        let l11 = Matrix::from_fn(
            nr,
            nr,
            |i, j| if i >= j { mem.read(j * nr + i) } else { 0.0 },
        );
        work.set_block(r0, r0, &l11);

        let rest = kk - r0 - nr;
        if rest == 0 {
            break;
        }
        // 2. Panel solve: A21 := A21·L11⁻ᵀ  ⇔  L11·X = A21ᵀ.
        let a21 = work.block(r0 + nr, r0, rest, nr);
        let bt = a21.transpose(); // nr × rest
        let mut mem = vec![0.0; nr * nr + nr * rest];
        for j in 0..nr {
            for i in 0..nr {
                mem[j * nr + i] = l11[(i, j)];
            }
        }
        for j in 0..rest {
            for i in 0..nr {
                mem[nr * nr + j * nr + i] = bt[(i, j)];
            }
        }
        let mut emem = ExternalMem::from_vec(mem);
        let rep = trsm_stacked_run(lac, &mut emem, rest)?;
        total.merge(&rep.stats);
        let l21 = Matrix::from_fn(rest, nr, |i, j| emem.read(nr * nr + i * nr + j));
        work.set_block(r0 + nr, r0, &l21);

        // 3. Trailing downdate: A22 -= L21·L21ᵀ (negated SYRK).
        let a22 = work.block(r0 + nr, r0 + nr, rest, rest);
        let lay = SyrkDataLayout::new(rest, nr);
        let mut mem = vec![0.0; lay.total_words()];
        for pcol in 0..nr {
            for i in 0..rest {
                mem[lay.a_addr(i, pcol)] = l21[(i, pcol)];
            }
        }
        for j in 0..rest {
            for i in j..rest {
                mem[lay.c_addr(i, j)] = a22[(i, j)];
            }
        }
        let mut emem = ExternalMem::from_vec(mem);
        let rep = syrk_run(
            lac,
            &mut emem,
            &lay,
            &SyrkParams {
                mc: rest,
                kc: nr,
                negate: true,
            },
        )?;
        total.merge(&rep.stats);
        let updated = Matrix::from_fn(rest, rest, |i, j| {
            if i >= j {
                emem.read(lay.c_addr(i, j))
            } else {
                0.0
            }
        });
        let sym = updated.symmetrize_from_lower();
        work.set_block(r0 + nr, r0 + nr, &sym);
    }
    Ok((work.tril(), total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::LacConfig;
    use linalg_ref::{cholesky, max_abs_diff};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kernel_factors_4x4() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random_spd(4, &mut rng);
        let mut mem = ExternalMem::from_vec((0..16).map(|x| a[(x % 4, x / 4)]).collect::<Vec<_>>());
        let mut lac = Lac::new(LacConfig::default());
        cholesky_kernel_run(&mut lac, &mut mem).unwrap();
        let got = Matrix::from_fn(4, 4, |i, j| if i >= j { mem.read(j * 4 + i) } else { 0.0 });
        let expect = cholesky(&a).unwrap();
        assert!(max_abs_diff(&got, &expect) < 1e-9, "{got:?} vs {expect:?}");
    }

    #[test]
    fn kernel_cycle_count_matches_dependency_model() {
        // nr iterations of (SFU + 2 FPU passes) plus staging — the §6.1.1
        // estimate 2p(nr−1) + q·nr within a small constant factor.
        let cfg = LacConfig::default();
        let p = cfg.fpu.pipeline_depth;
        let q = cfg.divsqrt.latency(DivSqrtOp::InvSqrt);
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::random_spd(4, &mut rng);
        let mut mem = ExternalMem::from_vec((0..16).map(|x| a[(x % 4, x / 4)]).collect::<Vec<_>>());
        let mut lac = Lac::new(cfg);
        let rep = cholesky_kernel_run(&mut lac, &mut mem).unwrap();
        let model = (2 * p * 4 + q * 4 + 2 * 4 + 8) as u64; // + staging & handshakes
        assert!(
            rep.stats.cycles <= model + 20,
            "cycles {} vs model {model}",
            rep.stats.cycles
        );
    }

    #[test]
    fn blocked_matches_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        for &kk in &[4usize, 8, 16] {
            let a = Matrix::random_spd(kk, &mut rng);
            let mut lac = Lac::new(LacConfig::default());
            let (l, stats) = blocked_cholesky_run(&mut lac, &a).unwrap();
            let expect = cholesky(&a).unwrap();
            assert!(max_abs_diff(&l, &expect) < 1e-7, "kk={kk}");
            assert!(stats.sfu_ops >= (kk as u64), "one rsqrt per column");
        }
    }
}
