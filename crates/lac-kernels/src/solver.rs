//! The chained-factorization solver loop: an IPM-style composite workload
//! whose rounds feed each other — the headline client of the dependency
//! graph service (`lac_sim::LacService`).
//!
//! Interior-point methods (see PAPERS.md: IP-PMM for convex QP, interior
//! point DDP) spend essentially all their time in a loop of the same three
//! kernels: factor the round's normal-equations matrix (CHOL), solve a
//! block of right-hand sides against the factor (TRSM), and build the next
//! round's matrix from the solutions (SYRK/GEMM rank-k updates). Round
//! `k+1` cannot start before round `k`'s updates land, but *within* a
//! round the per-panel solves and updates are independent — exactly the
//! diamond-per-round DAG the graph scheduler exists for.
//!
//! [`SolverLoopWorkload`] models that loop over deterministic demo
//! operands:
//!
//! ```text
//! A₀ SPD;  for k = 0..rounds:
//!     Lₖ = chol(Aₖ)                       (serial spine)
//!     Xₖ,ₚ = Lₖ⁻¹ Bₚ        p = 0..P      (fan-out: blocked TRSM)
//!     Sₖ,ₚ = Xₖ,ₚ·Xₖ,ₚᵀ     p = 0..P      (fan-out: SYRK)
//!     Aₖ₊₁ = Aₖ + Σₚ Sₖ,ₚ                 (reduction, fixed panel order)
//! ```
//!
//! Every `Sₖ,ₚ` is positive semidefinite, so `Aₖ` stays SPD and the chain
//! factors for any round count. The reduction runs host-side in fixed
//! panel order (the accumulate-at-memory step of a real chip), so the
//! whole loop is bit-deterministic no matter where the graph scheduler
//! places the jobs — and bit-identical to the serial single-engine run.
//!
//! Two doors:
//!
//! * [`Workload`] (`run` on one `LacEngine`) — the whole loop serially on
//!   one core, per-round reports rolled into one [`KernelReport`] with
//!   [`Details::Solver`]. Registered in [`crate::registry`] like any
//!   kernel.
//! * [`SolverLoopWorkload::graph`] — the same loop as a
//!   [`JobGraph`] of [`SolverJob`]s for a multi-core chip/service; rounds
//!   chain through shared state behind the graph's dependency edges.
//!   [`SolverLoopWorkload::check_graph`] verifies every per-round output
//!   against an independent `linalg-ref` chain.

use crate::chol::blocked_cholesky_run;
use crate::syrk::{syrk_run, SyrkDataLayout, SyrkParams};
use crate::trsm::blocked_trsm_run;
use crate::workload::{
    close, demo_matrix, demo_spd, expect_details, finish, Details, KernelReport, Workload,
};
use lac_sim::{ChipJob, ExecStats, JobGraph, JobId, LacEngine, SimError};
use linalg_ref::{cholesky, gemm, max_abs_diff, trsm, Matrix, Side, Triangle};
use std::sync::{Arc, Mutex};

/// Shape of one solver loop. All dimensions follow the 4×4 core's blocked
/// kernels: `n` a multiple of `nr`, panels `n × width`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverLoopParams {
    /// System dimension (the SPD matrix is `n × n`).
    pub n: usize,
    /// IPM iterations (CHOL → TRSM → SYRK rounds).
    pub rounds: usize,
    /// Right-hand-side panels per round — the intra-round fan-out.
    pub panels: usize,
    /// Columns per panel.
    pub width: usize,
    /// Seed for the deterministic demo operands.
    pub salt: u64,
}

impl Default for SolverLoopParams {
    /// A 3-round loop on a 16×16 system with two 8-column panels — small
    /// enough for the registry sweeps, structured enough to show the
    /// serial-spine/parallel-round shape.
    fn default() -> Self {
        Self {
            n: 16,
            rounds: 3,
            panels: 2,
            width: 8,
            salt: 40,
        }
    }
}

/// Per-round ground truth computed by `linalg-ref` (see
/// [`SolverLoopWorkload::reference`]).
pub struct SolverReference {
    /// `Lₖ` per round.
    pub factors: Vec<Matrix>,
    /// `Xₖ,ₚ` per round and panel.
    pub x: Vec<Vec<Matrix>>,
    /// `Sₖ,ₚ` (lower triangle) per round and panel.
    pub s: Vec<Vec<Matrix>>,
    /// `A` after the last round's update.
    pub final_a: Matrix,
}

/// The composite IPM-style solver loop workload. See the module docs for
/// the recurrence.
#[derive(Clone, Debug)]
pub struct SolverLoopWorkload {
    /// The loop's shape.
    pub params: SolverLoopParams,
    /// Round 0's SPD system matrix.
    pub a0: Matrix,
    /// The stacked right-hand sides, `n × (panels · width)`.
    pub b: Matrix,
}

/// Shared state the graph jobs communicate through. The dependency edges
/// guarantee every access is ordered (parents complete before children
/// start), and reductions walk panels in fixed order, so the contents are
/// bit-deterministic regardless of placement.
struct SolverState {
    /// Current `Aₖ`, full symmetric.
    a: Matrix,
    /// Current round's factor.
    l: Matrix,
    /// Current round's per-panel solutions.
    x: Vec<Option<Matrix>>,
    /// Current round's per-panel updates, consumed by the next CHOL.
    s: Vec<Option<Matrix>>,
}

/// `A (full symmetric) += S (lower triangle)`, mirroring the update into
/// both triangles.
fn add_sym_update(a: &mut Matrix, s_lower: &Matrix) {
    let n = a.rows();
    for j in 0..n {
        for i in j..n {
            let v = a[(i, j)] + s_lower[(i, j)];
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
}

/// Meter one graph step into the engine session and wrap it in the uniform
/// report (unlike [`finish`] this does not count a whole workload).
pub(crate) fn step_report(
    eng: &mut LacEngine,
    name: &str,
    stats: ExecStats,
    details: Details,
) -> KernelReport {
    eng.absorb(&stats);
    let nr = eng.config().nr;
    KernelReport {
        kernel: name.to_string(),
        stats,
        useful_flops: stats.flops(),
        utilization: stats.utilization(nr),
        details,
    }
}

/// `S = X·Xᵀ` (lower) on the device via the §5.2 SYRK schedule, from a
/// zeroed accumulator.
pub(crate) fn device_syrk(
    eng: &mut LacEngine,
    x: &Matrix,
) -> Result<(Matrix, ExecStats), SimError> {
    let (mc, kc) = (x.rows(), x.cols());
    let lay = SyrkDataLayout::new(mc, kc);
    let mut image = vec![0.0; lay.total_words()];
    for p in 0..kc {
        for i in 0..mc {
            image[lay.a_addr(i, p)] = x[(i, p)];
        }
    }
    eng.load_image(image);
    let (lac, mem) = eng.parts();
    let rep = syrk_run(
        lac,
        mem,
        &lay,
        &SyrkParams {
            mc,
            kc,
            negate: false,
        },
    )?;
    let s = Matrix::from_fn(mc, mc, |i, j| {
        if i >= j {
            eng.mem().read(lay.c_addr(i, j))
        } else {
            0.0
        }
    });
    Ok((s, rep.stats))
}

impl SolverLoopWorkload {
    /// A loop over deterministic demo operands shaped by `params`.
    pub fn new(params: SolverLoopParams) -> Self {
        assert!(params.rounds >= 1 && params.panels >= 1);
        let a0 = demo_spd(params.n, params.salt);
        let b = demo_matrix(params.n, params.panels * params.width, params.salt + 1);
        Self { params, a0, b }
    }

    /// The default registry-sized loop.
    pub fn demo() -> Self {
        Self::new(SolverLoopParams::default())
    }

    /// Panel `p` of the right-hand-side block.
    pub fn b_panel(&self, p: usize) -> Matrix {
        self.b
            .block(0, p * self.params.width, self.params.n, self.params.width)
    }

    /// Scheduler cost hint of one CHOL step (flop-count shaped). The step
    /// costs are public so service clients can budget admission control
    /// ([`lac_sim::TenantConfig::max_inflight_cost`]) in the same
    /// tenant-agnostic cost-hint currency the planner schedules by.
    pub fn chol_cost(&self) -> u64 {
        (self.params.n.pow(3) as u64 / 3).max(1)
    }

    /// Scheduler cost hint of one per-panel TRSM step.
    pub fn trsm_cost(&self) -> u64 {
        (self.params.n * self.params.n * self.params.width) as u64
    }

    /// Scheduler cost hint of one per-panel SYRK step.
    pub fn syrk_cost(&self) -> u64 {
        (self.params.n * (self.params.n + 1) * self.params.width) as u64
    }

    /// Total admission cost of one [`SolverLoopWorkload::graph`]
    /// submission — identical to [`Workload::cost_hint`], and to
    /// `JobGraph::total_cost` of the built graph, because the graph door
    /// carries the same per-step hints.
    pub fn graph_cost(&self) -> u64 {
        self.cost_hint()
    }

    /// The loop as ground truth in `linalg-ref`, fully independent of the
    /// simulator.
    pub fn reference(&self) -> Result<SolverReference, String> {
        let p = self.params;
        let mut a = self.a0.clone();
        let mut factors = Vec::with_capacity(p.rounds);
        let mut xs = Vec::with_capacity(p.rounds);
        let mut ss = Vec::with_capacity(p.rounds);
        for k in 0..p.rounds {
            let l = cholesky(&a).map_err(|e| format!("solver-loop: reference round {k}: {e:?}"))?;
            let mut round_x = Vec::with_capacity(p.panels);
            let mut round_s = Vec::with_capacity(p.panels);
            for panel in 0..p.panels {
                let mut x = self.b_panel(panel);
                trsm(Side::Left, Triangle::Lower, &l, &mut x);
                let mut s = Matrix::zeros(p.n, p.n);
                gemm(&x, &x.transpose(), &mut s);
                round_x.push(x);
                round_s.push(s.tril());
            }
            for s in &round_s {
                add_sym_update(&mut a, s);
            }
            factors.push(l);
            xs.push(round_x);
            ss.push(round_s);
        }
        Ok(SolverReference {
            factors,
            x: xs,
            s: ss,
            final_a: a,
        })
    }

    /// The loop as a dependency graph: per round one CHOL job (parented on
    /// the previous round's SYRKs — it also folds their updates into `A`),
    /// `panels` TRSM jobs fanning out of it, and `panels` SYRK jobs
    /// feeding the next round. Job ids follow construction order, so
    /// [`GraphRun::outputs`](lac_sim::GraphRun) line up with
    /// [`SolverLoopWorkload::check_graph`].
    pub fn graph(&self) -> SolverGraph {
        let p = self.params;
        let state = Arc::new(Mutex::new(SolverState {
            a: self.a0.clone(),
            l: Matrix::zeros(p.n, p.n),
            x: vec![None; p.panels],
            s: vec![None; p.panels],
        }));
        let mut graph = JobGraph::new();
        let mut chol_ids = Vec::with_capacity(p.rounds);
        let mut trsm_ids = Vec::with_capacity(p.rounds);
        let mut syrk_ids = Vec::with_capacity(p.rounds);
        let mut prev_syrks: Vec<JobId> = Vec::new();
        for round in 0..p.rounds {
            let chol = graph.add_after(
                SolverJob {
                    state: Arc::clone(&state),
                    cost: self.chol_cost(),
                    // The factor L: an n × n lower triangle.
                    words: (p.n * (p.n + 1) / 2) as u64,
                    step: SolverStep::Chol { round },
                },
                &prev_syrks,
            );
            prev_syrks.clear();
            let mut round_trsm = Vec::with_capacity(p.panels);
            let mut round_syrk = Vec::with_capacity(p.panels);
            for panel in 0..p.panels {
                let t = graph.add_after(
                    SolverJob {
                        state: Arc::clone(&state),
                        cost: self.trsm_cost(),
                        // The solved panel X: n × width.
                        words: (p.n * p.width) as u64,
                        step: SolverStep::Trsm {
                            panel,
                            b: self.b_panel(panel),
                        },
                    },
                    &[chol],
                );
                let s = graph.add_after(
                    SolverJob {
                        state: Arc::clone(&state),
                        cost: self.syrk_cost(),
                        // The update S: an n × n lower triangle.
                        words: (p.n * (p.n + 1) / 2) as u64,
                        step: SolverStep::Syrk { panel },
                    },
                    &[t],
                );
                round_trsm.push(t);
                round_syrk.push(s);
                prev_syrks.push(s);
            }
            chol_ids.push(chol);
            trsm_ids.push(round_trsm);
            syrk_ids.push(round_syrk);
        }
        SolverGraph {
            graph,
            chol: chol_ids,
            trsm: trsm_ids,
            syrk: syrk_ids,
        }
    }

    /// Verify a graph run's per-round outputs (in [`SolverGraph`] id
    /// order) against the independent `linalg-ref` chain: factors,
    /// per-panel solutions, and per-panel updates, every round.
    pub fn check_graph(&self, outputs: &[KernelReport]) -> Result<(), String> {
        let p = self.params;
        let expect_len = p.rounds * (1 + 2 * p.panels);
        if outputs.len() != expect_len {
            return Err(format!(
                "solver-loop: graph produced {} outputs, expected {expect_len}",
                outputs.len()
            ));
        }
        let reference = self.reference()?;
        let stride = 1 + 2 * p.panels;
        for k in 0..p.rounds {
            let Details::Cholesky { l } = &outputs[k * stride].details else {
                return Err(expect_details("solver-chol", "Cholesky"));
            };
            rel_close(
                &format!("solver-loop round {k}"),
                "L",
                l,
                &reference.factors[k],
            )?;
            for panel in 0..p.panels {
                // Construction interleaves per panel: chol, then
                // (trsm, syrk) pairs.
                let Details::Trsm { x } = &outputs[k * stride + 1 + 2 * panel].details else {
                    return Err(expect_details("solver-trsm", "Trsm"));
                };
                rel_close(
                    &format!("solver-loop round {k} panel {panel}"),
                    "X",
                    x,
                    &reference.x[k][panel],
                )?;
                let Details::Syrk { c } = &outputs[k * stride + 2 + 2 * panel].details else {
                    return Err(expect_details("solver-syrk", "Syrk"));
                };
                rel_close(
                    &format!("solver-loop round {k} panel {panel}"),
                    "S",
                    c,
                    &reference.s[k][panel],
                )?;
            }
        }
        Ok(())
    }
}

/// Scale-robust comparison: max-abs error relative to the reference's
/// magnitude (the chain's matrices grow with every rank-k update).
fn rel_close(kernel: &str, what: &str, got: &Matrix, reference: &Matrix) -> Result<(), String> {
    let scale = 1.0 + reference.fro_norm();
    close(kernel, what, max_abs_diff(got, reference) / scale, 1e-7)
}

impl Workload for SolverLoopWorkload {
    fn name(&self) -> &str {
        "solver-loop"
    }

    fn cost_hint(&self) -> u64 {
        self.params.rounds as u64
            * (self.chol_cost() + self.params.panels as u64 * (self.trsm_cost() + self.syrk_cost()))
    }

    /// The whole loop serially on one engine — identical arithmetic, in
    /// the same order, as the graph execution, so the per-round factors
    /// are bit-identical between the two doors.
    fn run(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        let p = self.params;
        let mut a = self.a0.clone();
        let mut total = ExecStats::default();
        let mut factors = Vec::with_capacity(p.rounds);
        for _ in 0..p.rounds {
            let (l, stats) = blocked_cholesky_run(eng.core_mut(), &a)?;
            total.merge(&stats);
            let mut updates = Vec::with_capacity(p.panels);
            for panel in 0..p.panels {
                let (x, stats) = blocked_trsm_run(eng.core_mut(), &l, &self.b_panel(panel))?;
                total.merge(&stats);
                let (s, stats) = device_syrk(eng, &x)?;
                total.merge(&stats);
                updates.push(s);
            }
            for s in &updates {
                add_sym_update(&mut a, s);
            }
            factors.push(l);
        }
        Ok(finish(
            eng,
            self.name(),
            total,
            None,
            Details::Solver {
                factors,
                final_a: a,
            },
        ))
    }

    fn check(&self, report: &KernelReport) -> Result<(), String> {
        let Details::Solver { factors, final_a } = &report.details else {
            return Err(expect_details(self.name(), "Solver"));
        };
        let reference = self.reference()?;
        if factors.len() != reference.factors.len() {
            return Err(format!(
                "{}: {} rounds reported, expected {}",
                self.name(),
                factors.len(),
                reference.factors.len()
            ));
        }
        for (k, (got, want)) in factors.iter().zip(&reference.factors).enumerate() {
            rel_close(&format!("{} round {k}", self.name()), "L", got, want)?;
        }
        rel_close(self.name(), "final A", final_a, &reference.final_a)
    }
}

/// The graph form of a solver loop: the [`JobGraph`] to submit plus the
/// per-round job ids (`outputs[id.index()]` is that step's report).
pub struct SolverGraph {
    /// The dependency graph to submit.
    pub graph: JobGraph<SolverJob>,
    /// Round `k`'s CHOL job.
    pub chol: Vec<JobId>,
    /// Round `k`, panel `p`'s TRSM job.
    pub trsm: Vec<Vec<JobId>>,
    /// Round `k`, panel `p`'s SYRK job.
    pub syrk: Vec<Vec<JobId>>,
}

/// One step of the solver loop as a chip job. Steps communicate through
/// the loop's shared state; the graph's edges order every access.
pub struct SolverJob {
    state: Arc<Mutex<SolverState>>,
    cost: u64,
    /// Output footprint in words ([`lac_sim::ChipJob::transfer_words`]) —
    /// what a cross-chip dependent would pull over the link.
    words: u64,
    step: SolverStep,
}

enum SolverStep {
    /// Fold the previous round's updates into `A` (fixed panel order),
    /// then factor.
    Chol { round: usize },
    /// Solve `L·X = Bₚ` against the current factor.
    Trsm { panel: usize, b: Matrix },
    /// `Sₚ = Xₚ·Xₚᵀ` for the next round's matrix.
    Syrk { panel: usize },
}

impl ChipJob for SolverJob {
    type Output = KernelReport;

    fn cost_hint(&self) -> u64 {
        self.cost.max(1)
    }

    fn transfer_words(&self) -> u64 {
        self.words.max(1)
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        match &self.step {
            SolverStep::Chol { round } => {
                let a = {
                    let mut st = self.state.lock().expect("solver state poisoned");
                    if *round > 0 {
                        for p in 0..st.s.len() {
                            let s = st.s[p].take().expect("round k-1 SYRK feeds round k");
                            add_sym_update(&mut st.a, &s);
                        }
                    }
                    st.a.clone()
                };
                let (l, stats) = blocked_cholesky_run(eng.core_mut(), &a)?;
                self.state.lock().expect("solver state poisoned").l = l.clone();
                Ok(step_report(
                    eng,
                    "solver-chol",
                    stats,
                    Details::Cholesky { l },
                ))
            }
            SolverStep::Trsm { panel, b } => {
                let l = self.state.lock().expect("solver state poisoned").l.clone();
                let (x, stats) = blocked_trsm_run(eng.core_mut(), &l, b)?;
                self.state.lock().expect("solver state poisoned").x[*panel] = Some(x.clone());
                Ok(step_report(eng, "solver-trsm", stats, Details::Trsm { x }))
            }
            SolverStep::Syrk { panel } => {
                let x = self.state.lock().expect("solver state poisoned").x[*panel]
                    .clone()
                    .expect("round k TRSM feeds round k SYRK");
                let (s, stats) = device_syrk(eng, &x)?;
                self.state.lock().expect("solver state poisoned").s[*panel] = Some(s.clone());
                Ok(step_report(
                    eng,
                    "solver-syrk",
                    stats,
                    Details::Syrk { c: s },
                ))
            }
        }
    }
}

/// A fleet of independent solver loops fused into one [`JobGraph`] — the
/// partition-aware submission shape for a multi-chip
/// [`lac_sim::LacCluster`].
///
/// Each loop is one weakly-connected component of the fused graph, so the
/// cluster's default `CostBins` partitioner keeps every loop whole on one
/// chip (its round-to-round edges never pay inter-chip transfer cost) and
/// bin-packs the loops across chips by total cost hint. The loops get
/// distinct salts, so every member solves a different system.
pub struct SolverFleet {
    /// The member workloads, in fleet order.
    pub loops: Vec<SolverLoopWorkload>,
    /// All members' graphs fused by [`JobGraph::append`] (no cross-member
    /// edges).
    pub graph: JobGraph<SolverJob>,
    /// Member `m`'s job ids within [`SolverFleet::graph`], in the
    /// member's own construction order — its slice of a run's outputs.
    pub members: Vec<Vec<lac_sim::JobId>>,
}

impl SolverFleet {
    /// Build `count` independent loops shaped by `base`, salted
    /// `base.salt + m` for member `m`.
    pub fn new(base: SolverLoopParams, count: usize) -> Self {
        assert!(count >= 1, "a fleet has at least one loop");
        let loops: Vec<SolverLoopWorkload> = (0..count)
            .map(|m| {
                SolverLoopWorkload::new(SolverLoopParams {
                    salt: base.salt + m as u64,
                    ..base
                })
            })
            .collect();
        let mut graph = JobGraph::new();
        let members = loops
            .iter()
            .map(|w| graph.append(w.graph().graph))
            .collect();
        Self {
            loops,
            graph,
            members,
        }
    }

    /// Total admission cost of the fused fleet (the sum of the members'
    /// [`SolverLoopWorkload::graph_cost`]s, and of the fused graph's
    /// `total_cost` — the fusion preserves per-job hints).
    pub fn total_cost(&self) -> u64 {
        self.loops.iter().map(|w| w.graph_cost()).sum()
    }

    /// Verify a fleet run's outputs (indexed like
    /// [`SolverFleet::graph`]'s job ids) against every member's
    /// independent `linalg-ref` chain.
    pub fn check(&self, outputs: &[KernelReport]) -> Result<(), String> {
        if outputs.len() != self.graph.len() {
            return Err(format!(
                "solver-fleet: {} outputs for {} jobs",
                outputs.len(),
                self.graph.len()
            ));
        }
        for (m, (w, ids)) in self.loops.iter().zip(&self.members).enumerate() {
            // `JobGraph::append` hands back contiguous in-order ids, so a
            // member's outputs are a plain slice — no re-collection.
            let start = ids.first().map_or(0, |id| id.index());
            debug_assert!(ids
                .iter()
                .enumerate()
                .all(|(k, id)| id.index() == start + k));
            w.check_graph(&outputs[start..start + ids.len()])
                .map_err(|e| format!("fleet member {m}: {e}"))?;
        }
        Ok(())
    }
}

/// A streaming solver client for the open-loop traffic layer
/// (`lac_traffic::run_open_loop`): every arrival becomes one small,
/// independently-salted solver chain.
///
/// Where [`SolverFleet`] fuses many loops into *one* closed-loop
/// submission, a stream mints one [`SolverLoopWorkload`] **per request**
/// — the per-arrival unit of work of an interior-point solver fleet
/// serving online traffic. The salt is a pure function of
/// `(base.salt, tenant, index)`, so request operands are bit-identical
/// across reruns, policies and backends while distinct requests solve
/// distinct systems.
#[derive(Clone, Copy, Debug)]
pub struct SolverStream {
    /// Shape shared by every request; `base.salt` seeds the stream.
    pub base: SolverLoopParams,
}

impl SolverStream {
    /// A stream minting requests shaped by `base`.
    pub fn new(base: SolverLoopParams) -> Self {
        Self { base }
    }

    /// The workload for one arrival, salted by `(tenant, index)`
    /// (SplitMix64-style odd multipliers decorrelate the two axes).
    pub fn request(&self, tenant: usize, index: u64) -> SolverLoopWorkload {
        let salt = self
            .base
            .salt
            .wrapping_add((tenant as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(index.wrapping_mul(0xd134_2543_de82_ef95));
        SolverLoopWorkload::new(SolverLoopParams { salt, ..self.base })
    }

    /// Admission cost of one request's graph — the same for every
    /// `(tenant, index)` because the shape is fixed, which keeps
    /// open-loop admission budgets easy to reason about.
    pub fn request_cost(&self) -> u64 {
        SolverLoopWorkload::new(self.base).graph_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::{ChipConfig, LacChip, LacConfig, LacService, Scheduler};

    fn small() -> SolverLoopWorkload {
        SolverLoopWorkload::new(SolverLoopParams {
            n: 8,
            rounds: 2,
            panels: 2,
            width: 4,
            salt: 99,
        })
    }

    #[test]
    fn serial_run_matches_reference_chain() {
        let w = small();
        let mut eng = LacEngine::builder().config(LacConfig::default()).build();
        let report = w.run(&mut eng).unwrap();
        w.check(&report).unwrap();
        assert_eq!(report.kernel, "solver-loop");
        assert!(report.stats.cycles > 0);
    }

    #[test]
    fn graph_matches_reference_and_serial_bitwise() {
        let w = small();
        let sg = w.graph();
        assert_eq!(sg.graph.len(), 2 * (1 + 2 * 2));
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let run = chip.run_graph(&sg.graph, Scheduler::CriticalPath).unwrap();
        w.check_graph(&run.outputs).unwrap();

        // The serial door runs the identical arithmetic in the identical
        // order, so factors agree bit-for-bit, not just within tolerance.
        let mut eng = LacEngine::builder().config(LacConfig::default()).build();
        let serial = w.run(&mut eng).unwrap();
        let Details::Solver { factors, .. } = &serial.details else {
            panic!("solver report");
        };
        for (k, &chol_id) in sg.chol.iter().enumerate() {
            let Details::Cholesky { l } = &run.outputs[chol_id.index()].details else {
                panic!("chol report");
            };
            assert_eq!(l, &factors[k], "round {k} factor must be bit-identical");
        }
    }

    #[test]
    fn rounds_serialize_but_panels_overlap() {
        let w = SolverLoopWorkload::new(SolverLoopParams {
            n: 8,
            rounds: 3,
            panels: 4,
            width: 4,
            salt: 7,
        });
        let sg = w.graph();
        let mut chip = LacChip::new(ChipConfig::new(4, LacConfig::default()));
        let run = chip.run_graph(&sg.graph, Scheduler::CriticalPath).unwrap();
        // Waves: per round CHOL, TRSMs, SYRKs — 3 × 3.
        assert_eq!(run.waves, 9);
        // The chip overlapped the fan-out: strictly faster than serial.
        assert!(run.stats.makespan_cycles < run.stats.aggregate.cycles);
    }

    #[test]
    fn stream_requests_are_salted_and_verifiable() {
        let stream = SolverStream::new(SolverLoopParams {
            n: 8,
            rounds: 1,
            panels: 2,
            width: 4,
            salt: 5,
        });
        // Deterministic: same (tenant, index) → bit-identical operands;
        // different identity → a different system.
        let a = stream.request(0, 3);
        assert_eq!(a.a0, stream.request(0, 3).a0);
        assert_ne!(a.a0, stream.request(1, 3).a0);
        assert_ne!(a.a0, stream.request(0, 4).a0);
        assert_eq!(a.graph_cost(), stream.request_cost());

        // Every minted request passes its own reference check end to end.
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        for (tenant, index) in [(0usize, 0u64), (1, 7)] {
            let w = stream.request(tenant, index);
            let run = chip
                .run_graph(&w.graph().graph, Scheduler::CriticalPath)
                .unwrap();
            w.check_graph(&run.outputs).unwrap();
        }
    }

    #[test]
    fn fleet_shards_cleanly_across_a_cluster() {
        use lac_sim::{ClusterConfig, LacCluster, Partitioner};
        let base = SolverLoopParams {
            n: 8,
            rounds: 2,
            panels: 2,
            width: 4,
            salt: 1000,
        };
        let fleet = SolverFleet::new(base, 4);
        assert_eq!(fleet.graph.len(), 4 * 2 * (1 + 2 * 2));
        assert_eq!(fleet.total_cost(), fleet.graph.total_cost());

        // Each loop is one component: CostBins puts one per chip, zero
        // cut edges.
        let part = Partitioner::CostBins.partition(&fleet.graph, 4);
        assert!(part.cut_edges.is_empty());
        for (m, ids) in fleet.members.iter().enumerate() {
            let chips: Vec<usize> = ids.iter().map(|id| part.chip_of[id.index()]).collect();
            assert!(
                chips.windows(2).all(|w| w[0] == w[1]),
                "member {m} split across chips"
            );
        }

        let cfg = ClusterConfig::homogeneous(2, ChipConfig::new(2, LacConfig::default()));
        let mut cluster: LacCluster<SolverJob> = LacCluster::new(cfg);
        let run = cluster
            .run_graph(&fleet.graph, Scheduler::CriticalPath)
            .unwrap();
        fleet.check(&run.outputs).unwrap();
        assert!(run.transfers.is_empty(), "components never pay the link");

        // Rerun (fresh graph — solver state is consumed) is bit-identical.
        let fleet2 = SolverFleet::new(base, 4);
        let run2 = cluster
            .run_graph(&fleet2.graph, Scheduler::CriticalPath)
            .unwrap();
        assert_eq!(run.outputs, run2.outputs);
        assert_eq!(run.stats, run2.stats);
    }

    #[test]
    fn service_reruns_are_bit_identical_across_policies() {
        let w = small();
        let mut baseline = None;
        for sched in [
            Scheduler::Fifo,
            Scheduler::LeastLoaded,
            Scheduler::CriticalPath,
        ] {
            let mut svc: LacService<SolverJob> =
                LacService::new(ChipConfig::new(3, LacConfig::default()));
            let first = svc.submit(w.graph().graph, sched).unwrap();
            let second = svc.submit(w.graph().graph, sched).unwrap();
            assert_eq!(first.outputs, second.outputs, "{sched:?}: rerun diverged");
            assert_eq!(first.stats, second.stats, "{sched:?}: rerun stats diverged");
            match &baseline {
                None => baseline = Some(first.outputs),
                Some(b) => assert_eq!(b, &first.outputs, "{sched:?}: policy changed results"),
            }
        }
    }
}
