#![warn(missing_docs)]
//! Open-loop traffic layer for the LAC serving stack.
//!
//! The layers below this crate answer "how fast does a batch finish?"
//! (`lac_sim::LacChip`, `LacService`, `LacCluster` — closed-loop
//! makespan). Serving millions of users is a different regime: work
//! arrives on *its own clock*, queues build and drain with the offered
//! load, and the metric that matters is the **sojourn time** — arrival to
//! completion — at the tail (p99/p999), per tenant, against a latency
//! SLO. This crate closes that loop:
//!
//! * [`ArrivalTrace`] — deterministic seeded arrival-trace generation
//!   ([`ArrivalProcess::Poisson`], bursty [`ArrivalProcess::OnOff`],
//!   [`ArrivalProcess::Diurnal`]). A trace is a replayable value type:
//!   the same seed yields bit-identical arrivals, so every latency
//!   number downstream is reproducible.
//! * [`LatencyHistogram`] — fixed log-bucketed sojourn-time accounting
//!   with deterministic [`LatencyHistogram::p50`] /
//!   [`LatencyHistogram::p99`] / [`LatencyHistogram::p999`] in simulated
//!   cycles (≤ 12.5 % bucket granularity), exact merge.
//! * [`run_open_loop`] — the open-loop driver: it walks a trace against
//!   an [`OpenLoopBackend`] (a `LacService` or a `LacCluster`),
//!   fast-forwarding the simulated clock to the next arrival through the
//!   backend's `advance_idle` door, enqueueing each due arrival through
//!   the tenant admission door, running rounds, and charging each
//!   completed request's sojourn to its tenant's histogram. Tenants with
//!   a [`lac_sim::TenantConfig::with_deadline`] SLO get a preemption-free
//!   priority boost (least deadline slack first) layered on the
//!   fair-share scheduler — which reorders *when* jobs run but, because
//!   outputs are placement-independent, never changes output bits.
//! * [`run_open_loop_dynamic`] — the same replay for
//!   *convergence-driven* requests: each arrival is a
//!   [`lac_sim::dynamic::DynamicGraph`] whose continuation appends
//!   segments until its residual converges. Continuations of live
//!   requests re-admit **before** younger arrivals (arrival order is
//!   preserved), appended segments are charged against the tenant's
//!   admission budget like any fresh graph, and the sojourn clock runs
//!   to the *final* segment — convergence time, not first-segment time.
//!
//! Everything here is planned from ticks, cost hints and seeds — never
//! host timing — so open-loop runs are bit-identical across reruns,
//! scheduler policies and backends, the same determinism contract as the
//! rest of the stack.

pub mod driver;
pub mod hist;
pub mod trace;

pub use driver::{
    run_open_loop, run_open_loop_dynamic, CompletedRequest, DynamicCompleted,
    DynamicOpenLoopReport, OpenLoopBackend, OpenLoopConfig, OpenLoopError, OpenLoopReport,
    RoundOutcome, TenantLatency,
};
pub use hist::LatencyHistogram;
pub use trace::{Arrival, ArrivalProcess, ArrivalTrace};
