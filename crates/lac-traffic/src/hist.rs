//! Fixed log-bucketed latency histogram with deterministic percentiles.
//!
//! Sojourn times span orders of magnitude under load (a lightly loaded
//! chip completes in one round's makespan; an overloaded one queues for
//! many), so linear buckets either waste memory or saturate. The classic
//! serving-systems answer is a log-bucketed histogram with linear
//! sub-buckets per octave (HdrHistogram's layout): constant *relative*
//! resolution, constant memory, exact merge. This one is integer-only —
//! bucket indexing is pure bit arithmetic — so recording and merging are
//! bit-deterministic on every host, matching the simulator's
//! reproducibility contract.

/// Linear sub-buckets per power-of-two octave, as a bit count: 2^3 = 8
/// sub-buckets, so a bucket's width is at most 1/8 of its value (12.5 %
/// worst-case relative error on reported percentiles).
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Values below `SUBS` get exact unit buckets; above, each of the
/// remaining `64 - SUB_BITS` octaves gets `SUBS` sub-buckets.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Map a value to its bucket index (pure bit arithmetic, total over u64).
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS here
    let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    SUBS + (msb - SUB_BITS) as usize * SUBS + sub
}

/// The largest value a bucket holds — what percentiles report, so a
/// reported percentile is always an upper bound on the true one.
fn bucket_upper(b: usize) -> u64 {
    if b < SUBS {
        return b as u64;
    }
    let octave = ((b - SUBS) / SUBS) as u32 + SUB_BITS;
    let sub = ((b - SUBS) % SUBS) as u64;
    // The bucket covers [ (SUBS+sub) << shift, (SUBS+sub+1) << shift ),
    // where shift = octave - SUB_BITS.
    ((SUBS as u64 + sub + 1) << (octave - SUB_BITS)).wrapping_sub(1)
}

/// A fixed-size log-bucketed histogram of simulated-cycle latencies.
///
/// * **Deterministic**: recording, merging and percentile extraction are
///   integer-only pure functions — two runs that record the same
///   multiset of values are bit-identical, whatever the host.
/// * **Mergeable**: [`LatencyHistogram::merge`] adds counts bucket-wise;
///   merge is exact, commutative and associative (property-tested in
///   `tests/traffic_props.rs`).
/// * **Bounded error**: a reported percentile is the upper bound of the
///   sample's bucket — never below the true value and at most 12.5 %
///   (1/8) above it, plus 1 for the unit buckets.
///
/// ```
/// use lac_traffic::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert!(h.p50() >= 500 && h.p50() <= 563);    // within 12.5 %
/// assert!(h.p99() >= 990 && h.p99() <= 1124);
/// assert!(h.p50() <= h.p99() && h.p99() <= h.p999());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (all buckets pre-allocated: ~500 counters).
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one latency sample, in simulated cycles.
    pub fn record(&mut self, cycles: u64) {
        self.counts[bucket_of(cycles)] += 1;
        self.count += 1;
        self.sum += cycles as u128;
        self.min = self.min.min(cycles);
        self.max = self.max.max(cycles);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 on an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded samples (0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the upper bound of the bucket
    /// holding the sample of rank `ceil(q · count)`. Monotone in `q` by
    /// construction — the cumulative scan only moves forward — hence
    /// p50 ≤ p99 ≤ p999 always. Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median sojourn (see [`LatencyHistogram::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th-percentile sojourn — the open-loop serving gate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th-percentile sojourn.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Fold `other` into `self` bucket-wise. Exact: the merged histogram
    /// equals one that recorded both sample multisets directly.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_line() {
        // Exhaustive near the seams plus spot checks: bucket_of is
        // monotone and bucket_upper is the last value of its bucket.
        let mut last = 0usize;
        for v in 0..4096u64 {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of must be monotone at {v}");
            assert!(bucket_upper(b) >= v, "upper({b}) < {v}");
            if b > last {
                assert_eq!(bucket_upper(last), v - 1, "seam at {v}");
            }
            last = b;
        }
        for shift in 3..64u32 {
            let v = 1u64 << shift;
            assert_eq!(bucket_of(bucket_upper(bucket_of(v))), bucket_of(v));
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
        assert_eq!(bucket_upper(bucket_of(u64::MAX)), u64::MAX);
    }

    #[test]
    fn percentile_bounds_and_monotonicity() {
        let mut h = LatencyHistogram::new();
        for v in (1..=10_000u64).rev() {
            h.record(v);
        }
        // Upper-bound property with 1/8 relative slack.
        for (q, exact) in [(0.5, 5_000u64), (0.99, 9_900), (0.999, 9_990)] {
            let got = h.percentile(q);
            assert!(got >= exact, "{q}: {got} < exact {exact}");
            assert!(
                got <= exact + exact / 8 + 1,
                "{q}: {got} too far above {exact}"
            );
        }
        assert!(h.p50() <= h.p99() && h.p99() <= h.p999());
        assert_eq!(h.percentile(1.0), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn merge_is_exact() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 0..500u64 {
            all.record(v * 17 + 3);
            if v % 2 == 0 {
                a.record(v * 17 + 3);
            } else {
                b.record(v * 17 + 3);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        let mut flipped = b;
        flipped.merge(&a);
        assert_eq!(flipped, all, "merge is commutative");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!((h.count(), h.min(), h.max(), h.p99()), (0, 0, 0, 0));
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
    }
}
