//! Deterministic seeded arrival-trace generation.
//!
//! An open-loop experiment is only as reproducible as its arrivals, so a
//! trace here is a **replayable value type**: [`ArrivalTrace::generate`]
//! is a pure function of `(seed, horizon, processes)` built on the
//! vendored deterministic `rand` (xoshiro256++ seeded via SplitMix64) —
//! the same inputs yield bit-identical [`Arrival`]s on every rerun
//! (property-tested in `tests/traffic_props.rs`). One independent random
//! stream per tenant keeps processes uncorrelated while staying
//! replayable tenant-by-tenant.
//!
//! Three process shapes cover the serving regimes the paper's workloads
//! meet in production (streams of small factorization chains — see
//! PAPERS.md on interior-point fleets): memoryless [`ArrivalProcess::
//! Poisson`] background load, [`ArrivalProcess::OnOff`] bursts (trains of
//! back-to-back requests separated by quiet gaps), and [`ArrivalProcess::
//! Diurnal`] rate modulation (a sinusoidal day/night cycle, sampled by
//! thinning).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request arrival: which tenant, when (in simulated cycles), and its
/// per-tenant sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Arrival {
    /// Arrival tick on the simulated clock.
    pub tick: u64,
    /// Index of the generating stream — by convention the tenant's
    /// registration index ([`lac_sim::TenantId::index`]).
    pub tenant: usize,
    /// This arrival's position within its tenant's stream (dense, from 0).
    pub index: u64,
}

/// The stochastic shape of one tenant's arrival stream. All gaps are in
/// simulated cycles; every sampled gap is rounded and floored at 1 so the
/// clock always advances.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps with the given
    /// mean — the classic open-loop background load.
    Poisson {
        /// Mean inter-arrival gap in cycles (the offered rate is
        /// `1 / mean_gap`).
        mean_gap: f64,
    },
    /// Bursty on-off arrivals: trains of requests with short `mean_gap_on`
    /// gaps, train lengths exponential with mean `mean_burst`, separated
    /// by exponential quiet gaps with mean `mean_gap_off`.
    OnOff {
        /// Mean gap between requests inside a burst.
        mean_gap_on: f64,
        /// Mean number of requests per burst.
        mean_burst: f64,
        /// Mean quiet gap between bursts.
        mean_gap_off: f64,
    },
    /// Diurnally modulated Poisson arrivals: the instantaneous rate is
    /// `(1/mean_gap) · (1 + depth · sin(2πt/period))`, sampled by
    /// thinning a Poisson stream at the peak rate.
    Diurnal {
        /// Mean inter-arrival gap at the *average* rate.
        mean_gap: f64,
        /// Modulation period in cycles (one simulated "day").
        period: u64,
        /// Modulation depth in `[0, 1)`: 0 is plain Poisson, 0.9 swings
        /// the rate between 0.1x and 1.9x the average.
        depth: f64,
    },
}

impl ArrivalProcess {
    /// The process's average inter-arrival gap — what the offered-load
    /// tolerance check in the property suite compares against.
    pub fn mean_gap(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => mean_gap,
            ArrivalProcess::OnOff {
                mean_gap_on,
                mean_burst,
                mean_gap_off,
            } => {
                // Per burst: mean_burst arrivals over (mean_burst - 1)
                // on-gaps plus one off-gap (approximating with mean_burst
                // on-gaps keeps this a simple closed form).
                (mean_burst * mean_gap_on + mean_gap_off) / mean_burst
            }
            ArrivalProcess::Diurnal { mean_gap, .. } => mean_gap,
        }
    }
}

/// A replayable arrival trace: every tenant's arrivals merged in tick
/// order. Equal value = equal experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
    horizon: u64,
    streams: usize,
}

/// Sample an exponential gap with the given mean, rounded to whole cycles
/// and floored at 1.
fn exp_gap(rng: &mut StdRng, mean: f64) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    // Inverse CDF; (1 - u) keeps the argument in (0, 1].
    let g = -mean * (1.0 - u).ln();
    (g.round() as u64).max(1)
}

impl ArrivalTrace {
    /// Generate the trace: one independent seeded stream per process
    /// (stream `t` drives tenant index `t`), arrivals up to and including
    /// `horizon` ticks, merged by `(tick, tenant, index)`. Pure function
    /// of its arguments — same inputs, bit-identical trace.
    pub fn generate(seed: u64, horizon: u64, processes: &[ArrivalProcess]) -> Self {
        let mut arrivals = Vec::new();
        for (tenant, proc_) in processes.iter().enumerate() {
            // SplitMix64's golden-ratio increment decorrelates per-tenant
            // streams drawn from one experiment seed.
            let stream_seed =
                seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tenant as u64 + 1));
            let mut rng = StdRng::seed_from_u64(stream_seed);
            let mut index = 0u64;
            let push = |tick: u64, index: &mut u64, arrivals: &mut Vec<Arrival>| {
                arrivals.push(Arrival {
                    tick,
                    tenant,
                    index: *index,
                });
                *index += 1;
            };
            match *proc_ {
                ArrivalProcess::Poisson { mean_gap } => {
                    assert!(mean_gap >= 1.0, "mean_gap must be at least one cycle");
                    let mut t = exp_gap(&mut rng, mean_gap);
                    while t <= horizon {
                        push(t, &mut index, &mut arrivals);
                        t += exp_gap(&mut rng, mean_gap);
                    }
                }
                ArrivalProcess::OnOff {
                    mean_gap_on,
                    mean_burst,
                    mean_gap_off,
                } => {
                    assert!(mean_gap_on >= 1.0 && mean_gap_off >= 1.0 && mean_burst >= 1.0);
                    let mut t = exp_gap(&mut rng, mean_gap_off);
                    'trace: loop {
                        let burst = (exp_gap(&mut rng, mean_burst)).max(1);
                        for _ in 0..burst {
                            if t > horizon {
                                break 'trace;
                            }
                            push(t, &mut index, &mut arrivals);
                            t += exp_gap(&mut rng, mean_gap_on);
                        }
                        t += exp_gap(&mut rng, mean_gap_off);
                        if t > horizon {
                            break;
                        }
                    }
                }
                ArrivalProcess::Diurnal {
                    mean_gap,
                    period,
                    depth,
                } => {
                    assert!(mean_gap >= 1.0, "mean_gap must be at least one cycle");
                    assert!((0.0..1.0).contains(&depth), "depth must be in [0, 1)");
                    assert!(period >= 1, "period must be at least one cycle");
                    // Thinning: candidates at the peak rate, each kept
                    // with probability rate(t)/peak — both draws always
                    // consumed, so the stream stays replayable.
                    let peak_gap = mean_gap / (1.0 + depth);
                    let mut t = exp_gap(&mut rng, peak_gap);
                    while t <= horizon {
                        let phase =
                            2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64;
                        let accept = (1.0 + depth * phase.sin()) / (1.0 + depth);
                        if rng.gen_bool(accept.clamp(0.0, 1.0)) {
                            push(t, &mut index, &mut arrivals);
                        }
                        t += exp_gap(&mut rng, peak_gap);
                    }
                }
            }
        }
        arrivals.sort_unstable_by_key(|a| (a.tick, a.tenant, a.index));
        Self {
            arrivals,
            horizon,
            streams: processes.len(),
        }
    }

    /// Rebuild a trace from its parts — the replay half of file
    /// capture/replay (`lac_bench::trace_io` serializes the parts to
    /// JSON). Validates every invariant [`ArrivalTrace::generate`]
    /// guarantees, so a replayed trace is indistinguishable from a
    /// generated one: arrivals sorted by `(tick, tenant, index)`, ticks
    /// in `[1, horizon]`, tenants within `streams`, and per-tenant
    /// indices dense from 0.
    pub fn from_parts(
        arrivals: Vec<Arrival>,
        horizon: u64,
        streams: usize,
    ) -> Result<Self, String> {
        let mut next_index = vec![0u64; streams];
        let mut last = None;
        for (i, a) in arrivals.iter().enumerate() {
            if a.tenant >= streams {
                return Err(format!(
                    "arrival {i}: tenant {} out of range (streams = {streams})",
                    a.tenant
                ));
            }
            if a.tick < 1 || a.tick > horizon {
                return Err(format!(
                    "arrival {i}: tick {} outside [1, {horizon}]",
                    a.tick
                ));
            }
            let key = (a.tick, a.tenant, a.index);
            if last.is_some_and(|l| l >= key) {
                return Err(format!("arrival {i}: not sorted by (tick, tenant, index)"));
            }
            last = Some(key);
            if a.index != next_index[a.tenant] {
                return Err(format!(
                    "arrival {i}: tenant {} index {} breaks the dense sequence (expected {})",
                    a.tenant, a.index, next_index[a.tenant]
                ));
            }
            next_index[a.tenant] += 1;
        }
        Ok(Self {
            arrivals,
            horizon,
            streams,
        })
    }

    /// All arrivals, sorted by `(tick, tenant, index)`.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Total arrivals across every stream.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when no stream produced an arrival within the horizon.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The horizon the trace was generated to (inclusive).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Number of generating streams (= tenants).
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Arrivals of one tenant's stream.
    pub fn count_for(&self, tenant: usize) -> usize {
        self.arrivals.iter().filter(|a| a.tenant == tenant).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_bit_identical_for_a_seed() {
        let procs = [
            ArrivalProcess::Poisson { mean_gap: 97.0 },
            ArrivalProcess::OnOff {
                mean_gap_on: 5.0,
                mean_burst: 8.0,
                mean_gap_off: 900.0,
            },
            ArrivalProcess::Diurnal {
                mean_gap: 150.0,
                period: 10_000,
                depth: 0.8,
            },
        ];
        let a = ArrivalTrace::generate(42, 100_000, &procs);
        let b = ArrivalTrace::generate(42, 100_000, &procs);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = ArrivalTrace::generate(43, 100_000, &procs);
        assert_ne!(a, c, "a different seed changes the trace");
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let procs = [
            ArrivalProcess::Poisson { mean_gap: 97.0 },
            ArrivalProcess::OnOff {
                mean_gap_on: 5.0,
                mean_burst: 8.0,
                mean_gap_off: 900.0,
            },
        ];
        let trace = ArrivalTrace::generate(9, 50_000, &procs);
        let rebuilt =
            ArrivalTrace::from_parts(trace.arrivals().to_vec(), trace.horizon(), trace.streams())
                .unwrap();
        assert_eq!(rebuilt, trace);

        // Each invariant violation is a typed error, not a bad trace.
        let a = trace.arrivals().to_vec();
        assert!(
            ArrivalTrace::from_parts(a.clone(), 50_000, 1).is_err(),
            "tenant range"
        );
        assert!(
            ArrivalTrace::from_parts(a.clone(), 10, 2).is_err(),
            "tick past horizon"
        );
        let mut unsorted = a.clone();
        unsorted.swap(0, 1);
        assert!(
            ArrivalTrace::from_parts(unsorted, 50_000, 2).is_err(),
            "sortedness"
        );
        let mut sparse = a;
        sparse.remove(0);
        assert!(
            ArrivalTrace::from_parts(sparse, 50_000, 2).is_err(),
            "dense indices"
        );
    }

    #[test]
    fn poisson_respects_the_mean_rate() {
        let horizon = 1_000_000u64;
        let mean_gap = 250.0;
        let trace = ArrivalTrace::generate(7, horizon, &[ArrivalProcess::Poisson { mean_gap }]);
        let expected = horizon as f64 / mean_gap;
        let got = trace.len() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "got {got} arrivals, expected ~{expected}"
        );
    }

    #[test]
    fn streams_are_sorted_and_indexed_densely() {
        let procs = [
            ArrivalProcess::Poisson { mean_gap: 50.0 },
            ArrivalProcess::Poisson { mean_gap: 80.0 },
        ];
        let trace = ArrivalTrace::generate(1, 50_000, &procs);
        let mut last_tick = 0;
        let mut next_index = [0u64; 2];
        for a in trace.arrivals() {
            assert!(a.tick >= last_tick, "ticks must be sorted");
            assert!(a.tick >= 1 && a.tick <= 50_000);
            assert_eq!(a.index, next_index[a.tenant], "dense per-tenant indices");
            next_index[a.tenant] += 1;
            last_tick = a.tick;
        }
        assert_eq!(trace.count_for(0) + trace.count_for(1), trace.len());
    }
}
