//! The open-loop driver: replay an [`ArrivalTrace`] against a serving
//! backend and account every request's sojourn time.
//!
//! Closed-loop benchmarking (submit a batch, measure its makespan) hides
//! queueing: the next request conveniently waits for the previous one.
//! Open-loop serving replays arrivals on their *own* clock — if the
//! backend falls behind, the queue grows and sojourn times balloon,
//! exactly like production. The driver here is the glue:
//!
//! 1. **Fast-forward** — with nothing admitted and the next arrival in
//!    the future, advance the backend's simulated clock to it through
//!    the `advance_idle` door (static energy keeps accruing; no busy
//!    work is invented). This is an *event-horizon hop*: the next
//!    arrival is the earliest event the idle backend can observe, so
//!    jumping straight to it is exactly what the discrete-event core
//!    (`lac_sim::SimMode::Event`) does with its heap inside a round —
//!    the driver does the same hop between rounds, one layer up.
//! 2. **Admit** — every arrival due by the current clock is stamped with
//!    its `arrival_tick`, turned into a [`JobGraph`] by the caller's
//!    factory, and offered to the tenant's admission door. Bounced
//!    graphs (deterministic backpressure) retry in arrival order before
//!    new work.
//! 3. **Serve** — one `run_admitted` round executes everything admitted.
//!    Tenants with a deadline SLO get a boost equal to their *deadline
//!    slack* (earliest pending arrival's deadline minus now): the
//!    fair-share planner serves boosted tenants least-slack-first,
//!    preemption-free ([`lac_sim::plan_wave_tenanted_slo`]).
//! 4. **Account** — each completed graph's sojourn (completion tick −
//!    arrival tick, via the round's `wave_end_cycles`) lands in its
//!    tenant's [`LatencyHistogram`].
//!
//! Every step is a pure function of the trace, the configs and the cost
//! hints, so a whole open-loop run is bit-identical across reruns — and
//! its *outputs* are bit-identical across scheduler policies and
//! backends too (scheduling moves latencies, never results).
//!
//! Failures are typed, never panics: a graph that can *never* fit its
//! tenant's admission budget surfaces as
//! [`OpenLoopError::AdmissionDeadlock`], and a backend that hands back a
//! truncated wave clock (violating the [`OpenLoopBackend::run_boosted`]
//! contract) surfaces as [`OpenLoopError::TruncatedWaveClock`] instead of
//! silently mis-accounting sojourns.

use crate::hist::LatencyHistogram;
use crate::trace::{Arrival, ArrivalTrace};
use lac_sim::chip::ChipJob;
use lac_sim::dynamic::{Continuation, Continue, DynamicGraph, DynamicOutcome};
use lac_sim::{
    ClusterRound, EventLog, GraphCompletion, GraphTicket, JobGraph, LacCluster, LacService,
    Rejected, Scheduler, ServiceRound, SimError, TenantId, TraceEvent,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Why an open-loop replay stopped early.
#[derive(Clone, Debug, PartialEq)]
pub enum OpenLoopError {
    /// The backend failed a serving round (a hard simulation hazard).
    Sim(SimError),
    /// Admission wedged permanently: every due graph bounced with nothing
    /// in flight, so no budget can ever drain. The classic trigger is a
    /// graph whose cost alone exceeds its tenant's admission budget.
    AdmissionDeadlock {
        /// Bounced submissions stuck in the retry queue.
        bounced: usize,
    },
    /// A round's `wave_end_cycles` was shorter than the waves its
    /// completions reference — the backend broke the
    /// [`OpenLoopBackend::run_boosted`] contract, and sojourns could not
    /// be accounted.
    TruncatedWaveClock {
        /// The wave index a completion pointed at.
        last_wave: usize,
        /// Entries the round's wave clock actually had.
        waves: usize,
    },
}

impl fmt::Display for OpenLoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenLoopError::Sim(e) => write!(f, "serving round failed: {e}"),
            OpenLoopError::AdmissionDeadlock { bounced } => write!(
                f,
                "open-loop deadlock: a graph's cost alone exceeds its tenant's \
                 admission budget ({bounced} bounced, nothing in flight)"
            ),
            OpenLoopError::TruncatedWaveClock { last_wave, waves } => write!(
                f,
                "backend returned a truncated wave clock: completion in wave \
                 {last_wave} but only {waves} wave-end entries"
            ),
        }
    }
}

impl std::error::Error for OpenLoopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpenLoopError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for OpenLoopError {
    fn from(e: SimError) -> Self {
        OpenLoopError::Sim(e)
    }
}

/// What one serving round hands back to the driver: per-graph completions
/// plus the wave-end clocks that anchor sojourn accounting. The common
/// projection of [`ServiceRound`] and [`ClusterRound`].
#[derive(Clone, Debug)]
pub struct RoundOutcome<T> {
    /// Completed graphs, in admission (ticket) order.
    pub completions: Vec<GraphCompletion<T>>,
    /// Simulated clock at the end of each wave, relative to the round's
    /// start.
    pub wave_end_cycles: Vec<u64>,
    /// The round's event log, on the round-relative clock (empty for
    /// backends that don't trace). The driver rebases it onto the session
    /// clock and merges it into [`OpenLoopReport::events`].
    pub events: EventLog,
}

/// A serving backend the open-loop driver can feed: the multi-tenant
/// admission door, the boosted round door, the session clock and the idle
/// fast-forward door. Implemented for [`LacService`] (one chip,
/// persistent workers) and [`LacCluster`] (N chips, modeled transfers) —
/// the driver is backend-agnostic, so the same trace replays identically
/// against either.
pub trait OpenLoopBackend<J: ChipJob> {
    /// Offer a graph through tenant `t`'s admission door.
    fn enqueue(&mut self, t: TenantId, graph: JobGraph<J>) -> Result<GraphTicket, Rejected<J>>;
    /// Run every admitted graph in one round under `sched` with the
    /// per-tenant SLO boost (indexed by tenant id; `u64::MAX` =
    /// unboosted).
    ///
    /// Contract: on success, `wave_end_cycles` must have one entry per
    /// wave of the round, and every completion's `wave_of` entries must
    /// index into it — the driver anchors sojourn accounting on
    /// `wave_end_cycles[last_wave]` and errors with
    /// [`OpenLoopError::TruncatedWaveClock`] on a violation rather than
    /// fabricating a completion tick.
    fn run_boosted(
        &mut self,
        sched: Scheduler,
        boost: &[u64],
    ) -> Result<RoundOutcome<J::Output>, SimError>;
    /// The backend's session clock in simulated cycles.
    fn clock(&self) -> u64;
    /// Advance the session clock through an idle gap.
    fn advance_idle(&mut self, cycles: u64);
    /// Tenant `t`'s sojourn deadline, if it registered one.
    fn deadline_of(&self, t: TenantId) -> Option<u64>;
    /// Registered tenants (the boost vector's length).
    fn num_tenants(&self) -> usize;
}

impl<J: ChipJob + 'static> OpenLoopBackend<J> for LacService<J> {
    fn enqueue(&mut self, t: TenantId, graph: JobGraph<J>) -> Result<GraphTicket, Rejected<J>> {
        LacService::enqueue(self, t, graph)
    }

    fn run_boosted(
        &mut self,
        sched: Scheduler,
        boost: &[u64],
    ) -> Result<RoundOutcome<J::Output>, SimError> {
        let round: ServiceRound<J::Output> = self.run_admitted_boosted(sched, boost)?;
        Ok(RoundOutcome {
            completions: round.graphs,
            wave_end_cycles: round.wave_end_cycles,
            events: EventLog::new(),
        })
    }

    fn clock(&self) -> u64 {
        self.session().clock_cycles
    }

    fn advance_idle(&mut self, cycles: u64) {
        LacService::advance_idle(self, cycles);
    }

    fn deadline_of(&self, t: TenantId) -> Option<u64> {
        self.tenant_config(t).deadline_cycles
    }

    fn num_tenants(&self) -> usize {
        LacService::num_tenants(self)
    }
}

impl<J: ChipJob> OpenLoopBackend<J> for LacCluster<J> {
    fn enqueue(&mut self, t: TenantId, graph: JobGraph<J>) -> Result<GraphTicket, Rejected<J>> {
        LacCluster::enqueue(self, t, graph)
    }

    fn run_boosted(
        &mut self,
        sched: Scheduler,
        boost: &[u64],
    ) -> Result<RoundOutcome<J::Output>, SimError> {
        let round: ClusterRound<J::Output> = self.run_admitted_boosted(sched, boost)?;
        Ok(RoundOutcome {
            completions: round.graphs,
            wave_end_cycles: round.wave_end_cycles,
            events: round.events,
        })
    }

    fn clock(&self) -> u64 {
        self.session().clock_cycles
    }

    fn advance_idle(&mut self, cycles: u64) {
        LacCluster::advance_idle(self, cycles);
    }

    fn deadline_of(&self, t: TenantId) -> Option<u64> {
        self.tenant_config(t).deadline_cycles
    }

    fn num_tenants(&self) -> usize {
        LacCluster::num_tenants(self)
    }
}

/// Knobs of one open-loop run.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// The wave-planning policy of every round. SLO boosting only takes
    /// effect under [`Scheduler::FairShare`] (other policies ignore it).
    pub sched: Scheduler,
    /// Feed deadline slack to the planner ([`lac_sim::plan_wave_tenanted_slo`]).
    /// Off = plain fair share; deadlines still meter misses either way.
    pub slo_boost: bool,
    /// Bound head-of-line blocking: stop admitting into a round once its
    /// admitted cost reaches this quantum (deferred work leads the next
    /// round, still in arrival order). Rounds run to completion, so a
    /// huge backlog admitted at once makes every rider wait for the
    /// slowest; a quantum trades a little throughput for shorter rounds
    /// and a flatter tail. At least one graph is always admitted into an
    /// empty round, so a quantum can never deadlock the replay. `None`
    /// (the default) admits everything due — bit-identical to the
    /// pre-quantum driver. Output bits never change either way.
    pub max_round_cost: Option<u64>,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            sched: Scheduler::FairShare,
            slo_boost: true,
            max_round_cost: None,
        }
    }
}

/// One served request: its arrival, when it completed, and its outputs.
#[derive(Clone, Debug, PartialEq)]
pub struct CompletedRequest<T> {
    /// The arrival that spawned the graph.
    pub arrival: Arrival,
    /// Absolute completion tick on the backend clock.
    pub completion_tick: u64,
    /// Sojourn: completion minus arrival, in simulated cycles.
    pub sojourn_cycles: u64,
    /// The graph's job outputs, in the graph's submission order.
    pub outputs: Vec<T>,
}

/// One tenant's latency accounting over a whole open-loop run.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantLatency {
    /// Sojourn-time histogram (count, mean, p50/p99/p999).
    pub hist: LatencyHistogram,
    /// The tenant's SLO deadline, if any.
    pub deadline_cycles: Option<u64>,
    /// Completed requests whose sojourn exceeded the deadline.
    pub deadline_misses: u64,
}

/// Everything one open-loop replay produces.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenLoopReport<T> {
    /// Every served request, in completion order (rounds in clock order,
    /// admission order within a round).
    pub completed: Vec<CompletedRequest<T>>,
    /// Per trace stream (tenant index): sojourn histogram and SLO meters.
    pub per_tenant: Vec<TenantLatency>,
    /// Serving rounds the replay took.
    pub rounds: u64,
    /// Backend clock when the last request completed (absolute).
    pub final_clock: u64,
    /// The replay's merged event log on the backend's session clock:
    /// each round's log rebased by the round's start tick, plus the
    /// driver's own idle fast-forwards. Empty events between rounds mean
    /// the backend doesn't trace (the single-chip [`LacService`]);
    /// cluster backends record job spans, transfers, faults and
    /// requeues. Export with [`lac_sim::EventLog::to_chrome_trace`].
    pub events: EventLog,
}

/// Replay `trace` against `backend`: `tenants[s]` is the registered
/// tenant id serving trace stream `s`, and `make_graph` turns each
/// arrival into the graph to run (the per-request work — e.g. one small
/// solver chain from `lac_kernels::SolverStream`).
///
/// Runs until every arrival is served. A graph bounced by admission
/// backpressure retries, in arrival order, before newer work each round;
/// if a bounced graph can never fit (its cost alone exceeds the tenant's
/// budget with nothing in flight), the driver returns
/// [`OpenLoopError::AdmissionDeadlock`] rather than spin. The replay is a
/// pure function of `(trace, tenant configs, cfg, cost hints)`: reruns
/// are bit-identical, and output bits are additionally identical across
/// policies, backends and [`OpenLoopConfig::max_round_cost`] settings.
pub fn run_open_loop<J: ChipJob, B: OpenLoopBackend<J>>(
    backend: &mut B,
    trace: &ArrivalTrace,
    tenants: &[TenantId],
    mut make_graph: impl FnMut(&Arrival) -> JobGraph<J>,
    cfg: OpenLoopConfig,
) -> Result<OpenLoopReport<J::Output>, OpenLoopError> {
    assert_eq!(
        tenants.len(),
        trace.streams(),
        "one registered tenant per trace stream"
    );
    // The trace's tick 0 is "now": arrivals land at base + tick, so a
    // warm backend (non-zero clock) replays the same trace consistently.
    let base = backend.clock();
    let arrivals = trace.arrivals();

    let mut per_tenant: Vec<TenantLatency> = tenants
        .iter()
        .map(|&t| TenantLatency {
            hist: LatencyHistogram::new(),
            deadline_cycles: backend.deadline_of(t),
            deadline_misses: 0,
        })
        .collect();
    let mut completed_reqs: Vec<CompletedRequest<J::Output>> = Vec::new();
    // Admitted-but-unserved: admission seq → arrival position.
    let mut inflight: BTreeMap<u64, usize> = BTreeMap::new();
    // Bounced submissions, retried in arrival order.
    let mut bounced: VecDeque<(usize, JobGraph<J>)> = VecDeque::new();
    let mut next = 0usize;
    let mut rounds = 0u64;
    let mut events = EventLog::new();

    while next < arrivals.len() || !bounced.is_empty() || !inflight.is_empty() {
        let clock = backend.clock();

        // Fast-forward an idle backend to the next arrival.
        if inflight.is_empty() && bounced.is_empty() {
            let due = base + arrivals[next].tick;
            if due > clock {
                backend.advance_idle(due - clock);
                events.push(TraceEvent::IdleFastForward {
                    start: clock,
                    end: due,
                });
                continue;
            }
        }

        // The round's admitted-cost quantum: once `max_round_cost` is
        // reached (and something is in flight — at least one graph always
        // enters an empty round, the no-deadlock guarantee), further work
        // defers to the next round, still in arrival order.
        let mut round_cost = 0u64;
        let quantum_full = |round_cost: u64, inflight: &BTreeMap<u64, usize>| {
            cfg.max_round_cost.is_some_and(|q| round_cost >= q) && !inflight.is_empty()
        };

        // Retry bounced graphs first (their budgets may have drained).
        while let Some((pos, graph)) = bounced.pop_front() {
            if quantum_full(round_cost, &inflight) {
                bounced.push_front((pos, graph));
                break;
            }
            let cost = graph.total_cost();
            match backend.enqueue(tenants[arrivals[pos].tenant], graph) {
                Ok(ticket) => {
                    round_cost += cost;
                    inflight.insert(ticket.seq, pos);
                }
                Err(r) => {
                    bounced.push_front((pos, r.graph));
                    break;
                }
            }
        }
        // Admit everything due by now, in arrival order (bounced work
        // above keeps its head start).
        while next < arrivals.len()
            && base + arrivals[next].tick <= clock
            && bounced.is_empty()
            && !quantum_full(round_cost, &inflight)
        {
            let a = &arrivals[next];
            let graph = make_graph(a);
            let cost = graph.total_cost();
            match backend.enqueue(tenants[a.tenant], graph) {
                Ok(ticket) => {
                    round_cost += cost;
                    inflight.insert(ticket.seq, next);
                }
                Err(r) => bounced.push_back((next, r.graph)),
            }
            next += 1;
        }

        if inflight.is_empty() {
            if !bounced.is_empty() {
                // Nothing admitted and every due graph bounced. With
                // nothing in flight the budgets cannot drain further —
                // this is permanent, not backpressure.
                return Err(OpenLoopError::AdmissionDeadlock {
                    bounced: bounced.len(),
                });
            }
            continue; // no arrivals were due yet; fast-forward next pass
        }

        // Deadline slack per backend tenant: earliest pending arrival's
        // deadline minus now (u64::MAX = unboosted).
        let mut boost = vec![u64::MAX; backend.num_tenants()];
        if cfg.slo_boost {
            for &pos in inflight.values() {
                let a = &arrivals[pos];
                if let Some(d) = per_tenant[a.tenant].deadline_cycles {
                    let slack = (base + a.tick).saturating_add(d).saturating_sub(clock);
                    let slot = &mut boost[tenants[a.tenant].index()];
                    *slot = (*slot).min(slack);
                }
            }
        }

        let outcome = backend.run_boosted(cfg.sched, &boost)?;
        rounds += 1;
        let mut round_events = outcome.events;
        round_events.shift(clock);
        events.extend(round_events);
        for completion in outcome.completions {
            let pos = inflight
                .remove(&completion.ticket.seq)
                .expect("round completed a graph the driver never admitted");
            let a = arrivals[pos];
            let last_wave = completion.wave_of.iter().copied().max().unwrap_or(0);
            let done = clock
                + outcome.wave_end_cycles.get(last_wave).copied().ok_or(
                    OpenLoopError::TruncatedWaveClock {
                        last_wave,
                        waves: outcome.wave_end_cycles.len(),
                    },
                )?;
            let sojourn = done - (base + a.tick);
            let meters = &mut per_tenant[a.tenant];
            meters.hist.record(sojourn);
            if meters.deadline_cycles.is_some_and(|d| sojourn > d) {
                meters.deadline_misses += 1;
            }
            completed_reqs.push(CompletedRequest {
                arrival: a,
                completion_tick: done,
                sojourn_cycles: sojourn,
                outputs: completion.outputs,
            });
        }
    }

    Ok(OpenLoopReport {
        completed: completed_reqs,
        per_tenant,
        rounds,
        final_clock: backend.clock(),
        events,
    })
}

/// One served *dynamic* request: its arrival, when its **final** segment
/// completed, and the full [`DynamicOutcome`] (per-segment outputs plus
/// the appended-cost accounting).
#[derive(Clone, Debug, PartialEq)]
pub struct DynamicCompleted<T> {
    /// The arrival that spawned the request.
    pub arrival: Arrival,
    /// Absolute tick the request's last segment completed at.
    pub completion_tick: u64,
    /// Sojourn of the whole solve: final-segment completion minus
    /// arrival, in simulated cycles — convergence time, not
    /// first-segment time.
    pub sojourn_cycles: u64,
    /// Everything the request ran, segment by segment.
    pub outcome: DynamicOutcome<T>,
}

/// Everything one dynamic open-loop replay produces.
#[derive(Clone, Debug, PartialEq)]
pub struct DynamicOpenLoopReport<T> {
    /// Every served request, in final-completion order.
    pub completed: Vec<DynamicCompleted<T>>,
    /// Per trace stream (tenant index): whole-solve sojourn histogram
    /// and SLO meters.
    pub per_tenant: Vec<TenantLatency>,
    /// Serving rounds the replay took.
    pub rounds: u64,
    /// Backend clock when the last request completed (absolute).
    pub final_clock: u64,
    /// The replay's merged event log (see [`OpenLoopReport::events`]).
    pub events: EventLog,
}

/// An in-flight dynamic request's driver-side state.
struct DynReq<J: ChipJob> {
    cont: Box<dyn Continuation<J>>,
    segment: usize,
    outcome: DynamicOutcome<J::Output>,
}

/// Replay `trace` against `backend` where each arrival is a
/// **convergence-driven** request: `make_request` yields a
/// [`DynamicGraph`] whose continuation decides, from each completed
/// segment's outputs, whether to append a successor segment
/// (`lac_sim::dynamic`). The open-loop analogue of
/// [`lac_sim::dynamic::run_dynamic`], and the dynamic analogue of
/// [`run_open_loop`] — the fixed-graph driver is untouched and
/// bit-compatible with its committed baselines.
///
/// Differences from the fixed driver:
///
/// * **Sojourn** is measured to the request's *final* segment — time to
///   convergence, not time to first result.
/// * **Appended segments** re-enter through the same admission door as
///   new arrivals and are charged against the tenant's
///   `max_inflight_cost` budget. One pending-admission queue, keyed by
///   arrival position, merges bounced graphs and appended segments so
///   continuations of older arrivals always go first and new arrivals
///   never overtake them.
/// * **Deadlock** keeps the same shape: if everything pending bounced
///   with nothing in flight, budgets can never drain and the driver
///   returns [`OpenLoopError::AdmissionDeadlock`].
///
/// Like the fixed driver, the replay is a pure function of `(trace,
/// tenant configs, cfg, cost hints)`; outputs — including every
/// request's *segment count* — are bit-identical across policies,
/// backends and reruns.
pub fn run_open_loop_dynamic<J: ChipJob, B: OpenLoopBackend<J>>(
    backend: &mut B,
    trace: &ArrivalTrace,
    tenants: &[TenantId],
    mut make_request: impl FnMut(&Arrival) -> DynamicGraph<J>,
    cfg: OpenLoopConfig,
) -> Result<DynamicOpenLoopReport<J::Output>, OpenLoopError> {
    assert_eq!(
        tenants.len(),
        trace.streams(),
        "one registered tenant per trace stream"
    );
    let base = backend.clock();
    let arrivals = trace.arrivals();

    let mut per_tenant: Vec<TenantLatency> = tenants
        .iter()
        .map(|&t| TenantLatency {
            hist: LatencyHistogram::new(),
            deadline_cycles: backend.deadline_of(t),
            deadline_misses: 0,
        })
        .collect();
    let mut completed_reqs: Vec<DynamicCompleted<J::Output>> = Vec::new();
    // Driver state per arrival position, dropped when its request is done.
    let mut reqs: BTreeMap<usize, DynReq<J>> = BTreeMap::new();
    // Admitted-but-unserved: admission seq → arrival position.
    let mut inflight: BTreeMap<u64, usize> = BTreeMap::new();
    // Graphs awaiting admission — bounced retries *and* freshly appended
    // segments — keyed by arrival position so older requests go first.
    let mut pending: BTreeMap<usize, JobGraph<J>> = BTreeMap::new();
    let mut next = 0usize;
    let mut rounds = 0u64;
    let mut events = EventLog::new();

    while next < arrivals.len() || !pending.is_empty() || !inflight.is_empty() {
        let clock = backend.clock();

        // Fast-forward an idle backend to the next arrival.
        if inflight.is_empty() && pending.is_empty() {
            let due = base + arrivals[next].tick;
            if due > clock {
                backend.advance_idle(due - clock);
                events.push(TraceEvent::IdleFastForward {
                    start: clock,
                    end: due,
                });
                continue;
            }
        }

        let mut round_cost = 0u64;
        let quantum_full = |round_cost: u64, inflight: &BTreeMap<u64, usize>| {
            cfg.max_round_cost.is_some_and(|q| round_cost >= q) && !inflight.is_empty()
        };

        // Admit pending work first (bounced graphs whose budgets may have
        // drained, and appended segments), oldest arrival first.
        while let Some((&pos, _)) = pending.iter().next() {
            if quantum_full(round_cost, &inflight) {
                break;
            }
            let graph = pending.remove(&pos).expect("pending key vanished");
            let cost = graph.total_cost();
            match backend.enqueue(tenants[arrivals[pos].tenant], graph) {
                Ok(ticket) => {
                    round_cost += cost;
                    reqs.get_mut(&pos)
                        .expect("pending without state")
                        .outcome
                        .total_cost += cost;
                    inflight.insert(ticket.seq, pos);
                }
                Err(r) => {
                    pending.insert(pos, r.graph);
                    break;
                }
            }
        }
        // Admit new arrivals due by now — only once nothing older is
        // still waiting for admission, so arrival order holds.
        while next < arrivals.len()
            && base + arrivals[next].tick <= clock
            && pending.is_empty()
            && !quantum_full(round_cost, &inflight)
        {
            let a = &arrivals[next];
            let (graph, cont) = make_request(a).into_parts();
            let cost = graph.total_cost();
            let mut req = DynReq {
                cont,
                segment: 0,
                outcome: DynamicOutcome {
                    segments: Vec::new(),
                    jobs: 0,
                    total_cost: 0,
                    appended_cost: 0,
                },
            };
            match backend.enqueue(tenants[a.tenant], graph) {
                Ok(ticket) => {
                    round_cost += cost;
                    req.outcome.total_cost = cost;
                    inflight.insert(ticket.seq, next);
                }
                Err(r) => {
                    pending.insert(next, r.graph);
                }
            }
            reqs.insert(next, req);
            next += 1;
        }

        if inflight.is_empty() {
            if !pending.is_empty() {
                // Nothing in flight and the oldest pending graph bounced:
                // no budget can ever drain, so this is permanent.
                return Err(OpenLoopError::AdmissionDeadlock {
                    bounced: pending.len(),
                });
            }
            continue; // no arrivals were due yet; fast-forward next pass
        }

        let mut boost = vec![u64::MAX; backend.num_tenants()];
        if cfg.slo_boost {
            for &pos in inflight.values() {
                let a = &arrivals[pos];
                if let Some(d) = per_tenant[a.tenant].deadline_cycles {
                    let slack = (base + a.tick).saturating_add(d).saturating_sub(clock);
                    let slot = &mut boost[tenants[a.tenant].index()];
                    *slot = (*slot).min(slack);
                }
            }
        }

        let outcome = backend.run_boosted(cfg.sched, &boost)?;
        rounds += 1;
        let mut round_events = outcome.events;
        round_events.shift(clock);
        events.extend(round_events);
        for completion in outcome.completions {
            let pos = inflight
                .remove(&completion.ticket.seq)
                .expect("round completed a graph the driver never admitted");
            let req = reqs.get_mut(&pos).expect("completion without state");
            let decision = req.cont.next(req.segment, &completion.outputs);
            req.outcome.jobs += completion.outputs.len();
            req.outcome.segments.push(completion.outputs);
            match decision {
                Continue::Append(g) => {
                    req.segment += 1;
                    req.outcome.appended_cost += g.total_cost();
                    pending.insert(pos, g);
                }
                Continue::Done => {
                    let a = arrivals[pos];
                    let last_wave = completion.wave_of.iter().copied().max().unwrap_or(0);
                    let done = clock
                        + outcome.wave_end_cycles.get(last_wave).copied().ok_or(
                            OpenLoopError::TruncatedWaveClock {
                                last_wave,
                                waves: outcome.wave_end_cycles.len(),
                            },
                        )?;
                    let sojourn = done - (base + a.tick);
                    let meters = &mut per_tenant[a.tenant];
                    meters.hist.record(sojourn);
                    if meters.deadline_cycles.is_some_and(|d| sojourn > d) {
                        meters.deadline_misses += 1;
                    }
                    let req = reqs.remove(&pos).expect("request state vanished");
                    completed_reqs.push(DynamicCompleted {
                        arrival: a,
                        completion_tick: done,
                        sojourn_cycles: sojourn,
                        outcome: req.outcome,
                    });
                }
            }
        }
    }

    Ok(DynamicOpenLoopReport {
        completed: completed_reqs,
        per_tenant,
        rounds,
        final_clock: backend.clock(),
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ArrivalProcess;
    use lac_sim::{ChipConfig, ClusterConfig, LacConfig, ProgramBuilder, ProgramJob, TenantConfig};

    /// A tiny deterministic job: one idle program with a chosen cost.
    fn idle_job(extra: usize, cost: u64) -> ProgramJob {
        let cfg = LacConfig::default();
        let mut b = ProgramBuilder::new(cfg.nr);
        b.idle(8 + extra);
        let mut j = ProgramJob::new(b.build());
        j.cost = cost;
        j
    }

    /// Two jobs in a chain per arrival, salted by the arrival identity.
    fn request(a: &Arrival) -> JobGraph<ProgramJob> {
        let mut g = JobGraph::new();
        let salt = (a.index as usize + a.tenant) % 4;
        let first = g.add(idle_job(salt, 40 + 10 * a.tenant as u64));
        g.add_after(idle_job(salt + 1, 30), &[first]);
        g
    }

    fn demo_trace() -> ArrivalTrace {
        ArrivalTrace::generate(
            11,
            30_000,
            &[
                ArrivalProcess::Poisson { mean_gap: 400.0 },
                ArrivalProcess::OnOff {
                    mean_gap_on: 30.0,
                    mean_burst: 6.0,
                    mean_gap_off: 2_500.0,
                },
            ],
        )
    }

    #[test]
    fn service_replay_serves_every_arrival_deterministically() {
        let trace = demo_trace();
        let run = || {
            let mut svc: LacService<ProgramJob> =
                LacService::new(ChipConfig::new(2, LacConfig::default()));
            let ids = vec![
                svc.add_tenant(TenantConfig::new("interactive").with_deadline(2_000)),
                svc.add_tenant(TenantConfig::new("batch")),
            ];
            run_open_loop(&mut svc, &trace, &ids, request, OpenLoopConfig::default()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "open-loop replays must be bit-identical");
        assert_eq!(a.completed.len(), trace.len());
        assert_eq!(a.per_tenant[0].hist.count() as usize, trace.count_for(0));
        let last_arrival = trace.arrivals().last().unwrap().tick;
        assert!(
            a.final_clock >= last_arrival,
            "the clock covered every arrival"
        );
        assert!(a.rounds > 0);
    }

    #[test]
    fn cluster_and_service_outputs_agree_bitwise() {
        let trace = demo_trace();
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let svc_ids = vec![
            svc.add_tenant(TenantConfig::new("interactive").with_deadline(2_000)),
            svc.add_tenant(TenantConfig::new("batch")),
        ];
        let s = run_open_loop(
            &mut svc,
            &trace,
            &svc_ids,
            request,
            OpenLoopConfig::default(),
        )
        .unwrap();

        let mut cluster: LacCluster<ProgramJob> = LacCluster::new(ClusterConfig::homogeneous(
            2,
            ChipConfig::new(1, LacConfig::default()),
        ));
        let cl_ids = vec![
            cluster.add_tenant(TenantConfig::new("interactive").with_deadline(2_000)),
            cluster.add_tenant(TenantConfig::new("batch")),
        ];
        let c = run_open_loop(
            &mut cluster,
            &trace,
            &cl_ids,
            request,
            OpenLoopConfig::default(),
        )
        .unwrap();

        // Outputs are backend- and placement-independent; latencies are
        // not (different wave shapes), so compare outputs only.
        let outs = |r: &OpenLoopReport<lac_sim::ExecStats>| {
            let mut v: Vec<_> = r
                .completed
                .iter()
                .map(|c| (c.arrival, c.outputs.clone()))
                .collect();
            v.sort_by_key(|(a, _)| (a.tenant, a.index));
            v
        };
        assert_eq!(outs(&s), outs(&c));
    }

    #[test]
    fn admission_backpressure_retries_and_completes() {
        let trace = ArrivalTrace::generate(
            3,
            8_000,
            &[ArrivalProcess::OnOff {
                mean_gap_on: 10.0,
                mean_burst: 10.0,
                mean_gap_off: 1_000.0,
            }],
        );
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(1, LacConfig::default()));
        // Budget fits one request (cost 40 + 30) but not two.
        let ids = vec![svc.add_tenant(TenantConfig::new("tight").with_admission_budget(100))];
        let report =
            run_open_loop(&mut svc, &trace, &ids, request, OpenLoopConfig::default()).unwrap();
        assert_eq!(report.completed.len(), trace.len(), "bounced work retried");
        assert!(
            svc.tenant_session(ids[0]).graphs_rejected > 0,
            "backpressure engaged"
        );
    }

    #[test]
    fn bounced_work_is_served_in_arrival_order() {
        // Same setup as above: a budget that fits one request at a time
        // forces every burst through the bounce-retry path. Requests of a
        // stream must still complete in arrival order — a newer arrival
        // never overtakes an older bounced one.
        let trace = ArrivalTrace::generate(
            3,
            8_000,
            &[ArrivalProcess::OnOff {
                mean_gap_on: 10.0,
                mean_burst: 10.0,
                mean_gap_off: 1_000.0,
            }],
        );
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(1, LacConfig::default()));
        let ids = vec![svc.add_tenant(TenantConfig::new("tight").with_admission_budget(100))];
        let report =
            run_open_loop(&mut svc, &trace, &ids, request, OpenLoopConfig::default()).unwrap();
        let indices: Vec<u64> = report.completed.iter().map(|c| c.arrival.index).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted, "a newer arrival overtook a bounced one");
    }

    #[test]
    fn impossible_graph_is_a_typed_deadlock_not_a_panic() {
        let trace =
            ArrivalTrace::generate(7, 2_000, &[ArrivalProcess::Poisson { mean_gap: 500.0 }]);
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(1, LacConfig::default()));
        // Budget 50 can never admit a cost-70 request, even empty.
        let ids = vec![svc.add_tenant(TenantConfig::new("starved").with_admission_budget(50))];
        let err =
            run_open_loop(&mut svc, &trace, &ids, request, OpenLoopConfig::default()).unwrap_err();
        match err {
            OpenLoopError::AdmissionDeadlock { bounced } => assert!(bounced >= 1),
            other => panic!("expected AdmissionDeadlock, got {other:?}"),
        }
        // The error carries a readable message and chains nothing.
        assert!(err.to_string().contains("deadlock"));
    }

    /// A backend that delegates to [`LacService`] but drops the last
    /// wave-end entry — modeling a backend that violates the
    /// [`OpenLoopBackend::run_boosted`] wave-clock contract.
    struct TruncatingBackend(LacService<ProgramJob>);

    impl OpenLoopBackend<ProgramJob> for TruncatingBackend {
        fn enqueue(
            &mut self,
            t: TenantId,
            graph: JobGraph<ProgramJob>,
        ) -> Result<GraphTicket, Rejected<ProgramJob>> {
            self.0.enqueue(t, graph)
        }
        fn run_boosted(
            &mut self,
            sched: Scheduler,
            boost: &[u64],
        ) -> Result<RoundOutcome<lac_sim::ExecStats>, SimError> {
            let mut out = OpenLoopBackend::run_boosted(&mut self.0, sched, boost)?;
            out.wave_end_cycles.clear();
            Ok(out)
        }
        fn clock(&self) -> u64 {
            OpenLoopBackend::<ProgramJob>::clock(&self.0)
        }
        fn advance_idle(&mut self, cycles: u64) {
            OpenLoopBackend::<ProgramJob>::advance_idle(&mut self.0, cycles);
        }
        fn deadline_of(&self, t: TenantId) -> Option<u64> {
            OpenLoopBackend::<ProgramJob>::deadline_of(&self.0, t)
        }
        fn num_tenants(&self) -> usize {
            OpenLoopBackend::<ProgramJob>::num_tenants(&self.0)
        }
    }

    #[test]
    fn truncated_wave_clock_is_a_typed_error_not_a_zero_sojourn() {
        let trace =
            ArrivalTrace::generate(7, 2_000, &[ArrivalProcess::Poisson { mean_gap: 500.0 }]);
        let mut backend =
            TruncatingBackend(LacService::new(ChipConfig::new(1, LacConfig::default())));
        let ids = vec![backend.0.add_tenant(TenantConfig::new("t"))];
        let err = run_open_loop(
            &mut backend,
            &trace,
            &ids,
            request,
            OpenLoopConfig::default(),
        )
        .unwrap_err();
        match err {
            OpenLoopError::TruncatedWaveClock { waves, .. } => assert_eq!(waves, 0),
            other => panic!("expected TruncatedWaveClock, got {other:?}"),
        }
    }

    #[test]
    fn round_quantum_changes_latency_never_bits() {
        let trace = demo_trace();
        let run = |max_round_cost: Option<u64>| {
            let mut svc: LacService<ProgramJob> =
                LacService::new(ChipConfig::new(2, LacConfig::default()));
            let ids = vec![
                svc.add_tenant(TenantConfig::new("interactive").with_deadline(2_000)),
                svc.add_tenant(TenantConfig::new("batch")),
            ];
            let cfg = OpenLoopConfig {
                max_round_cost,
                ..OpenLoopConfig::default()
            };
            run_open_loop(&mut svc, &trace, &ids, request, cfg).unwrap()
        };
        let unbounded = run(None);
        let quantized = run(Some(100));
        assert_eq!(quantized.completed.len(), trace.len(), "everything served");
        assert!(
            quantized.rounds >= unbounded.rounds,
            "a quantum can only split rounds, never merge them"
        );
        // Output bits are identical; only latencies may move.
        let outs = |r: &OpenLoopReport<lac_sim::ExecStats>| {
            let mut v: Vec<_> = r
                .completed
                .iter()
                .map(|c| (c.arrival, c.outputs.clone()))
                .collect();
            v.sort_by_key(|(a, _)| (a.tenant, a.index));
            v
        };
        assert_eq!(outs(&unbounded), outs(&quantized));
        // Reruns under a quantum stay bit-identical end to end.
        assert_eq!(run(Some(100)), quantized);
    }

    /// A dynamic request that appends `extra` one-job segments after its
    /// initial graph — segment count decided from its own outputs (each
    /// job's stats are non-empty, proving the continuation saw them).
    fn dynamic_request(a: &Arrival, extra: usize) -> DynamicGraph<ProgramJob> {
        let mut g = JobGraph::new();
        let salt = (a.index as usize + a.tenant) % 4;
        g.add(idle_job(salt, 40 + 10 * a.tenant as u64));
        let mut left = extra;
        DynamicGraph::new(g, move |_seg, outputs: &[lac_sim::ExecStats]| {
            assert!(!outputs.is_empty());
            if left == 0 {
                return Continue::Done;
            }
            left -= 1;
            let mut g = JobGraph::new();
            g.add(idle_job(1, 30));
            Continue::Append(g)
        })
    }

    #[test]
    fn dynamic_replay_serves_every_request_to_convergence() {
        let trace = demo_trace();
        let run = || {
            let mut svc: LacService<ProgramJob> =
                LacService::new(ChipConfig::new(2, LacConfig::default()));
            let ids = vec![
                svc.add_tenant(TenantConfig::new("interactive").with_deadline(4_000)),
                svc.add_tenant(TenantConfig::new("batch")),
            ];
            run_open_loop_dynamic(
                &mut svc,
                &trace,
                &ids,
                |a| dynamic_request(a, (a.index % 3) as usize),
                OpenLoopConfig::default(),
            )
            .unwrap()
        };
        let a = run();
        assert_eq!(a.completed.len(), trace.len(), "every request converged");
        for c in &a.completed {
            let want = (c.arrival.index % 3) as usize + 1;
            assert_eq!(
                c.outcome.segments.len(),
                want,
                "segment counts follow the continuation"
            );
            assert_eq!(c.outcome.jobs, want);
        }
        assert_eq!(a, run(), "dynamic replays must be bit-identical");
    }

    #[test]
    fn dynamic_appended_segments_respect_the_admission_budget() {
        // A budget that fits exactly one graph at a time forces every
        // appended segment through the bounce-retry path; the replay must
        // still finish with every segment served.
        let trace = ArrivalTrace::generate(
            3,
            8_000,
            &[ArrivalProcess::OnOff {
                mean_gap_on: 10.0,
                mean_burst: 6.0,
                mean_gap_off: 1_500.0,
            }],
        );
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(1, LacConfig::default()));
        let ids = vec![svc.add_tenant(TenantConfig::new("tight").with_admission_budget(60))];
        let report = run_open_loop_dynamic(
            &mut svc,
            &trace,
            &ids,
            |a| dynamic_request(a, 2),
            OpenLoopConfig::default(),
        )
        .unwrap();
        assert_eq!(report.completed.len(), trace.len());
        assert!(report
            .completed
            .iter()
            .all(|c| c.outcome.segments.len() == 3));
        assert_eq!(
            svc.tenant_session(ids[0]).inflight_cost,
            0,
            "budget fully drained"
        );
    }

    #[test]
    fn dynamic_unadmittable_segment_is_a_typed_deadlock() {
        let trace =
            ArrivalTrace::generate(7, 2_000, &[ArrivalProcess::Poisson { mean_gap: 600.0 }]);
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(1, LacConfig::default()));
        // Budget 45 admits the cost-40 initial graph but can never admit
        // the appended cost-70 segment.
        let ids = vec![svc.add_tenant(TenantConfig::new("starved").with_admission_budget(45))];
        let err = run_open_loop_dynamic(
            &mut svc,
            &trace,
            &ids,
            |_| {
                let mut g = JobGraph::new();
                g.add(idle_job(0, 40));
                DynamicGraph::new(g, |_seg, _out: &[lac_sim::ExecStats]| {
                    let mut g = JobGraph::new();
                    g.add(idle_job(1, 70));
                    Continue::Append(g)
                })
            },
            OpenLoopConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, OpenLoopError::AdmissionDeadlock { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn cluster_replay_exports_a_merged_event_log() {
        let trace = demo_trace();
        let mut cluster: LacCluster<ProgramJob> = LacCluster::new(ClusterConfig::homogeneous(
            2,
            ChipConfig::new(1, LacConfig::default()),
        ));
        let ids = vec![
            cluster.add_tenant(TenantConfig::new("interactive").with_deadline(2_000)),
            cluster.add_tenant(TenantConfig::new("batch")),
        ];
        let report = run_open_loop(
            &mut cluster,
            &trace,
            &ids,
            request,
            OpenLoopConfig::default(),
        )
        .unwrap();
        use lac_sim::TraceEvent;
        let jobs = report.events.count(|e| matches!(e, TraceEvent::Job { .. }));
        assert_eq!(jobs, 2 * trace.len(), "every job of every request logged");
        assert!(
            report
                .events
                .count(|e| matches!(e, TraceEvent::IdleFastForward { .. }))
                > 0,
            "the driver logs its fast-forwards"
        );
        // Merged timestamps are absolute: the last job end matches the
        // final clock's ballpark and never exceeds it.
        let max_end = report
            .events
            .events()
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::Job { end, .. } => Some(end),
                _ => None,
            })
            .max()
            .unwrap();
        assert!(max_end <= report.final_clock);
    }
}
