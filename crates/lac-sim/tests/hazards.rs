//! Failure-injection suite: every structural hazard the simulator enforces
//! must actually fire — a mis-scheduled microprogram can never silently
//! produce a wrong cycle count (the guarantee the kernel generators build
//! on).

use lac_fpu::{DivSqrtImpl, DivSqrtOp};
use lac_sim::error::HazardKind;
use lac_sim::{ExtOp, ExternalMem, Lac, LacConfig, PeInstr, ProgramBuilder, SimError, Source};

fn cfg() -> LacConfig {
    LacConfig {
        nr: 4,
        sram_a_words: 32,
        sram_b_words: 32,
        ..Default::default()
    }
}

fn run_one(builder: ProgramBuilder, config: LacConfig) -> Result<(), SimError> {
    let mut lac = Lac::new(config);
    let mut mem = ExternalMem::new(64);
    lac.run(&builder.build(), &mut mem).map(|_| ())
}

#[test]
fn col_bus_conflict_pe_vs_external() {
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.ext(t, ExtOp::Load { col: 1, addr: 0 });
    b.pe_mut(t, 2, 1).col_write = Some(Source::Const(1.0));
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(e.kind, HazardKind::ColBusConflict { col: 1 }));
}

#[test]
fn sram_out_of_range_read() {
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.pe_mut(t, 0, 0).mac = Some((Source::SramA(999), Source::Const(1.0)));
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(
        e.kind,
        HazardKind::SramOutOfRange {
            which: 'A',
            addr: 999,
            ..
        }
    ));
}

#[test]
fn sram_b_out_of_range_write() {
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.pe_mut(t, 0, 0).sram_b_write = Some((999, Source::Const(1.0)));
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(
        e.kind,
        HazardKind::SramOutOfRange { which: 'B', .. }
    ));
}

#[test]
fn register_out_of_range() {
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.pe_mut(t, 1, 1).reg_write = Some((17, Source::Const(0.0)));
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(e.kind, HazardKind::RegOutOfRange { idx: 17, .. }));
}

#[test]
fn too_many_rf_read_ports() {
    // Three distinct register reads in one cycle exceed the 2 read ports.
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    let pe = b.pe_mut(t, 0, 0);
    pe.fma = Some((Source::Reg(0), Source::Reg(1), Source::Reg(2)));
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(e.kind, HazardKind::RegOutOfRange { .. }));
}

#[test]
fn mac_and_fma_same_cycle_conflict() {
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    let pe = b.pe_mut(t, 0, 0);
    pe.mac = Some((Source::Const(1.0), Source::Const(1.0)));
    pe.fma = Some((Source::Const(1.0), Source::Const(1.0), Source::Const(0.0)));
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(e.kind, HazardKind::MacIssueConflict));
}

#[test]
fn mac_result_read_before_any_retire() {
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.pe_mut(t, 0, 0).reg_write = Some((0, Source::MacResult));
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(e.kind, HazardKind::MacResultEmpty));
}

#[test]
fn sfu_result_read_before_any_retire() {
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.pe_mut(t, 0, 0).reg_write = Some((0, Source::SfuResult));
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(e.kind, HazardKind::SfuResultEmpty));
}

#[test]
fn sfu_busy_rejects_second_issue() {
    let mut b = ProgramBuilder::new(4);
    let t0 = b.push_step();
    b.pe_mut(t0, 0, 0).sfu = Some((
        DivSqrtOp::Reciprocal,
        Source::Const(2.0),
        Source::Const(0.0),
    ));
    let t1 = b.push_step();
    b.pe_mut(t1, 1, 1).sfu = Some((DivSqrtOp::Sqrt, Source::Const(2.0), Source::Const(0.0)));
    // Isolated implementation: one shared unit per core.
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(e.kind, HazardKind::SfuBusy));
}

#[test]
fn bus_to_bus_forwarding_rejected() {
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.pe_mut(t, 0, 0).row_write = Some(Source::ColBus);
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(e.kind, HazardKind::BusToBusSameCycle));
}

#[test]
fn ext_store_from_undriven_bus() {
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.ext(t, ExtOp::Store { col: 2, addr: 0 });
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(e.kind, HazardKind::ExtStoreUndriven { col: 2 }));
}

#[test]
fn ext_address_out_of_range() {
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.ext(
        t,
        ExtOp::Load {
            col: 0,
            addr: 1_000_000,
        },
    );
    let e = run_one(b, cfg()).unwrap_err();
    assert!(matches!(e.kind, HazardKind::ExtOutOfRange { .. }));
}

#[test]
fn error_reports_cycle_and_pe() {
    let mut b = ProgramBuilder::new(4);
    b.idle(7);
    let t = b.push_step();
    b.pe_mut(t, 3, 2).mac = Some((Source::RowBus, Source::Const(1.0)));
    let e = run_one(b, cfg()).unwrap_err();
    assert_eq!(e.cycle, 7);
    assert_eq!(e.pe, Some((3, 2)));
    let msg = format!("{e}");
    assert!(msg.contains("cycle 7") && msg.contains("(3,2)"), "{msg}");
}

#[test]
fn state_persists_across_runs() {
    // The co-simulation drivers depend on this: registers and SRAM survive
    // between program phases.
    let mut lac = Lac::new(cfg());
    let mut mem = ExternalMem::new(4);
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.set_pe(
        t,
        1,
        2,
        PeInstr::default().reg_write(3, Source::Const(42.0)),
    );
    lac.run(&b.build(), &mut mem).unwrap();
    assert_eq!(lac.reg(1, 2, 3), 42.0);
    let mut b = ProgramBuilder::new(4);
    let t = b.push_step();
    b.set_pe(t, 1, 2, PeInstr::default().col_write(Source::Reg(3)));
    b.ext(t, ExtOp::Store { col: 2, addr: 0 });
    lac.run(&b.build(), &mut mem).unwrap();
    assert_eq!(mem.read(0), 42.0);
}

#[test]
fn software_divsqrt_per_pe_units_are_independent() {
    // Unlike the Isolated option, Software gives every PE its own
    // (microcoded) unit — two PEs may divide concurrently.
    let config = LacConfig {
        divsqrt: DivSqrtImpl::Software,
        ..cfg()
    };
    let q = DivSqrtImpl::Software.latency(DivSqrtOp::Reciprocal);
    let mut b = ProgramBuilder::new(4);
    let t0 = b.push_step();
    b.pe_mut(t0, 0, 0).sfu = Some((
        DivSqrtOp::Reciprocal,
        Source::Const(2.0),
        Source::Const(0.0),
    ));
    b.pe_mut(t0, 1, 1).sfu = Some((
        DivSqrtOp::Reciprocal,
        Source::Const(4.0),
        Source::Const(0.0),
    ));
    b.idle(q);
    let t1 = b.push_step();
    b.pe_mut(t1, 0, 0).reg_write = Some((0, Source::SfuResult));
    b.pe_mut(t1, 1, 1).reg_write = Some((0, Source::SfuResult));
    let mut lac = Lac::new(config);
    let mut mem = ExternalMem::new(4);
    lac.run(&b.build(), &mut mem).unwrap();
    assert!((lac.reg(0, 0, 0) - 0.5).abs() < 1e-12);
    assert!((lac.reg(1, 1, 0) - 0.25).abs() < 1e-12);
}
