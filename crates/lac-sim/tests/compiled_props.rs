//! Differential property suite: the compiled backend is bit-identical to
//! the interpreter — same memory and accumulator bits, same [`ExecStats`],
//! same hazard errors — across randomly generated programs, configuration
//! variants, and cache-hit replays. This is the contract that makes
//! `ExecBackend::Compiled` a pure host-speed knob.

use lac_fpu::{DivSqrtImpl, DivSqrtOp, FpuConfig, Precision};
use lac_sim::{
    CmpUpdate, ExecBackend, ExecStats, ExtOp, ExternalMem, Lac, LacConfig, Program, ProgramBuilder,
    ProgramCache, SimError, Source,
};
use proptest::prelude::*;

fn cfg(backend: ExecBackend) -> LacConfig {
    LacConfig {
        nr: 4,
        sram_a_words: 64,
        sram_b_words: 64,
        comparator_extension: true,
        backend,
        ..Default::default()
    }
}

/// Every architecturally visible bit of a core plus its memory bank:
/// accumulators (wide state via `acc`), registers, both SRAMs, external
/// memory — all as raw bit patterns so `-0.0 != 0.0` and NaN payloads
/// count.
fn snapshot(lac: &mut Lac, mem: &ExternalMem) -> Vec<u64> {
    let nr = lac.config().nr;
    let rf = lac.config().rf_entries;
    let mut bits = Vec::new();
    for r in 0..nr {
        for c in 0..nr {
            bits.push(lac.acc(r, c).to_bits());
            for i in 0..rf {
                bits.push(lac.reg(r, c, i).to_bits());
            }
        }
    }
    for r in 0..nr {
        for c in 0..nr {
            bits.extend(lac.sram_a_mut(r, c).iter().map(|v| v.to_bits()));
            bits.extend(lac.sram_b_mut(r, c).iter().map(|v| v.to_bits()));
        }
    }
    bits.extend(mem.as_slice().iter().map(|v| v.to_bits()));
    bits
}

/// Run `prog` on a fresh core per backend (same config apart from the
/// backend knob, same memory image) and demand identical results: the
/// run outcome (stats or error), the lifetime stats, and every
/// architectural bit.
fn assert_identical(base: LacConfig, prog: &Program, image: &[f64]) -> Result<ExecStats, SimError> {
    let mut outcomes = Vec::new();
    for backend in [ExecBackend::Interpreter, ExecBackend::Compiled] {
        let mut lac = Lac::new(LacConfig { backend, ..base });
        let mut mem = ExternalMem::from_vec(image.to_vec());
        let res = lac.run(prog, &mut mem);
        let lifetime = *lac.stats();
        outcomes.push((res, lifetime, snapshot(&mut lac, &mem)));
    }
    let (compiled, interp) = (outcomes.pop().unwrap(), outcomes.pop().unwrap());
    assert_eq!(&interp.0, &compiled.0, "run outcome diverged");
    assert_eq!(&interp.1, &compiled.1, "lifetime stats diverged");
    assert_eq!(&interp.2, &compiled.2, "architectural bits diverged");
    interp.0
}

/// One random "round" of program material. Each variant exercises a
/// different op class of the tape: bus broadcasts + MACs, external
/// traffic, free-standing FMAs, SFU ops, comparator updates, accumulator
/// loads + stores, SRAM writes.
fn push_round(b: &mut ProgramBuilder, op_sel: u8, addr_sel: u8, flag: bool, base: &LacConfig) {
    let p = base.fpu.pipeline_depth;
    let q = base.divsqrt.latency(DivSqrtOp::InvSqrt);
    let a = (addr_sel % 32) as usize;
    match op_sel % 8 {
        0 => {
            // Row broadcasts feeding MACs everywhere (optionally negated).
            let t = b.push_step();
            let oc = (addr_sel % 4) as usize;
            for r in 0..4 {
                b.pe_mut(t, r, oc).row_write = Some(Source::SramA(a));
            }
            for r in 0..4 {
                for c in 0..4 {
                    let pe = b.pe_mut(t, r, c);
                    pe.mac = Some((Source::RowBus, Source::SramB(a % 8)));
                    pe.negate_product = flag;
                }
            }
            b.idle(p);
        }
        1 => {
            // External loads on every column bus into registers / B-SRAM.
            let t = b.push_step();
            for col in 0..4 {
                b.ext(
                    t,
                    ExtOp::Load {
                        col,
                        addr: col + a % 8,
                    },
                );
                if flag {
                    b.pe_mut(t, col, col).reg_write = Some((0, Source::ColBus));
                } else {
                    b.pe_mut(t, col, col).sram_b_write = Some((a % 16, Source::ColBus));
                }
            }
        }
        2 => {
            // Free-standing FMAs; latch the retired result into a register.
            let t = b.push_step();
            for r in 0..4 {
                for c in 0..4 {
                    let pe = b.pe_mut(t, r, c);
                    pe.fma = Some((
                        Source::Reg(0),
                        Source::SramB(a % 8),
                        Source::Const(0.25 * a as f64),
                    ));
                    pe.negate_product = flag;
                }
            }
            b.idle(p - 1);
            let t = b.push_step();
            for r in 0..4 {
                for c in 0..4 {
                    b.pe_mut(t, r, c).reg_write = Some((1, Source::MacResult));
                }
            }
        }
        3 => {
            // SFU op on the diagonal, result read back after its latency.
            let d = (addr_sel % 4) as usize;
            let t = b.push_step();
            b.pe_mut(t, d, d).sfu = Some((
                if flag {
                    DivSqrtOp::InvSqrt
                } else {
                    DivSqrtOp::Sqrt
                },
                Source::Const(2.0 + a as f64),
                Source::Const(0.0),
            ));
            b.idle(q + 3);
            let t = b.push_step();
            b.pe_mut(t, d, d).reg_write = Some((2, Source::SfuResult));
        }
        4 => {
            // Comparator micro-op (pivot search) on every PE.
            let t = b.push_step();
            for r in 0..4 {
                for c in 0..4 {
                    b.pe_mut(t, r, c).cmp_update = Some(CmpUpdate {
                        value: Source::SramB((a + r) % 16),
                        tag: a as f64,
                        val_reg: 0,
                        tag_reg: 3,
                    });
                }
            }
        }
        5 => {
            // Accumulator load (pipelines drained by the pads above),
            // then stream one row out over the column buses.
            let t = b.push_step();
            for r in 0..4 {
                for c in 0..4 {
                    b.pe_mut(t, r, c).acc_load = Some(Source::Const(a as f64 - 7.0));
                }
            }
            let t = b.push_step();
            let row = (addr_sel % 4) as usize;
            for c in 0..4 {
                b.pe_mut(t, row, c).col_write = Some(Source::Acc);
                b.ext(
                    t,
                    ExtOp::Store {
                        col: c,
                        addr: 8 + c,
                    },
                );
            }
        }
        6 => {
            // SRAM writes from constants.
            let t = b.push_step();
            for r in 0..4 {
                for c in 0..4 {
                    let pe = b.pe_mut(t, r, c);
                    if flag {
                        pe.sram_a_write = Some((a, Source::Const(a as f64 + 0.5)));
                    } else {
                        pe.sram_b_write = Some((a % 16, Source::Const(-(a as f64))));
                    }
                }
            }
        }
        _ => {
            // Idle padding (hashes by count, not content).
            b.idle(1 + (addr_sel % 3) as usize);
        }
    }
}

fn build_program(rounds: &[(u8, u8, bool)], base: &LacConfig) -> Program {
    let mut b = ProgramBuilder::new(4);
    for &(op_sel, addr_sel, flag) in rounds {
        push_round(&mut b, op_sel, addr_sel, flag, base);
    }
    // Drain so programs usually stay tape-eligible (no pipeline carry-out).
    b.idle(base.fpu.pipeline_depth);
    b.build()
}

fn image() -> Vec<f64> {
    (0..64).map(|i| (i as f64) * 0.5 - 3.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Random mixed programs: outputs, stats, and architectural bits are
    // identical across backends.
    #[test]
    fn backends_bit_identical(
        rounds in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..12)
    ) {
        let base = cfg(ExecBackend::Interpreter);
        let prog = build_program(&rounds, &base);
        let res = assert_identical(base, &prog, &image());
        prop_assert!(res.is_ok(), "generator emitted a hazard: {res:?}");
    }

    // Random programs with a hazard appended: both backends report the
    // *same* error (kind and cycle) — the compiled backend's fallback
    // reproduces interpreter diagnostics exactly.
    #[test]
    fn hazard_errors_identical(
        rounds in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
        hazard in any::<u8>(),
    ) {
        let base = cfg(ExecBackend::Interpreter);
        let mut b = ProgramBuilder::new(4);
        for &(op_sel, addr_sel, flag) in &rounds {
            push_round(&mut b, op_sel, addr_sel, flag, &base);
        }
        match hazard % 5 {
            0 => {
                // Out-of-range A read.
                let t = b.push_step();
                b.pe_mut(t, 0, 0).mac = Some((Source::SramA(999), Source::Const(1.0)));
            }
            1 => {
                // Column-bus conflict: external load vs PE writer.
                let t = b.push_step();
                b.ext(t, ExtOp::Load { col: 1, addr: 0 });
                b.pe_mut(t, 2, 1).col_write = Some(Source::Const(1.0));
            }
            2 => {
                // Register file out of range.
                let t = b.push_step();
                b.pe_mut(t, 3, 3).reg_write = Some((99, Source::Const(1.0)));
            }
            3 => {
                // Three B-SRAM reads in one cycle (two ports).
                let t = b.push_step();
                let pe = b.pe_mut(t, 1, 1);
                pe.mac = Some((Source::SramB(0), Source::SramB(1)));
                pe.reg_write = Some((0, Source::SramB(2)));
            }
            _ => {
                // Accumulator read while the MAC pipeline is busy.
                let t = b.push_step();
                b.pe_mut(t, 2, 2).mac = Some((Source::Const(1.0), Source::Const(1.0)));
                let t = b.push_step();
                b.pe_mut(t, 2, 2).row_write = Some(Source::Acc);
            }
        }
        let prog = b.build();
        let res = assert_identical(base, &prog, &image());
        prop_assert!(res.is_err(), "hazard did not fire");
    }

    // A cache hit replays bit-identically to the cold compile: the same
    // structural program run twice through one compiled-backend core
    // matches two independent interpreter runs, state for state.
    #[test]
    fn cache_hit_matches_cold_compile(
        rounds in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..8)
    ) {
        let base = cfg(ExecBackend::Interpreter);
        let prog = build_program(&rounds, &base);

        let mut runs = Vec::new();
        for backend in [ExecBackend::Interpreter, ExecBackend::Compiled] {
            let mut lac = Lac::new(LacConfig { backend, ..base });
            let mut mem = ExternalMem::from_vec(image());
            // Clone per run: each clone re-hashes, so the second compiled
            // run exercises the cache-hit path with a fresh Program value.
            let s1 = lac.run(&prog.clone(), &mut mem).unwrap();
            let s2 = lac.run(&prog.clone(), &mut mem).unwrap();
            runs.push((s1, s2, snapshot(&mut lac, &mem)));
        }
        let (interp, compiled) = (&runs[0], &runs[1]);
        prop_assert_eq!(&interp.0, &compiled.0);
        prop_assert_eq!(&interp.1, &compiled.1);
        prop_assert_eq!(&interp.2, &compiled.2);
    }
}

/// The backends agree under every architectural configuration variant:
/// single precision, the extended-exponent accumulator, each
/// divide/square-root implementation, comparator on/off.
#[test]
fn config_sweep_bit_identical() {
    let variants: Vec<LacConfig> = vec![
        cfg(ExecBackend::Interpreter),
        LacConfig {
            fpu: FpuConfig {
                precision: Precision::Single,
                ..FpuConfig::default()
            },
            ..cfg(ExecBackend::Interpreter)
        },
        LacConfig {
            fpu: FpuConfig {
                exponent_extension: true,
                ..FpuConfig::default()
            },
            ..cfg(ExecBackend::Interpreter)
        },
        LacConfig {
            fpu: FpuConfig {
                pipeline_depth: 8,
                ..FpuConfig::default()
            },
            ..cfg(ExecBackend::Interpreter)
        },
        LacConfig {
            divsqrt: DivSqrtImpl::Software,
            ..cfg(ExecBackend::Interpreter)
        },
        LacConfig {
            divsqrt: DivSqrtImpl::DiagonalPes,
            ..cfg(ExecBackend::Interpreter)
        },
        LacConfig {
            comparator_extension: false,
            ..cfg(ExecBackend::Interpreter)
        },
    ];
    // A fixed mixed program touching MACs, FMAs, SFU, comparator, ext
    // traffic, SRAM and accumulator paths.
    let rounds: Vec<(u8, u8, bool)> = (0..10u8)
        .map(|i| (i, i.wrapping_mul(37), i % 2 == 0))
        .collect();
    for base in variants {
        let rounds: Vec<_> = if base.comparator_extension {
            rounds.clone()
        } else {
            // Comparator rounds would hazard without the extension —
            // identically on both backends, but keep this variant green.
            rounds.iter().copied().filter(|r| r.0 % 8 != 4).collect()
        };
        let prog = build_program(&rounds, &base);
        let res = assert_identical(base, &prog, &image());
        assert!(
            res.is_ok(),
            "variant hazarded: {res:?} (divsqrt {:?})",
            base.divsqrt
        );
    }
}

/// Cores sharing a [`ProgramCache`] compile each distinct program once;
/// later cores get cache hits and still produce bit-identical state.
#[test]
fn shared_cache_compiles_once_across_cores() {
    let base = cfg(ExecBackend::Compiled);
    let rounds: Vec<(u8, u8, bool)> = (0..6u8).map(|i| (i, i * 11, false)).collect();
    let prog = build_program(&rounds, &base);

    let cache = ProgramCache::new();
    let mut snapshots = Vec::new();
    for _ in 0..3 {
        let mut lac = Lac::new(base);
        lac.set_program_cache(cache.clone());
        let mut mem = ExternalMem::from_vec(image());
        lac.run(&prog, &mut mem).unwrap();
        snapshots.push(snapshot(&mut lac, &mem));
    }
    assert_eq!(cache.stats().entries, 1, "one distinct program");
    assert_eq!(cache.stats().misses, 1, "compiled exactly once");
    assert_eq!(cache.stats().hits, 2, "two cores reused the tape");
    assert_eq!(snapshots[0], snapshots[1]);
    assert_eq!(snapshots[1], snapshots[2]);
}
