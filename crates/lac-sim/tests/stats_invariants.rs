//! Property tests on the simulator's accounting invariants: randomly
//! generated hazard-free programs must always produce self-consistent
//! statistics (the power model's inputs).

use lac_sim::{ExtOp, ExternalMem, Lac, LacConfig, ProgramBuilder, Source};
use proptest::prelude::*;

fn cfg() -> LacConfig {
    LacConfig {
        nr: 4,
        sram_a_words: 64,
        sram_b_words: 64,
        ..Default::default()
    }
}

/// Build a random but structurally legal program: each "round" broadcasts
/// one A owner per row and MACs everywhere, optionally touching external
/// memory on distinct column buses.
fn random_program(rounds: &[(u8, bool)]) -> (ProgramBuilder, u64, u64) {
    let mut b = ProgramBuilder::new(4);
    let mut macs = 0u64;
    let mut ext = 0u64;
    for &(owner, do_ext) in rounds {
        let t = b.push_step();
        let oc = (owner % 4) as usize;
        for r in 0..4 {
            b.pe_mut(t, r, oc).row_write = Some(Source::SramA((owner % 16) as usize));
        }
        for r in 0..4 {
            for c in 0..4 {
                b.pe_mut(t, r, c).mac = Some((Source::RowBus, Source::SramB(r + c)));
                macs += 1;
            }
        }
        if do_ext {
            let t2 = b.push_step();
            for col in 0..4 {
                b.ext(t2, ExtOp::Load { col, addr: col });
                b.pe_mut(t2, col, col).reg_write = Some((0, Source::ColBus));
                ext += 1;
            }
        }
    }
    b.idle(cfg().fpu.pipeline_depth);
    (b, macs, ext)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stats_are_self_consistent(rounds in prop::collection::vec((any::<u8>(), any::<bool>()), 1..20)) {
        let (b, macs, ext) = random_program(&rounds);
        let prog = b.build();
        let mut lac = Lac::new(cfg());
        let mut mem = ExternalMem::new(16);
        let stats = lac.run(&prog, &mut mem).unwrap();
        prop_assert_eq!(stats.cycles as usize, prog.len());
        prop_assert_eq!(stats.mac_ops, macs);
        prop_assert_eq!(stats.ext_reads, ext);
        prop_assert!(stats.active_cycles <= stats.cycles);
        prop_assert!(stats.utilization(4) <= 1.0 + 1e-12);
        // every broadcast was counted: one transfer per row bus per round
        prop_assert_eq!(stats.row_bus_transfers, 4 * rounds.len() as u64);
        // external loads ride the column buses
        prop_assert_eq!(stats.col_bus_transfers, ext);
    }

    #[test]
    fn per_run_deltas_sum_to_lifetime(split in 1usize..10) {
        let rounds: Vec<(u8, bool)> = (0..12).map(|i| (i as u8, i % 3 == 0)).collect();
        let (head, tail) = rounds.split_at(split.min(rounds.len() - 1));
        let mut lac = Lac::new(cfg());
        let mut mem = ExternalMem::new(16);
        let (b1, m1, e1) = random_program(head);
        let (b2, m2, e2) = random_program(tail);
        let s1 = lac.run(&b1.build(), &mut mem).unwrap();
        let s2 = lac.run(&b2.build(), &mut mem).unwrap();
        prop_assert_eq!(s1.mac_ops + s2.mac_ops, m1 + m2);
        prop_assert_eq!(s1.ext_reads + s2.ext_reads, e1 + e2);
        // lifetime counters equal the sum of the two run deltas
        prop_assert_eq!(lac.stats().mac_ops, s1.mac_ops + s2.mac_ops);
        prop_assert_eq!(lac.stats().cycles, s1.cycles + s2.cycles);
    }
}
