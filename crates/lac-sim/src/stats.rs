//! Execution statistics: the event counts the power model turns into energy
//! (the dissertation's methodology §1.3: "by plugging in power consumption
//! numbers for MAC units, memories, register files, and buses, our simulator
//! is able to produce an accurate power profile").

/// Event counters accumulated over one program execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// MAC issues (accumulating form).
    pub mac_ops: u64,
    /// Free-standing FMA issues.
    pub fma_ops: u64,
    /// SFU (divide/sqrt family) issues.
    pub sfu_ops: u64,
    /// Comparator micro-ops (pivot search).
    pub cmp_ops: u64,
    /// Reads from the single-ported A memories.
    pub sram_a_reads: u64,
    /// Writes to the A memories.
    pub sram_a_writes: u64,
    /// Reads from the dual-ported B memories.
    pub sram_b_reads: u64,
    /// Writes to the B memories.
    pub sram_b_writes: u64,
    /// Register-file reads.
    pub rf_reads: u64,
    /// Register-file writes.
    pub rf_writes: u64,
    /// Row-bus broadcasts (one per driven bus per cycle).
    pub row_bus_transfers: u64,
    /// Column-bus broadcasts (including external traffic).
    pub col_bus_transfers: u64,
    /// Words read from external (on-chip shared) memory.
    pub ext_reads: u64,
    /// Words written to external memory.
    pub ext_writes: u64,
    /// Accumulator loads/readouts.
    pub acc_accesses: u64,
    /// Cycles in which at least one MAC/FMA issued somewhere in the core.
    pub active_cycles: u64,
}

impl ExecStats {
    /// Floating-point operations: 2 per MAC/FMA (multiply + add), and we
    /// follow the dissertation in counting a divide/sqrt as one op.
    pub fn flops(&self) -> u64 {
        2 * (self.mac_ops + self.fma_ops) + self.sfu_ops
    }

    /// Utilization against the core's peak: `MACs / (cycles · nr²)`.
    pub fn utilization(&self, nr: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.mac_ops + self.fma_ops) as f64 / (self.cycles as f64 * (nr * nr) as f64)
    }

    /// Average external words moved per cycle (bandwidth demand).
    pub fn ext_words_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.ext_reads + self.ext_writes) as f64 / self.cycles as f64
    }

    /// Counters accumulated since `earlier` (used to report per-run deltas).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            cycles: self.cycles - earlier.cycles,
            mac_ops: self.mac_ops - earlier.mac_ops,
            fma_ops: self.fma_ops - earlier.fma_ops,
            sfu_ops: self.sfu_ops - earlier.sfu_ops,
            cmp_ops: self.cmp_ops - earlier.cmp_ops,
            sram_a_reads: self.sram_a_reads - earlier.sram_a_reads,
            sram_a_writes: self.sram_a_writes - earlier.sram_a_writes,
            sram_b_reads: self.sram_b_reads - earlier.sram_b_reads,
            sram_b_writes: self.sram_b_writes - earlier.sram_b_writes,
            rf_reads: self.rf_reads - earlier.rf_reads,
            rf_writes: self.rf_writes - earlier.rf_writes,
            row_bus_transfers: self.row_bus_transfers - earlier.row_bus_transfers,
            col_bus_transfers: self.col_bus_transfers - earlier.col_bus_transfers,
            ext_reads: self.ext_reads - earlier.ext_reads,
            ext_writes: self.ext_writes - earlier.ext_writes,
            acc_accesses: self.acc_accesses - earlier.acc_accesses,
            active_cycles: self.active_cycles - earlier.active_cycles,
        }
    }

    /// Merge counters from another run (used by the LAP aggregator).
    pub fn merge(&mut self, o: &ExecStats) {
        self.cycles += o.cycles;
        self.mac_ops += o.mac_ops;
        self.fma_ops += o.fma_ops;
        self.sfu_ops += o.sfu_ops;
        self.cmp_ops += o.cmp_ops;
        self.sram_a_reads += o.sram_a_reads;
        self.sram_a_writes += o.sram_a_writes;
        self.sram_b_reads += o.sram_b_reads;
        self.sram_b_writes += o.sram_b_writes;
        self.rf_reads += o.rf_reads;
        self.rf_writes += o.rf_writes;
        self.row_bus_transfers += o.row_bus_transfers;
        self.col_bus_transfers += o.col_bus_transfers;
        self.ext_reads += o.ext_reads;
        self.ext_writes += o.ext_writes;
        self.acc_accesses += o.acc_accesses;
        self.active_cycles += o.active_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = ExecStats {
            cycles: 100,
            mac_ops: 1600,
            ..Default::default()
        };
        assert!((s.utilization(4) - 1.0).abs() < 1e-12);
        assert_eq!(s.flops(), 3200);
    }

    #[test]
    fn merge_adds() {
        let mut a = ExecStats {
            cycles: 10,
            mac_ops: 5,
            ..Default::default()
        };
        let b = ExecStats {
            cycles: 7,
            mac_ops: 3,
            ext_reads: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.mac_ops, 8);
        assert_eq!(a.ext_reads, 2);
    }
}
