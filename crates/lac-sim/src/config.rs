//! Static configuration of a simulated LAC.

use lac_fpu::{DivSqrtImpl, FpuConfig};

/// Which execution backend [`crate::Lac::run`](crate::core::Lac::run)
/// dispatches a program to.
///
/// Both backends are bit-identical — same memory and accumulator bits,
/// same [`crate::ExecStats`], same hazard errors — the choice is purely a
/// host-speed trade (see `docs/PERFORMANCE.md`). The compiled backend
/// falls back to the interpreter per program whenever lowering is not
/// applicable (a program that would hazard, or one that carries pipeline
/// state in or out), so selecting it is always safe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecBackend {
    /// The cycle-by-cycle reference interpreter: decodes every `Source`
    /// of every PE on every cycle. Keep for debugging and as the
    /// semantics oracle the differential suite checks the compiled
    /// backend against.
    Interpreter,
    /// Decode-once lowering: each distinct program is compiled to a flat
    /// op tape with pre-resolved operand offsets (memoized in a
    /// [`crate::ProgramCache`], shareable cluster-wide) and replayed
    /// without per-cycle decode.
    #[default]
    Compiled,
}

/// Configuration of one Linear Algebra Core.
///
/// Defaults follow the dissertation's canonical design point: a 4×4 mesh,
/// 16 KB of local store per PE split between the single-ported A memory and
/// the dual-ported B memory, a 4-entry register file (§3.4: "a size of 3,
/// rounded up to the next power of two"), and an isolated per-core SFU.
#[derive(Clone, Copy, Debug)]
pub struct LacConfig {
    /// Mesh dimension `nr` (the paper's sweet spot is 4).
    pub nr: usize,
    /// Words of single-ported SRAM per PE for the `A` block.
    pub sram_a_words: usize,
    /// Words of dual-ported SRAM per PE for the replicated `B` panels.
    pub sram_b_words: usize,
    /// Register-file entries per PE.
    pub rf_entries: usize,
    /// Floating-point datapath configuration (pipeline depth `p`, precision,
    /// exponent extension).
    pub fpu: FpuConfig,
    /// Divide/square-root architecture option (Appendix A).
    pub divsqrt: DivSqrtImpl,
    /// Maximum external-memory words that may cross the core boundary per
    /// cycle (the "x elements/cycle" of §3.4). `None` = unconstrained.
    pub ext_words_per_cycle: Option<usize>,
    /// Whether the comparator extension (§A.2, pivot search) is present.
    pub comparator_extension: bool,
    /// Which execution backend [`crate::core::Lac::run`] uses. Purely a
    /// host-speed knob: results, stats, and errors are bit-identical
    /// either way.
    pub backend: ExecBackend,
}

impl Default for LacConfig {
    fn default() -> Self {
        Self {
            nr: 4,
            // 16 KB/PE of doubles: 2048 words, ~3/4 for A, 1/4 for B.
            sram_a_words: 1536,
            sram_b_words: 512,
            rf_entries: 4,
            fpu: FpuConfig::default(),
            divsqrt: DivSqrtImpl::Isolated,
            ext_words_per_cycle: None,
            comparator_extension: false,
            backend: ExecBackend::default(),
        }
    }
}

impl LacConfig {
    /// Total PEs in the mesh.
    pub fn num_pes(&self) -> usize {
        self.nr * self.nr
    }

    /// Local store per PE in bytes at this precision.
    pub fn local_store_bytes(&self) -> usize {
        (self.sram_a_words + self.sram_b_words) * self.fpu.precision.bytes()
    }

    /// Peak FLOPs per cycle for the whole core (2 per MAC).
    pub fn peak_flops_per_cycle(&self) -> f64 {
        2.0 * self.num_pes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_design_point() {
        let c = LacConfig::default();
        assert_eq!(c.nr, 4);
        assert_eq!(c.num_pes(), 16);
        assert_eq!(c.local_store_bytes(), 16 * 1024);
        assert_eq!(c.peak_flops_per_cycle(), 32.0);
    }
}
