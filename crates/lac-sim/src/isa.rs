//! The LAC's micro-operation "ISA" and program representation.
//!
//! A [`Program`] is the software image of the paper's microprogrammed state
//! machines: for every cycle (a [`Step`]) it lists, per PE, which datapath
//! actions fire. There is no dynamic control — exactly like the hardware,
//! where "inter- and intra-PE data movement is predetermined" (§3.2.3).

use lac_fpu::DivSqrtOp;

/// Where a datapath input comes from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Source {
    /// The PE's row broadcast bus (value written this cycle).
    RowBus,
    /// The PE's column broadcast bus (value written this cycle).
    ColBus,
    /// Single-ported A memory at an address.
    SramA(usize),
    /// Dual-ported B memory at an address.
    SramB(usize),
    /// Register-file entry.
    Reg(usize),
    /// The MAC accumulator (requires the MAC pipeline to be drained).
    Acc,
    /// The latched result of the last retired free-standing FMA.
    MacResult,
    /// The latched result of the last retired SFU operation.
    SfuResult,
    /// An immediate constant (microcode constants such as 0 or 1).
    Const(f64),
}

/// One PE's actions for one cycle. All fields are independent datapath
/// controls; the simulator checks the structural constraints (port counts,
/// bus ownership, issue width).
#[derive(Clone, Debug, Default)]
pub struct PeInstr {
    /// Drive the PE's row bus with this value.
    pub row_write: Option<Source>,
    /// Drive the PE's column bus with this value.
    pub col_write: Option<Source>,
    /// Issue `acc += a * b`.
    pub mac: Option<(Source, Source)>,
    /// Issue a free-standing fused `c + a * b` (result → MacResult latch).
    pub fma: Option<(Source, Source, Source)>,
    /// Negate the product of this cycle's `mac`/`fma` (fused
    /// multiply-subtract — the rank-1 *downdate* used by TRSM, Cholesky, LU).
    pub negate_product: bool,
    /// Comparator micro-op (§A.2 extension): compare `|value|` against the
    /// pivot-magnitude register `Reg(cmp_regs.0)`; if strictly larger, latch
    /// the value there and its `tag` into `Reg(cmp_regs.1)`.
    pub cmp_update: Option<CmpUpdate>,
    /// Load the accumulator.
    pub acc_load: Option<Source>,
    /// Write A memory: `(addr, value)`.
    pub sram_a_write: Option<(usize, Source)>,
    /// Write B memory: `(addr, value)`.
    pub sram_b_write: Option<(usize, Source)>,
    /// Write the register file: `(index, value)`.
    pub reg_write: Option<(usize, Source)>,
    /// Issue a special-function op `(op, a, b)` (`b` used only by Divide).
    pub sfu: Option<(DivSqrtOp, Source, Source)>,
}

/// A comparator micro-op: the pivot-search primitive of LU factorization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CmpUpdate {
    /// Candidate value.
    pub value: Source,
    /// Identifying tag (e.g. the row index) latched alongside a new maximum.
    pub tag: f64,
    /// Register holding the current maximum-magnitude value.
    pub val_reg: usize,
    /// Register holding the current maximum's tag.
    pub tag_reg: usize,
}

impl PeInstr {
    /// True when the instruction does nothing (idle PE).
    pub fn is_nop(&self) -> bool {
        self.row_write.is_none()
            && self.col_write.is_none()
            && self.mac.is_none()
            && self.fma.is_none()
            && self.acc_load.is_none()
            && self.sram_a_write.is_none()
            && self.sram_b_write.is_none()
            && self.reg_write.is_none()
            && self.sfu.is_none()
            && self.cmp_update.is_none()
    }

    // Builder-style helpers used by the kernel generators.

    /// Drive the PE's row bus with `s`.
    pub fn row_write(mut self, s: Source) -> Self {
        self.row_write = Some(s);
        self
    }

    /// Drive the PE's column bus with `s`.
    pub fn col_write(mut self, s: Source) -> Self {
        self.col_write = Some(s);
        self
    }

    /// Issue `acc += a * b`.
    pub fn mac(mut self, a: Source, b: Source) -> Self {
        self.mac = Some((a, b));
        self
    }

    /// Issue a free-standing fused `c + a * b`.
    pub fn fma(mut self, a: Source, b: Source, c: Source) -> Self {
        self.fma = Some((a, b, c));
        self
    }

    /// Mark this cycle's mac/fma as a multiply-*subtract*.
    pub fn negated(mut self) -> Self {
        self.negate_product = true;
        self
    }

    /// Attach a comparator micro-op (LU pivot search).
    pub fn cmp_update(mut self, c: CmpUpdate) -> Self {
        self.cmp_update = Some(c);
        self
    }

    /// Load the accumulator from `s`.
    pub fn acc_load(mut self, s: Source) -> Self {
        self.acc_load = Some(s);
        self
    }

    /// Write `s` into A memory at `addr`.
    pub fn sram_a_write(mut self, addr: usize, s: Source) -> Self {
        self.sram_a_write = Some((addr, s));
        self
    }

    /// Write `s` into B memory at `addr`.
    pub fn sram_b_write(mut self, addr: usize, s: Source) -> Self {
        self.sram_b_write = Some((addr, s));
        self
    }

    /// Write `s` into register `idx`.
    pub fn reg_write(mut self, idx: usize, s: Source) -> Self {
        self.reg_write = Some((idx, s));
        self
    }

    /// Issue special-function op `op` on `a` (and `b` for divides).
    pub fn sfu(mut self, op: DivSqrtOp, a: Source, b: Source) -> Self {
        self.sfu = Some((op, a, b));
        self
    }
}

/// External-memory traffic for one cycle (uses the column buses, §3.2.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExtOp {
    /// Drive column bus `col` with external memory word `addr`.
    Load {
        /// Column bus to drive.
        col: usize,
        /// External word address to read.
        addr: usize,
    },
    /// Capture what a PE drove onto column bus `col` into external `addr`.
    Store {
        /// Column bus to capture.
        col: usize,
        /// External word address to write.
        addr: usize,
    },
}

/// One simulated cycle: a micro-instruction per PE (row-major, length `nr²`)
/// plus external transfers.
#[derive(Clone, Debug, Default)]
pub struct Step {
    /// One micro-instruction per PE, row-major, length `nr²`.
    pub pes: Vec<PeInstr>,
    /// External-memory transfers of this cycle (share the column buses).
    pub ext: Vec<ExtOp>,
}

impl Step {
    fn new(nr: usize) -> Self {
        Self {
            pes: vec![PeInstr::default(); nr * nr],
            ext: Vec::new(),
        }
    }
}

/// A complete microprogram for one LAC.
#[derive(Debug, Default)]
pub struct Program {
    /// Mesh dimension the program was generated for.
    pub nr: usize,
    /// One [`Step`] per simulated cycle.
    pub steps: Vec<Step>,
    /// Structural hash, memoized on first use (see
    /// [`Program::structural_hash`]). Cleared by `clone`.
    hash: std::sync::OnceLock<u128>,
}

impl Clone for Program {
    fn clone(&self) -> Self {
        // The memoized hash is deliberately *not* carried over: a clone is
        // the one legitimate way to obtain a mutable program again (the
        // fields are public), and a stale hash on a mutated clone would
        // alias another program in the compile cache.
        Program {
            nr: self.nr,
            steps: self.steps.clone(),
            hash: std::sync::OnceLock::new(),
        }
    }
}

impl Program {
    /// Number of cycles (steps) in the program.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the program has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// A 128-bit structural hash of the program: two independent passes
    /// over `nr`, every non-idle [`PeInstr`] (with its step and PE
    /// position) and every [`ExtOp`]. Idle steps and idle PEs contribute
    /// only their count, so pipeline-drain padding hashes in O(1) per
    /// step. This is the [`crate::ProgramCache`] key.
    ///
    /// The value is memoized on first call — treat a `Program` as
    /// immutable once it has been executed (kernel generators build via
    /// [`ProgramBuilder`] and never mutate afterwards; `clone()` resets
    /// the memo on the copy).
    pub fn structural_hash(&self) -> u128 {
        *self.hash.get_or_init(|| crate::compile::hash_program(self))
    }
}

/// Convenience builder used by every kernel generator.
#[derive(Debug)]
pub struct ProgramBuilder {
    nr: usize,
    steps: Vec<Step>,
}

impl ProgramBuilder {
    /// Start an empty program for an `nr × nr` mesh.
    pub fn new(nr: usize) -> Self {
        Self {
            nr,
            steps: Vec::new(),
        }
    }

    /// Mesh dimension this builder schedules for.
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// Append a new (initially idle) cycle and return its index.
    pub fn push_step(&mut self) -> usize {
        self.steps.push(Step::new(self.nr));
        self.steps.len() - 1
    }

    /// Append `n` idle cycles (pipeline drains, dependency stalls).
    pub fn idle(&mut self, n: usize) {
        for _ in 0..n {
            self.push_step();
        }
    }

    /// Number of steps so far.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no step was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Mutable access to PE `(r, c)`'s instruction in step `t`.
    pub fn pe_mut(&mut self, t: usize, r: usize, c: usize) -> &mut PeInstr {
        assert!(r < self.nr && c < self.nr, "PE ({r},{c}) out of mesh");
        &mut self.steps[t].pes[r * self.nr + c]
    }

    /// Overwrite PE `(r, c)`'s instruction in step `t`, asserting that no
    /// instruction was scheduled there yet (catches generator collisions).
    pub fn set_pe(&mut self, t: usize, r: usize, c: usize, instr: PeInstr) {
        let slot = self.pe_mut(t, r, c);
        assert!(slot.is_nop(), "PE ({r},{c}) already scheduled in step {t}");
        *slot = instr;
    }

    /// Add an external-memory transfer to step `t`.
    pub fn ext(&mut self, t: usize, op: ExtOp) {
        self.steps[t].ext.push(op);
    }

    /// Finish: hand the accumulated steps over as a [`Program`].
    pub fn build(self) -> Program {
        Program {
            nr: self.nr,
            steps: self.steps,
            hash: std::sync::OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_detection() {
        assert!(PeInstr::default().is_nop());
        assert!(!PeInstr::default()
            .mac(Source::RowBus, Source::ColBus)
            .is_nop());
    }

    #[test]
    fn builder_layout() {
        let mut b = ProgramBuilder::new(4);
        let t = b.push_step();
        b.set_pe(t, 1, 2, PeInstr::default().row_write(Source::Acc));
        let p = b.build();
        assert_eq!(p.steps.len(), 1);
        assert!(p.steps[0].pes[4 + 2].row_write.is_some());
        assert!(p.steps[0].pes[0].is_nop());
    }

    #[test]
    #[should_panic(expected = "already scheduled")]
    fn double_schedule_panics() {
        let mut b = ProgramBuilder::new(2);
        let t = b.push_step();
        b.set_pe(t, 0, 0, PeInstr::default().row_write(Source::Acc));
        b.set_pe(t, 0, 0, PeInstr::default().col_write(Source::Acc));
    }
}
