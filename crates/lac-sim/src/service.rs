//! The chip's submission-based front-end: [`JobGraph`] expresses DAGs of
//! [`ChipJob`]s with dependencies, and [`LacService`] keeps one persistent
//! worker thread per core alive across submissions — the production shape
//! of the multi-core LAP, where a solver loop (e.g. the repeated
//! Cholesky/TRSM/GEMM rounds of an interior-point method) submits graph
//! after graph against the same warm shards.
//!
//! The chip's original flat-queue door (removed once every call site had
//! migrated) could only drain an order-free batch, and every call paid
//! worker-pool setup and teardown. This module replaces it:
//!
//! * **[`JobGraph`]** — jobs are added in submission order and may depend
//!   on previously added jobs (`add_after` / `add_dep`). Because an edge
//!   can only point backwards, the graph is acyclic by construction. A job
//!   becomes *ready* only when all its parents completed.
//! * **Deterministic wave dispatch** — execution proceeds in waves over
//!   the ready set. Each wave is planned up front from cost hints by the
//!   [`Scheduler`] policy ([`plan_wave`]): `Fifo` round-robins in job-id
//!   order, `LeastLoaded` greedily balances estimated load, and
//!   [`Scheduler::CriticalPath`] serves the longest remaining cost-hint
//!   path first (classic critical-path list scheduling — on a flat graph
//!   it degenerates to longest-processing-time-first). Planning never
//!   looks at host timing, so a graph run is reproducible bit-for-bit no
//!   matter how the OS schedules the workers.
//! * **Simulated clock with idle accounting** — a wave's simulated span is
//!   its slowest core's bucket; cores with lighter buckets accrue idle
//!   cycles. The makespan is the sum of wave spans, so chip utilization
//!   and the static/uncore terms of `lac-power`'s chip energy model see
//!   dependency stalls, not just busy time.
//! * **[`LacService`]** — owns the shards *inside* long-lived worker
//!   threads (one per core, fed through `mpsc` channels — the submission
//!   door) and accumulates a [`ServiceSession`]: per-core meters, a
//!   service clock summing submission makespans (plus explicit
//!   [`LacService::advance_idle`] gaps between batches), and graph/job
//!   counts. `session().chip_stats()` prices the whole service lifetime
//!   through `lac_power::ChipEnergyModel`, idle included.
//! * **Multi-tenant streaming admission** — many clients ([`TenantId`]s
//!   registered via [`LacService::add_tenant`]) hold concurrent
//!   [`TenantSession`]s against one service. [`LacService::enqueue`]
//!   charges each graph's total cost hint against the tenant's in-flight
//!   budget and bounces over-budget submissions with *deterministic
//!   backpressure* ([`Rejected`] hands the graph back); admitted graphs
//!   from every tenant then interleave wave-by-wave in one
//!   [`LacService::run_admitted`] round. The
//!   [`Scheduler::FairShare`](crate::chip::Scheduler) policy dispatches
//!   one job per core per wave, picking by weight-normalized accumulated
//!   cost-hint usage ([`plan_wave_tenanted`]) — planned purely from cost
//!   hints and tenant deficits, so rounds stay bit-identical across
//!   reruns and host interleavings. Per-tenant meters (throughput,
//!   wait-vs-run, busy stats for
//!   `lac_power::ChipEnergyModel::attribute`) accumulate in each
//!   [`TenantSession`].
//!
//! Data flows between dependent jobs through whatever shared state the
//! jobs close over (e.g. an `Arc<Mutex<…>>` — see `lac-kernels`'
//! `SolverLoopWorkload`); the graph guarantees every parent's writes
//! happen-before its children run, and the wave planner fixes reduction
//! order, so shared-state workloads stay bit-deterministic.

use crate::chip::{ChipConfig, ChipJob, ChipStats, Scheduler};
use crate::compile::ProgramCache;
use crate::engine::LacEngine;
use crate::error::SimError;
use crate::event::{drive_event_graph, drive_event_single, SimMode};
use crate::stats::ExecStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Handle to a job added to a [`JobGraph`]; ids are dense and ordered by
/// submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(usize);

impl JobId {
    /// Position of the job in submission order (also its index in
    /// [`GraphRun::outputs`]).
    pub fn index(self) -> usize {
        self.0
    }

    /// Crate-internal constructor (the cluster coordinator rebuilds ids
    /// from fused-pool indices).
    pub(crate) fn from_index(i: usize) -> Self {
        JobId(i)
    }
}

/// A DAG of jobs: nodes are [`ChipJob`]s, edges are dependencies. A job
/// may only depend on previously added jobs, so the graph is acyclic by
/// construction.
///
/// ```
/// use lac_sim::JobGraph;
///
/// // A diamond: `a` fans out to `b`, `c`; `d` joins them. (Any payload
/// // type works for building; running needs a `ChipJob`.)
/// let mut g: JobGraph<&str> = JobGraph::new();
/// let a = g.add("factor");
/// let b = g.add_after("solve panel 0", &[a]);
/// let c = g.add_after("solve panel 1", &[a]);
/// let d = g.add_after("update", &[b, c]);
///
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.edges().count(), 4);
/// assert_eq!(g.parents_of(d).collect::<Vec<_>>(), vec![b, c]);
/// assert_eq!(d.index(), 3); // ids are dense, in submission order
/// ```
#[derive(Clone, Debug)]
pub struct JobGraph<J> {
    pub(crate) jobs: Vec<J>,
    /// `parents[j]` — indices of jobs that must complete before `j` runs.
    pub(crate) parents: Vec<Vec<usize>>,
    /// `children[j]` — inverse of `parents`.
    pub(crate) children: Vec<Vec<usize>>,
}

impl<J> Default for JobGraph<J> {
    fn default() -> Self {
        Self::new()
    }
}

impl<J> JobGraph<J> {
    /// An empty graph.
    pub fn new() -> Self {
        Self {
            jobs: Vec::new(),
            parents: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Add an independent job (no parents).
    pub fn add(&mut self, job: J) -> JobId {
        self.add_after(job, &[])
    }

    /// Add a job that becomes ready only after every job in `parents`
    /// completed. Duplicate parents are deduplicated.
    pub fn add_after(&mut self, job: J, parents: &[JobId]) -> JobId {
        let id = JobId(self.jobs.len());
        self.jobs.push(job);
        self.parents.push(Vec::new());
        self.children.push(Vec::new());
        for &p in parents {
            self.add_dep(p, id);
        }
        id
    }

    /// Record that `child` depends on `parent`. Panics unless `parent` was
    /// added before `child` — the invariant that keeps every graph a DAG.
    pub fn add_dep(&mut self, parent: JobId, child: JobId) {
        assert!(
            child.0 < self.jobs.len(),
            "child {child:?} is not in this graph"
        );
        assert!(
            parent.0 < child.0,
            "a job can only depend on earlier-submitted jobs ({parent:?} !< {child:?})"
        );
        if !self.parents[child.0].contains(&parent.0) {
            self.parents[child.0].push(parent.0);
            self.children[parent.0].push(child.0);
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no job was added yet.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The job behind a handle.
    pub fn job(&self, id: JobId) -> &J {
        &self.jobs[id.0]
    }

    /// Parents of `id`, in the order the edges were added.
    pub fn parents_of(&self, id: JobId) -> impl Iterator<Item = JobId> + '_ {
        self.parents[id.0].iter().map(|&p| JobId(p))
    }

    /// All edges `(parent, child)` of the graph.
    pub fn edges(&self) -> impl Iterator<Item = (JobId, JobId)> + '_ {
        self.parents
            .iter()
            .enumerate()
            .flat_map(|(c, ps)| ps.iter().map(move |&p| (JobId(p), JobId(c))))
    }

    /// Splice another graph onto the end of this one, keeping `other`'s
    /// internal edges (re-based onto the new ids) and adding **no** edges
    /// between the two parts — the result is the disjoint union. Returns
    /// `other`'s jobs' new ids in their original submission order, so
    /// callers can keep addressing the appended component (e.g. the fleet
    /// builders in `lac-kernels` that fuse many independent solver loops
    /// into one cluster submission).
    pub fn append(&mut self, other: JobGraph<J>) -> Vec<JobId> {
        let offset = self.jobs.len();
        self.jobs.extend(other.jobs);
        self.parents.extend(
            other
                .parents
                .into_iter()
                .map(|ps| ps.into_iter().map(|p| p + offset).collect::<Vec<_>>()),
        );
        self.children.extend(
            other
                .children
                .into_iter()
                .map(|cs| cs.into_iter().map(|c| c + offset).collect::<Vec<_>>()),
        );
        (offset..self.jobs.len()).map(JobId).collect()
    }

    /// Map every job through `f`, preserving the dependency structure
    /// (ids and edges) exactly. This is what lets heterogeneous clients
    /// share one serving backend: wrap each workload's job type into a
    /// common enum without touching the graph shape (see
    /// [`crate::dynamic::DynamicGraph::map_job`]).
    pub fn map<K>(self, f: impl FnMut(J) -> K) -> JobGraph<K> {
        JobGraph {
            jobs: self.jobs.into_iter().map(f).collect(),
            parents: self.parents,
            children: self.children,
        }
    }
}

impl<J: ChipJob> JobGraph<J> {
    /// Total scheduler cost of the graph (zero-cost jobs count as 1, like
    /// everywhere in the planner) — the currency admission control
    /// charges against [`TenantConfig::max_inflight_cost`] and the
    /// fair-share deficits accumulate.
    pub fn total_cost(&self) -> u64 {
        self.jobs.iter().map(|j| j.cost_hint().max(1)).sum()
    }
}

/// Collecting jobs builds the flat (edge-free) graph — an order-free
/// batch that drains in a single dependency wave.
impl<J> FromIterator<J> for JobGraph<J> {
    fn from_iter<T: IntoIterator<Item = J>>(iter: T) -> Self {
        let mut g = Self::new();
        for j in iter {
            g.add(j);
        }
        g
    }
}

/// Longest remaining cost-hint path from each job to a sink (inclusive of
/// the job's own cost) — the [`Scheduler::CriticalPath`] priority.
pub(crate) fn critical_paths(costs: &[u64], children: &[Vec<usize>]) -> Vec<u64> {
    let mut cp = vec![0u64; costs.len()];
    for j in (0..costs.len()).rev() {
        let tail = children[j].iter().map(|&c| cp[c]).max().unwrap_or(0);
        cp[j] = costs[j].max(1) + tail;
    }
    cp
}

/// Split one wave's ready set into per-core buckets under `sched`.
///
/// `ready` holds job indices in ascending id order; `costs` and
/// `priority` are indexed by job id (for a flat queue the priority *is*
/// the cost). Planning is a pure function of its arguments, which is what
/// makes graph runs deterministic; it is public so invariants (e.g. "no
/// core idles while a ready job exists") can be property-tested directly.
pub fn plan_wave(
    sched: Scheduler,
    ready: &[usize],
    costs: &[u64],
    priority: &[u64],
    cores: usize,
) -> Vec<Vec<usize>> {
    assert!(cores >= 1, "a chip has at least one core");
    let mut buckets = vec![Vec::new(); cores];
    match sched {
        Scheduler::Fifo => {
            for (k, &j) in ready.iter().enumerate() {
                buckets[k % cores].push(j);
            }
        }
        Scheduler::LeastLoaded | Scheduler::CriticalPath => {
            let mut order: Vec<usize> = ready.to_vec();
            if sched == Scheduler::CriticalPath {
                order.sort_by_key(|&j| (std::cmp::Reverse(priority[j]), j));
            }
            let mut load = vec![0u64; cores];
            for &j in &order {
                let core = (0..cores).min_by_key(|&c| (load[c], c)).unwrap();
                load[core] += costs[j].max(1);
                buckets[core].push(j);
            }
        }
        Scheduler::FairShare => {
            // Single-tenant view of the streaming planner: every job
            // belongs to one tenant with zero accumulated usage, so the
            // pick order is critical-path order, one job per core.
            let tenant_of = vec![0usize; costs.len()];
            return plan_wave_tenanted(ready, costs, priority, &tenant_of, &[0], &[1], cores);
        }
    }
    buckets
}

/// The [`Scheduler::FairShare`] wave planner: dispatch at most one job per
/// core (the streaming quantum), repeatedly picking the ready job whose
/// tenant currently has the lowest accumulated cost-hint usage normalized
/// by its weight (exact cross-multiplied comparison — no floats), breaking
/// ties by critical-path `priority` (descending) and then job id. Each
/// pick charges the tenant's usage locally, so one wave interleaves
/// tenants instead of letting the hungriest tenant take every slot.
///
/// `tenant_of[j]` maps a job to its tenant index; `usage`/`weights` are
/// indexed by tenant. Like [`plan_wave`] this is a pure function of its
/// arguments — the determinism anchor — and public so fairness and
/// work-conservation invariants can be property-tested directly.
pub fn plan_wave_tenanted(
    ready: &[usize],
    costs: &[u64],
    priority: &[u64],
    tenant_of: &[usize],
    usage: &[u64],
    weights: &[u64],
    cores: usize,
) -> Vec<Vec<usize>> {
    let boost = vec![u64::MAX; weights.len()];
    plan_wave_tenanted_slo(
        ready, costs, priority, tenant_of, usage, weights, &boost, cores,
    )
}

/// [`plan_wave_tenanted`] with a preemption-free SLO boost layered on top:
/// `boost[t]` is tenant `t`'s current deadline slack in simulated cycles
/// (`u64::MAX` means unboosted). Boosted tenants outrank every unboosted
/// one, least slack first; ties — and the whole unboosted remainder —
/// fall through to the exact weight-normalized fair-share deficit
/// comparison. Dispatched boosted jobs still charge their tenant's usage,
/// so fairness re-converges once the deadline pressure clears. Jobs
/// already running are never preempted: the boost only reorders picks at
/// wave boundaries. Still a pure function of its arguments, so boosted
/// rounds stay bit-identical across reruns and host interleavings.
#[allow(clippy::too_many_arguments)] // the planner's full deterministic context
pub fn plan_wave_tenanted_slo(
    ready: &[usize],
    costs: &[u64],
    priority: &[u64],
    tenant_of: &[usize],
    usage: &[u64],
    weights: &[u64],
    boost: &[u64],
    cores: usize,
) -> Vec<Vec<usize>> {
    assert!(cores >= 1, "a chip has at least one core");
    let mut buckets = vec![Vec::new(); cores];
    let mut local_usage = usage.to_vec();
    let mut remaining: Vec<usize> = ready.to_vec();
    for bucket in buckets.iter_mut().take(cores.min(ready.len())) {
        let (pos, &j) = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                let (ta, tb) = (tenant_of[a], tenant_of[b]);
                // Deadline slack first (MAX = unboosted), then
                // usage[ta]/weights[ta] vs usage[tb]/weights[tb], exactly.
                let ua = local_usage[ta] as u128 * weights[tb].max(1) as u128;
                let ub = local_usage[tb] as u128 * weights[ta].max(1) as u128;
                boost[ta]
                    .cmp(&boost[tb])
                    .then_with(|| ua.cmp(&ub))
                    .then_with(|| priority[b].cmp(&priority[a]))
                    .then_with(|| a.cmp(&b))
            })
            .expect("remaining is non-empty");
        remaining.swap_remove(pos);
        local_usage[tenant_of[j]] += costs[j].max(1);
        bucket.push(j);
    }
    buckets
}

/// How one dispatched job ended.
pub(crate) enum JobOutcome<T> {
    /// Output plus the job's session-stats delta.
    Completed(T, ExecStats),
    /// Skipped at the job boundary because a peer already failed.
    Skipped,
    /// The simulation rejected the schedule.
    Failed(SimError),
    /// The job itself panicked (caught so the worker can still report —
    /// an unreported job would deadlock the coordinator's wave
    /// collection). The coordinator re-raises after the wave drains.
    Panicked(String),
}

/// What one worker reports back per dispatched job.
pub(crate) struct Done<T> {
    pub(crate) core: usize,
    pub(crate) job: usize,
    pub(crate) outcome: JobOutcome<T>,
}

/// Run one job on a worker's engine, honoring the shared abort flag and
/// measuring the session delta. Shared by the scoped
/// ([`crate::chip::LacChip::run_graph`]) and persistent ([`LacService`])
/// back-ends. Never unwinds: every dispatched job must produce a report,
/// or the coordinator would wait forever.
pub(crate) fn run_one<J: ChipJob>(
    eng: &mut LacEngine,
    job: &J,
    abort: &AtomicBool,
) -> JobOutcome<J::Output> {
    if abort.load(Ordering::Relaxed) {
        return JobOutcome::Skipped;
    }
    let before = *eng.session_stats();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run_on(eng))) {
        Ok(Ok(out)) => JobOutcome::Completed(out, eng.session_stats().since(&before)),
        Ok(Err(e)) => {
            abort.store(true, Ordering::Relaxed);
            JobOutcome::Failed(e)
        }
        Err(payload) => {
            abort.store(true, Ordering::Relaxed);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            JobOutcome::Panicked(msg)
        }
    }
}

/// Everything one graph submission produces.
#[derive(Clone, Debug)]
pub struct GraphRun<T> {
    /// One output per job, indexed by [`JobId::index`] (submission order).
    pub outputs: Vec<T>,
    /// Which core ran each job (same order as `outputs`).
    pub assignment: Vec<usize>,
    /// Which dependency wave (0-based) dispatched each job.
    pub wave_of: Vec<usize>,
    /// How many dependency waves the run took (the graph's effective
    /// depth under this policy).
    pub waves: usize,
    /// Simulated clock at the end of each wave, relative to the start of
    /// the run (`wave_end_cycles[wave_of[j]]` is job `j`'s completion
    /// tick — the sojourn-time anchor of the open-loop traffic layer).
    pub wave_end_cycles: Vec<u64>,
    /// Simulated cycles each core spent waiting on dependencies (its
    /// waves' spans minus its own buckets). `busy + idle = makespan` per
    /// core.
    pub idle_per_core: Vec<u64>,
    /// Busy-cycle breakdown and aggregate; `makespan_cycles` is the sum of
    /// wave spans, so it *includes* dependency stalls.
    pub stats: ChipStats,
}

/// Per-tenant meter deltas of one [`drive_multi`] round.
#[derive(Clone, Debug, Default)]
pub(crate) struct TenantDelta {
    /// Busy stats of this tenant's completed jobs.
    pub(crate) busy: ExecStats,
    /// Jobs this tenant completed.
    pub(crate) jobs: u64,
    /// Simulated cycles this tenant's jobs spent ready-but-undispatched
    /// (dispatch clock minus ready clock, summed over jobs).
    pub(crate) wait_cycles: u64,
    /// Cost hints this tenant dispatched — the fair-share usage currency.
    pub(crate) cost_dispatched: u64,
}

/// Everything one multi-tenant round produces (the tenant-aware superset
/// of [`GraphRun`], which [`drive`] projects down to).
pub(crate) struct MultiRun<T> {
    pub(crate) outputs: Vec<T>,
    pub(crate) assignment: Vec<usize>,
    pub(crate) wave_of: Vec<usize>,
    pub(crate) waves: usize,
    pub(crate) wave_ends: Vec<u64>,
    pub(crate) idle_per_core: Vec<u64>,
    pub(crate) stats: ChipStats,
    pub(crate) per_tenant: Vec<TenantDelta>,
}

/// Collect exactly `dispatched` job reports for one wave, folding
/// completions into the per-core and per-tenant meters and `outputs`, and
/// returning the completed job indices. Among observed failures, the job
/// earliest by dispatch slot (core index, bucket position) wins, whatever
/// order the host delivered the reports in; panics are re-raised first
/// (they are harness bugs, not schedule rejections). Once this returns,
/// nothing is in flight, so the backend stays usable. Shared by the
/// chip/service coordinator ([`drive_multi`]) and the cluster coordinator
/// (`crate::cluster`), so failure and metering semantics can never drift
/// between deployment layers.
///
/// `job_cycles[j]` receives job `j`'s own busy cycles on completion —
/// the per-job span the cluster coordinator's event log reconstructs
/// start/end ticks from (a core runs its bucket in position order, so a
/// job's start is the wave's start plus its bucket predecessors' spans).
#[allow(clippy::too_many_arguments)] // the wave's full accounting context
pub(crate) fn collect_wave<T>(
    dispatched: usize,
    mut collect: impl FnMut() -> Done<T>,
    dispatch_slot: &[(usize, usize)],
    tenant_of: &[usize],
    wave_cycles: &mut [u64],
    per_core: &mut [ExecStats],
    jobs_per_core: &mut [u64],
    per_tenant: &mut [TenantDelta],
    outputs: &mut [Option<T>],
    job_cycles: &mut [u64],
) -> Result<Vec<usize>, SimError> {
    let mut completed: Vec<usize> = Vec::with_capacity(dispatched);
    let mut first_err: Option<((usize, usize), SimError)> = None;
    let mut first_panic: Option<((usize, usize), String)> = None;
    for _ in 0..dispatched {
        let done = collect();
        let slot = dispatch_slot[done.job];
        match done.outcome {
            JobOutcome::Completed(out, delta) => {
                job_cycles[done.job] = delta.cycles;
                wave_cycles[done.core] += delta.cycles;
                per_core[done.core].merge(&delta);
                jobs_per_core[done.core] += 1;
                let t = tenant_of[done.job];
                per_tenant[t].busy.merge(&delta);
                per_tenant[t].jobs += 1;
                outputs[done.job] = Some(out);
                completed.push(done.job);
            }
            // Skipped at the job boundary after a peer's failure: no
            // simulated work happened.
            JobOutcome::Skipped => {}
            JobOutcome::Failed(e) => {
                if first_err.as_ref().is_none_or(|(s, _)| slot < *s) {
                    first_err = Some((slot, e));
                }
            }
            JobOutcome::Panicked(msg) => {
                if first_panic.as_ref().is_none_or(|(s, _)| slot < *s) {
                    first_panic = Some((slot, msg));
                }
            }
        }
    }
    if let Some(((core, pos), msg)) = first_panic {
        panic!("job panicked on core {core} (bucket position {pos}): {msg}");
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    Ok(completed)
}

/// The deterministic coordinator: plan waves, dispatch buckets through
/// `dispatch`, collect exactly one [`Done`] per dispatched job via
/// `collect`, advance the simulated clock, release children. Backend
/// agnostic — `dispatch`/`collect` hide whether workers are scoped
/// borrows or persistent threads.
///
/// Tenant-aware: `tenant_of` maps each job to a tenant, and `usage` (the
/// accumulated fair-share deficit counters, indexed like `weights`) is
/// charged as jobs dispatch — in place, so [`Scheduler::FairShare`]'s
/// quantum waves see usage evolve *within* the round and the counters
/// carry across rounds. The quantum-capped policy leaves undispatched
/// ready jobs in the ready set for later waves; the full-dispatch
/// policies drain it every wave, exactly as before.
#[allow(clippy::too_many_arguments)] // the coordinator's full context is the point
pub(crate) fn drive_multi<T>(
    costs: &[u64],
    parents: &[Vec<usize>],
    children: &[Vec<usize>],
    tenant_of: &[usize],
    weights: &[u64],
    usage: &mut [u64],
    boost: &[u64],
    sched: Scheduler,
    cores: usize,
    mut dispatch: impl FnMut(usize, usize),
    mut collect: impl FnMut() -> Done<T>,
) -> Result<MultiRun<T>, SimError> {
    let n = costs.len();
    let priority = critical_paths(costs, children);
    let mut indegree: Vec<usize> = parents.iter().map(|p| p.len()).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&j| indegree[j] == 0).collect();

    let mut outputs: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut assignment = vec![0usize; n];
    let mut wave_of = vec![0usize; n];
    let mut ready_clock = vec![0u64; n];
    let mut in_wave = vec![false; n];
    let mut dispatch_slot = vec![(0usize, 0usize); n]; // (core, position in bucket)
    let mut per_core = vec![ExecStats::default(); cores];
    let mut jobs_per_core = vec![0u64; cores];
    let mut idle_per_core = vec![0u64; cores];
    let mut per_tenant = vec![TenantDelta::default(); weights.len()];
    let mut job_cycles = vec![0u64; n];
    let mut makespan = 0u64;
    let mut waves = 0usize;
    let mut wave_ends: Vec<u64> = Vec::new();

    while !ready.is_empty() {
        let buckets = match sched {
            Scheduler::FairShare => plan_wave_tenanted_slo(
                &ready, costs, &priority, tenant_of, usage, weights, boost, cores,
            ),
            _ => plan_wave(sched, &ready, costs, &priority, cores),
        };
        let mut dispatched = 0usize;
        for (core, bucket) in buckets.iter().enumerate() {
            for (pos, &j) in bucket.iter().enumerate() {
                assignment[j] = core;
                wave_of[j] = waves;
                in_wave[j] = true;
                dispatch_slot[j] = (core, pos);
                let t = tenant_of[j];
                per_tenant[t].wait_cycles += makespan - ready_clock[j];
                per_tenant[t].cost_dispatched += costs[j].max(1);
                usage[t] += costs[j].max(1);
                dispatch(core, j);
                dispatched += 1;
            }
        }
        waves += 1;

        let mut wave_cycles = vec![0u64; cores];
        // (Which peers skipped vs ran after the abort flag rose is
        // host-timing dependent, so with several failing jobs in one wave
        // the observed failure set itself can vary; the slot rule in
        // `collect_wave` picks deterministically among the observed.)
        let completed = collect_wave(
            dispatched,
            &mut collect,
            &dispatch_slot,
            tenant_of,
            &mut wave_cycles,
            &mut per_core,
            &mut jobs_per_core,
            &mut per_tenant,
            &mut outputs,
            &mut job_cycles,
        )?;

        let span = wave_cycles.iter().copied().max().unwrap_or(0);
        for c in 0..cores {
            idle_per_core[c] += span - wave_cycles[c];
        }
        makespan += span;
        wave_ends.push(makespan);

        // Undispatched ready jobs (the quantum-capped policy's backlog)
        // stay ready; children released by this wave join them.
        let mut next: Vec<usize> = ready.iter().copied().filter(|&j| !in_wave[j]).collect();
        for &j in &completed {
            for &child in &children[j] {
                indegree[child] -= 1;
                if indegree[child] == 0 {
                    ready_clock[child] = makespan;
                    next.push(child);
                }
            }
        }
        next.sort_unstable();
        ready = next;
    }

    let mut aggregate = ExecStats::default();
    for s in &per_core {
        aggregate.merge(s);
    }
    let outputs = outputs
        .into_iter()
        .enumerate()
        .map(|(j, o)| o.unwrap_or_else(|| panic!("job {j} never became ready (dangling parent?)")))
        .collect();
    Ok(MultiRun {
        outputs,
        assignment,
        wave_of,
        waves,
        wave_ends,
        idle_per_core,
        stats: ChipStats {
            per_core,
            jobs_per_core,
            makespan_cycles: makespan,
            aggregate,
        },
        per_tenant,
    })
}

/// Single-tenant projection of [`drive_multi`]: every job belongs to one
/// anonymous tenant with fresh usage — what [`LacChip::run_graph`]
/// (`crate::chip`) and [`LacService::submit`] drive.
pub(crate) fn drive<T>(
    costs: &[u64],
    parents: &[Vec<usize>],
    children: &[Vec<usize>],
    sched: Scheduler,
    cores: usize,
    dispatch: impl FnMut(usize, usize),
    collect: impl FnMut() -> Done<T>,
) -> Result<GraphRun<T>, SimError> {
    let tenant_of = vec![0usize; costs.len()];
    let mut usage = [0u64];
    let run = drive_multi(
        costs,
        parents,
        children,
        &tenant_of,
        &[1],
        &mut usage,
        &[u64::MAX],
        sched,
        cores,
        dispatch,
        collect,
    )?;
    Ok(GraphRun {
        outputs: run.outputs,
        assignment: run.assignment,
        wave_of: run.wave_of,
        waves: run.waves,
        wave_end_cycles: run.wave_ends,
        idle_per_core: run.idle_per_core,
        stats: run.stats,
    })
}

/// Messages down a worker's submission channel. `job` indexes into
/// `graph`; `tag` is the coordinator-side job id reported back in
/// [`Done`] (they differ when a round interleaves several graphs).
enum WorkerMsg<J> {
    Run {
        graph: Arc<JobGraph<J>>,
        job: usize,
        tag: usize,
    },
    Shutdown,
}

/// A tenant of the multi-tenant service door: a client whose submissions
/// are admitted, scheduled and metered separately. Ids are dense and
/// ordered by [`LacService::add_tenant`] registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(usize);

impl TenantId {
    /// Position of the tenant in registration order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Crate-internal constructor (the cluster front door registers
    /// tenants through the same dense-id scheme).
    pub(crate) fn from_index(i: usize) -> Self {
        TenantId(i)
    }
}

/// Static per-tenant policy knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantConfig {
    /// Display name (reports and error messages).
    pub name: String,
    /// Fair-share weight: under [`Scheduler::FairShare`] a tenant is
    /// served in proportion to `weight` (a weight-2 tenant gets twice the
    /// cost-hint share of a weight-1 tenant when both have work ready).
    /// Zero is treated as 1.
    pub weight: u64,
    /// Admission budget: the maximum total cost hint this tenant may have
    /// admitted-but-not-completed. [`LacService::enqueue`] rejects (with
    /// deterministic backpressure) any graph that would exceed it. `None`
    /// admits everything.
    pub max_inflight_cost: Option<u64>,
    /// Latency SLO: the target sojourn (arrival → completion) in simulated
    /// cycles. `None` means best-effort (no deadline). The scheduler never
    /// reads this directly — the open-loop traffic layer (`lac-traffic`)
    /// turns it into per-round deadline slack and feeds
    /// [`plan_wave_tenanted_slo`] through
    /// [`LacService::run_admitted_boosted`].
    pub deadline_cycles: Option<u64>,
}

impl TenantConfig {
    /// A tenant with weight 1, no admission budget and no latency SLO.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            weight: 1,
            max_inflight_cost: None,
            deadline_cycles: None,
        }
    }

    /// Set the fair-share weight.
    pub fn with_weight(mut self, weight: u64) -> Self {
        self.weight = weight;
        self
    }

    /// Bound the tenant's admitted-but-uncompleted cost.
    pub fn with_admission_budget(mut self, max_inflight_cost: u64) -> Self {
        self.max_inflight_cost = Some(max_inflight_cost);
        self
    }

    /// Set the latency SLO: target sojourn in simulated cycles.
    pub fn with_deadline(mut self, deadline_cycles: u64) -> Self {
        self.deadline_cycles = Some(deadline_cycles);
        self
    }
}

/// Lifetime meters of one tenant, accumulated across every completed
/// round — the per-tenant counterpart of the service-wide
/// [`ServiceSession`]. Feed `busy` per tenant to
/// `lac_power::ChipEnergyModel::attribute` (with the service clock as the
/// wall) for per-tenant energy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantSession {
    /// Busy stats summed over this tenant's completed jobs.
    pub busy: ExecStats,
    /// Jobs completed.
    pub jobs_run: u64,
    /// Graphs admitted through [`LacService::enqueue`].
    pub graphs_admitted: u64,
    /// Admitted graphs that completed a round.
    pub graphs_completed: u64,
    /// Submissions bounced by admission control.
    pub graphs_rejected: u64,
    /// Cost currently admitted but not yet completed (what admission
    /// control bounds).
    pub inflight_cost: u64,
    /// Completed cost hints — the fair-share usage counter the
    /// [`Scheduler::FairShare`] deficit comparison normalizes by weight.
    pub cost_completed: u64,
    /// Simulated cycles this tenant's jobs sat ready-but-undispatched
    /// (the scheduling delay the fair-share policy trades between
    /// tenants).
    pub wait_cycles: u64,
}

impl TenantSession {
    /// Cycles this tenant's jobs actually simulated (the run side of
    /// wait-vs-run).
    pub fn run_cycles(&self) -> u64 {
        self.busy.cycles
    }

    /// Completed cost hints per simulated kilocycle of `clock` — the
    /// tenant's throughput over a service lifetime (use
    /// [`ServiceSession::clock_cycles`]).
    pub fn throughput_per_kcycle(&self, clock_cycles: u64) -> f64 {
        if clock_cycles == 0 {
            return 0.0;
        }
        self.cost_completed as f64 * 1000.0 / clock_cycles as f64
    }
}

/// Receipt for one admitted graph: which tenant, and where in the
/// service-wide admission order it sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphTicket {
    /// The tenant the graph was admitted through.
    pub tenant: TenantId,
    /// Service-wide admission sequence number (dense, starting at 0).
    pub seq: u64,
}

/// Deterministic backpressure: the graph bounced off the tenant's
/// admission budget and is handed back untouched for a later retry
/// (typically after [`LacService::run_admitted`] drains in-flight cost).
pub struct Rejected<J> {
    /// The submission, returned to the caller.
    pub graph: JobGraph<J>,
    /// The tenant whose budget bounced it.
    pub tenant: TenantId,
    /// Total cost hint of the rejected graph.
    pub graph_cost: u64,
    /// The tenant's admitted-but-uncompleted cost at rejection time.
    pub inflight_cost: u64,
    /// The budget that was exceeded.
    pub budget: u64,
}

impl<J> std::fmt::Debug for Rejected<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rejected")
            .field("tenant", &self.tenant)
            .field("graph_cost", &self.graph_cost)
            .field("inflight_cost", &self.inflight_cost)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

/// One admitted graph waiting for the next round (shared by the service
/// and cluster front doors).
pub(crate) struct PendingGraph<J> {
    pub(crate) ticket: GraphTicket,
    pub(crate) graph: JobGraph<J>,
    pub(crate) cost: u64,
}

/// The shared admission decision: charge `graph`'s total cost hint against
/// tenant `t`'s in-flight budget, bouncing over-budget submissions with
/// deterministic backpressure. Both the single-chip [`LacService::enqueue`]
/// and the multi-chip [`crate::cluster::LacCluster::enqueue`] front doors
/// run exactly this function, so admission behaves identically at every
/// deployment scale.
pub(crate) fn admit<J: ChipJob>(
    tenants: &mut [(TenantConfig, TenantSession)],
    next_seq: &mut u64,
    t: TenantId,
    graph: JobGraph<J>,
) -> Result<PendingGraph<J>, Rejected<J>> {
    let cost = graph.total_cost();
    let (cfg, session) = &mut tenants[t.0];
    if let Some(budget) = cfg.max_inflight_cost {
        if session.inflight_cost + cost > budget {
            session.graphs_rejected += 1;
            return Err(Rejected {
                graph,
                tenant: t,
                graph_cost: cost,
                inflight_cost: session.inflight_cost,
                budget,
            });
        }
    }
    session.inflight_cost += cost;
    session.graphs_admitted += 1;
    let ticket = GraphTicket {
        tenant: t,
        seq: *next_seq,
    };
    *next_seq += 1;
    Ok(PendingGraph {
        ticket,
        graph,
        cost,
    })
}

/// The admitted graphs of one round fused into a single job pool: jobs
/// renumbered densely in admission order, edges re-based (edges never
/// cross graphs), per-job tenant tags, and the bookkeeping to slice the
/// fused outputs back into per-graph completions afterwards.
pub(crate) struct FusedPool<J: ChipJob> {
    pub(crate) costs: Vec<u64>,
    pub(crate) transfer_words: Vec<u64>,
    pub(crate) parents: Vec<Vec<usize>>,
    pub(crate) children: Vec<Vec<usize>>,
    pub(crate) tenant_of: Vec<usize>,
    /// Global job index → (graph index, job index within that graph).
    pub(crate) owner: Vec<(usize, usize)>,
    pub(crate) tickets: Vec<GraphTicket>,
    pub(crate) graph_costs: Vec<u64>,
    pub(crate) graphs: Vec<Arc<JobGraph<J>>>,
}

impl<J: ChipJob> FusedPool<J> {
    pub(crate) fn new(pending: Vec<PendingGraph<J>>) -> Self {
        let mut pool = FusedPool {
            costs: Vec::new(),
            transfer_words: Vec::new(),
            parents: Vec::new(),
            children: Vec::new(),
            tenant_of: Vec::new(),
            owner: Vec::new(),
            tickets: Vec::with_capacity(pending.len()),
            graph_costs: Vec::with_capacity(pending.len()),
            graphs: Vec::with_capacity(pending.len()),
        };
        for (g, p) in pending.into_iter().enumerate() {
            let offset = pool.costs.len();
            pool.tickets.push(p.ticket);
            pool.graph_costs.push(p.cost);
            pool.costs
                .extend(p.graph.jobs.iter().map(|j| j.cost_hint()));
            pool.transfer_words
                .extend(p.graph.jobs.iter().map(|j| j.transfer_words()));
            pool.parents.extend(
                p.graph
                    .parents
                    .iter()
                    .map(|ps| ps.iter().map(|&j| j + offset).collect::<Vec<_>>()),
            );
            pool.children.extend(
                p.graph
                    .children
                    .iter()
                    .map(|cs| cs.iter().map(|&j| j + offset).collect::<Vec<_>>()),
            );
            pool.tenant_of
                .extend(std::iter::repeat_n(p.ticket.tenant.0, p.graph.jobs.len()));
            pool.owner
                .extend((0..p.graph.jobs.len()).map(|local| (g, local)));
            pool.graphs.push(Arc::new(p.graph));
        }
        pool
    }

    /// Per-tenant pending cost of this round, indexed by tenant id.
    pub(crate) fn backlog(&self, tenants: usize) -> Vec<u64> {
        let mut backlog = vec![0u64; tenants];
        for (g, &cost) in self.graph_costs.iter().enumerate() {
            backlog[self.tickets[g].tenant.0] += cost;
        }
        backlog
    }

    /// Slice fused per-job vectors back into per-graph completions, in
    /// admission (ticket) order.
    pub(crate) fn completions<T>(
        &self,
        outputs: Vec<T>,
        assignment: &[usize],
        wave_of: &[usize],
    ) -> Vec<GraphCompletion<T>> {
        let mut completions: Vec<GraphCompletion<T>> = self
            .tickets
            .iter()
            .map(|&ticket| GraphCompletion {
                ticket,
                outputs: Vec::new(),
                assignment: Vec::new(),
                wave_of: Vec::new(),
            })
            .collect();
        for (job, out) in outputs.into_iter().enumerate() {
            let (g, _) = self.owner[job];
            completions[g].outputs.push(out);
            completions[g].assignment.push(assignment[job]);
            completions[g].wave_of.push(wave_of[job]);
        }
        completions
    }
}

/// Drain a round's admitted cost out of its tenants' in-flight meters —
/// the error-path settlement: the round's graphs are gone, but their
/// admitted cost must not pin the tenants' budgets forever. Shared by the
/// service and cluster `run_admitted` doors.
pub(crate) fn drain_inflight<J: ChipJob>(
    tenants: &mut [(TenantConfig, TenantSession)],
    pool: &FusedPool<J>,
) {
    for (g, &cost) in pool.graph_costs.iter().enumerate() {
        tenants[pool.tickets[g].tenant.0].1.inflight_cost -= cost;
    }
}

/// Fold a completed round into its tenants' lifetime meters: busy stats,
/// job counts, wait cycles and fair-share usage from the round's
/// [`TenantDelta`]s, plus per-graph completion counts and the in-flight
/// drain. Shared by the service and cluster `run_admitted` doors, so
/// tenant accounting behaves identically at every deployment scale.
pub(crate) fn settle_round<J: ChipJob>(
    tenants: &mut [(TenantConfig, TenantSession)],
    pool: &FusedPool<J>,
    per_tenant: &[TenantDelta],
) {
    for (t, delta) in per_tenant.iter().enumerate() {
        let session = &mut tenants[t].1;
        session.busy.merge(&delta.busy);
        session.jobs_run += delta.jobs;
        session.wait_cycles += delta.wait_cycles;
        session.cost_completed += delta.cost_dispatched;
    }
    for (g, &cost) in pool.graph_costs.iter().enumerate() {
        let session = &mut tenants[pool.tickets[g].tenant.0].1;
        session.inflight_cost -= cost;
        session.graphs_completed += 1;
    }
}

/// Cap banked fair-share deficit credit at each tenant's own backlog — the
/// deficit-round-robin "reset on an empty queue" rule, adapted to rounds:
/// a tenant that sat idle while others accumulated usage may be served at
/// most its current pending cost before the others resume. Without the
/// floor a long-idle tenant's credit would grant it unbounded priority
/// across rounds. The floor is recomputed per round from the live meters
/// (which stay truthful), so it is still a pure function of the
/// enqueue/run history.
pub(crate) fn cap_banked_credit(usage: &mut [u64], weights: &[u64], backlog: &[u64]) {
    let busiest = (0..usage.len())
        .filter(|&t| backlog[t] > 0)
        .max_by(|&a, &b| {
            (usage[a] as u128 * weights[b] as u128).cmp(&(usage[b] as u128 * weights[a] as u128))
        });
    if let Some(m) = busiest {
        for t in 0..usage.len() {
            if backlog[t] == 0 {
                continue;
            }
            let target = (usage[m] as u128 * weights[t] as u128)
                .div_ceil(weights[m] as u128)
                .min(u64::MAX as u128) as u64;
            usage[t] = usage[t].max(target.saturating_sub(backlog[t]));
        }
    }
}

/// One graph's slice of a completed round.
#[derive(Clone, Debug)]
pub struct GraphCompletion<T> {
    /// Which admitted graph this slice belongs to.
    pub ticket: GraphTicket,
    /// One output per job, indexed by the graph's [`JobId::index`].
    pub outputs: Vec<T>,
    /// Which core ran each job.
    pub assignment: Vec<usize>,
    /// Which round wave (0-based) dispatched each job.
    pub wave_of: Vec<usize>,
}

/// Everything one [`LacService::run_admitted`] round produces: per-graph
/// completions in admission order, plus the round-wide schedule meters.
#[derive(Clone, Debug)]
pub struct ServiceRound<T> {
    /// Completed graphs, in admission (ticket) order.
    pub graphs: Vec<GraphCompletion<T>>,
    /// Dependency waves the interleaved round took.
    pub waves: usize,
    /// Simulated clock at the end of each wave, relative to the start of
    /// the round: a graph completes at
    /// `wave_end_cycles[max(wave_of)]` past the round's start — how the
    /// open-loop traffic layer computes per-graph sojourn times.
    pub wave_end_cycles: Vec<u64>,
    /// Per-core dependency-stall cycles (`busy + idle = makespan`).
    pub idle_per_core: Vec<u64>,
    /// Merged busy breakdown; `makespan_cycles` is the round's simulated
    /// span with every admitted graph interleaved.
    pub stats: ChipStats,
}

/// Lifetime meters of a [`LacService`], accumulated across every
/// submission (and explicit idle gaps) since construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceSession {
    /// Per-core busy stats summed over all completed submissions.
    pub per_core: Vec<ExecStats>,
    /// Jobs each core completed over the service lifetime.
    pub jobs_per_core: Vec<u64>,
    /// The service clock: submission makespans plus
    /// [`LacService::advance_idle`] gaps. Cores are considered powered for
    /// the whole clock, so static/uncore energy accrues over it.
    pub clock_cycles: u64,
    /// Completed graph submissions.
    pub graphs_run: u64,
}

impl ServiceSession {
    /// Jobs completed over the service lifetime.
    pub fn jobs_run(&self) -> u64 {
        self.jobs_per_core.iter().sum()
    }

    /// The session as a [`ChipStats`] whose makespan is the service clock —
    /// feed this to `lac_power::ChipEnergyModel` to price the whole
    /// service lifetime, dependency stalls and between-batch idle
    /// included.
    pub fn chip_stats(&self) -> ChipStats {
        let mut aggregate = ExecStats::default();
        for s in &self.per_core {
            aggregate.merge(s);
        }
        ChipStats {
            per_core: self.per_core.clone(),
            jobs_per_core: self.jobs_per_core.clone(),
            makespan_cycles: self.clock_cycles,
            aggregate,
        }
    }
}

/// A persistent multi-core submission service: `S` worker threads, each
/// owning one [`LacEngine`] shard for the service's whole lifetime, fed
/// through `mpsc` submission channels. Submissions run dependency-aware
/// [`JobGraph`]s; between submissions the shards stay warm (architectural
/// state and session meters persist), which is the point — a solver loop
/// submits round after round without paying pool setup/teardown.
///
/// Dropping the service shuts the workers down and joins them.
///
/// ```
/// use lac_sim::{ChipConfig, JobGraph, LacConfig, LacService, ProgramBuilder, ProgramJob, Scheduler};
///
/// let mut svc: LacService<ProgramJob> =
///     LacService::new(ChipConfig::new(2, LacConfig::default()));
///
/// let graph = || -> JobGraph<ProgramJob> {
///     (1..=4)
///         .map(|i| {
///             let mut b = ProgramBuilder::new(LacConfig::default().nr);
///             b.idle(4 * i);
///             ProgramJob::new(b.build())
///         })
///         .collect()
/// };
///
/// // Two submissions against the same warm shards, plus an idle gap the
/// // energy model will price as static burn.
/// let first = svc.submit(graph(), Scheduler::CriticalPath).unwrap();
/// svc.advance_idle(1_000);
/// let second = svc.submit(graph(), Scheduler::CriticalPath).unwrap();
/// assert_eq!(first.outputs, second.outputs); // deterministic
/// assert_eq!(svc.session().graphs_run, 2);
/// assert_eq!(
///     svc.session().clock_cycles,
///     first.stats.makespan_cycles + second.stats.makespan_cycles + 1_000
/// );
/// ```
pub struct LacService<J: ChipJob + 'static> {
    cfg: ChipConfig,
    txs: Vec<Sender<WorkerMsg<J>>>,
    done_rx: Receiver<Done<J::Output>>,
    handles: Vec<JoinHandle<()>>,
    abort: Arc<AtomicBool>,
    session: ServiceSession,
    tenants: Vec<(TenantConfig, TenantSession)>,
    pending: Vec<PendingGraph<J>>,
    next_seq: u64,
    program_cache: ProgramCache,
}

impl<J: ChipJob + 'static> LacService<J> {
    /// Build the shards (per-core bandwidth split per
    /// [`ChipConfig::shard_config`]) and spawn one worker thread per core.
    /// All workers share one compile cache, so a program fanned out across
    /// cores compiles once (see [`LacService::program_cache`]).
    pub fn new(cfg: ChipConfig) -> Self {
        assert!(cfg.cores >= 1, "a chip has at least one core");
        cfg.assert_budget_conserved();
        let program_cache = ProgramCache::new();
        let abort = Arc::new(AtomicBool::new(false));
        let (done_tx, done_rx) = channel::<Done<J::Output>>();
        let mut txs = Vec::with_capacity(cfg.cores);
        let mut handles = Vec::with_capacity(cfg.cores);
        for core in 0..cfg.cores {
            let mut b = LacEngine::builder()
                .config(cfg.shard_config(core))
                .program_cache(program_cache.clone());
            if let Some(words) = cfg.mem_words_per_core {
                b = b.mem_words(words);
            }
            let eng = b.build();
            let (tx, rx) = channel::<WorkerMsg<J>>();
            let done_tx = done_tx.clone();
            let abort = Arc::clone(&abort);
            handles.push(std::thread::spawn(move || {
                service_worker(core, eng, rx, done_tx, abort)
            }));
            txs.push(tx);
        }
        Self {
            cfg,
            txs,
            done_rx,
            handles,
            abort,
            session: ServiceSession {
                per_core: vec![ExecStats::default(); cfg.cores],
                jobs_per_core: vec![0; cfg.cores],
                clock_cycles: 0,
                graphs_run: 0,
            },
            tenants: Vec::new(),
            pending: Vec::new(),
            next_seq: 0,
            program_cache,
        }
    }

    /// The underlying chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// The compile cache shared by every worker core of this service.
    pub fn program_cache(&self) -> &ProgramCache {
        &self.program_cache
    }

    /// Number of worker cores.
    pub fn num_cores(&self) -> usize {
        self.txs.len()
    }

    /// Run a job graph to completion under `sched` and fold its meters
    /// into the service session.
    ///
    /// On a simulation error the earliest *observed* failure's error (by
    /// core index, then bucket position; see
    /// [`LacChip::run_graph`](crate::chip::LacChip::run_graph) for the
    /// multi-failure caveat) is returned; peers stop at their next job
    /// boundary and no later wave is dispatched. Work that already
    /// simulated stays metered in the worker shards but a failed
    /// submission does not advance the service session — `Err` means "the
    /// graph did not complete".
    pub fn submit(
        &mut self,
        graph: JobGraph<J>,
        sched: Scheduler,
    ) -> Result<GraphRun<J::Output>, SimError> {
        self.abort.store(false, Ordering::Relaxed);
        let costs: Vec<u64> = graph.jobs.iter().map(|j| j.cost_hint()).collect();
        let graph = Arc::new(graph);
        let dispatch = |core: usize, job: usize| {
            self.txs[core]
                .send(WorkerMsg::Run {
                    graph: Arc::clone(&graph),
                    job,
                    tag: job,
                })
                .expect("service worker hung up");
        };
        let collect = || self.done_rx.recv().expect("service worker hung up");
        let run = match self.cfg.sim_mode {
            SimMode::Wave => drive(
                &costs,
                &graph.parents,
                &graph.children,
                sched,
                self.txs.len(),
                dispatch,
                collect,
            )?,
            SimMode::Event => drive_event_graph(
                &costs,
                &graph.parents,
                &graph.children,
                sched,
                self.txs.len(),
                dispatch,
                collect,
            )?,
        };
        for c in 0..self.session.per_core.len() {
            self.session.per_core[c].merge(&run.stats.per_core[c]);
            self.session.jobs_per_core[c] += run.stats.jobs_per_core[c];
        }
        self.session.clock_cycles += run.stats.makespan_cycles;
        self.session.graphs_run += 1;
        Ok(run)
    }

    /// Register a tenant on the multi-tenant submission door. Tenants are
    /// permanent for the service's lifetime; their ids index
    /// [`LacService::tenant_session`] and the fair-share deficit counters.
    pub fn add_tenant(&mut self, cfg: TenantConfig) -> TenantId {
        let id = TenantId(self.tenants.len());
        self.tenants.push((cfg, TenantSession::default()));
        id
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The policy knobs tenant `t` registered with.
    pub fn tenant_config(&self, t: TenantId) -> &TenantConfig {
        &self.tenants[t.0].0
    }

    /// The tenant's lifetime meters (updated only by completed rounds).
    pub fn tenant_session(&self, t: TenantId) -> &TenantSession {
        &self.tenants[t.0].1
    }

    /// Every tenant's busy stats in registration order — the shape
    /// `lac_power::ChipEnergyModel::attribute` prices.
    pub fn tenant_busy_stats(&self) -> Vec<ExecStats> {
        self.tenants.iter().map(|(_, s)| s.busy).collect()
    }

    /// Graphs admitted and waiting for the next [`LacService::run_admitted`].
    pub fn pending_graphs(&self) -> usize {
        self.pending.len()
    }

    /// Total admitted-but-unrun cost currently queued, across tenants.
    pub fn pending_cost(&self) -> u64 {
        self.pending.iter().map(|p| p.cost).sum()
    }

    /// Submit a graph through tenant `t`'s admission door.
    ///
    /// Admission is *deterministic backpressure*: the graph's total cost
    /// hint is charged against the tenant's in-flight budget
    /// ([`TenantConfig::max_inflight_cost`]); if it does not fit, the
    /// graph is handed back in [`Rejected`] — a pure function of the
    /// enqueue/run history, never of host timing — and the tenant's
    /// rejection counter bumps. Admitted graphs wait (order-tagged by
    /// [`GraphTicket::seq`]) for the next [`LacService::run_admitted`]
    /// round; in-flight cost drains when their round completes.
    pub fn enqueue(&mut self, t: TenantId, graph: JobGraph<J>) -> Result<GraphTicket, Rejected<J>> {
        let pending = admit(&mut self.tenants, &mut self.next_seq, t, graph)?;
        let ticket = pending.ticket;
        self.pending.push(pending);
        Ok(ticket)
    }

    /// Run every admitted graph to completion in one interleaved round:
    /// the graphs are fused into a single dependency pool (edges never
    /// cross graphs) and scheduled wave-by-wave under `sched`, so one
    /// tenant's fan-out fills the dependency stalls of another's serial
    /// spine. Under [`Scheduler::FairShare`] each wave hands out at most
    /// one job per core, picking by weight-normalized accumulated usage —
    /// the deficits persist in [`TenantSession::cost_completed`], so
    /// fairness holds across rounds, not just within one. Banked credit
    /// is capped at the tenant's own backlog (the deficit-round-robin
    /// rule of resetting an empty queue's counter): a tenant cannot sit
    /// idle for a long time and then starve the others indefinitely — it
    /// may clear at most its current pending cost before they resume.
    ///
    /// On success the round folds into the service session (its makespan
    /// advances the service clock once — the graphs ran concurrently) and
    /// into each tenant's [`TenantSession`]; admitted cost drains. On a
    /// simulation error the earliest observed failure is returned (see
    /// [`LacService::submit`]), the round's graphs are dropped, their
    /// in-flight cost drains, and neither the service session nor the
    /// tenant meters advance — `Err` means "the round did not complete".
    pub fn run_admitted(&mut self, sched: Scheduler) -> Result<ServiceRound<J::Output>, SimError> {
        let boost = vec![u64::MAX; self.tenants.len()];
        self.run_admitted_boosted(sched, &boost)
    }

    /// [`LacService::run_admitted`] with a per-tenant SLO boost: `boost[t]`
    /// is tenant `t`'s current deadline slack in simulated cycles
    /// (`u64::MAX` = unboosted). Under [`Scheduler::FairShare`] the wave
    /// planner ([`plan_wave_tenanted_slo`]) serves boosted tenants first,
    /// least slack first, without preempting running jobs; other policies
    /// ignore the boost. Because planning is cost-hint-only and outputs
    /// are placement-independent, boosting changes *when* jobs run —
    /// sojourn times, wave shapes — but never the output bits.
    pub fn run_admitted_boosted(
        &mut self,
        sched: Scheduler,
        boost: &[u64],
    ) -> Result<ServiceRound<J::Output>, SimError> {
        assert_eq!(
            boost.len(),
            self.tenants.len(),
            "one boost slack per registered tenant"
        );
        let pending = std::mem::take(&mut self.pending);
        let cores = self.txs.len();
        if pending.is_empty() {
            return Ok(ServiceRound {
                graphs: Vec::new(),
                waves: 0,
                wave_end_cycles: Vec::new(),
                idle_per_core: vec![0; cores],
                stats: ChipStats {
                    per_core: vec![ExecStats::default(); cores],
                    jobs_per_core: vec![0; cores],
                    makespan_cycles: 0,
                    aggregate: ExecStats::default(),
                },
            });
        }
        self.abort.store(false, Ordering::Relaxed);

        // Fuse the admitted graphs into one job pool with per-job tenant
        // tags; the pool's owner map recovers each graph's slice
        // afterwards.
        let pool = FusedPool::new(pending);

        let weights: Vec<u64> = self.tenants.iter().map(|(c, _)| c.weight.max(1)).collect();
        let mut usage: Vec<u64> = self.tenants.iter().map(|(_, s)| s.cost_completed).collect();
        cap_banked_credit(&mut usage, &weights, &pool.backlog(self.tenants.len()));

        let txs = &self.txs;
        let done_rx = &self.done_rx;
        let dispatch = |core: usize, job: usize| {
            let (g, local) = pool.owner[job];
            txs[core]
                .send(WorkerMsg::Run {
                    graph: Arc::clone(&pool.graphs[g]),
                    job: local,
                    tag: job,
                })
                .expect("service worker hung up");
        };
        let collect = || done_rx.recv().expect("service worker hung up");
        let run = match self.cfg.sim_mode {
            SimMode::Wave => drive_multi(
                &pool.costs,
                &pool.parents,
                &pool.children,
                &pool.tenant_of,
                &weights,
                &mut usage,
                boost,
                sched,
                cores,
                dispatch,
                collect,
            ),
            SimMode::Event => drive_event_single(
                &pool.costs,
                &pool.parents,
                &pool.children,
                &pool.tenant_of,
                &weights,
                &mut usage,
                boost,
                sched,
                cores,
                dispatch,
                collect,
            ),
        };
        let run = match run {
            Ok(run) => run,
            Err(e) => {
                drain_inflight(&mut self.tenants, &pool);
                return Err(e);
            }
        };

        // Fold the round into the service session (one clock advance — the
        // graphs ran interleaved) and the per-tenant meters.
        for c in 0..cores {
            self.session.per_core[c].merge(&run.stats.per_core[c]);
            self.session.jobs_per_core[c] += run.stats.jobs_per_core[c];
        }
        self.session.clock_cycles += run.stats.makespan_cycles;
        self.session.graphs_run += pool.graphs.len() as u64;
        settle_round(&mut self.tenants, &pool, &run.per_tenant);

        // Slice the fused outputs back into per-graph completions.
        let completions = pool.completions(run.outputs, &run.assignment, &run.wave_of);
        Ok(ServiceRound {
            graphs: completions,
            waves: run.waves,
            wave_end_cycles: run.wave_ends,
            idle_per_core: run.idle_per_core,
            stats: run.stats,
        })
    }

    /// Model a gap between batches: the chip sits powered but idle for
    /// `cycles`. Only the service clock advances, so static/uncore energy
    /// accrues while busy counters do not.
    pub fn advance_idle(&mut self, cycles: u64) {
        self.session.clock_cycles += cycles;
    }

    /// Lifetime meters across every submission since construction.
    pub fn session(&self) -> &ServiceSession {
        &self.session
    }
}

impl<J: ChipJob + 'static> Drop for LacService<J> {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn service_worker<J: ChipJob>(
    core: usize,
    mut eng: LacEngine,
    rx: Receiver<WorkerMsg<J>>,
    tx: Sender<Done<J::Output>>,
    abort: Arc<AtomicBool>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Run { graph, job, tag } => {
                let outcome = run_one(&mut eng, &graph.jobs[job], &abort);
                if tx
                    .send(Done {
                        core,
                        job: tag,
                        outcome,
                    })
                    .is_err()
                {
                    break;
                }
            }
            WorkerMsg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{ChipConfig, LacChip, ProgramJob};
    use crate::config::LacConfig;
    use crate::isa::{ExtOp, ProgramBuilder, Source};

    /// One external load + one MAC + `extra` idle cycles, with a chosen
    /// scheduler cost.
    fn job(extra: usize, cost: u64) -> ProgramJob {
        let cfg = LacConfig::default();
        let mut b = ProgramBuilder::new(cfg.nr);
        let t = b.push_step();
        b.ext(t, ExtOp::Load { col: 0, addr: 0 });
        b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
        b.idle(cfg.fpu.pipeline_depth + extra);
        let mut j = ProgramJob::new(b.build());
        j.cost = cost;
        j
    }

    #[test]
    fn graph_construction_dedups_edges() {
        let mut g = JobGraph::new();
        let a = g.add(0u8);
        let b = g.add_after(1u8, &[a, a]);
        assert_eq!(g.parents_of(b).collect::<Vec<_>>(), vec![a]);
        assert_eq!(g.edges().count(), 1);
        assert_eq!(a.index(), 0);
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "earlier-submitted")]
    fn forward_edges_are_rejected() {
        let mut g = JobGraph::new();
        let a = g.add(0u8);
        let b = g.add(1u8);
        g.add_dep(b, a);
    }

    #[test]
    fn critical_path_is_longest_cost_chain() {
        // chain 0→1→2 (costs 1,2,3) plus lone 3 (cost 10).
        let costs = [1, 2, 3, 10];
        let children = vec![vec![1], vec![2], vec![], vec![]];
        assert_eq!(critical_paths(&costs, &children), vec![6, 5, 3, 10]);
    }

    #[test]
    fn plan_wave_is_work_conserving() {
        let costs = [5u64, 1, 1, 1, 1];
        for sched in [
            Scheduler::Fifo,
            Scheduler::LeastLoaded,
            Scheduler::CriticalPath,
            Scheduler::FairShare,
        ] {
            let buckets = plan_wave(sched, &[0, 1, 2, 3, 4], &costs, &costs, 3);
            assert!(
                buckets.iter().all(|b| !b.is_empty()),
                "{sched:?} idled a core with ready jobs on hand"
            );
            // Fewer ready jobs than cores: nobody hoards.
            let buckets = plan_wave(sched, &[0, 1], &costs, &costs, 3);
            assert!(buckets.iter().all(|b| b.len() <= 1), "{sched:?} hoarded");
        }
        // The streaming quantum: FairShare never queues two jobs on one
        // core in a single wave.
        let buckets = plan_wave(Scheduler::FairShare, &[0, 1, 2, 3, 4], &costs, &costs, 3);
        assert!(buckets.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn fair_share_planner_interleaves_tenants_within_a_wave() {
        // Tenant 0 owns jobs {0,1,2}, tenant 1 owns {3,4,5}; equal usage
        // and weights, equal costs. The hungriest tenant must not take
        // every slot: picks alternate as local usage is charged.
        let costs = [1u64; 6];
        let tenant_of = [0, 0, 0, 1, 1, 1];
        let buckets = plan_wave_tenanted(
            &[0, 1, 2, 3, 4, 5],
            &costs,
            &costs,
            &tenant_of,
            &[0, 0],
            &[1, 1],
            4,
        );
        let picked: Vec<usize> = buckets.iter().flatten().copied().collect();
        assert_eq!(picked, vec![0, 3, 1, 4], "deficit picks alternate tenants");
        // A tenant with triple weight gets three slots to the other's one.
        let buckets = plan_wave_tenanted(
            &[0, 1, 2, 3, 4, 5],
            &costs,
            &costs,
            &tenant_of,
            &[0, 0],
            &[1, 3],
            4,
        );
        let t1_share = buckets
            .iter()
            .flatten()
            .filter(|&&j| tenant_of[j] == 1)
            .count();
        assert_eq!(t1_share, 3, "weight-3 tenant takes 3 of 4 quantum slots");
    }

    #[test]
    fn single_tenant_fair_share_matches_critical_path_outputs() {
        // The degradation guarantee: with one tenant every deficit is
        // equal, so FairShare picks in critical-path order and the
        // outputs (placement-independent by the determinism invariant)
        // are bit-identical to CriticalPath's.
        let build = || -> JobGraph<ProgramJob> {
            let mut g = JobGraph::new();
            let a = g.add(job(0, 9));
            let b = g.add_after(job(3, 2), &[a]);
            let c = g.add_after(job(1, 7), &[a]);
            for i in 0..4 {
                g.add_after(job(i, 1 + i as u64), &[b, c]);
            }
            g
        };
        let mut chip_fs = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let fs = chip_fs.run_graph(&build(), Scheduler::FairShare).unwrap();
        let mut chip_cp = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let cp = chip_cp
            .run_graph(&build(), Scheduler::CriticalPath)
            .unwrap();
        assert_eq!(fs.outputs, cp.outputs);
        // And the quantum cap shows in the wave structure: FairShare
        // needs at least as many waves (one job per core per wave).
        assert!(fs.waves >= cp.waves);
    }

    #[test]
    fn multi_tenant_round_interleaves_and_meters() {
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let alice = svc.add_tenant(TenantConfig::new("alice"));
        let bob = svc.add_tenant(TenantConfig::new("bob"));
        let flat = |salt: usize| -> JobGraph<ProgramJob> {
            (0..4).map(|i| job(salt + i, 1 + i as u64)).collect()
        };
        let ta = svc.enqueue(alice, flat(0)).unwrap();
        let tb = svc.enqueue(bob, flat(8)).unwrap();
        assert_eq!((ta.seq, tb.seq), (0, 1));
        assert_eq!(svc.pending_graphs(), 2);

        let round = svc.run_admitted(Scheduler::FairShare).unwrap();
        assert_eq!(svc.pending_graphs(), 0);
        assert_eq!(round.graphs.len(), 2);
        assert_eq!(round.graphs[0].ticket, ta);
        // Per-graph outputs are bit-identical to a dedicated single-tenant
        // service running the same graph (outputs are placement-free).
        let mut solo: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let solo_run = solo.submit(flat(8), Scheduler::FairShare).unwrap();
        assert_eq!(round.graphs[1].outputs, solo_run.outputs);

        // Meters: the round advanced the service clock once, and the
        // tenants partition the busy work.
        assert_eq!(svc.session().graphs_run, 2);
        assert_eq!(svc.session().clock_cycles, round.stats.makespan_cycles);
        let (a, b) = (svc.tenant_session(alice), svc.tenant_session(bob));
        assert_eq!(a.jobs_run + b.jobs_run, 8);
        assert_eq!(a.graphs_completed, 1);
        assert_eq!(a.inflight_cost, 0, "completed cost drained");
        assert_eq!(a.cost_completed + b.cost_completed, 2 * (1 + 2 + 3 + 4));
        let mut busy_sum = ExecStats::default();
        busy_sum.merge(&a.busy);
        busy_sum.merge(&b.busy);
        assert_eq!(busy_sum, round.stats.aggregate);
        // Wait-vs-run: on 2 cores with 8 unit-quantum jobs somebody waited.
        assert!(a.wait_cycles + b.wait_cycles > 0);
        assert_eq!(a.run_cycles(), a.busy.cycles);

        // Rerun the identical admission sequence on a fresh service: the
        // round is bit-identical (schedule, stats, outputs).
        let mut svc2: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let a2 = svc2.add_tenant(TenantConfig::new("alice"));
        let b2 = svc2.add_tenant(TenantConfig::new("bob"));
        svc2.enqueue(a2, flat(0)).unwrap();
        svc2.enqueue(b2, flat(8)).unwrap();
        let round2 = svc2.run_admitted(Scheduler::FairShare).unwrap();
        assert_eq!(round.stats, round2.stats);
        assert_eq!(round.waves, round2.waves);
        for (g1, g2) in round.graphs.iter().zip(&round2.graphs) {
            assert_eq!(g1.outputs, g2.outputs);
            assert_eq!(g1.assignment, g2.assignment);
            assert_eq!(g1.wave_of, g2.wave_of);
        }
    }

    #[test]
    fn admission_backpressure_is_deterministic_and_hands_the_graph_back() {
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let t = svc.add_tenant(TenantConfig::new("bounded").with_admission_budget(10));
        let graph =
            |costs: &[u64]| -> JobGraph<ProgramJob> { costs.iter().map(|&c| job(0, c)).collect() };
        assert_eq!(graph(&[4, 3]).total_cost(), 7);
        svc.enqueue(t, graph(&[4, 3])).unwrap();
        // 7 in flight, budget 10: a cost-4 graph must bounce…
        let rejected = svc.enqueue(t, graph(&[2, 2])).unwrap_err();
        assert_eq!(rejected.graph_cost, 4);
        assert_eq!(rejected.inflight_cost, 7);
        assert_eq!(rejected.budget, 10);
        assert_eq!(rejected.graph.len(), 2, "the graph comes back intact");
        // …while a cost-3 one still fits.
        svc.enqueue(t, graph(&[3])).unwrap();
        assert_eq!(svc.tenant_session(t).graphs_rejected, 1);
        assert_eq!(svc.tenant_session(t).inflight_cost, 10);

        // Draining the round frees the budget; the bounced graph retries
        // successfully — backpressure, not denial.
        svc.run_admitted(Scheduler::FairShare).unwrap();
        assert_eq!(svc.tenant_session(t).inflight_cost, 0);
        svc.enqueue(t, rejected.graph).unwrap();
        let round = svc.run_admitted(Scheduler::FairShare).unwrap();
        assert_eq!(round.graphs.len(), 1);
        assert_eq!(svc.tenant_session(t).graphs_completed, 3);
    }

    #[test]
    fn fair_share_deficits_carry_across_rounds() {
        // Round 1: only alice runs, building up usage. Round 2: both
        // tenants submit — bob (zero usage) must be served first.
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(1, LacConfig::default()));
        let alice = svc.add_tenant(TenantConfig::new("alice"));
        let bob = svc.add_tenant(TenantConfig::new("bob"));
        let flat = || -> JobGraph<ProgramJob> { (0..3).map(|i| job(i, 5)).collect() };
        svc.enqueue(alice, flat()).unwrap();
        svc.run_admitted(Scheduler::FairShare).unwrap();
        assert_eq!(svc.tenant_session(alice).cost_completed, 15);

        svc.enqueue(alice, flat()).unwrap();
        svc.enqueue(bob, flat()).unwrap();
        let round = svc.run_admitted(Scheduler::FairShare).unwrap();
        // On one core the wave order is the pick order: bob's three jobs
        // must all dispatch before alice's first (bob trails by 15 cost).
        let alice_first = round.graphs[0].wave_of.iter().min().unwrap();
        let bob_last = round.graphs[1].wave_of.iter().max().unwrap();
        assert!(
            bob_last < alice_first,
            "bob (deficit 15) must be served before alice resumes"
        );
    }

    #[test]
    fn idle_credit_is_capped_at_own_backlog() {
        // alice and carol build up usage (100 and 60) while bob sits
        // idle. When bob finally submits, his banked credit is floored to
        // (busiest normalized usage − his backlog) = 100 − 30 = 70, so
        // carol (60) is served first — bob cannot convert indefinite
        // idleness into front-of-every-queue priority, only into
        // clearing his own backlog early.
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(1, LacConfig::default()));
        let alice = svc.add_tenant(TenantConfig::new("alice"));
        let bob = svc.add_tenant(TenantConfig::new("bob"));
        let carol = svc.add_tenant(TenantConfig::new("carol"));
        let flat = |jobs: usize, cost: u64| -> JobGraph<ProgramJob> {
            (0..jobs).map(|i| job(i, cost)).collect()
        };
        svc.enqueue(alice, flat(4, 25)).unwrap();
        svc.enqueue(carol, flat(2, 30)).unwrap();
        svc.run_admitted(Scheduler::FairShare).unwrap();
        assert_eq!(svc.tenant_session(alice).cost_completed, 100);
        assert_eq!(svc.tenant_session(carol).cost_completed, 60);

        svc.enqueue(alice, flat(1, 10)).unwrap();
        svc.enqueue(carol, flat(1, 30)).unwrap();
        svc.enqueue(bob, flat(1, 30)).unwrap();
        let round = svc.run_admitted(Scheduler::FairShare).unwrap();
        // One core, one job per wave: pick order is wave order. Floored
        // usages are alice 100, carol 60, bob 70 → carol, bob, alice.
        assert_eq!(round.graphs[1].wave_of, vec![0], "carol first (60)");
        assert_eq!(round.graphs[2].wave_of, vec![1], "bob capped to 70");
        assert_eq!(round.graphs[0].wave_of, vec![2], "alice last (100)");
        // The cap never inflates the truthful meter.
        assert_eq!(svc.tenant_session(bob).cost_completed, 30);
    }

    #[test]
    fn empty_round_is_a_noop() {
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        svc.add_tenant(TenantConfig::new("idle"));
        let round = svc.run_admitted(Scheduler::FairShare).unwrap();
        assert_eq!(round.graphs.len(), 0);
        assert_eq!(round.waves, 0);
        assert_eq!(round.stats.makespan_cycles, 0);
        assert_eq!(svc.session().graphs_run, 0);
    }

    #[test]
    fn failed_round_drains_inflight_but_not_sessions() {
        let bad = {
            let mut b = ProgramBuilder::new(LacConfig::default().nr);
            let t = b.push_step();
            b.pe_mut(t, 0, 0).mac = Some((Source::RowBus, Source::Const(1.0)));
            ProgramJob::new(b.build())
        };
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let t = svc.add_tenant(TenantConfig::new("unlucky").with_admission_budget(100));
        let mut g = JobGraph::new();
        let a = g.add(job(0, 1));
        g.add_after(bad, &[a]);
        svc.enqueue(t, g).unwrap();
        svc.run_admitted(Scheduler::FairShare).unwrap_err();
        let s = svc.tenant_session(t);
        assert_eq!(s.inflight_cost, 0, "a failed round frees the budget");
        assert_eq!(s.graphs_completed, 0);
        assert_eq!(s.jobs_run, 0, "tenant meters only advance on success");
        assert_eq!(svc.session().graphs_run, 0);
        // The service recovers.
        let ok: JobGraph<ProgramJob> = (0..4).map(|i| job(i, 1)).collect();
        svc.enqueue(t, ok).unwrap();
        let round = svc.run_admitted(Scheduler::FairShare).unwrap();
        assert_eq!(round.graphs[0].outputs.len(), 4);
    }

    #[test]
    fn critical_path_wave_order_prefers_long_chains() {
        // Priorities say job 2 unlocks the most downstream work.
        let costs = [1u64, 1, 1];
        let priority = [3u64, 5, 9];
        let buckets = plan_wave(Scheduler::CriticalPath, &[0, 1, 2], &costs, &priority, 1);
        assert_eq!(buckets[0], vec![2, 1, 0]);
    }

    #[test]
    fn diamond_runs_in_three_waves_with_idle_accounting() {
        // 0 → {1, 2} → 3 on two cores: the fan-out wave is parallel, the
        // fan-in waves leave core 1 idle.
        let mut g = JobGraph::new();
        let a = g.add(job(0, 1));
        let b = g.add_after(job(8, 1), &[a]);
        let c = g.add_after(job(4, 1), &[a]);
        let _d = g.add_after(job(0, 1), &[b, c]);
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let run = chip.run_graph(&g, Scheduler::Fifo).unwrap();
        assert_eq!(run.waves, 3);
        assert_eq!(run.outputs.len(), 4);
        // Makespan = source + max(fan-out) + sink; per-core busy + idle
        // reconstructs it exactly.
        let fan = run.outputs[b.index()]
            .cycles
            .max(run.outputs[c.index()].cycles);
        assert_eq!(
            run.stats.makespan_cycles,
            run.outputs[0].cycles + fan + run.outputs[3].cycles
        );
        for core in 0..2 {
            assert_eq!(
                run.stats.per_core[core].cycles + run.idle_per_core[core],
                run.stats.makespan_cycles,
                "core {core}: busy + idle must equal the makespan"
            );
        }
        assert!(run.idle_per_core.iter().sum::<u64>() > 0);
    }

    #[test]
    fn chain_serializes_regardless_of_core_count() {
        let mut g = JobGraph::new();
        let mut prev = g.add(job(0, 1));
        for i in 1..5 {
            prev = g.add_after(job(i, 1), &[prev]);
        }
        let mut chip = LacChip::new(ChipConfig::new(4, LacConfig::default()));
        let run = chip.run_graph(&g, Scheduler::CriticalPath).unwrap();
        assert_eq!(run.waves, 5);
        assert_eq!(
            run.stats.makespan_cycles,
            run.outputs.iter().map(|o| o.cycles).sum::<u64>(),
            "a chain cannot overlap"
        );
    }

    #[test]
    fn service_keeps_session_across_submissions_and_idle() {
        let flat = || -> JobGraph<ProgramJob> { (0..6).map(|i| job(i, 1 + i as u64)).collect() };
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let first = svc.submit(flat(), Scheduler::LeastLoaded).unwrap();
        let second = svc.submit(flat(), Scheduler::LeastLoaded).unwrap();
        assert_eq!(first.outputs, second.outputs, "warm shards change nothing");
        assert_eq!(svc.session().graphs_run, 2);
        assert_eq!(svc.session().jobs_run(), 12);
        assert_eq!(
            svc.session().clock_cycles,
            first.stats.makespan_cycles + second.stats.makespan_cycles
        );
        svc.advance_idle(1_000);
        let stats = svc.session().chip_stats();
        assert_eq!(
            stats.makespan_cycles,
            first.stats.makespan_cycles + second.stats.makespan_cycles + 1_000
        );
        // Busy counters did not move with the idle clock.
        assert_eq!(
            stats.aggregate.cycles,
            first.stats.aggregate.cycles + second.stats.aggregate.cycles
        );
    }

    #[test]
    fn service_submissions_match_chip_run_graph() {
        let build = || -> JobGraph<ProgramJob> {
            let mut g = JobGraph::new();
            let a = g.add(job(0, 3));
            let b = g.add_after(job(2, 2), &[a]);
            g.add_after(job(1, 1), &[a, b]);
            g
        };
        for sched in [
            Scheduler::Fifo,
            Scheduler::LeastLoaded,
            Scheduler::CriticalPath,
        ] {
            let mut svc: LacService<ProgramJob> =
                LacService::new(ChipConfig::new(3, LacConfig::default()));
            let via_service = svc.submit(build(), sched).unwrap();
            let mut chip = LacChip::new(ChipConfig::new(3, LacConfig::default()));
            let via_chip = chip.run_graph(&build(), sched).unwrap();
            assert_eq!(via_service.outputs, via_chip.outputs);
            assert_eq!(via_service.assignment, via_chip.assignment);
            assert_eq!(via_service.stats, via_chip.stats);
        }
    }

    /// A job whose `run_on` panics (e.g. an operand assert) — must not
    /// deadlock the coordinator's wave collection.
    struct PanickyJob;

    impl ChipJob for PanickyJob {
        type Output = ExecStats;

        fn run_on(&self, _eng: &mut LacEngine) -> Result<ExecStats, crate::error::SimError> {
            panic!("operand shape rejected");
        }
    }

    #[test]
    fn panicking_job_propagates_instead_of_deadlocking() {
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let graph: JobGraph<PanickyJob> = [PanickyJob, PanickyJob].into_iter().collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chip.run_graph(&graph, Scheduler::Fifo)
        }))
        .expect_err("the job's panic must surface");
        let msg = caught.downcast_ref::<String>().expect("panic message");
        assert!(
            msg.contains("operand shape rejected"),
            "panic message lost: {msg}"
        );
    }

    #[test]
    fn service_survives_a_panicking_job() {
        // Mixed graph: the panicking job is caught and re-raised by the
        // coordinator after the wave drains, so no worker dies and the
        // service keeps serving.
        struct MaybePanic(bool, ProgramJob);
        impl ChipJob for MaybePanic {
            type Output = ExecStats;
            fn run_on(&self, eng: &mut LacEngine) -> Result<ExecStats, crate::error::SimError> {
                assert!(!self.0, "bad operand");
                self.1.run_on(eng)
            }
        }
        let mut svc: LacService<MaybePanic> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let bad: JobGraph<MaybePanic> = vec![
            MaybePanic(false, job(0, 1)),
            MaybePanic(true, job(0, 1)),
            MaybePanic(false, job(0, 1)),
        ]
        .into_iter()
        .collect();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            svc.submit(bad, Scheduler::Fifo)
        }))
        .expect_err("panic surfaces through submit");
        let ok: JobGraph<MaybePanic> = (0..4).map(|i| MaybePanic(false, job(i, 1))).collect();
        let run = svc.submit(ok, Scheduler::LeastLoaded).unwrap();
        assert_eq!(run.outputs.len(), 4, "workers outlive a job panic");
    }

    #[test]
    fn service_error_leaves_it_usable() {
        let bad = {
            let mut b = ProgramBuilder::new(LacConfig::default().nr);
            let t = b.push_step();
            b.pe_mut(t, 0, 0).mac = Some((Source::RowBus, Source::Const(1.0)));
            ProgramJob::new(b.build())
        };
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let mut g = JobGraph::new();
        let a = g.add(job(0, 1));
        g.add_after(bad, &[a]);
        let err = svc.submit(g, Scheduler::Fifo).unwrap_err();
        assert_eq!(err.cycle, 0);
        assert_eq!(svc.session().graphs_run, 0, "failed graphs do not count");
        // The service recovers: the next submission completes.
        let ok: JobGraph<ProgramJob> = (0..4).map(|i| job(i, 1)).collect();
        let run = svc.submit(ok, Scheduler::CriticalPath).unwrap();
        assert_eq!(run.outputs.len(), 4);
        assert_eq!(svc.session().graphs_run, 1);
    }
}
