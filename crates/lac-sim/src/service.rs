//! The chip's submission-based front-end: [`JobGraph`] expresses DAGs of
//! [`ChipJob`]s with dependencies, and [`LacService`] keeps one persistent
//! worker thread per core alive across submissions — the production shape
//! of the multi-core LAP, where a solver loop (e.g. the repeated
//! Cholesky/TRSM/GEMM rounds of an interior-point method) submits graph
//! after graph against the same warm shards.
//!
//! The chip's original (now deprecated) flat-queue door could only drain
//! an order-free batch, and every call paid worker-pool setup and
//! teardown. This module replaces it:
//!
//! * **[`JobGraph`]** — jobs are added in submission order and may depend
//!   on previously added jobs (`add_after` / `add_dep`). Because an edge
//!   can only point backwards, the graph is acyclic by construction. A job
//!   becomes *ready* only when all its parents completed.
//! * **Deterministic wave dispatch** — execution proceeds in waves over
//!   the ready set. Each wave is planned up front from cost hints by the
//!   [`Scheduler`] policy ([`plan_wave`]): `Fifo` round-robins in job-id
//!   order, `LeastLoaded` greedily balances estimated load, and
//!   [`Scheduler::CriticalPath`] serves the longest remaining cost-hint
//!   path first (classic critical-path list scheduling — on a flat graph
//!   it degenerates to longest-processing-time-first). Planning never
//!   looks at host timing, so a graph run is reproducible bit-for-bit no
//!   matter how the OS schedules the workers.
//! * **Simulated clock with idle accounting** — a wave's simulated span is
//!   its slowest core's bucket; cores with lighter buckets accrue idle
//!   cycles. The makespan is the sum of wave spans, so chip utilization
//!   and the static/uncore terms of `lac-power`'s chip energy model see
//!   dependency stalls, not just busy time.
//! * **[`LacService`]** — owns the shards *inside* long-lived worker
//!   threads (one per core, fed through `mpsc` channels — the submission
//!   door) and accumulates a [`ServiceSession`]: per-core meters, a
//!   service clock summing submission makespans (plus explicit
//!   [`LacService::advance_idle`] gaps between batches), and graph/job
//!   counts. `session().chip_stats()` prices the whole service lifetime
//!   through `lac_power::ChipEnergyModel`, idle included.
//!
//! Data flows between dependent jobs through whatever shared state the
//! jobs close over (e.g. an `Arc<Mutex<…>>` — see `lac-kernels`'
//! `SolverLoopWorkload`); the graph guarantees every parent's writes
//! happen-before its children run, and the wave planner fixes reduction
//! order, so shared-state workloads stay bit-deterministic.

use crate::chip::{ChipConfig, ChipJob, ChipStats, Scheduler};
use crate::engine::LacEngine;
use crate::error::SimError;
use crate::stats::ExecStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Handle to a job added to a [`JobGraph`]; ids are dense and ordered by
/// submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(usize);

impl JobId {
    /// Position of the job in submission order (also its index in
    /// [`GraphRun::outputs`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A DAG of jobs: nodes are [`ChipJob`]s, edges are dependencies. A job
/// may only depend on previously added jobs, so the graph is acyclic by
/// construction.
#[derive(Clone, Debug)]
pub struct JobGraph<J> {
    pub(crate) jobs: Vec<J>,
    /// `parents[j]` — indices of jobs that must complete before `j` runs.
    pub(crate) parents: Vec<Vec<usize>>,
    /// `children[j]` — inverse of `parents`.
    pub(crate) children: Vec<Vec<usize>>,
}

impl<J> Default for JobGraph<J> {
    fn default() -> Self {
        Self::new()
    }
}

impl<J> JobGraph<J> {
    pub fn new() -> Self {
        Self {
            jobs: Vec::new(),
            parents: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Add an independent job (no parents).
    pub fn add(&mut self, job: J) -> JobId {
        self.add_after(job, &[])
    }

    /// Add a job that becomes ready only after every job in `parents`
    /// completed. Duplicate parents are deduplicated.
    pub fn add_after(&mut self, job: J, parents: &[JobId]) -> JobId {
        let id = JobId(self.jobs.len());
        self.jobs.push(job);
        self.parents.push(Vec::new());
        self.children.push(Vec::new());
        for &p in parents {
            self.add_dep(p, id);
        }
        id
    }

    /// Record that `child` depends on `parent`. Panics unless `parent` was
    /// added before `child` — the invariant that keeps every graph a DAG.
    pub fn add_dep(&mut self, parent: JobId, child: JobId) {
        assert!(
            child.0 < self.jobs.len(),
            "child {child:?} is not in this graph"
        );
        assert!(
            parent.0 < child.0,
            "a job can only depend on earlier-submitted jobs ({parent:?} !< {child:?})"
        );
        if !self.parents[child.0].contains(&parent.0) {
            self.parents[child.0].push(parent.0);
            self.children[parent.0].push(child.0);
        }
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn job(&self, id: JobId) -> &J {
        &self.jobs[id.0]
    }

    /// Parents of `id`, in the order the edges were added.
    pub fn parents_of(&self, id: JobId) -> impl Iterator<Item = JobId> + '_ {
        self.parents[id.0].iter().map(|&p| JobId(p))
    }

    /// All edges `(parent, child)` of the graph.
    pub fn edges(&self) -> impl Iterator<Item = (JobId, JobId)> + '_ {
        self.parents
            .iter()
            .enumerate()
            .flat_map(|(c, ps)| ps.iter().map(move |&p| (JobId(p), JobId(c))))
    }
}

/// Collecting jobs builds the flat (edge-free) graph — the shape the
/// deprecated queue door wraps.
impl<J> FromIterator<J> for JobGraph<J> {
    fn from_iter<T: IntoIterator<Item = J>>(iter: T) -> Self {
        let mut g = Self::new();
        for j in iter {
            g.add(j);
        }
        g
    }
}

/// Longest remaining cost-hint path from each job to a sink (inclusive of
/// the job's own cost) — the [`Scheduler::CriticalPath`] priority.
pub(crate) fn critical_paths(costs: &[u64], children: &[Vec<usize>]) -> Vec<u64> {
    let mut cp = vec![0u64; costs.len()];
    for j in (0..costs.len()).rev() {
        let tail = children[j].iter().map(|&c| cp[c]).max().unwrap_or(0);
        cp[j] = costs[j].max(1) + tail;
    }
    cp
}

/// Split one wave's ready set into per-core buckets under `sched`.
///
/// `ready` holds job indices in ascending id order; `costs` and
/// `priority` are indexed by job id (for a flat queue the priority *is*
/// the cost). Planning is a pure function of its arguments, which is what
/// makes graph runs deterministic; it is public so invariants (e.g. "no
/// core idles while a ready job exists") can be property-tested directly.
pub fn plan_wave(
    sched: Scheduler,
    ready: &[usize],
    costs: &[u64],
    priority: &[u64],
    cores: usize,
) -> Vec<Vec<usize>> {
    assert!(cores >= 1, "a chip has at least one core");
    let mut buckets = vec![Vec::new(); cores];
    match sched {
        Scheduler::Fifo => {
            for (k, &j) in ready.iter().enumerate() {
                buckets[k % cores].push(j);
            }
        }
        Scheduler::LeastLoaded | Scheduler::CriticalPath => {
            let mut order: Vec<usize> = ready.to_vec();
            if sched == Scheduler::CriticalPath {
                order.sort_by_key(|&j| (std::cmp::Reverse(priority[j]), j));
            }
            let mut load = vec![0u64; cores];
            for &j in &order {
                let core = (0..cores).min_by_key(|&c| (load[c], c)).unwrap();
                load[core] += costs[j].max(1);
                buckets[core].push(j);
            }
        }
    }
    buckets
}

/// How one dispatched job ended.
pub(crate) enum JobOutcome<T> {
    /// Output plus the job's session-stats delta.
    Completed(T, ExecStats),
    /// Skipped at the job boundary because a peer already failed.
    Skipped,
    /// The simulation rejected the schedule.
    Failed(SimError),
    /// The job itself panicked (caught so the worker can still report —
    /// an unreported job would deadlock the coordinator's wave
    /// collection). The coordinator re-raises after the wave drains.
    Panicked(String),
}

/// What one worker reports back per dispatched job.
pub(crate) struct Done<T> {
    pub(crate) core: usize,
    pub(crate) job: usize,
    pub(crate) outcome: JobOutcome<T>,
}

/// Run one job on a worker's engine, honoring the shared abort flag and
/// measuring the session delta. Shared by the scoped
/// ([`crate::chip::LacChip::run_graph`]) and persistent ([`LacService`])
/// back-ends. Never unwinds: every dispatched job must produce a report,
/// or the coordinator would wait forever.
pub(crate) fn run_one<J: ChipJob>(
    eng: &mut LacEngine,
    job: &J,
    abort: &AtomicBool,
) -> JobOutcome<J::Output> {
    if abort.load(Ordering::Relaxed) {
        return JobOutcome::Skipped;
    }
    let before = *eng.session_stats();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run_on(eng))) {
        Ok(Ok(out)) => JobOutcome::Completed(out, eng.session_stats().since(&before)),
        Ok(Err(e)) => {
            abort.store(true, Ordering::Relaxed);
            JobOutcome::Failed(e)
        }
        Err(payload) => {
            abort.store(true, Ordering::Relaxed);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            JobOutcome::Panicked(msg)
        }
    }
}

/// Everything one graph submission produces.
#[derive(Clone, Debug)]
pub struct GraphRun<T> {
    /// One output per job, indexed by [`JobId::index`] (submission order).
    pub outputs: Vec<T>,
    /// Which core ran each job (same order as `outputs`).
    pub assignment: Vec<usize>,
    /// How many dependency waves the run took (the graph's effective
    /// depth under this policy).
    pub waves: usize,
    /// Simulated cycles each core spent waiting on dependencies (its
    /// waves' spans minus its own buckets). `busy + idle = makespan` per
    /// core.
    pub idle_per_core: Vec<u64>,
    /// Busy-cycle breakdown and aggregate; `makespan_cycles` is the sum of
    /// wave spans, so it *includes* dependency stalls.
    pub stats: ChipStats,
}

/// The deterministic coordinator: plan waves, dispatch buckets through
/// `dispatch`, collect exactly one [`Done`] per dispatched job via
/// `collect`, advance the simulated clock, release children. Backend
/// agnostic — `dispatch`/`collect` hide whether workers are scoped
/// borrows or persistent threads.
pub(crate) fn drive<T>(
    costs: &[u64],
    parents: &[Vec<usize>],
    children: &[Vec<usize>],
    sched: Scheduler,
    cores: usize,
    mut dispatch: impl FnMut(usize, usize),
    mut collect: impl FnMut() -> Done<T>,
) -> Result<GraphRun<T>, SimError> {
    let n = costs.len();
    let priority = critical_paths(costs, children);
    let mut indegree: Vec<usize> = parents.iter().map(|p| p.len()).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&j| indegree[j] == 0).collect();

    let mut outputs: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut assignment = vec![0usize; n];
    let mut dispatch_slot = vec![(0usize, 0usize); n]; // (core, position in bucket)
    let mut per_core = vec![ExecStats::default(); cores];
    let mut jobs_per_core = vec![0u64; cores];
    let mut idle_per_core = vec![0u64; cores];
    let mut makespan = 0u64;
    let mut waves = 0usize;

    while !ready.is_empty() {
        waves += 1;
        let buckets = plan_wave(sched, &ready, costs, &priority, cores);
        let mut dispatched = 0usize;
        for (core, bucket) in buckets.iter().enumerate() {
            for (pos, &j) in bucket.iter().enumerate() {
                assignment[j] = core;
                dispatch_slot[j] = (core, pos);
                dispatch(core, j);
                dispatched += 1;
            }
        }

        let mut wave_cycles = vec![0u64; cores];
        let mut completed: Vec<usize> = Vec::with_capacity(dispatched);
        let mut first_err: Option<((usize, usize), SimError)> = None;
        let mut first_panic: Option<((usize, usize), String)> = None;
        for _ in 0..dispatched {
            let done = collect();
            // Error/panic selection: among the failures observed, the job
            // earliest by (core index, bucket position) wins, whatever
            // order the host delivered the reports in. (Which peers
            // skipped vs ran after the abort flag rose is host-timing
            // dependent, so with several failing jobs in one wave the
            // observed set itself can vary.)
            let slot = dispatch_slot[done.job];
            match done.outcome {
                JobOutcome::Completed(out, delta) => {
                    wave_cycles[done.core] += delta.cycles;
                    per_core[done.core].merge(&delta);
                    jobs_per_core[done.core] += 1;
                    outputs[done.job] = Some(out);
                    completed.push(done.job);
                }
                // Skipped at the job boundary after a peer's failure: no
                // simulated work happened.
                JobOutcome::Skipped => {}
                JobOutcome::Failed(e) => {
                    if first_err.as_ref().is_none_or(|(s, _)| slot < *s) {
                        first_err = Some((slot, e));
                    }
                }
                JobOutcome::Panicked(msg) => {
                    if first_panic.as_ref().is_none_or(|(s, _)| slot < *s) {
                        first_panic = Some((slot, msg));
                    }
                }
            }
        }
        // Every dispatched job has reported, so nothing is in flight and
        // the backend stays usable — now surface failures, panics first
        // (they are harness bugs, not schedule rejections).
        if let Some(((core, pos), msg)) = first_panic {
            panic!("chip job panicked on core {core} (bucket position {pos}): {msg}");
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }

        let span = wave_cycles.iter().copied().max().unwrap_or(0);
        for c in 0..cores {
            idle_per_core[c] += span - wave_cycles[c];
        }
        makespan += span;

        let mut next: Vec<usize> = Vec::new();
        for &j in &completed {
            for &child in &children[j] {
                indegree[child] -= 1;
                if indegree[child] == 0 {
                    next.push(child);
                }
            }
        }
        next.sort_unstable();
        ready = next;
    }

    let mut aggregate = ExecStats::default();
    for s in &per_core {
        aggregate.merge(s);
    }
    let outputs = outputs
        .into_iter()
        .enumerate()
        .map(|(j, o)| o.unwrap_or_else(|| panic!("job {j} never became ready (dangling parent?)")))
        .collect();
    Ok(GraphRun {
        outputs,
        assignment,
        waves,
        idle_per_core,
        stats: ChipStats {
            per_core,
            jobs_per_core,
            makespan_cycles: makespan,
            aggregate,
        },
    })
}

/// Messages down a worker's submission channel.
enum WorkerMsg<J> {
    Run { graph: Arc<JobGraph<J>>, job: usize },
    Shutdown,
}

/// Lifetime meters of a [`LacService`], accumulated across every
/// submission (and explicit idle gaps) since construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceSession {
    /// Per-core busy stats summed over all completed submissions.
    pub per_core: Vec<ExecStats>,
    /// Jobs each core completed over the service lifetime.
    pub jobs_per_core: Vec<u64>,
    /// The service clock: submission makespans plus
    /// [`LacService::advance_idle`] gaps. Cores are considered powered for
    /// the whole clock, so static/uncore energy accrues over it.
    pub clock_cycles: u64,
    /// Completed graph submissions.
    pub graphs_run: u64,
}

impl ServiceSession {
    /// Jobs completed over the service lifetime.
    pub fn jobs_run(&self) -> u64 {
        self.jobs_per_core.iter().sum()
    }

    /// The session as a [`ChipStats`] whose makespan is the service clock —
    /// feed this to `lac_power::ChipEnergyModel` to price the whole
    /// service lifetime, dependency stalls and between-batch idle
    /// included.
    pub fn chip_stats(&self) -> ChipStats {
        let mut aggregate = ExecStats::default();
        for s in &self.per_core {
            aggregate.merge(s);
        }
        ChipStats {
            per_core: self.per_core.clone(),
            jobs_per_core: self.jobs_per_core.clone(),
            makespan_cycles: self.clock_cycles,
            aggregate,
        }
    }
}

/// A persistent multi-core submission service: `S` worker threads, each
/// owning one [`LacEngine`] shard for the service's whole lifetime, fed
/// through `mpsc` submission channels. Submissions run dependency-aware
/// [`JobGraph`]s; between submissions the shards stay warm (architectural
/// state and session meters persist), which is the point — a solver loop
/// submits round after round without paying pool setup/teardown.
///
/// Dropping the service shuts the workers down and joins them.
pub struct LacService<J: ChipJob + 'static> {
    cfg: ChipConfig,
    txs: Vec<Sender<WorkerMsg<J>>>,
    done_rx: Receiver<Done<J::Output>>,
    handles: Vec<JoinHandle<()>>,
    abort: Arc<AtomicBool>,
    session: ServiceSession,
}

impl<J: ChipJob + 'static> LacService<J> {
    /// Build the shards (per-core bandwidth split per
    /// [`ChipConfig::shard_config`]) and spawn one worker thread per core.
    pub fn new(cfg: ChipConfig) -> Self {
        assert!(cfg.cores >= 1, "a chip has at least one core");
        cfg.assert_budget_conserved();
        let abort = Arc::new(AtomicBool::new(false));
        let (done_tx, done_rx) = channel::<Done<J::Output>>();
        let mut txs = Vec::with_capacity(cfg.cores);
        let mut handles = Vec::with_capacity(cfg.cores);
        for core in 0..cfg.cores {
            let mut b = LacEngine::builder().config(cfg.shard_config(core));
            if let Some(words) = cfg.mem_words_per_core {
                b = b.mem_words(words);
            }
            let eng = b.build();
            let (tx, rx) = channel::<WorkerMsg<J>>();
            let done_tx = done_tx.clone();
            let abort = Arc::clone(&abort);
            handles.push(std::thread::spawn(move || {
                service_worker(core, eng, rx, done_tx, abort)
            }));
            txs.push(tx);
        }
        Self {
            cfg,
            txs,
            done_rx,
            handles,
            abort,
            session: ServiceSession {
                per_core: vec![ExecStats::default(); cfg.cores],
                jobs_per_core: vec![0; cfg.cores],
                clock_cycles: 0,
                graphs_run: 0,
            },
        }
    }

    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    pub fn num_cores(&self) -> usize {
        self.txs.len()
    }

    /// Run a job graph to completion under `sched` and fold its meters
    /// into the service session.
    ///
    /// On a simulation error the earliest *observed* failure's error (by
    /// core index, then bucket position; see
    /// [`LacChip::run_graph`](crate::chip::LacChip::run_graph) for the
    /// multi-failure caveat) is returned; peers stop at their next job
    /// boundary and no later wave is dispatched. Work that already
    /// simulated stays metered in the worker shards but a failed
    /// submission does not advance the service session — `Err` means "the
    /// graph did not complete".
    pub fn submit(
        &mut self,
        graph: JobGraph<J>,
        sched: Scheduler,
    ) -> Result<GraphRun<J::Output>, SimError> {
        self.abort.store(false, Ordering::Relaxed);
        let costs: Vec<u64> = graph.jobs.iter().map(|j| j.cost_hint()).collect();
        let graph = Arc::new(graph);
        let run = drive(
            &costs,
            &graph.parents,
            &graph.children,
            sched,
            self.txs.len(),
            |core, job| {
                self.txs[core]
                    .send(WorkerMsg::Run {
                        graph: Arc::clone(&graph),
                        job,
                    })
                    .expect("service worker hung up");
            },
            || self.done_rx.recv().expect("service worker hung up"),
        )?;
        for c in 0..self.session.per_core.len() {
            self.session.per_core[c].merge(&run.stats.per_core[c]);
            self.session.jobs_per_core[c] += run.stats.jobs_per_core[c];
        }
        self.session.clock_cycles += run.stats.makespan_cycles;
        self.session.graphs_run += 1;
        Ok(run)
    }

    /// Model a gap between batches: the chip sits powered but idle for
    /// `cycles`. Only the service clock advances, so static/uncore energy
    /// accrues while busy counters do not.
    pub fn advance_idle(&mut self, cycles: u64) {
        self.session.clock_cycles += cycles;
    }

    /// Lifetime meters across every submission since construction.
    pub fn session(&self) -> &ServiceSession {
        &self.session
    }
}

impl<J: ChipJob + 'static> Drop for LacService<J> {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn service_worker<J: ChipJob>(
    core: usize,
    mut eng: LacEngine,
    rx: Receiver<WorkerMsg<J>>,
    tx: Sender<Done<J::Output>>,
    abort: Arc<AtomicBool>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Run { graph, job } => {
                let outcome = run_one(&mut eng, &graph.jobs[job], &abort);
                if tx.send(Done { core, job, outcome }).is_err() {
                    break;
                }
            }
            WorkerMsg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{ChipConfig, LacChip, ProgramJob};
    use crate::config::LacConfig;
    use crate::isa::{ExtOp, ProgramBuilder, Source};

    /// One external load + one MAC + `extra` idle cycles, with a chosen
    /// scheduler cost.
    fn job(extra: usize, cost: u64) -> ProgramJob {
        let cfg = LacConfig::default();
        let mut b = ProgramBuilder::new(cfg.nr);
        let t = b.push_step();
        b.ext(t, ExtOp::Load { col: 0, addr: 0 });
        b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
        b.idle(cfg.fpu.pipeline_depth + extra);
        let mut j = ProgramJob::new(b.build());
        j.cost = cost;
        j
    }

    #[test]
    fn graph_construction_dedups_edges() {
        let mut g = JobGraph::new();
        let a = g.add(0u8);
        let b = g.add_after(1u8, &[a, a]);
        assert_eq!(g.parents_of(b).collect::<Vec<_>>(), vec![a]);
        assert_eq!(g.edges().count(), 1);
        assert_eq!(a.index(), 0);
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "earlier-submitted")]
    fn forward_edges_are_rejected() {
        let mut g = JobGraph::new();
        let a = g.add(0u8);
        let b = g.add(1u8);
        g.add_dep(b, a);
    }

    #[test]
    fn critical_path_is_longest_cost_chain() {
        // chain 0→1→2 (costs 1,2,3) plus lone 3 (cost 10).
        let costs = [1, 2, 3, 10];
        let children = vec![vec![1], vec![2], vec![], vec![]];
        assert_eq!(critical_paths(&costs, &children), vec![6, 5, 3, 10]);
    }

    #[test]
    fn plan_wave_is_work_conserving() {
        let costs = [5u64, 1, 1, 1, 1];
        for sched in [
            Scheduler::Fifo,
            Scheduler::LeastLoaded,
            Scheduler::CriticalPath,
        ] {
            let buckets = plan_wave(sched, &[0, 1, 2, 3, 4], &costs, &costs, 3);
            assert!(
                buckets.iter().all(|b| !b.is_empty()),
                "{sched:?} idled a core with ready jobs on hand"
            );
            // Fewer ready jobs than cores: nobody hoards.
            let buckets = plan_wave(sched, &[0, 1], &costs, &costs, 3);
            assert!(buckets.iter().all(|b| b.len() <= 1), "{sched:?} hoarded");
        }
    }

    #[test]
    fn critical_path_wave_order_prefers_long_chains() {
        // Priorities say job 2 unlocks the most downstream work.
        let costs = [1u64, 1, 1];
        let priority = [3u64, 5, 9];
        let buckets = plan_wave(Scheduler::CriticalPath, &[0, 1, 2], &costs, &priority, 1);
        assert_eq!(buckets[0], vec![2, 1, 0]);
    }

    #[test]
    fn diamond_runs_in_three_waves_with_idle_accounting() {
        // 0 → {1, 2} → 3 on two cores: the fan-out wave is parallel, the
        // fan-in waves leave core 1 idle.
        let mut g = JobGraph::new();
        let a = g.add(job(0, 1));
        let b = g.add_after(job(8, 1), &[a]);
        let c = g.add_after(job(4, 1), &[a]);
        let _d = g.add_after(job(0, 1), &[b, c]);
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let run = chip.run_graph(&g, Scheduler::Fifo).unwrap();
        assert_eq!(run.waves, 3);
        assert_eq!(run.outputs.len(), 4);
        // Makespan = source + max(fan-out) + sink; per-core busy + idle
        // reconstructs it exactly.
        let fan = run.outputs[b.index()]
            .cycles
            .max(run.outputs[c.index()].cycles);
        assert_eq!(
            run.stats.makespan_cycles,
            run.outputs[0].cycles + fan + run.outputs[3].cycles
        );
        for core in 0..2 {
            assert_eq!(
                run.stats.per_core[core].cycles + run.idle_per_core[core],
                run.stats.makespan_cycles,
                "core {core}: busy + idle must equal the makespan"
            );
        }
        assert!(run.idle_per_core.iter().sum::<u64>() > 0);
    }

    #[test]
    fn chain_serializes_regardless_of_core_count() {
        let mut g = JobGraph::new();
        let mut prev = g.add(job(0, 1));
        for i in 1..5 {
            prev = g.add_after(job(i, 1), &[prev]);
        }
        let mut chip = LacChip::new(ChipConfig::new(4, LacConfig::default()));
        let run = chip.run_graph(&g, Scheduler::CriticalPath).unwrap();
        assert_eq!(run.waves, 5);
        assert_eq!(
            run.stats.makespan_cycles,
            run.outputs.iter().map(|o| o.cycles).sum::<u64>(),
            "a chain cannot overlap"
        );
    }

    #[test]
    fn service_keeps_session_across_submissions_and_idle() {
        let flat = || -> JobGraph<ProgramJob> { (0..6).map(|i| job(i, 1 + i as u64)).collect() };
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let first = svc.submit(flat(), Scheduler::LeastLoaded).unwrap();
        let second = svc.submit(flat(), Scheduler::LeastLoaded).unwrap();
        assert_eq!(first.outputs, second.outputs, "warm shards change nothing");
        assert_eq!(svc.session().graphs_run, 2);
        assert_eq!(svc.session().jobs_run(), 12);
        assert_eq!(
            svc.session().clock_cycles,
            first.stats.makespan_cycles + second.stats.makespan_cycles
        );
        svc.advance_idle(1_000);
        let stats = svc.session().chip_stats();
        assert_eq!(
            stats.makespan_cycles,
            first.stats.makespan_cycles + second.stats.makespan_cycles + 1_000
        );
        // Busy counters did not move with the idle clock.
        assert_eq!(
            stats.aggregate.cycles,
            first.stats.aggregate.cycles + second.stats.aggregate.cycles
        );
    }

    #[test]
    fn service_submissions_match_chip_run_graph() {
        let build = || -> JobGraph<ProgramJob> {
            let mut g = JobGraph::new();
            let a = g.add(job(0, 3));
            let b = g.add_after(job(2, 2), &[a]);
            g.add_after(job(1, 1), &[a, b]);
            g
        };
        for sched in [
            Scheduler::Fifo,
            Scheduler::LeastLoaded,
            Scheduler::CriticalPath,
        ] {
            let mut svc: LacService<ProgramJob> =
                LacService::new(ChipConfig::new(3, LacConfig::default()));
            let via_service = svc.submit(build(), sched).unwrap();
            let mut chip = LacChip::new(ChipConfig::new(3, LacConfig::default()));
            let via_chip = chip.run_graph(&build(), sched).unwrap();
            assert_eq!(via_service.outputs, via_chip.outputs);
            assert_eq!(via_service.assignment, via_chip.assignment);
            assert_eq!(via_service.stats, via_chip.stats);
        }
    }

    /// A job whose `run_on` panics (e.g. an operand assert) — must not
    /// deadlock the coordinator's wave collection.
    struct PanickyJob;

    impl ChipJob for PanickyJob {
        type Output = ExecStats;

        fn run_on(&self, _eng: &mut LacEngine) -> Result<ExecStats, crate::error::SimError> {
            panic!("operand shape rejected");
        }
    }

    #[test]
    fn panicking_job_propagates_instead_of_deadlocking() {
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let graph: JobGraph<PanickyJob> = [PanickyJob, PanickyJob].into_iter().collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chip.run_graph(&graph, Scheduler::Fifo)
        }))
        .expect_err("the job's panic must surface");
        let msg = caught.downcast_ref::<String>().expect("panic message");
        assert!(
            msg.contains("operand shape rejected"),
            "panic message lost: {msg}"
        );
    }

    #[test]
    fn service_survives_a_panicking_job() {
        // Mixed graph: the panicking job is caught and re-raised by the
        // coordinator after the wave drains, so no worker dies and the
        // service keeps serving.
        struct MaybePanic(bool, ProgramJob);
        impl ChipJob for MaybePanic {
            type Output = ExecStats;
            fn run_on(&self, eng: &mut LacEngine) -> Result<ExecStats, crate::error::SimError> {
                assert!(!self.0, "bad operand");
                self.1.run_on(eng)
            }
        }
        let mut svc: LacService<MaybePanic> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let bad: JobGraph<MaybePanic> = vec![
            MaybePanic(false, job(0, 1)),
            MaybePanic(true, job(0, 1)),
            MaybePanic(false, job(0, 1)),
        ]
        .into_iter()
        .collect();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            svc.submit(bad, Scheduler::Fifo)
        }))
        .expect_err("panic surfaces through submit");
        let ok: JobGraph<MaybePanic> = (0..4).map(|i| MaybePanic(false, job(i, 1))).collect();
        let run = svc.submit(ok, Scheduler::LeastLoaded).unwrap();
        assert_eq!(run.outputs.len(), 4, "workers outlive a job panic");
    }

    #[test]
    fn service_error_leaves_it_usable() {
        let bad = {
            let mut b = ProgramBuilder::new(LacConfig::default().nr);
            let t = b.push_step();
            b.pe_mut(t, 0, 0).mac = Some((Source::RowBus, Source::Const(1.0)));
            ProgramJob::new(b.build())
        };
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let mut g = JobGraph::new();
        let a = g.add(job(0, 1));
        g.add_after(bad, &[a]);
        let err = svc.submit(g, Scheduler::Fifo).unwrap_err();
        assert_eq!(err.cycle, 0);
        assert_eq!(svc.session().graphs_run, 0, "failed graphs do not count");
        // The service recovers: the next submission completes.
        let ok: JobGraph<ProgramJob> = (0..4).map(|i| job(i, 1)).collect();
        let run = svc.submit(ok, Scheduler::CriticalPath).unwrap();
        assert_eq!(run.outputs.len(), 4);
        assert_eq!(svc.session().graphs_run, 1);
    }
}
