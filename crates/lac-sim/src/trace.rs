//! Per-run event log and Chrome-trace export: the observability door of
//! the cluster layer.
//!
//! Every cluster run (and every open-loop round built on top of one)
//! records what happened on the *simulated* clock as a flat
//! [`EventLog`] of [`TraceEvent`]s: job executions (with core placement
//! and discard marks), inter-chip transfers, fault injections, requeues
//! and idle fast-forwards. The log is part of the deterministic result —
//! it is reconstructed purely from the schedule (the wave plan, or the
//! event core's heap order under [`crate::event::SimMode::Event`]), the
//! per-job busy cycles and the transfer model, never from host timing,
//! so reruns produce bit-identical logs.
//!
//! Under `SimMode::Event`, spans genuinely **overlap**: a transfer's
//! `[start, end)` interval can interleave with job spans on both
//! endpoint chips, and job spans on different cores no longer align to
//! shared wave boundaries. Consumers must not assume spans on one
//! timeline are disjoint; the Chrome-trace export below handles overlap
//! natively (each span is its own `X` event), and the per-component
//! accounting invariant becomes `busy + idle + stall = makespan` per
//! core (property-tested in `tests/event_props.rs`).
//!
//! [`EventLog::to_chrome_trace`] renders the log in Chrome trace-format
//! JSON (the `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)
//! "JSON array with metadata" flavor): one process lane per chip, one
//! thread lane per core, `X` complete events for job and transfer spans,
//! `i` instant events for faults and requeues. Timestamps map one
//! simulated cycle to one microsecond, the unit the viewers display.
//!
//! Timestamps are relative to the start of the run that produced the
//! log; `lac-traffic`'s open-loop driver shifts each round's log by the
//! round's start clock ([`EventLog::shift`]) before merging, so a whole
//! open-loop replay exports as one timeline on the backend's session
//! clock.

/// One observable event of a cluster run, on the simulated clock.
///
/// All ticks are in simulated cycles, relative to the start of the run
/// that recorded the event (see [`EventLog::shift`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// One job execution on one core: dispatch to completion.
    Job {
        /// Job index in the run's submission order.
        job: usize,
        /// The tenant the job was admitted through (0 for the
        /// single-tenant doors).
        tenant: usize,
        /// Chip that ran the job.
        chip: usize,
        /// Core within the chip.
        core: usize,
        /// Simulated tick the core started the job.
        start: u64,
        /// Simulated tick the job retired.
        end: u64,
        /// True when a fault revoked this execution: the work really ran
        /// (and stays metered — the energy was burned) but its output
        /// was discarded and the job was requeued onto a surviving chip.
        discarded: bool,
    },
    /// One inter-chip payload movement (a cut dependency edge, or a
    /// re-transfer of a completed parent's output to a requeued child).
    Transfer {
        /// The producing job.
        parent: usize,
        /// The consuming job.
        child: usize,
        /// Chip the payload leaves.
        from_chip: usize,
        /// Chip the payload lands on.
        to_chip: usize,
        /// Payload size, words.
        words: u64,
        /// Simulated tick the transfer started.
        start: u64,
        /// Simulated tick the payload is available on `to_chip`.
        end: u64,
    },
    /// A chip died: a scheduled [`crate::fault::FaultPlan`] kill was
    /// applied at a wave boundary.
    Fault {
        /// The chip that died.
        chip: usize,
        /// Simulated tick the fault was applied (the first wave boundary
        /// at or after the scheduled kill tick).
        tick: u64,
    },
    /// One job reassigned off a dead chip onto a survivor.
    Requeue {
        /// The reassigned job.
        job: usize,
        /// The chip that died.
        from_chip: usize,
        /// The surviving chip now responsible for the job.
        to_chip: usize,
        /// Simulated tick of the reassignment (the fault's tick).
        tick: u64,
    },
    /// The simulated clock fast-forwarded with every core idle — a
    /// transfer stall inside a run, or the open-loop driver skipping to
    /// the next arrival.
    IdleFastForward {
        /// Tick the idle gap started.
        start: u64,
        /// Tick work resumed.
        end: u64,
    },
}

impl TraceEvent {
    /// Add `base` to every timestamp of the event (see
    /// [`EventLog::shift`]).
    fn shifted(self, base: u64) -> TraceEvent {
        match self {
            TraceEvent::Job {
                job,
                tenant,
                chip,
                core,
                start,
                end,
                discarded,
            } => TraceEvent::Job {
                job,
                tenant,
                chip,
                core,
                start: start + base,
                end: end + base,
                discarded,
            },
            TraceEvent::Transfer {
                parent,
                child,
                from_chip,
                to_chip,
                words,
                start,
                end,
            } => TraceEvent::Transfer {
                parent,
                child,
                from_chip,
                to_chip,
                words,
                start: start + base,
                end: end + base,
            },
            TraceEvent::Fault { chip, tick } => TraceEvent::Fault {
                chip,
                tick: tick + base,
            },
            TraceEvent::Requeue {
                job,
                from_chip,
                to_chip,
                tick,
            } => TraceEvent::Requeue {
                job,
                from_chip,
                to_chip,
                tick: tick + base,
            },
            TraceEvent::IdleFastForward { start, end } => TraceEvent::IdleFastForward {
                start: start + base,
                end: end + base,
            },
        }
    }
}

/// The ordered event log of one cluster run (or one merged open-loop
/// replay). Events are recorded in simulated-clock order as the
/// coordinator emits them; the log is a pure function of the schedule,
/// so reruns are bit-identical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<TraceEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Mutable view for the cluster coordinator: a fault revoking the
    /// in-flight wave flips the wave's already-recorded job events to
    /// `discarded` in place.
    pub(crate) fn events_mut(&mut self) -> &mut [TraceEvent] {
        &mut self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Shift every timestamp by `base` cycles — how the open-loop driver
    /// rebases a round's run-relative log onto the backend's session
    /// clock before merging.
    pub fn shift(&mut self, base: u64) {
        for e in self.events.iter_mut() {
            *e = e.shifted(base);
        }
    }

    /// Append every event of `other` (already shifted, if needed).
    pub fn extend(&mut self, other: EventLog) {
        self.events.extend(other.events);
    }

    /// Events matching a predicate — convenience for tests and tools.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Render the log as Chrome trace-format JSON (the object-with-
    /// `traceEvents` flavor), loadable in `chrome://tracing` and
    /// [Perfetto](https://ui.perfetto.dev).
    ///
    /// Mapping: `pid` = chip, `tid` = core (transfers use a per-link
    /// lane `1000 + to_chip`; faults and requeues land on lane 0), `ts`
    /// / `dur` in simulated cycles (displayed as microseconds). Job and
    /// transfer spans are `"ph":"X"` complete events; faults and
    /// requeues are `"ph":"i"` process-scoped instants; idle
    /// fast-forwards are spans on a dedicated `idle` lane of chip 0.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let emit = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        for e in &self.events {
            let json = match *e {
                TraceEvent::Job {
                    job,
                    tenant,
                    chip,
                    core,
                    start,
                    end,
                    discarded,
                } => format!(
                    "{{\"name\":\"job {job}{}\",\"cat\":\"job\",\"ph\":\"X\",\
                     \"ts\":{start},\"dur\":{},\"pid\":{chip},\"tid\":{core},\
                     \"args\":{{\"job\":{job},\"tenant\":{tenant},\"discarded\":{discarded}}}}}",
                    if discarded { " (discarded)" } else { "" },
                    end - start,
                ),
                TraceEvent::Transfer {
                    parent,
                    child,
                    from_chip,
                    to_chip,
                    words,
                    start,
                    end,
                } => format!(
                    "{{\"name\":\"transfer {parent}->{child}\",\"cat\":\"transfer\",\
                     \"ph\":\"X\",\"ts\":{start},\"dur\":{},\"pid\":{from_chip},\
                     \"tid\":{},\"args\":{{\"parent\":{parent},\"child\":{child},\
                     \"to_chip\":{to_chip},\"words\":{words}}}}}",
                    end - start,
                    1000 + to_chip,
                ),
                TraceEvent::Fault { chip, tick } => format!(
                    "{{\"name\":\"fault\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\
                     \"ts\":{tick},\"pid\":{chip},\"tid\":0,\
                     \"args\":{{\"chip\":{chip}}}}}"
                ),
                TraceEvent::Requeue {
                    job,
                    from_chip,
                    to_chip,
                    tick,
                } => format!(
                    "{{\"name\":\"requeue job {job}\",\"cat\":\"requeue\",\"ph\":\"i\",\
                     \"s\":\"p\",\"ts\":{tick},\"pid\":{to_chip},\"tid\":0,\
                     \"args\":{{\"job\":{job},\"from_chip\":{from_chip}}}}}"
                ),
                TraceEvent::IdleFastForward { start, end } => format!(
                    "{{\"name\":\"idle\",\"cat\":\"idle\",\"ph\":\"X\",\
                     \"ts\":{start},\"dur\":{},\"pid\":0,\"tid\":999}}",
                    end - start,
                ),
            };
            emit(json, &mut out, &mut first);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_moves_every_timestamp() {
        let mut log = EventLog::new();
        log.push(TraceEvent::Job {
            job: 0,
            tenant: 0,
            chip: 1,
            core: 0,
            start: 5,
            end: 9,
            discarded: false,
        });
        log.push(TraceEvent::Fault { chip: 1, tick: 9 });
        log.push(TraceEvent::IdleFastForward { start: 9, end: 20 });
        log.shift(100);
        match log.events()[0] {
            TraceEvent::Job { start, end, .. } => {
                assert_eq!((start, end), (105, 109));
            }
            _ => panic!("wrong event"),
        }
        match log.events()[1] {
            TraceEvent::Fault { tick, .. } => assert_eq!(tick, 109),
            _ => panic!("wrong event"),
        }
    }

    #[test]
    fn chrome_trace_is_wellformed_enough() {
        let mut log = EventLog::new();
        log.push(TraceEvent::Transfer {
            parent: 1,
            child: 2,
            from_chip: 0,
            to_chip: 1,
            words: 8,
            start: 10,
            end: 212,
        });
        log.push(TraceEvent::Requeue {
            job: 2,
            from_chip: 1,
            to_chip: 0,
            tick: 300,
        });
        let json = log.to_chrome_trace();
        assert!(json.starts_with('{') && json.ends_with("]}"));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"cat\":\"transfer\""));
        assert!(json.contains("\"cat\":\"requeue\""));
        // Balanced braces — the cheap structural check; the real parse
        // check runs through lac-bench's Json::parse in tests/fault_props.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
