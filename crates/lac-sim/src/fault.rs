//! Deterministic fault injection for the cluster layer: scheduled chip
//! kills, applied by the cluster coordinator like any other event.
//!
//! A [`FaultPlan`] is a set of "kill chip *k* at tick *t*" events on the
//! cluster's **session clock** (the same absolute clock
//! [`crate::cluster::ClusterSession::clock_cycles`] meters and the
//! open-loop traffic layer schedules arrivals on). Under the default
//! wave coordinator the simulated clock only moves at wave boundaries
//! and fast-forwards, so a kill is applied at the first wave boundary at
//! or after its tick; under [`crate::event::SimMode::Event`] the kill is
//! just another heap event and fires at its **exact** tick (faults order
//! before transfer arrivals and job completions on the same tick, so the
//! revocation set stays conservative). Either way fault handling is
//! exactly as deterministic as the rest of the stack: the same plan
//! against the same workload produces bit-identical runs, requeues and
//! event logs.
//!
//! What a kill means (the fault model, property-tested in
//! `tests/fault_props.rs`):
//!
//! * the chip is marked dead for the rest of the cluster's life — no
//!   future wave plans on it, across rounds;
//! * jobs **in flight on the dying chip** in the wave the kill tick fell
//!   into are *discarded*: their outputs are revoked and their children
//!   are not released, but the simulated work stays metered in the
//!   per-core and per-tenant busy stats (the energy really was burned —
//!   which is what keeps energy attribution conserved under failure);
//! * every uncompleted job placed on the dead chip is **requeued** onto
//!   the surviving chips (least-loaded-first over remaining cost hints,
//!   ties to the lower chip index, jobs in id order);
//! * outputs of jobs that *completed before the kill* are durable — the
//!   coordinator collects results as waves retire (a cluster-level
//!   results store), so completed work is never re-run. A requeued job
//!   whose completed parent sits on a different chip pays one fresh
//!   modeled transfer to move that parent's output to its new home;
//! * the dead chip keeps burning static power for the rest of the run
//!   (its `makespan_cycles` stays the cluster makespan) — the
//!   conservative choice for energy accounting.
//!
//! Jobs must therefore be **re-runnable**: executing a
//! [`crate::chip::ChipJob`] twice (the discarded attempt plus the
//! requeued one) must produce the same output bits as executing it once.
//! Every job in this stack already satisfies that — outputs are
//! placement-independent by the determinism contract — and the headline
//! property holds: *any single-chip loss changes the makespan but never
//! the output bits.*
//!
//! Killing every chip of a cluster is an error
//! ([`crate::error::HazardKind::AllChipsDead`]): there is no survivor to
//! requeue onto.

/// One scheduled chip kill.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Session-clock tick (absolute simulated cycles since cluster
    /// construction) at which the chip dies. The kill is applied at the
    /// first wave boundary at or after this tick.
    pub tick: u64,
    /// The chip to kill.
    pub chip: usize,
}

/// A deterministic fault-injection schedule: chip kills on the cluster
/// session clock, applied by the coordinator at wave boundaries.
///
/// Install a plan with [`crate::cluster::LacCluster::inject_faults`] (or
/// the [`crate::cluster::LacCluster::with_fault_plan`] builder). Kills
/// whose tick is already in the past fire at the next wave boundary; a
/// kill on an already-dead chip is a no-op.
///
/// ```
/// use lac_sim::FaultPlan;
///
/// let plan = FaultPlan::new().kill(1, 5_000).kill(0, 20_000);
/// assert_eq!(plan.kills().len(), 2);
/// assert_eq!(plan.kills()[0].chip, 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    kills: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule chip `chip` to die at session-clock tick `tick`.
    /// Builder-style; kills are kept sorted by `(tick, chip)` so
    /// application order is deterministic regardless of insertion order.
    pub fn kill(mut self, chip: usize, tick: u64) -> Self {
        self.kills.push(FaultEvent { tick, chip });
        self.kills.sort_unstable();
        self
    }

    /// The scheduled kills, sorted by `(tick, chip)`.
    pub fn kills(&self) -> &[FaultEvent] {
        &self.kills
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }

    /// Merge another plan's kills into this one (used by
    /// [`crate::cluster::LacCluster::inject_faults`] so repeated
    /// injections accumulate).
    pub fn merge(&mut self, other: FaultPlan) {
        self.kills.extend(other.kills);
        self.kills.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kills_sort_by_tick_then_chip() {
        let plan = FaultPlan::new().kill(3, 500).kill(1, 100).kill(0, 500);
        let order: Vec<(u64, usize)> = plan.kills().iter().map(|k| (k.tick, k.chip)).collect();
        assert_eq!(order, vec![(100, 1), (500, 0), (500, 3)]);
    }

    #[test]
    fn merge_accumulates_and_resorts() {
        let mut a = FaultPlan::new().kill(2, 900);
        a.merge(FaultPlan::new().kill(1, 10));
        assert_eq!(a.kills()[0], FaultEvent { tick: 10, chip: 1 });
        assert_eq!(a.kills().len(), 2);
        assert!(!a.is_empty());
    }
}
