#![warn(missing_docs)]
//! Cycle-accurate simulator of the Linear Algebra Core (LAC).
//!
//! The LAC (Figure 1.1 / 3.1 of the dissertation) is an `nr × nr` mesh of
//! Processing Elements. Each PE owns
//!
//! * a pipelined FMAC unit with a local accumulator (from [`lac_fpu`]),
//! * a larger **single-ported** SRAM for its share of the resident `A` block,
//! * a smaller **dual-ported** SRAM for the replicated `B` panel,
//! * a tiny register file,
//!
//! and talks to its row and column over **broadcast buses** (one word per bus
//! per cycle). Column buses are multiplexed with external-memory traffic.
//! Control is fully static — "each PE implicitly knows when and where to
//! communicate" (§3.2.3) — which we model by letting the kernel generators in
//! `lac-kernels` emit a [`Program`]: one (possibly empty) micro-instruction
//! per PE per cycle. The simulator executes the program, *enforcing* the
//! structural limits of the hardware (bus writers, SRAM ports, MAC issue
//! width, accumulator read-after-write) and producing functional results plus
//! the event counts ([`ExecStats`]) the power model converts to energy.
//!
//! Any violation is a hard [`SimError`] carrying the offending cycle — a
//! mis-scheduled kernel cannot silently produce a wrong cycle count.

pub mod chip;
pub mod cluster;
pub mod compile;
pub mod config;
pub mod core;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod isa;
pub mod lap;
pub mod service;
pub mod stats;
pub mod trace;

pub use crate::core::{ExternalMem, Lac};
pub use chip::{ChipConfig, ChipJob, ChipStats, LacChip, ProgramJob, Scheduler};
pub use cluster::{
    ClusterConfig, ClusterRound, ClusterRun, ClusterSession, ClusterStats, LacCluster, Partition,
    Partitioner, Transfer,
};
pub use compile::{compile, CacheStats, CompiledProgram, FallbackReason, ProgramCache};
pub use config::{ExecBackend, LacConfig};
pub use dynamic::{
    run_dynamic, Continuation, ContinuationBackend, Continue, DynamicError, DynamicGraph,
    DynamicOutcome, DynamicRun,
};
pub use engine::{LacEngine, LacEngineBuilder};
pub use error::SimError;
pub use event::SimMode;
pub use fault::{FaultEvent, FaultPlan};
pub use isa::{CmpUpdate, ExtOp, PeInstr, Program, ProgramBuilder, Source, Step};
pub use lap::{Lap, LapRunSummary};
pub use service::{
    plan_wave, plan_wave_tenanted, plan_wave_tenanted_slo, GraphCompletion, GraphRun, GraphTicket,
    JobGraph, JobId, LacService, Rejected, ServiceRound, ServiceSession, TenantConfig, TenantId,
    TenantSession,
};
pub use stats::ExecStats;
pub use trace::{EventLog, TraceEvent};
