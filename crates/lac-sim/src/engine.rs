//! Session-style entry point: one [`LacEngine`] owns a core and its
//! external-memory bank and runs workloads back-to-back.
//!
//! The dissertation evaluates one Linear Algebra Core across a dozen
//! kernels and dozens of design points; production use (e.g. the repeated
//! Cholesky factorizations inside an interior-point solver) queues many
//! workloads against the *same* core. `LacEngine` models that session: it
//! is built once from a [`LacConfig`], keeps the architectural state of the
//! core alive between runs, meters every executed program into a session
//! [`ExecStats`] accumulator, and exposes the derived metrics (cycles,
//! flops, utilization, bandwidth) the paper reports. Energy comes from
//! feeding the accumulated stats to `lac-power` (see that crate's
//! `SessionEnergy` extension trait).
//!
//! Work is metered into the session through three doors:
//!
//! * [`LacEngine::run_program`] — execute a program against the
//!   engine-owned memory bank (staged with [`LacEngine::load_image`]);
//! * [`LacEngine::run_staged`] — execute a program against a
//!   caller-staged private bank;
//! * [`LacEngine::absorb`] — fold driver-measured [`ExecStats`] into the
//!   session. This is the door the `Workload` implementations in
//!   `lac-kernels` use: their blocked drivers run many programs against
//!   re-packed operand images (via [`LacEngine::parts`] /
//!   [`LacEngine::core_mut`]) and absorb the summed stats once per
//!   workload.
//!
//! All three meter into the session accumulator, so a session's numbers
//! are complete no matter how its workloads stage memory.

use crate::compile::ProgramCache;
use crate::config::LacConfig;
use crate::core::{ExternalMem, Lac};
use crate::error::SimError;
use crate::isa::Program;
use crate::stats::ExecStats;

/// Default engine-owned memory bank size in words (replaced wholesale by
/// [`LacEngine::load_image`], so this only bounds image-free programs).
const DEFAULT_MEM_WORDS: usize = 1 << 16;

/// Builder for [`LacEngine`] — `LacEngine::builder().config(cfg).build()`.
#[derive(Clone, Debug, Default)]
pub struct LacEngineBuilder {
    cfg: LacConfig,
    mem_words: Option<usize>,
    program_cache: Option<ProgramCache>,
}

impl LacEngineBuilder {
    /// Core configuration (mesh size, local stores, FPU, extensions).
    pub fn config(mut self, cfg: LacConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Initial size of the engine-owned external memory bank, in words.
    pub fn mem_words(mut self, words: usize) -> Self {
        self.mem_words = Some(words);
        self
    }

    /// Share an external compile cache instead of a per-core one, so
    /// sibling cores (a chip's shards, a service's workers, a whole
    /// cluster) compile each distinct program once. Cache entries are
    /// keyed by configuration fingerprint as well, so sharing across
    /// heterogeneous cores is safe.
    pub fn program_cache(mut self, cache: ProgramCache) -> Self {
        self.program_cache = Some(cache);
        self
    }

    /// Construct the engine: a fresh core plus a zeroed memory bank.
    pub fn build(self) -> LacEngine {
        let mut lac = Lac::new(self.cfg);
        if let Some(cache) = self.program_cache {
            lac.set_program_cache(cache);
        }
        LacEngine {
            lac,
            mem: ExternalMem::new(self.mem_words.unwrap_or(DEFAULT_MEM_WORDS)),
            session: ExecStats::default(),
            programs_run: 0,
            workloads_run: 0,
        }
    }
}

/// A simulation session: one core plus its external-memory bank, with
/// stats accumulated across every program run through it.
///
/// ```
/// use lac_sim::{ExtOp, LacConfig, LacEngine, ProgramBuilder, Source};
///
/// let cfg = LacConfig::default();
/// let mut eng = LacEngine::builder().config(cfg).mem_words(16).build();
///
/// // A two-cycle microprogram: load a word onto PE (0,0)'s register,
/// // then square it into the accumulator; idle out the FMAC pipeline.
/// let mut b = ProgramBuilder::new(cfg.nr);
/// let t = b.push_step();
/// b.ext(t, ExtOp::Load { col: 0, addr: 0 });
/// b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
/// let t = b.push_step();
/// b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
/// b.idle(cfg.fpu.pipeline_depth);
/// let prog = b.build();
///
/// eng.load_image(vec![3.0; 16]);
/// let stats = eng.run_program(&prog).expect("hazard-free schedule");
/// assert_eq!(stats.mac_ops, 1);
///
/// // Sessions meter: a second run accumulates into the same counters.
/// eng.run_program(&prog).unwrap();
/// assert_eq!(eng.session_stats().mac_ops, 2);
/// assert_eq!(eng.programs_run(), 2);
/// assert_eq!(eng.flops(), 4);
/// ```
pub struct LacEngine {
    lac: Lac,
    mem: ExternalMem,
    session: ExecStats,
    programs_run: u64,
    workloads_run: u64,
}

impl LacEngine {
    /// Start configuring an engine.
    pub fn builder() -> LacEngineBuilder {
        LacEngineBuilder::default()
    }

    /// Shorthand for `builder().config(cfg).build()`.
    pub fn new(cfg: LacConfig) -> Self {
        Self::builder().config(cfg).build()
    }

    /// The core configuration the engine was built with.
    pub fn config(&self) -> &LacConfig {
        self.lac.config()
    }

    /// The simulated core (architectural state persists across runs).
    pub fn core(&self) -> &Lac {
        &self.lac
    }

    /// Mutable core access (kernel drivers run programs directly).
    pub fn core_mut(&mut self) -> &mut Lac {
        &mut self.lac
    }

    /// The engine-owned external memory bank.
    pub fn mem(&self) -> &ExternalMem {
        &self.mem
    }

    /// Mutable access to the engine-owned bank (operand staging).
    pub fn mem_mut(&mut self) -> &mut ExternalMem {
        &mut self.mem
    }

    /// Split borrow: core and memory bank at once (kernel drivers need
    /// both simultaneously).
    pub fn parts(&mut self) -> (&mut Lac, &mut ExternalMem) {
        (&mut self.lac, &mut self.mem)
    }

    /// Replace the engine-owned memory bank with a packed operand image.
    pub fn load_image(&mut self, image: Vec<f64>) {
        self.mem = ExternalMem::from_vec(image);
    }

    /// Execute a program against the engine-owned memory bank. Returns the
    /// per-run stats delta; the session accumulator is updated too.
    pub fn run_program(&mut self, prog: &Program) -> Result<ExecStats, SimError> {
        let stats = self.lac.run(prog, &mut self.mem)?;
        self.session.merge(&stats);
        self.programs_run += 1;
        Ok(stats)
    }

    /// Execute a program against a caller-staged memory bank (blocked
    /// drivers re-pack operands between phases). Metered like
    /// [`LacEngine::run_program`].
    pub fn run_staged(
        &mut self,
        prog: &Program,
        mem: &mut ExternalMem,
    ) -> Result<ExecStats, SimError> {
        let stats = self.lac.run(prog, mem)?;
        self.session.merge(&stats);
        self.programs_run += 1;
        Ok(stats)
    }

    /// Fold driver-measured stats into the session — the door used by
    /// `Workload` implementations, whose drivers run programs directly on
    /// the core (via [`LacEngine::parts`] / [`LacEngine::core_mut`]) and
    /// report the summed stats. Does not bump [`LacEngine::programs_run`],
    /// which counts only programs executed by the engine itself.
    pub fn absorb(&mut self, stats: &ExecStats) {
        self.session.merge(stats);
    }

    /// Called by `Workload::run` implementations when a workload completes.
    pub fn note_workload(&mut self) {
        self.workloads_run += 1;
    }

    /// Stats accumulated across every run since construction (or the last
    /// [`LacEngine::reset_session`]).
    pub fn session_stats(&self) -> &ExecStats {
        &self.session
    }

    /// Programs executed through the engine's own run doors
    /// ([`LacEngine::run_program`] / [`LacEngine::run_staged`]) this
    /// session. Stats folded in via [`LacEngine::absorb`] are not
    /// program-counted — use [`LacEngine::workloads_run`] for those.
    pub fn programs_run(&self) -> u64 {
        self.programs_run
    }

    /// Workloads completed this session.
    pub fn workloads_run(&self) -> u64 {
        self.workloads_run
    }

    /// Zero the session accumulator (core state is kept — sessions meter,
    /// they do not reset the machine).
    pub fn reset_session(&mut self) {
        self.session = ExecStats::default();
        self.programs_run = 0;
        self.workloads_run = 0;
    }

    // ---- derived session metrics (the paper's reporting axes) ----------

    /// Total simulated cycles this session.
    pub fn cycles(&self) -> u64 {
        self.session.cycles
    }

    /// Total floating-point operations this session.
    pub fn flops(&self) -> u64 {
        self.session.flops()
    }

    /// MAC-slot utilization against the core's peak over the session.
    pub fn utilization(&self) -> f64 {
        self.session.utilization(self.lac.config().nr)
    }

    /// Average external words moved per cycle over the session.
    pub fn ext_words_per_cycle(&self) -> f64 {
        self.session.ext_words_per_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ExtOp, ProgramBuilder, Source};

    fn tiny_program(nr: usize) -> Program {
        let mut b = ProgramBuilder::new(nr);
        let t = b.push_step();
        b.ext(t, ExtOp::Load { col: 0, addr: 0 });
        b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
        b.idle(LacConfig::default().fpu.pipeline_depth);
        b.build()
    }

    #[test]
    fn builder_roundtrip() {
        let cfg = LacConfig {
            nr: 4,
            ..Default::default()
        };
        let eng = LacEngine::builder().config(cfg).mem_words(32).build();
        assert_eq!(eng.config().nr, 4);
        assert_eq!(eng.mem().len(), 32);
        assert_eq!(eng.cycles(), 0);
    }

    #[test]
    fn session_accumulates_across_runs() {
        let mut eng = LacEngine::builder().mem_words(8).build();
        let prog = tiny_program(4);
        let first = eng.run_program(&prog).unwrap();
        let second = eng.run_program(&prog).unwrap();
        assert_eq!(first.cycles, second.cycles);
        assert_eq!(eng.cycles(), first.cycles + second.cycles);
        assert_eq!(eng.session_stats().mac_ops, 2);
        assert_eq!(eng.programs_run(), 2);
        assert_eq!(eng.flops(), 4);
    }

    #[test]
    fn staged_runs_are_metered_too() {
        let mut eng = LacEngine::builder().mem_words(8).build();
        let prog = tiny_program(4);
        let mut private = ExternalMem::new(8);
        eng.run_staged(&prog, &mut private).unwrap();
        assert_eq!(eng.programs_run(), 1);
        assert!(eng.cycles() > 0);
    }

    #[test]
    fn reset_session_zeroes_meters_only() {
        let mut eng = LacEngine::builder().mem_words(8).build();
        let prog = tiny_program(4);
        eng.run_program(&prog).unwrap();
        eng.note_workload();
        assert_eq!(eng.workloads_run(), 1);
        eng.reset_session();
        assert_eq!(eng.cycles(), 0);
        assert_eq!(eng.programs_run(), 0);
        assert_eq!(eng.workloads_run(), 0);
        // Core lifetime stats are untouched — the machine was not reset.
        assert!(eng.core().stats().cycles > 0);
    }

    #[test]
    fn load_image_replaces_bank() {
        let mut eng = LacEngine::builder().mem_words(4).build();
        eng.load_image(vec![1.0, 2.0, 3.0]);
        assert_eq!(eng.mem().len(), 3);
        assert_eq!(eng.mem().read(1), 2.0);
    }
}
