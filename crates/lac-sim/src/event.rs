//! Discrete-event simulation core: the event-driven alternative to the
//! lock-step wave coordinator, selected per run by [`SimMode`].
//!
//! The wave coordinators ([`crate::service`], [`crate::cluster`]) advance
//! one *wave* at a time: every chip plans its ready set, the shared clock
//! jumps by the slowest bucket anywhere, and only then do children — and
//! cut-edge transfers — move. That barrier is what makes a cross-chip
//! transfer cost an entire wave of latency and what forces all-idle gaps
//! to be fast-forwarded as [`crate::cluster::ClusterStats::transfer_stall_cycles`].
//!
//! This module replaces the barrier with a classic discrete-event loop
//! over *components with independent clocks*:
//!
//! * every **core** is a component that is busy exactly while a job runs
//!   on it and is eligible for a new dispatch the tick the job retires;
//! * every directed **inter-chip link** is a component whose busy
//!   intervals are the serialization windows of the transfers it carries
//!   — two transfers over the same link queue behind each other
//!   (per-hop link contention), while transfers on *different* links,
//!   and compute on both endpoint chips, proceed concurrently;
//! * every **chip** is a component whose only events are its scheduled
//!   [`crate::fault::FaultPlan`] kills.
//!
//! Pending events live in one min-heap ordered by the total
//! `(tick, component id, sequence number)` key. Component ids order
//! chips before links before cores, so a fault due at tick `t` revokes
//! a job completing at the same tick — exactly the wave coordinator's
//! conservative revocation — and the sequence number (assigned at push,
//! which only happens at deterministic points) breaks all remaining
//! ties. Host thread interleavings never reach the heap: worker results
//! are buffered per dispatch batch and folded in job-id order, so event
//! runs are bit-identical across reruns, core counts and machines, like
//! everything else in this stack.
//!
//! Idle fast-forward falls out of the heap for free: when no core is
//! busy, the loop pops the next event — a transfer arrival or a fault
//! tick — and jumps the clock there, accounting the gap as a stall.
//!
//! **Equivalence contract** (property-tested in `tests/event_props.rs`):
//! outputs are bit-identical between [`SimMode::Wave`] and
//! [`SimMode::Event`] on every graph — job outputs are
//! placement-independent by the determinism contract, and both
//! coordinators only dispatch a child after all its parents completed.
//! Only *clocks* may differ: event mode overlaps transfers with compute,
//! so on cut-edge graphs its makespan is typically well below wave
//! mode's.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::chip::{ChipStats, Scheduler};
use crate::cluster::Transfer;
use crate::error::{HazardKind, SimError};
use crate::fault::FaultEvent;
use crate::service::{critical_paths, Done, GraphRun, JobId, JobOutcome, MultiRun, TenantDelta};
use crate::stats::ExecStats;
use crate::trace::{EventLog, TraceEvent};

/// Which coordinator a chip, service or cluster drives its graphs with.
///
/// The knob lives on [`crate::chip::ChipConfig`] and
/// [`crate::cluster::ClusterConfig`]; both default to the wave
/// coordinator, the compatibility mode every pre-existing clock and
/// baseline was recorded under.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimMode {
    /// Lock-step wave coordination (the default): plan a wave, advance
    /// the shared clock by the slowest bucket, release children. Clocks
    /// and stats are bit-identical to the pre-event-core coordinator.
    #[default]
    Wave,
    /// Discrete-event coordination (this module): per-component clocks,
    /// eager dispatch the tick a core frees, cut-edge transfers
    /// overlapping with compute and queueing on their link. Outputs are
    /// bit-identical to [`SimMode::Wave`]; makespans are usually
    /// shorter on graphs with cross-chip edges.
    Event,
}

/// The component topology the event loop schedules over — the subset of
/// [`crate::cluster::ClusterConfig`] the heap needs.
pub(crate) struct EventTopology {
    /// Core count per chip, in chip-id order.
    pub(crate) cores_per_chip: Vec<usize>,
    /// Inter-chip link bandwidth, words per cycle (serialization rate).
    pub(crate) link_words_per_cycle: u64,
    /// Fixed per-hop latency, cycles — pipelined, so it delays the
    /// payload but does not occupy the link.
    pub(crate) hop_latency_cycles: u64,
}

/// Everything one event-mode run produces, in flat global-core order.
/// The cluster door splits `per_core`/`idle_per_core` back into per-chip
/// [`ChipStats`]; the chip/service doors use them as-is.
#[derive(Debug)]
pub(crate) struct EventRun<T> {
    /// One output per job, submission order.
    pub(crate) outputs: Vec<T>,
    /// `(chip, core-within-chip)` that ran each job (its last,
    /// non-revoked execution).
    pub(crate) assignment: Vec<(usize, usize)>,
    /// Completion-tick rank of each job (see `wave_ends`).
    pub(crate) wave_of: Vec<usize>,
    /// Sorted distinct completion ticks — the event-mode reading of the
    /// wave clock: `wave_ends[wave_of[j]]` is exactly job `j`'s
    /// completion tick, which keeps the open-loop sojourn anchor
    /// (`wave_end_cycles[wave_of[j]]`) honest.
    pub(crate) wave_ends: Vec<u64>,
    /// Busy-stats delta per global core (revoked executions included —
    /// the energy was burned).
    pub(crate) per_core: Vec<ExecStats>,
    /// Executions per global core (revoked included).
    pub(crate) jobs_per_core: Vec<u64>,
    /// Per global core: `makespan − busy − stall` — cycles the core sat
    /// waiting while some other component worked.
    pub(crate) idle_per_core: Vec<u64>,
    /// Final simulated tick (last job completion).
    pub(crate) makespan: u64,
    /// Cycles during which *no* core anywhere was busy (transfer/fault
    /// waits). Per component, `busy + idle + stall = makespan`.
    pub(crate) stall_cycles: u64,
    /// Every modeled cross-chip payload movement, in charge order.
    pub(crate) transfers: Vec<Transfer>,
    /// Total words moved across links.
    pub(crate) transferred_words: u64,
    /// Total modeled link cycles charged (queueing included).
    pub(crate) transfer_cycles: u64,
    /// Per-tenant meter deltas (dispatch-charged, like wave mode).
    pub(crate) per_tenant: Vec<TenantDelta>,
    /// The run's event log: job spans (which may overlap across
    /// components), transfers, faults, requeues, idle fast-forwards.
    pub(crate) events: EventLog,
}

/// A simulated component owning a clock on the event heap. The derived
/// order — chips, then links, then cores — is part of the determinism
/// contract: at equal ticks, faults fire before transfer arrivals fire
/// before job completions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum ComponentId {
    /// A whole chip; carries that chip's fault ticks.
    Chip(usize),
    /// The directed link `(from, to)`; carries transfer arrivals.
    Link(usize, usize),
    /// A global core index; carries job completions.
    Core(usize),
}

/// What happens when an event fires. The payload never participates in
/// heap ordering.
#[derive(Clone, Copy, Debug)]
enum EventKind {
    /// `faults[idx]` is due: kill its chip.
    Fault(usize),
    /// A cross-chip payload landed; the clock tick is the information
    /// (readiness is tracked in `ready_at`), so no payload is needed.
    TransferArrive,
    /// The job running on a core retired.
    JobDone { core: usize, job: usize },
}

/// One heap entry: `(tick, component, seq)` is the total order.
#[derive(Clone, Copy, Debug)]
struct Event {
    tick: u64,
    comp: ComponentId,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.tick, self.comp, self.seq) == (other.tick, other.comp, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.tick, self.comp, self.seq).cmp(&(other.tick, other.comp, other.seq))
    }
}

/// Schedule an event, stamping the next sequence number — pushes only
/// happen at deterministic points, so the stamp (the final heap
/// tie-break) is itself deterministic.
fn push_event(
    heap: &mut BinaryHeap<Reverse<Event>>,
    next_seq: &mut u64,
    tick: u64,
    comp: ComponentId,
    kind: EventKind,
) {
    heap.push(Reverse(Event {
        tick,
        comp,
        seq: *next_seq,
        kind,
    }));
    *next_seq += 1;
}

/// The deterministic event-driven coordinator (the [`SimMode::Event`]
/// counterpart of the cluster's wave loop). Same backend-agnostic
/// `dispatch`/`collect` door as the wave coordinators: workers report
/// real measured [`ExecStats`] deltas, and every dispatch batch is
/// drained before the simulated clock moves, so job durations are known
/// by the time their completion events are scheduled.
///
/// Fault model, requeue rules and metering match the wave coordinator
/// (see [`crate::fault`]) with one refinement: a kill fires at its exact
/// tick rather than the next wave boundary, revoking whatever runs on
/// the dying chip at that tick.
#[allow(clippy::too_many_arguments)] // the coordinator's full context is the point
pub(crate) fn drive_event<T>(
    topo: &EventTopology,
    costs: &[u64],
    transfer_words: &[u64],
    parents: &[Vec<usize>],
    children: &[Vec<usize>],
    chip_of: &mut [usize],
    dead: &mut [bool],
    faults: &[FaultEvent],
    base: u64,
    tenant_of: &[usize],
    weights: &[u64],
    usage: &mut [u64],
    boost: &[u64],
    sched: Scheduler,
    mut dispatch: impl FnMut(usize, usize),
    mut collect: impl FnMut() -> Done<T>,
) -> Result<EventRun<T>, SimError> {
    let n = costs.len();
    let chips = topo.cores_per_chip.len();
    let mut chip_base = vec![0usize; chips];
    for c in 1..chips {
        chip_base[c] = chip_base[c - 1] + topo.cores_per_chip[c - 1];
    }
    let total_cores: usize = topo.cores_per_chip.iter().sum();

    let mut per_core = vec![ExecStats::default(); total_cores];
    let mut jobs_per_core = vec![0u64; total_cores];
    let mut per_tenant = vec![TenantDelta::default(); weights.len()];
    let mut events = EventLog::new();

    if n == 0 {
        return Ok(EventRun {
            outputs: Vec::new(),
            assignment: Vec::new(),
            wave_of: Vec::new(),
            wave_ends: Vec::new(),
            per_core,
            jobs_per_core,
            idle_per_core: vec![0u64; total_cores],
            makespan: 0,
            stall_cycles: 0,
            transfers: Vec::new(),
            transferred_words: 0,
            transfer_cycles: 0,
            per_tenant,
            events,
        });
    }

    let priority = critical_paths(costs, children);
    let mut indegree: Vec<usize> = parents.iter().map(|p| p.len()).collect();
    let mut ready_at = vec![0u64; n];
    // In the dispatchable pool: all parents done, not running/completed.
    let mut queued: Vec<bool> = indegree.iter().map(|&d| d == 0).collect();
    let mut running = vec![false; n];
    let mut completed_mask = vec![false; n];
    let mut revoked = vec![false; n];
    let mut outputs: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut assignment = vec![(0usize, 0usize); n];
    let mut completion_tick = vec![0u64; n];
    let mut dispatch_tick = vec![0u64; n];
    let mut dispatch_seq_of = vec![0usize; n];

    // Core and link occupancy.
    let mut core_job: Vec<Option<usize>> = vec![None; total_cores];
    let mut link_free = vec![0u64; chips * chips];
    let mut busy_cores = 0usize;

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut next_seq = 0u64;
    // Faults are ordinary events from the start; kills already due at
    // run start fire at tick 0, before anything dispatches.
    for (i, f) in faults.iter().enumerate() {
        push_event(
            &mut heap,
            &mut next_seq,
            f.tick.saturating_sub(base),
            ComponentId::Chip(f.chip),
            EventKind::Fault(i),
        );
    }

    let mut now = 0u64;
    let mut completed_count = 0usize;
    let mut stall_cycles = 0u64;
    let mut transfers: Vec<Transfer> = Vec::new();
    let mut transferred_words = 0u64;
    let mut transfer_cycles = 0u64;
    let mut dispatch_counter = 0usize;

    // Charge the modeled movement of `parent`'s output to `child`'s chip
    // through the link's own clock: serialization queues behind whatever
    // the link already carries; the pipelined hop latency is added on
    // top without occupying the link.
    macro_rules! charge_transfer {
        ($parent:expr, $child:expr, $to:expr) => {{
            let p = $parent;
            let from = chip_of[p];
            let to = $to;
            let words = transfer_words[p].max(1);
            let ser = words.div_ceil(topo.link_words_per_cycle.max(1));
            let link = from * chips + to;
            let start = now.max(link_free[link]);
            link_free[link] = start + ser;
            let arrival = start + ser + topo.hop_latency_cycles;
            transfers.push(Transfer {
                parent: JobId::from_index(p),
                child: JobId::from_index($child),
                from_chip: from,
                to_chip: to,
                words,
                cycles: arrival - now,
            });
            transferred_words += words;
            transfer_cycles += arrival - now;
            events.push(TraceEvent::Transfer {
                parent: p,
                child: $child,
                from_chip: from,
                to_chip: to,
                words,
                start: now,
                end: arrival,
            });
            push_event(
                &mut heap,
                &mut next_seq,
                arrival,
                ComponentId::Link(from, to),
                EventKind::TransferArrive,
            );
            arrival
        }};
    }

    // Move job `j` off the dead chip `from` onto the surviving chip with
    // the least remaining (uncompleted) cost, ties to the lower index —
    // the wave coordinator's requeue rule. Completed parents on other
    // chips pay one fresh modeled transfer to the job's new home.
    macro_rules! requeue {
        ($j:expr, $from:expr, $load:expr) => {{
            let j = $j;
            let target = (0..chips)
                .filter(|&c| !dead[c])
                .min_by_key(|&c| ($load[c], c))
                .expect("a survivor exists (checked at the kill)");
            $load[target] += costs[j].max(1);
            events.push(TraceEvent::Requeue {
                job: j,
                from_chip: $from,
                to_chip: target,
                tick: now,
            });
            chip_of[j] = target;
            ready_at[j] = ready_at[j].max(now);
            for &p in &parents[j] {
                if completed_mask[p] && chip_of[p] != target {
                    let arrival = charge_transfer!(p, j, target);
                    ready_at[j] = ready_at[j].max(arrival);
                }
            }
        }};
    }

    loop {
        // Phase 1: fire every event due at the current tick, in
        // (component, seq) order — faults first, then arrivals, then
        // completions.
        while heap.peek().is_some_and(|Reverse(e)| e.tick <= now) {
            let Reverse(e) = heap.pop().expect("peeked");
            match e.kind {
                EventKind::Fault(idx) => {
                    let f = &faults[idx];
                    if dead[f.chip] {
                        continue; // killing a dead chip is a no-op
                    }
                    dead[f.chip] = true;
                    events.push(TraceEvent::Fault {
                        chip: f.chip,
                        tick: now,
                    });
                    if dead.iter().all(|&d| d) {
                        return Err(SimError {
                            cycle: (base + now) as usize,
                            pe: None,
                            kind: HazardKind::AllChipsDead { chips },
                        });
                    }
                    // Executions in flight on the dying chip are revoked
                    // at their completion tick (the work stays metered).
                    let range = chip_base[f.chip]..chip_base[f.chip] + topo.cores_per_chip[f.chip];
                    for g in range {
                        if let Some(j) = core_job[g] {
                            revoked[j] = true;
                        }
                    }
                    // Everything else the chip owned requeues now,
                    // least-remaining-load-first, jobs in id order.
                    let mut load = vec![0u64; chips];
                    for j in 0..n {
                        if !completed_mask[j] && !dead[chip_of[j]] {
                            load[chip_of[j]] += costs[j].max(1);
                        }
                    }
                    for j in 0..n {
                        if chip_of[j] == f.chip && !completed_mask[j] && !running[j] {
                            requeue!(j, f.chip, load);
                        }
                    }
                }
                EventKind::TransferArrive => {} // the tick was the point
                EventKind::JobDone { core, job } => {
                    core_job[core] = None;
                    busy_cores -= 1;
                    running[job] = false;
                    let (chip, c) = assignment[job];
                    if revoked[job] {
                        revoked[job] = false;
                        outputs[job] = None;
                        events.push(TraceEvent::Job {
                            job,
                            tenant: tenant_of[job],
                            chip,
                            core: c,
                            start: dispatch_tick[job],
                            end: now,
                            discarded: true,
                        });
                        let mut load = vec![0u64; chips];
                        for j in 0..n {
                            if !completed_mask[j] && !dead[chip_of[j]] {
                                load[chip_of[j]] += costs[j].max(1);
                            }
                        }
                        requeue!(job, chip, load);
                        queued[job] = true;
                    } else {
                        completed_mask[job] = true;
                        completed_count += 1;
                        completion_tick[job] = now;
                        events.push(TraceEvent::Job {
                            job,
                            tenant: tenant_of[job],
                            chip,
                            core: c,
                            start: dispatch_tick[job],
                            end: now,
                            discarded: false,
                        });
                        for &child in &children[job] {
                            indegree[child] -= 1;
                            let arrival = if chip_of[child] != chip_of[job] {
                                charge_transfer!(job, child, chip_of[child])
                            } else {
                                now
                            };
                            ready_at[child] = ready_at[child].max(arrival);
                            if indegree[child] == 0 {
                                queued[child] = true;
                            }
                        }
                    }
                }
            }
        }
        if completed_count == n {
            break;
        }

        // Phase 2: eager dispatch — every free core on every alive chip
        // takes the policy's best ready job, chips and cores in index
        // order (the deterministic tie-break).
        let mut batch = 0usize;
        for chip in 0..chips {
            if dead[chip] {
                continue;
            }
            for core in 0..topo.cores_per_chip[chip] {
                let g = chip_base[chip] + core;
                if core_job[g].is_some() {
                    continue;
                }
                let Some(j) = pick_ready(
                    sched, &queued, chip_of, &ready_at, now, chip, &priority, tenant_of, usage,
                    weights, boost,
                ) else {
                    break; // nothing ready on this chip for any free core
                };
                queued[j] = false;
                running[j] = true;
                core_job[g] = Some(j);
                busy_cores += 1;
                assignment[j] = (chip, core);
                dispatch_tick[j] = now;
                dispatch_seq_of[j] = dispatch_counter;
                dispatch_counter += 1;
                let t = tenant_of[j];
                per_tenant[t].wait_cycles += now - ready_at[j];
                per_tenant[t].cost_dispatched += costs[j].max(1);
                usage[t] += costs[j].max(1);
                dispatch(g, j);
                batch += 1;
            }
        }

        // Phase 3: drain the whole batch before the clock moves — the
        // workers' measured durations become completion events. Reports
        // arrive in host order; buffering and folding them in job-id
        // order keeps the heap (and the seq counter) deterministic.
        if batch > 0 {
            let mut done_batch: Vec<(usize, usize, T, ExecStats)> = Vec::with_capacity(batch);
            let mut first_err: Option<(usize, SimError)> = None;
            let mut first_panic: Option<(usize, String)> = None;
            for _ in 0..batch {
                let done = collect();
                let slot = dispatch_seq_of[done.job];
                match done.outcome {
                    JobOutcome::Completed(out, delta) => {
                        done_batch.push((done.job, done.core, out, delta));
                    }
                    JobOutcome::Skipped => {}
                    JobOutcome::Failed(e) => {
                        if first_err.as_ref().is_none_or(|(s, _)| slot < *s) {
                            first_err = Some((slot, e));
                        }
                    }
                    JobOutcome::Panicked(msg) => {
                        if first_panic.as_ref().is_none_or(|(s, _)| slot < *s) {
                            first_panic = Some((slot, msg));
                        }
                    }
                }
            }
            if let Some((_, msg)) = first_panic {
                panic!("job panicked in event mode: {msg}");
            }
            if let Some((_, e)) = first_err {
                return Err(e);
            }
            done_batch.sort_by_key(|&(j, ..)| j);
            for (j, core, out, delta) in done_batch {
                per_core[core].merge(&delta);
                jobs_per_core[core] += 1;
                let t = tenant_of[j];
                per_tenant[t].busy.merge(&delta);
                per_tenant[t].jobs += 1;
                outputs[j] = Some(out);
                push_event(
                    &mut heap,
                    &mut next_seq,
                    now + delta.cycles,
                    ComponentId::Core(core),
                    EventKind::JobDone { core, job: j },
                );
            }
        }

        // Phase 4: hop to the next event horizon. A gap with every core
        // idle is a stall (a transfer or fault wait) — the event-mode
        // reading of the wave coordinator's idle fast-forward.
        let Some(Reverse(next)) = heap.peek() else {
            break; // nothing running, nothing scheduled: dangling parents
        };
        if next.tick > now {
            if busy_cores == 0 {
                events.push(TraceEvent::IdleFastForward {
                    start: now,
                    end: next.tick,
                });
                stall_cycles += next.tick - now;
            }
            now = next.tick;
        }
    }

    let makespan = now;
    // A core's busy intervals never intersect an all-idle stall window,
    // so `busy + stall <= makespan` holds per core and the remainder is
    // its dependency idle: `busy + idle + stall = makespan`.
    let idle_per_core: Vec<u64> = per_core
        .iter()
        .map(|s| makespan.saturating_sub(s.cycles + stall_cycles))
        .collect();
    let outputs: Vec<T> = outputs
        .into_iter()
        .enumerate()
        .map(|(j, o)| o.unwrap_or_else(|| panic!("job {j} never became ready (dangling parent?)")))
        .collect();
    let mut wave_ends: Vec<u64> = completion_tick.clone();
    wave_ends.sort_unstable();
    wave_ends.dedup();
    let wave_of: Vec<usize> = completion_tick
        .iter()
        .map(|t| wave_ends.binary_search(t).expect("own completion tick"))
        .collect();

    Ok(EventRun {
        outputs,
        assignment,
        wave_of,
        wave_ends,
        per_core,
        jobs_per_core,
        idle_per_core,
        makespan,
        stall_cycles,
        transfers,
        transferred_words,
        transfer_cycles,
        per_tenant,
        events,
    })
}

/// The per-core dispatch pick: the event-mode reading of the wave
/// planners, one job at a time. `Fifo`/`LeastLoaded` take the lowest
/// ready id (placement, their wave-mode difference, is now the free core
/// itself); `CriticalPath` takes the longest remaining path;
/// `FairShare` replays the streaming tenant comparator of
/// [`crate::service::plan_wave_tenanted_slo`] against the live usage
/// counters.
#[allow(clippy::too_many_arguments)] // the full deterministic pick context
fn pick_ready(
    sched: Scheduler,
    queued: &[bool],
    chip_of: &[usize],
    ready_at: &[u64],
    now: u64,
    chip: usize,
    priority: &[u64],
    tenant_of: &[usize],
    usage: &[u64],
    weights: &[u64],
    boost: &[u64],
) -> Option<usize> {
    let candidates =
        (0..queued.len()).filter(|&j| queued[j] && chip_of[j] == chip && ready_at[j] <= now);
    match sched {
        Scheduler::Fifo | Scheduler::LeastLoaded => candidates.min(),
        Scheduler::CriticalPath => candidates.min_by_key(|&j| (Reverse(priority[j]), j)),
        Scheduler::FairShare => candidates.min_by(|&a, &b| {
            let (ta, tb) = (tenant_of[a], tenant_of[b]);
            let ua = usage[ta] as u128 * weights[tb].max(1) as u128;
            let ub = usage[tb] as u128 * weights[ta].max(1) as u128;
            boost[ta]
                .cmp(&boost[tb])
                .then_with(|| ua.cmp(&ub))
                .then_with(|| priority[b].cmp(&priority[a]))
                .then_with(|| a.cmp(&b))
        }),
    }
}

/// Single-chip projection of [`drive_event`]: no links, no faults — what
/// the chip and service doors drive in [`SimMode::Event`]. Returns the
/// same [`MultiRun`] shape as the wave coordinator's `drive_multi`, so
/// the doors package results identically in both modes.
#[allow(clippy::too_many_arguments)] // mirrors drive_multi's signature
pub(crate) fn drive_event_single<T>(
    costs: &[u64],
    parents: &[Vec<usize>],
    children: &[Vec<usize>],
    tenant_of: &[usize],
    weights: &[u64],
    usage: &mut [u64],
    boost: &[u64],
    sched: Scheduler,
    cores: usize,
    dispatch: impl FnMut(usize, usize),
    collect: impl FnMut() -> Done<T>,
) -> Result<MultiRun<T>, SimError> {
    let topo = EventTopology {
        cores_per_chip: vec![cores],
        link_words_per_cycle: 1,
        hop_latency_cycles: 0,
    };
    let n = costs.len();
    let transfer_words = vec![1u64; n];
    let mut chip_of = vec![0usize; n];
    let mut dead = vec![false];
    let run = drive_event(
        &topo,
        costs,
        &transfer_words,
        parents,
        children,
        &mut chip_of,
        &mut dead,
        &[],
        0,
        tenant_of,
        weights,
        usage,
        boost,
        sched,
        dispatch,
        collect,
    )?;
    let mut aggregate = ExecStats::default();
    for s in &run.per_core {
        aggregate.merge(s);
    }
    Ok(MultiRun {
        outputs: run.outputs,
        assignment: run.assignment.into_iter().map(|(_, core)| core).collect(),
        wave_of: run.wave_of,
        waves: run.wave_ends.len(),
        wave_ends: run.wave_ends,
        idle_per_core: run.idle_per_core,
        stats: ChipStats {
            per_core: run.per_core,
            jobs_per_core: run.jobs_per_core,
            makespan_cycles: run.makespan,
            aggregate,
        },
        per_tenant: run.per_tenant,
    })
}

/// Single-tenant projection of [`drive_event_single`], mirroring the
/// wave coordinator's `drive`: what [`crate::chip::LacChip::run_graph`]
/// and [`crate::service::LacService::submit`] drive in
/// [`SimMode::Event`].
pub(crate) fn drive_event_graph<T>(
    costs: &[u64],
    parents: &[Vec<usize>],
    children: &[Vec<usize>],
    sched: Scheduler,
    cores: usize,
    dispatch: impl FnMut(usize, usize),
    collect: impl FnMut() -> Done<T>,
) -> Result<GraphRun<T>, SimError> {
    let tenant_of = vec![0usize; costs.len()];
    let mut usage = [0u64];
    let run = drive_event_single(
        costs,
        parents,
        children,
        &tenant_of,
        &[1],
        &mut usage,
        &[u64::MAX],
        sched,
        cores,
        dispatch,
        collect,
    )?;
    Ok(GraphRun {
        outputs: run.outputs,
        assignment: run.assignment,
        wave_of: run.wave_of,
        waves: run.waves,
        wave_end_cycles: run.wave_ends,
        idle_per_core: run.idle_per_core,
        stats: run.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A pure in-memory backend: `dispatch` queues `(core, job)`,
    /// `collect` pops and reports the job's cost hint as its measured
    /// duration, the job id as its output. Lets the event loop be tested
    /// without engines or threads.
    #[allow(clippy::type_complexity)]
    fn fake_backend(
        costs: Vec<u64>,
    ) -> (
        std::rc::Rc<std::cell::RefCell<VecDeque<(usize, usize)>>>,
        impl FnMut(usize, usize),
        impl FnMut() -> Done<usize>,
    ) {
        let q = std::rc::Rc::new(std::cell::RefCell::new(VecDeque::new()));
        let qd = std::rc::Rc::clone(&q);
        let qc = std::rc::Rc::clone(&q);
        (
            q,
            move |core, job| qd.borrow_mut().push_back((core, job)),
            move || {
                let (core, job) = qc.borrow_mut().pop_front().expect("a dispatched job");
                Done {
                    core,
                    job,
                    outcome: JobOutcome::Completed(
                        job,
                        ExecStats {
                            cycles: costs[job],
                            ..Default::default()
                        },
                    ),
                }
            },
        )
    }

    fn chain_graph(costs: &[u64]) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let n = costs.len();
        let mut parents = vec![Vec::new(); n];
        let mut children = vec![Vec::new(); n];
        for j in 1..n {
            parents[j].push(j - 1);
            children[j - 1].push(j);
        }
        (parents, children)
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        topo: &EventTopology,
        costs: &[u64],
        words: &[u64],
        parents: &[Vec<usize>],
        children: &[Vec<usize>],
        chip_of: &mut [usize],
        faults: &[FaultEvent],
        dead_chips: usize,
    ) -> EventRun<usize> {
        let n = costs.len();
        let (_q, dispatch, collect) = fake_backend(costs.to_vec());
        let mut dead = vec![false; dead_chips];
        let mut usage = vec![0u64];
        drive_event(
            topo,
            costs,
            words,
            parents,
            children,
            chip_of,
            &mut dead,
            faults,
            0,
            &vec![0usize; n],
            &[1],
            &mut usage,
            &[u64::MAX],
            Scheduler::Fifo,
            dispatch,
            collect,
        )
        .expect("event run")
    }

    #[test]
    fn transfers_overlap_with_compute_on_both_chips() {
        // Chip 0 runs job 0 then feeds job 2 on chip 1 while chip 0's
        // independent job 1 and the transfer overlap: event-mode
        // makespan is compute-bound, not barrier-bound.
        let topo = EventTopology {
            cores_per_chip: vec![1, 1],
            link_words_per_cycle: 1,
            hop_latency_cycles: 100,
        };
        let costs = [10, 110, 10];
        let words = [4, 1, 1];
        let mut parents = vec![Vec::new(); 3];
        let mut children = vec![Vec::new(); 3];
        parents[2].push(0);
        children[0].push(2);
        let mut chip_of = vec![0, 0, 1];
        let r = run(
            &topo,
            &costs,
            &words,
            &parents,
            &children,
            &mut chip_of,
            &[],
            2,
        );
        // Job 0 retires at 10; transfer lands at 10 + 4 + 100 = 114;
        // job 2 runs 114..124 on chip 1 while chip 0 still runs job 1
        // (10..120) — the transfer fully overlaps with compute.
        assert_eq!(r.outputs, vec![0, 1, 2]);
        assert_eq!(r.makespan, 124);
        assert_eq!(r.transferred_words, 4);
        assert_eq!(r.transfer_cycles, 104);
        // Nothing ever went fully idle: job 1 covers the transfer window.
        assert_eq!(r.stall_cycles, 0);
        // busy + idle + stall = makespan on every core.
        for (g, s) in r.per_core.iter().enumerate() {
            assert_eq!(s.cycles + r.idle_per_core[g] + r.stall_cycles, r.makespan);
        }
    }

    #[test]
    fn same_link_transfers_queue_behind_each_other() {
        // Two cut edges over the same (0 -> 1) link at the same tick:
        // the second serialization window queues behind the first.
        let topo = EventTopology {
            cores_per_chip: vec![2, 1],
            link_words_per_cycle: 1,
            hop_latency_cycles: 10,
        };
        let costs = [5, 5, 1, 1];
        let words = [8, 8, 1, 1];
        let mut parents = vec![Vec::new(); 4];
        let mut children = vec![Vec::new(); 4];
        parents[2].push(0);
        children[0].push(2);
        parents[3].push(1);
        children[1].push(3);
        let mut chip_of = vec![0, 0, 1, 1];
        let r = run(
            &topo,
            &costs,
            &words,
            &parents,
            &children,
            &mut chip_of,
            &[],
            2,
        );
        // Both parents retire at 5. First transfer occupies the link
        // 5..13 (arrives 23); the second queues 13..21 (arrives 31).
        let ends: Vec<u64> = r
            .events
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Transfer { end, .. } => Some(*end),
                _ => None,
            })
            .collect();
        assert_eq!(ends, vec![23, 31]);
        assert_eq!(r.makespan, 32);
        // Two all-idle gaps: 5..23 (waiting on the first arrival) and
        // 24..31 (chip 1 retired job 2, waiting on the queued arrival).
        assert_eq!(r.stall_cycles, 18 + 7);
    }

    #[test]
    fn fault_revokes_in_flight_work_and_requeues_deterministically() {
        // One chain on chip 1; chip 1 dies mid-job. The running job is
        // revoked at its completion, requeued to chip 0, and rerun —
        // metered twice, output delivered once.
        let topo = EventTopology {
            cores_per_chip: vec![1, 1],
            link_words_per_cycle: 1,
            hop_latency_cycles: 0,
        };
        let costs = [10, 10];
        let words = [1, 1];
        let (parents, children) = chain_graph(&costs);
        let mut chip_of = vec![1, 1];
        let r = run(
            &topo,
            &costs,
            &words,
            &parents,
            &children,
            &mut chip_of,
            &[FaultEvent { tick: 5, chip: 1 }],
            2,
        );
        assert_eq!(r.outputs, vec![0, 1]);
        assert_eq!(chip_of, vec![0, 0]);
        let discarded = r.events.count(|e| {
            matches!(
                e,
                TraceEvent::Job {
                    discarded: true,
                    ..
                }
            )
        });
        assert_eq!(discarded, 1);
        // Revoked attempt 0..10 on chip 1, rerun 10..20, chain 20..30.
        assert_eq!(r.makespan, 30);
        assert_eq!(r.jobs_per_core.iter().sum::<u64>(), 3);
    }

    #[test]
    fn all_dead_is_a_hard_error_and_empty_graphs_are_free() {
        let topo = EventTopology {
            cores_per_chip: vec![1],
            link_words_per_cycle: 1,
            hop_latency_cycles: 0,
        };
        let (_q, dispatch, collect) = fake_backend(vec![4]);
        let mut dead = vec![false];
        let mut usage = vec![0u64];
        let err = drive_event(
            &topo,
            &[4],
            &[1],
            &[vec![]],
            &[vec![]],
            &mut [0],
            &mut dead,
            &[FaultEvent { tick: 0, chip: 0 }],
            0,
            &[0],
            &[1],
            &mut usage,
            &[u64::MAX],
            Scheduler::Fifo,
            dispatch,
            collect,
        )
        .unwrap_err();
        assert_eq!(err.kind, HazardKind::AllChipsDead { chips: 1 });

        let empty = run(&topo, &[], &[], &[], &[], &mut [], &[], 1);
        assert_eq!(empty.makespan, 0);
        assert!(empty.outputs.is_empty());
    }
}
