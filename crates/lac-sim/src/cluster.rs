//! Multi-chip sharded deployment: a [`LacCluster`] shards [`JobGraph`]s
//! across N [`LacChip`]s with explicitly modeled inter-chip transfer
//! costs — the next rung above the single-chip [`crate::service`] layer
//! on the road from one core to a datacenter-scale fleet.
//!
//! The single-chip layers assume every dependency edge is free: a child
//! job reads its parents' outputs out of the same on-chip memory. Once a
//! graph no longer fits one chip, that assumption breaks — a dependency
//! whose endpoints land on *different* chips must move its payload over a
//! chip-to-chip link that is orders of magnitude narrower than the
//! on-chip fabric. This is the same decomposition-with-communication
//! trade-off that drives blocked-panel scheduling inside one core (the
//! source dissertation's Chapter 4) and round-structured interior-point
//! workloads across nodes (PAPERS.md: IP-PMM, interior-point DDP): *where
//! you cut the graph decides how much you pay in transfers.*
//!
//! The module has three pieces:
//!
//! * **[`ClusterConfig`]** — N per-chip [`ChipConfig`]s (chips may differ
//!   in core count and bandwidth budget) plus the inter-chip link model:
//!   a bandwidth in words/cycle and a fixed per-hop latency. A cross-chip
//!   edge carrying `w` words costs `hop_latency + ⌈w / link_bandwidth⌉`
//!   simulated cycles ([`ClusterConfig::transfer_cycles`]).
//! * **[`Partitioner`]** — the deterministic graph partitioner. The
//!   default [`Partitioner::CostBins`] keeps weakly-connected components
//!   whole (a component's internal edges never pay transfer cost) and
//!   greedily bin-packs components onto chips in descending cost-hint
//!   order; [`Partitioner::Striped`] scatters individual jobs round-robin
//!   and exists to stress the transfer model. Partitioning is a pure
//!   function of the graph's cost hints and edges — never of host timing
//!   — which is what keeps cluster runs reproducible bit-for-bit.
//! * **[`LacCluster`]** — owns the chips and coordinates execution with
//!   the same deterministic wave machinery as the chip/service layers
//!   ([`plan_wave`] per chip per wave), plus
//!   transfer-aware readiness: a child whose parent completed on another
//!   chip becomes ready only after the modeled transfer elapses on the
//!   simulated clock. When every core would idle waiting on a link, the
//!   clock jumps to the next transfer arrival and the gap is accounted as
//!   [`ClusterStats::transfer_stall_cycles`].
//!
//! With one chip there are no cross-chip edges, every transfer charge
//! vanishes, and the coordinator collapses to exactly the single-chip
//! wave loop — [`LacCluster::run_graph`] on an N=1 cluster is
//! bit-identical to [`LacChip::run_graph`], outputs and stats both (a
//! property-tested invariant, see `tests/cluster_props.rs`).
//!
//! The multi-tenant front door mirrors [`crate::service::LacService`]:
//! tenants registered with [`LacCluster::add_tenant`] hold *cluster-wide*
//! admission budgets ([`LacCluster::enqueue`] charges the same cost-hint
//! currency whether the graph later lands on one chip or five), and
//! [`LacCluster::run_admitted`] fuses every admitted graph into one pool,
//! partitions the pool, and interleaves it wave-by-wave across all chips
//! under the chosen [`Scheduler`] policy.
//!
//! Energy: feed a run's [`ClusterStats`] to
//! `lac_power::ClusterEnergyModel`, which prices each chip with the
//! per-chip model over the shared cluster wall clock and adds the
//! interconnect's per-word and static link energy on top.

use crate::chip::{ChipConfig, ChipJob, ChipStats, LacChip, Scheduler};
use crate::compile::ProgramCache;
use crate::error::{HazardKind, SimError};
use crate::event::{drive_event, EventRun, EventTopology, SimMode};
use crate::fault::{FaultEvent, FaultPlan};
use crate::service::{
    admit, cap_banked_credit, collect_wave, critical_paths, drain_inflight, plan_wave,
    plan_wave_tenanted_slo, run_one, settle_round, Done, FusedPool, GraphCompletion, GraphTicket,
    JobGraph, JobId, PendingGraph, Rejected, TenantConfig, TenantDelta, TenantId, TenantSession,
};
use crate::stats::ExecStats;
use crate::trace::{EventLog, TraceEvent};
use std::sync::atomic::AtomicBool;

/// Static configuration of a cluster: N chips plus the inter-chip link
/// model.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-chip configurations, in chip-id order. Chips may differ in
    /// core count, bandwidth budget, and memory size.
    pub chips: Vec<ChipConfig>,
    /// Inter-chip link bandwidth in words per simulated cycle. Every
    /// cross-chip dependency edge serializes its payload through this
    /// rate (links are modeled as contention-free: each transfer sees the
    /// full bandwidth).
    pub link_words_per_cycle: u64,
    /// Fixed latency of one chip-to-chip hop, in simulated cycles, paid
    /// by every cross-chip edge regardless of payload size.
    pub hop_latency_cycles: u64,
    /// Which coordinator drives cluster runs: lock-step waves (the
    /// default, the compatibility mode) or the discrete-event core (see
    /// [`crate::event`]), which overlaps cut-edge transfers with compute
    /// and models per-link contention. Outputs are bit-identical either
    /// way; clocks may differ.
    pub sim_mode: SimMode,
}

impl ClusterConfig {
    /// A cluster of `chips` identical chips with the default link model
    /// (4 words/cycle, 200-cycle hop — a PCIe-class link next to an
    /// on-chip fabric). The coordinator mode is inherited from the chip
    /// config.
    pub fn homogeneous(chips: usize, chip: ChipConfig) -> Self {
        assert!(chips >= 1, "a cluster has at least one chip");
        Self {
            sim_mode: chip.sim_mode,
            chips: vec![chip; chips],
            link_words_per_cycle: 4,
            hop_latency_cycles: 200,
        }
    }

    /// Override the inter-chip link model.
    pub fn with_link(mut self, words_per_cycle: u64, hop_latency_cycles: u64) -> Self {
        assert!(words_per_cycle >= 1, "a link moves at least one word/cycle");
        self.link_words_per_cycle = words_per_cycle;
        self.hop_latency_cycles = hop_latency_cycles;
        self
    }

    /// Select the coordinator ([`SimMode::Wave`] is the default).
    pub fn with_sim_mode(mut self, mode: SimMode) -> Self {
        self.sim_mode = mode;
        self
    }

    /// Number of chips in the cluster.
    pub fn num_chips(&self) -> usize {
        self.chips.len()
    }

    /// Total cores across every chip.
    pub fn total_cores(&self) -> usize {
        self.chips.iter().map(|c| c.cores).sum()
    }

    /// Modeled cost of moving `words` across one inter-chip hop:
    /// `hop_latency + ⌈words / link_bandwidth⌉` cycles.
    pub fn transfer_cycles(&self, words: u64) -> u64 {
        self.hop_latency_cycles + words.div_ceil(self.link_words_per_cycle.max(1))
    }
}

/// Deterministic job → chip placement policies. Like the wave planners,
/// partitioning is a pure function of the graph (cost hints + edges), so
/// reruns shard identically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Partitioner {
    /// Component-aware cost bins (the default): the graph's
    /// weakly-connected components are kept whole — internal edges never
    /// pay transfer cost — and greedily bin-packed onto the least-loaded
    /// chip in descending total-cost order (ties: lower smallest job id,
    /// then lower chip index). Independent submissions (e.g. a fleet of
    /// solver loops fused by [`JobGraph::append`]) shard with *zero*
    /// cross-chip edges; a single connected graph lands whole on one
    /// chip rather than paying links for nothing.
    #[default]
    CostBins,
    /// Stripe individual jobs round-robin by job id, ignoring edges —
    /// maximal cross-chip traffic. Exists to exercise and stress the
    /// transfer model (every inter-chip edge pays), not for production
    /// placement.
    Striped,
}

/// The partitioner's verdict for one graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `chip_of[j]` — the chip that runs job `j` (by submission index).
    pub chip_of: Vec<usize>,
    /// Every dependency edge whose endpoints landed on different chips,
    /// as `(parent, child)` in child-id order (the order the edges were
    /// added for equal children). Each of these is charged exactly one
    /// [`Transfer`] when its parent completes.
    pub cut_edges: Vec<(JobId, JobId)>,
    /// Total cost hint placed on each chip (the bin-packing load).
    pub chip_cost: Vec<u64>,
}

impl Partitioner {
    /// Shard `graph` across `chips` chips. Pure and deterministic: the
    /// same graph always produces the same partition.
    pub fn partition<J: ChipJob>(self, graph: &JobGraph<J>, chips: usize) -> Partition {
        let costs: Vec<u64> = graph.jobs.iter().map(|j| j.cost_hint().max(1)).collect();
        partition_costs(self, &costs, &graph.parents, chips)
    }
}

/// The partitioner over raw fused-pool slices (shared by the public
/// [`Partitioner::partition`] door and the cluster's round fusion).
pub(crate) fn partition_costs(
    p: Partitioner,
    costs: &[u64],
    parents: &[Vec<usize>],
    chips: usize,
) -> Partition {
    assert!(chips >= 1, "a cluster has at least one chip");
    let n = costs.len();
    let mut chip_of = vec![0usize; n];
    match p {
        Partitioner::Striped => {
            for (j, c) in chip_of.iter_mut().enumerate() {
                *c = j % chips;
            }
        }
        Partitioner::CostBins => {
            // Union-find over the undirected edges: weakly-connected
            // components, root = smallest member id (path compression
            // with union-by-min keeps that invariant).
            let mut root: Vec<usize> = (0..n).collect();
            fn find(root: &mut [usize], mut j: usize) -> usize {
                while root[j] != j {
                    root[j] = root[root[j]];
                    j = root[j];
                }
                j
            }
            for (child, ps) in parents.iter().enumerate() {
                for &parent in ps {
                    let (a, b) = (find(&mut root, parent), find(&mut root, child));
                    let (lo, hi) = (a.min(b), a.max(b));
                    root[hi] = lo;
                }
            }
            // Components in id order: (total cost, members).
            let mut comp_cost = vec![0u64; n];
            let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (j, &cost) in costs.iter().enumerate() {
                let r = find(&mut root, j);
                comp_cost[r] += cost;
                members[r].push(j);
            }
            // Greedy bin packing: heaviest component first (ties to the
            // smaller root id), onto the least-loaded chip (ties to the
            // lower chip index).
            let mut comps: Vec<usize> = (0..n).filter(|&r| !members[r].is_empty()).collect();
            comps.sort_by_key(|&r| (std::cmp::Reverse(comp_cost[r]), r));
            let mut load = vec![0u64; chips];
            for r in comps {
                let chip = (0..chips).min_by_key(|&c| (load[c], c)).unwrap();
                load[chip] += comp_cost[r];
                for &j in &members[r] {
                    chip_of[j] = chip;
                }
            }
        }
    }
    let mut chip_cost = vec![0u64; chips];
    for j in 0..n {
        chip_cost[chip_of[j]] += costs[j];
    }
    let cut_edges = parents
        .iter()
        .enumerate()
        .flat_map(|(child, ps)| ps.iter().map(move |&parent| (parent, child)))
        .filter(|&(p, c)| chip_of[p] != chip_of[c])
        .map(|(p, c)| (JobId::from_index(p), JobId::from_index(c)))
        .collect();
    Partition {
        chip_of,
        cut_edges,
        chip_cost,
    }
}

/// One modeled inter-chip payload movement: the charge for one cut edge,
/// recorded when the parent completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// The producing job.
    pub parent: JobId,
    /// The consuming job (on another chip).
    pub child: JobId,
    /// Chip the parent ran on.
    pub from_chip: usize,
    /// Chip the child runs on.
    pub to_chip: usize,
    /// Payload size, words ([`ChipJob::transfer_words`] of the parent).
    pub words: u64,
    /// Modeled cycles ([`ClusterConfig::transfer_cycles`] of `words`)
    /// between the parent's completion and the child's earliest
    /// readiness.
    pub cycles: u64,
}

/// Merged result of one cluster run: per-chip [`ChipStats`] plus the
/// interconnect traffic — the shape `lac_power::ClusterEnergyModel`
/// prices.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterStats {
    /// Each chip's stats delta over this run, in chip order. Every chip's
    /// `makespan_cycles` is the *cluster* makespan — chips power through
    /// the whole run whether or not their cores are busy.
    pub per_chip: Vec<ChipStats>,
    /// Simulated cluster makespan: wave spans plus transfer stalls.
    pub makespan_cycles: u64,
    /// Words moved across inter-chip links (sum over [`Transfer`]s).
    pub transferred_words: u64,
    /// Modeled link cycles charged across all transfers (latency-side
    /// total; overlapping transfers each count in full).
    pub transfer_cycles: u64,
    /// Cycles the simulated clock advanced with *every* core idle,
    /// waiting on in-flight transfers — the makespan share the
    /// interconnect alone is responsible for.
    pub transfer_stall_cycles: u64,
    /// Sum of every core's counters on every chip.
    pub aggregate: ExecStats,
}

impl ClusterStats {
    /// Total jobs dispatched in this run.
    pub fn jobs(&self) -> u64 {
        self.per_chip.iter().map(|c| c.jobs()).sum()
    }

    /// Floating-point operations across the whole cluster.
    pub fn flops(&self) -> u64 {
        self.aggregate.flops()
    }

    /// Total cores across every chip.
    pub fn total_cores(&self) -> usize {
        self.per_chip.iter().map(|c| c.per_core.len()).sum()
    }

    /// Cluster-wide MAC-slot utilization: executed MACs against the peak
    /// of every core on every chip over the cluster makespan. Transfer
    /// stalls count against the cluster, exactly as dependency stalls
    /// count against a chip.
    pub fn utilization(&self, nr: usize) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        let peak = self.makespan_cycles as f64 * self.total_cores() as f64 * (nr * nr) as f64;
        (self.aggregate.mac_ops + self.aggregate.fma_ops) as f64 / peak
    }

    /// Parallel speedup of this run against the same work serialized on
    /// one core: aggregate busy cycles / makespan.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.aggregate.cycles as f64 / self.makespan_cycles as f64
    }
}

/// Everything one cluster graph run produces.
#[derive(Clone, Debug)]
pub struct ClusterRun<T> {
    /// One output per job, indexed by [`JobId::index`] (submission
    /// order) — placement never changes outputs.
    pub outputs: Vec<T>,
    /// How the partitioner sharded the graph.
    pub partition: Partition,
    /// Which `(chip, core-within-chip)` ran each job.
    pub assignment: Vec<(usize, usize)>,
    /// Which dependency wave (0-based) dispatched each job.
    pub wave_of: Vec<usize>,
    /// Dependency waves the run took (transfer-stall gaps between waves
    /// are not waves — no job dispatches during a stall).
    pub waves: usize,
    /// Shared simulated clock at the end of each wave, relative to the
    /// start of the run (transfer-stall fast-forwards that precede a wave
    /// are included in its end clock).
    pub wave_end_cycles: Vec<u64>,
    /// Per chip, per core: simulated cycles spent idle (wave imbalance,
    /// dependency stalls, and transfer stalls). `busy + idle = makespan`
    /// for every core.
    pub idle_per_core: Vec<Vec<u64>>,
    /// Every cross-chip payload movement, in completion order. One entry
    /// per cut edge, exactly, on the fault-free path; a fault's requeue
    /// may re-charge an edge to move a durable output to a job's new
    /// home.
    pub transfers: Vec<Transfer>,
    /// Per-chip and cluster-wide meters.
    pub stats: ClusterStats,
    /// The run's observability log: job spans, transfers, faults,
    /// requeues and idle fast-forwards, on the run-relative simulated
    /// clock (export with [`EventLog::to_chrome_trace`]).
    pub events: EventLog,
}

/// Everything one multi-tenant cluster round produces: per-graph
/// completions in admission order plus the round-wide schedule meters
/// (the cluster counterpart of [`crate::service::ServiceRound`]).
#[derive(Clone, Debug)]
pub struct ClusterRound<T> {
    /// Completed graphs, in admission (ticket) order. Each completion's
    /// `assignment` holds *global* core indices (chips laid end to end in
    /// chip order).
    pub graphs: Vec<GraphCompletion<T>>,
    /// How the partitioner sharded the fused round pool (`chip_of` is
    /// indexed by fused job id, i.e. graphs laid end to end in admission
    /// order).
    pub partition: Partition,
    /// Dependency waves the interleaved round took.
    pub waves: usize,
    /// Shared simulated clock at the end of each wave, relative to the
    /// start of the round: a graph completes at
    /// `wave_end_cycles[max(wave_of)]` past the round's start — the
    /// sojourn-time anchor the open-loop traffic layer reads.
    pub wave_end_cycles: Vec<u64>,
    /// Every cross-chip payload movement of the round.
    pub transfers: Vec<Transfer>,
    /// Per-chip and cluster-wide meters.
    pub stats: ClusterStats,
    /// The round's observability log, on the round-relative simulated
    /// clock (the open-loop driver rebases and merges these — see
    /// [`EventLog::shift`]).
    pub events: EventLog,
}

/// Lifetime meters of a [`LacCluster`], accumulated across every
/// completed run since construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterSession {
    /// The cluster clock: completed runs' makespans summed, plus explicit
    /// [`LacCluster::advance_idle`] gaps between rounds.
    pub clock_cycles: u64,
    /// Completed graph submissions (a round counts every admitted graph).
    pub graphs_run: u64,
    /// Inter-chip words moved over the lifetime.
    pub transferred_words: u64,
    /// Modeled link cycles charged over the lifetime.
    pub transfer_cycles: u64,
}

/// What the tenant-aware cluster coordinator hands back to the public
/// doors.
struct ClusterMultiRun<T> {
    outputs: Vec<T>,
    assignment: Vec<(usize, usize)>,
    wave_of: Vec<usize>,
    waves: usize,
    wave_ends: Vec<u64>,
    idle_per_core: Vec<Vec<u64>>,
    transfers: Vec<Transfer>,
    stats: ClusterStats,
    per_tenant: Vec<TenantDelta>,
    events: EventLog,
}

/// Apply every scheduled fault whose tick is due by `base + clock` (see
/// [`FaultPlan`] for the fault model): mark the chip dead, revoke the
/// jobs it completed in the wave that just retired (`wave_completed`),
/// and requeue every uncompleted job it owned onto the surviving chips —
/// least remaining load first (ties to the lower chip index), jobs in id
/// order. A requeued job whose parent completed *in an earlier wave* on
/// a different chip pays one fresh modeled transfer to move the parent's
/// durable output to its new home; parents completing in the current
/// wave charge their edge through the normal release path afterwards,
/// against the updated placement, so no edge is ever double-charged.
///
/// Called at wave boundaries only (after a wave's collection, at the top
/// of the loop after a fast-forward, and before the first wave), which
/// is what keeps fault handling bit-deterministic. Errors with
/// [`HazardKind::AllChipsDead`] when a kill leaves no survivor.
#[allow(clippy::too_many_arguments)] // the fault's full requeue context
fn apply_due_faults<T>(
    cfg: &ClusterConfig,
    faults: &[FaultEvent],
    applied: &mut [bool],
    dead: &mut [bool],
    base: u64,
    clock: u64,
    chip_of: &mut [usize],
    costs: &[u64],
    transfer_words: &[u64],
    parents: &[Vec<usize>],
    completed_mask: &[bool],
    assignment: &[(usize, usize)],
    in_wave: &mut [bool],
    outputs: &mut [Option<T>],
    wave_completed: &mut Vec<usize>,
    ready_at: &mut [u64],
    transfers: &mut Vec<Transfer>,
    transferred_words: &mut u64,
    transfer_cycles: &mut u64,
    wave_events_start: usize,
    events: &mut EventLog,
) -> Result<(), SimError> {
    let n = costs.len();
    let chips = dead.len();
    for (i, f) in faults.iter().enumerate() {
        if f.tick > base + clock {
            break; // sorted by tick: nothing further is due
        }
        if applied[i] {
            continue;
        }
        applied[i] = true;
        if dead[f.chip] {
            continue; // killing a dead chip is a no-op
        }
        dead[f.chip] = true;
        events.push(TraceEvent::Fault {
            chip: f.chip,
            tick: clock,
        });
        if dead.iter().all(|&d| d) {
            return Err(SimError {
                cycle: (base + clock) as usize,
                pe: None,
                kind: HazardKind::AllChipsDead { chips },
            });
        }
        // Revoke the dying chip's in-flight wave: the work ran (and
        // stays metered — the energy was burned) but its outputs are
        // discarded and its children are not released.
        wave_completed.retain(|&j| {
            if assignment[j].0 != f.chip {
                return true;
            }
            outputs[j] = None;
            // The planner leaves dispatched jobs in `pending` until the
            // end-of-wave sweep removes the `in_wave` ones — clearing the
            // flag keeps the revoked job queued without duplicating it.
            in_wave[j] = false;
            for ev in events.events_mut()[wave_events_start..].iter_mut() {
                if let TraceEvent::Job { job, discarded, .. } = ev {
                    if *job == j {
                        *discarded = true;
                    }
                }
            }
            false
        });
        // Requeue every uncompleted job off the dead chip, balancing by
        // remaining cost over the survivors.
        let mut load = vec![0u64; chips];
        for j in 0..n {
            if outputs[j].is_none() && !dead[chip_of[j]] {
                load[chip_of[j]] += costs[j].max(1);
            }
        }
        for j in 0..n {
            if chip_of[j] != f.chip || outputs[j].is_some() {
                continue;
            }
            let target = (0..chips)
                .filter(|&c| !dead[c])
                .min_by_key(|&c| (load[c], c))
                .expect("a survivor exists");
            load[target] += costs[j].max(1);
            chip_of[j] = target;
            events.push(TraceEvent::Requeue {
                job: j,
                from_chip: f.chip,
                to_chip: target,
                tick: clock,
            });
            // Completed parents' outputs are durable (the coordinator's
            // results store); moving one to the job's new home costs one
            // fresh hop when they sit on different chips.
            for &p in &parents[j] {
                if completed_mask[p] && chip_of[p] != target {
                    let words = transfer_words[p].max(1);
                    let cycles = cfg.transfer_cycles(words);
                    transfers.push(Transfer {
                        parent: JobId::from_index(p),
                        child: JobId::from_index(j),
                        from_chip: chip_of[p],
                        to_chip: target,
                        words,
                        cycles,
                    });
                    *transferred_words += words;
                    *transfer_cycles += cycles;
                    ready_at[j] = ready_at[j].max(clock + cycles);
                    events.push(TraceEvent::Transfer {
                        parent: p,
                        child: j,
                        from_chip: chip_of[p],
                        to_chip: target,
                        words,
                        start: clock,
                        end: clock + cycles,
                    });
                }
            }
        }
    }
    Ok(())
}

/// The deterministic cluster coordinator: per wave, plan each chip's
/// ready jobs with the chip's own core count, dispatch, collect, advance
/// the shared simulated clock by the slowest bucket anywhere, then
/// release children — delaying any child whose parent ran on another chip
/// by the modeled transfer. A wave with no ready jobs but pending
/// transfers fast-forwards the clock to the next arrival (a transfer
/// stall). Everything is planned from cost hints, the partition and the
/// transfer model, so runs are bit-identical across reruns and host
/// interleavings; with one chip and no cut edges this is exactly the
/// single-chip wave loop.
///
/// Fault injection: `faults` (kills on the session clock, `base` =
/// session clock at run start) is honored at wave boundaries through
/// [`apply_due_faults`] — `chip_of` and `dead` are updated in place as
/// chips die and their jobs requeue. The run's [`EventLog`] records job
/// spans, transfers, faults, requeues and idle fast-forwards, all on the
/// run-relative simulated clock.
#[allow(clippy::too_many_arguments)] // the coordinator's full context is the point
fn drive_cluster<T>(
    cfg: &ClusterConfig,
    costs: &[u64],
    transfer_words: &[u64],
    parents: &[Vec<usize>],
    children: &[Vec<usize>],
    chip_of: &mut [usize],
    dead: &mut [bool],
    faults: &[FaultEvent],
    base: u64,
    tenant_of: &[usize],
    weights: &[u64],
    usage: &mut [u64],
    boost: &[u64],
    sched: Scheduler,
    mut dispatch: impl FnMut(usize, usize),
    mut collect: impl FnMut() -> Done<T>,
) -> Result<ClusterMultiRun<T>, SimError> {
    let n = costs.len();
    let chips = cfg.chips.len();
    let cores_per_chip: Vec<usize> = cfg.chips.iter().map(|c| c.cores).collect();
    // Global core index = chip_base[chip] + core-within-chip.
    let mut chip_base = vec![0usize; chips];
    for c in 1..chips {
        chip_base[c] = chip_base[c - 1] + cores_per_chip[c - 1];
    }
    let total_cores = cfg.total_cores();

    let priority = critical_paths(costs, children);
    let mut indegree: Vec<usize> = parents.iter().map(|p| p.len()).collect();
    // Jobs whose parents all completed, waiting for `ready_at` (transfer
    // arrival) and a planner slot. Kept sorted by job id.
    let mut pending: Vec<usize> = (0..n).filter(|&j| indegree[j] == 0).collect();
    let mut ready_at = vec![0u64; n];

    let mut outputs: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut assignment = vec![(0usize, 0usize); n];
    let mut wave_of = vec![0usize; n];
    let mut dispatch_slot = vec![(0usize, 0usize); n]; // (global core, bucket position)
    let mut per_core = vec![ExecStats::default(); total_cores];
    let mut jobs_per_core = vec![0u64; total_cores];
    let mut idle_per_core = vec![0u64; total_cores];
    let mut per_tenant = vec![TenantDelta::default(); weights.len()];
    let mut job_cycles = vec![0u64; n];
    let mut in_wave = vec![false; n];
    let mut completed_mask = vec![false; n];
    let mut applied = vec![false; faults.len()];
    let mut transfers: Vec<Transfer> = Vec::new();
    let mut transferred_words = 0u64;
    let mut transfer_cycles = 0u64;
    let mut transfer_stall_cycles = 0u64;
    let mut clock = 0u64;
    let mut waves = 0usize;
    let mut wave_ends: Vec<u64> = Vec::new();
    let mut events = EventLog::new();

    while !pending.is_empty() {
        // Faults due before any wave runs (at run start, or during a
        // fast-forward gap) fire here; nothing is in flight, so there is
        // nothing to revoke.
        let mut no_wave: Vec<usize> = Vec::new();
        apply_due_faults(
            cfg,
            faults,
            &mut applied,
            dead,
            base,
            clock,
            chip_of,
            costs,
            transfer_words,
            parents,
            &completed_mask,
            &assignment,
            &mut in_wave,
            &mut outputs,
            &mut no_wave,
            &mut ready_at,
            &mut transfers,
            &mut transferred_words,
            &mut transfer_cycles,
            events.len(),
            &mut events,
        )?;

        let ready: Vec<usize> = pending
            .iter()
            .copied()
            .filter(|&j| ready_at[j] <= clock)
            .collect();
        if ready.is_empty() {
            // Every pending job is waiting on an in-flight transfer:
            // fast-forward to the earliest arrival — clamped to the next
            // scheduled fault, so a kill falling inside the gap still
            // fires at its own tick. The whole cluster idles through.
            let next_ready = pending.iter().map(|&j| ready_at[j]).min().unwrap();
            let next_fault = faults
                .iter()
                .zip(applied.iter())
                .filter(|(f, &a)| !a && !dead[f.chip] && f.tick > base + clock)
                .map(|(f, _)| f.tick - base)
                .min();
            let next = next_fault.map_or(next_ready, |ft| next_ready.min(ft));
            let gap = next - clock;
            for idle in idle_per_core.iter_mut() {
                *idle += gap;
            }
            transfer_stall_cycles += gap;
            events.push(TraceEvent::IdleFastForward {
                start: clock,
                end: next,
            });
            clock = next;
            continue;
        }

        // Plan chip by chip in chip order; FairShare usage is charged as
        // each chip's buckets are fixed, so later chips see earlier
        // chips' picks — one global deficit account, deterministically.
        in_wave.iter_mut().for_each(|w| *w = false);
        let mut by_core: Vec<Vec<usize>> = vec![Vec::new(); total_cores];
        let mut dispatched = 0usize;
        for chip in 0..chips {
            if dead[chip] {
                continue; // requeue keeps dead chips out of chip_of too
            }
            let chip_ready: Vec<usize> = ready
                .iter()
                .copied()
                .filter(|&j| chip_of[j] == chip)
                .collect();
            if chip_ready.is_empty() {
                continue;
            }
            let buckets = match sched {
                Scheduler::FairShare => plan_wave_tenanted_slo(
                    &chip_ready,
                    costs,
                    &priority,
                    tenant_of,
                    usage,
                    weights,
                    boost,
                    cores_per_chip[chip],
                ),
                _ => plan_wave(sched, &chip_ready, costs, &priority, cores_per_chip[chip]),
            };
            for (core, bucket) in buckets.iter().enumerate() {
                let g = chip_base[chip] + core;
                for (pos, &j) in bucket.iter().enumerate() {
                    assignment[j] = (chip, core);
                    wave_of[j] = waves;
                    in_wave[j] = true;
                    dispatch_slot[j] = (g, pos);
                    by_core[g].push(j);
                    let t = tenant_of[j];
                    per_tenant[t].wait_cycles += clock - ready_at[j];
                    per_tenant[t].cost_dispatched += costs[j].max(1);
                    usage[t] += costs[j].max(1);
                    dispatch(g, j);
                    dispatched += 1;
                }
            }
        }
        waves += 1;
        let wave_start = clock;

        let mut wave_cycles = vec![0u64; total_cores];
        // Same failure and metering semantics as `drive_multi`, by
        // construction: both coordinators collect through the shared
        // `collect_wave` (cores indexed globally here).
        let mut completed = collect_wave(
            dispatched,
            &mut collect,
            &dispatch_slot,
            tenant_of,
            &mut wave_cycles,
            &mut per_core,
            &mut jobs_per_core,
            &mut per_tenant,
            &mut outputs,
            &mut job_cycles,
        )?;

        let span = wave_cycles.iter().copied().max().unwrap_or(0);
        for c in 0..total_cores {
            idle_per_core[c] += span - wave_cycles[c];
        }
        clock += span;
        wave_ends.push(clock);

        // Log the wave's job spans: a core runs its bucket in position
        // order, so starts are prefix sums of the per-job busy cycles.
        let wave_events_start = events.len();
        for bucket in &by_core {
            let mut t = wave_start;
            for &j in bucket {
                let (chip, core) = assignment[j];
                events.push(TraceEvent::Job {
                    job: j,
                    tenant: tenant_of[j],
                    chip,
                    core,
                    start: t,
                    end: t + job_cycles[j],
                    discarded: false,
                });
                t += job_cycles[j];
            }
        }

        // A kill whose tick fell inside this wave fires now, at the
        // boundary: it discards the dying chip's slice of the wave and
        // requeues its jobs before any child is released.
        apply_due_faults(
            cfg,
            faults,
            &mut applied,
            dead,
            base,
            clock,
            chip_of,
            costs,
            transfer_words,
            parents,
            &completed_mask,
            &assignment,
            &mut in_wave,
            &mut outputs,
            &mut completed,
            &mut ready_at,
            &mut transfers,
            &mut transferred_words,
            &mut transfer_cycles,
            wave_events_start,
            &mut events,
        )?;

        // Release children; a cross-chip edge delays the child by the
        // modeled transfer and records the charge (exactly once per cut
        // edge on the fault-free path — a parent completes exactly once;
        // requeues may re-charge an edge to the child's new home).
        completed.sort_unstable();
        for &j in &completed {
            completed_mask[j] = true;
            for &child in &children[j] {
                let arrival = if chip_of[child] != chip_of[j] {
                    let words = transfer_words[j].max(1);
                    let cycles = cfg.transfer_cycles(words);
                    transfers.push(Transfer {
                        parent: JobId::from_index(j),
                        child: JobId::from_index(child),
                        from_chip: chip_of[j],
                        to_chip: chip_of[child],
                        words,
                        cycles,
                    });
                    transferred_words += words;
                    transfer_cycles += cycles;
                    events.push(TraceEvent::Transfer {
                        parent: j,
                        child,
                        from_chip: chip_of[j],
                        to_chip: chip_of[child],
                        words,
                        start: clock,
                        end: clock + cycles,
                    });
                    clock + cycles
                } else {
                    clock
                };
                ready_at[child] = ready_at[child].max(arrival);
                indegree[child] -= 1;
                if indegree[child] == 0 {
                    pending.push(child);
                }
            }
        }
        // Undispatched ready jobs (the quantum-capped policy's backlog)
        // stay pending; newly released children and fault-revoked jobs
        // joined them above (revocation clears `in_wave`).
        pending.retain(|&j| !in_wave[j]);
        pending.sort_unstable();
    }

    let mut aggregate = ExecStats::default();
    for s in &per_core {
        aggregate.merge(s);
    }
    let outputs: Vec<T> = outputs
        .into_iter()
        .enumerate()
        .map(|(j, o)| o.unwrap_or_else(|| panic!("job {j} never became ready (dangling parent?)")))
        .collect();

    let mut per_chip = Vec::with_capacity(chips);
    let mut idle_nested = Vec::with_capacity(chips);
    for chip in 0..chips {
        let range = chip_base[chip]..chip_base[chip] + cores_per_chip[chip];
        let chip_cores: Vec<ExecStats> = per_core[range.clone()].to_vec();
        let mut chip_aggregate = ExecStats::default();
        for s in &chip_cores {
            chip_aggregate.merge(s);
        }
        per_chip.push(ChipStats {
            per_core: chip_cores,
            jobs_per_core: jobs_per_core[range.clone()].to_vec(),
            makespan_cycles: clock,
            aggregate: chip_aggregate,
        });
        idle_nested.push(idle_per_core[range].to_vec());
    }

    Ok(ClusterMultiRun {
        outputs,
        assignment,
        wave_of,
        waves,
        wave_ends,
        idle_per_core: idle_nested,
        transfers,
        stats: ClusterStats {
            per_chip,
            makespan_cycles: clock,
            transferred_words,
            transfer_cycles,
            transfer_stall_cycles,
            aggregate,
        },
        per_tenant,
        events,
    })
}

/// Package an event-mode run into the shape the cluster doors consume:
/// split the flat per-core stats back into per-chip [`ChipStats`] (every
/// chip reports the cluster makespan, exactly like wave mode), and read
/// the sorted distinct completion ticks as the wave clock. Event-mode
/// `transfer_stall_cycles` are the all-cores-idle gaps the heap hopped
/// over; per core, `busy + idle + stall = makespan`.
fn package_event_run<T>(cfg: &ClusterConfig, run: EventRun<T>) -> ClusterMultiRun<T> {
    let chips = cfg.chips.len();
    let mut chip_base = vec![0usize; chips];
    for c in 1..chips {
        chip_base[c] = chip_base[c - 1] + cfg.chips[c - 1].cores;
    }
    let mut aggregate = ExecStats::default();
    for s in &run.per_core {
        aggregate.merge(s);
    }
    let mut per_chip = Vec::with_capacity(chips);
    let mut idle_nested = Vec::with_capacity(chips);
    for (chip, &base) in chip_base.iter().enumerate() {
        let range = base..base + cfg.chips[chip].cores;
        let chip_cores: Vec<ExecStats> = run.per_core[range.clone()].to_vec();
        let mut chip_aggregate = ExecStats::default();
        for s in &chip_cores {
            chip_aggregate.merge(s);
        }
        per_chip.push(ChipStats {
            per_core: chip_cores,
            jobs_per_core: run.jobs_per_core[range.clone()].to_vec(),
            makespan_cycles: run.makespan,
            aggregate: chip_aggregate,
        });
        idle_nested.push(run.idle_per_core[range].to_vec());
    }
    ClusterMultiRun {
        outputs: run.outputs,
        assignment: run.assignment,
        wave_of: run.wave_of,
        waves: run.wave_ends.len(),
        wave_ends: run.wave_ends,
        idle_per_core: idle_nested,
        transfers: run.transfers,
        stats: ClusterStats {
            per_chip,
            makespan_cycles: run.makespan,
            transferred_words: run.transferred_words,
            transfer_cycles: run.transfer_cycles,
            transfer_stall_cycles: run.stall_cycles,
            aggregate,
        },
        per_tenant: run.per_tenant,
        events: run.events,
    }
}

/// A multi-chip deployment: N [`LacChip`]s behind one deterministic
/// partition-and-coordinate front door, with cluster-wide multi-tenant
/// admission.
///
/// Like [`LacChip`] (and unlike the persistent
/// [`crate::service::LacService`]), a cluster borrows the calling thread
/// and scoped workers per run: one worker per core per chip, each owning
/// its shard's [`crate::engine::LacEngine`] for the duration of the run. Shard state and
/// session meters persist across runs — the chips are owned, not rebuilt.
///
/// ```
/// use lac_sim::{ChipConfig, ClusterConfig, JobGraph, LacCluster, LacConfig, Scheduler};
/// use lac_sim::{ProgramJob, ProgramBuilder};
///
/// // Two 2-core chips joined by a 4-words/cycle, 200-cycle-hop link.
/// let cfg = ClusterConfig::homogeneous(2, ChipConfig::new(2, LacConfig::default()));
/// let mut cluster: LacCluster<ProgramJob> = LacCluster::new(cfg);
///
/// // Two independent 1-job graphs fused into one submission: the
/// // CostBins partitioner gives each component its own chip.
/// let mut graph = JobGraph::new();
/// for _ in 0..2 {
///     let mut b = ProgramBuilder::new(LacConfig::default().nr);
///     b.idle(8);
///     graph.add(ProgramJob::new(b.build()));
/// }
/// let run = cluster.run_graph(&graph, Scheduler::CriticalPath).unwrap();
/// assert_eq!(run.outputs.len(), 2);
/// assert_eq!(run.partition.chip_of, vec![0, 1]);
/// assert!(run.transfers.is_empty(), "no edges were cut");
/// ```
pub struct LacCluster<J: ChipJob> {
    cfg: ClusterConfig,
    partitioner: Partitioner,
    chips: Vec<LacChip>,
    tenants: Vec<(TenantConfig, TenantSession)>,
    pending: Vec<PendingGraph<J>>,
    next_seq: u64,
    session: ClusterSession,
    fault_plan: FaultPlan,
    dead: Vec<bool>,
    program_cache: ProgramCache,
}

impl<J: ChipJob> LacCluster<J> {
    /// Build every chip of `cfg` (each chip's bandwidth budget splits
    /// across its cores per [`ChipConfig::shard_config`]) with the
    /// default [`Partitioner::CostBins`]. Every core of every chip joins
    /// one cluster-wide compile cache, so a program replicated across the
    /// whole fleet compiles once (see [`LacCluster::program_cache`]).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(!cfg.chips.is_empty(), "a cluster has at least one chip");
        let program_cache = ProgramCache::new();
        let chips: Vec<LacChip> = cfg
            .chips
            .iter()
            .map(|&c| LacChip::with_program_cache(c, program_cache.clone()))
            .collect();
        let dead = vec![false; chips.len()];
        Self {
            cfg,
            partitioner: Partitioner::CostBins,
            chips,
            tenants: Vec::new(),
            pending: Vec::new(),
            next_seq: 0,
            session: ClusterSession::default(),
            fault_plan: FaultPlan::new(),
            dead,
            program_cache,
        }
    }

    /// The compile cache shared by every core of every chip.
    pub fn program_cache(&self) -> &ProgramCache {
        &self.program_cache
    }

    /// Override the placement policy (see [`Partitioner`]).
    pub fn with_partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = p;
        self
    }

    /// Install a fault-injection schedule, builder-style (see
    /// [`LacCluster::inject_faults`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.inject_faults(plan);
        self
    }

    /// Merge `plan`'s scheduled kills into the cluster's fault plan.
    /// Ticks are on the session clock ([`ClusterSession::clock_cycles`]);
    /// each kill fires at the first wave boundary at or after its tick
    /// and persists — a dead chip stays dead across rounds. See
    /// [`FaultPlan`] for the full fault model.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        for k in plan.kills() {
            assert!(
                k.chip < self.chips.len(),
                "fault plan kills chip {} of a {}-chip cluster",
                k.chip,
                self.chips.len()
            );
        }
        self.fault_plan.merge(plan);
    }

    /// The installed fault schedule (applied kills included).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Which chips have died so far, by chip index.
    pub fn dead_chips(&self) -> &[bool] {
        &self.dead
    }

    /// Chips still alive (new rounds are partitioned over these only).
    pub fn alive_chips(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Partition over the *alive* chips only, then remap onto real chip
    /// indices — a dead chip never receives new work. Errors with
    /// [`HazardKind::AllChipsDead`] when no chip survives.
    fn partition_alive(
        &self,
        costs: &[u64],
        parents: &[Vec<usize>],
    ) -> Result<Partition, SimError> {
        let chips = self.chips.len();
        let alive: Vec<usize> = (0..chips).filter(|&c| !self.dead[c]).collect();
        if alive.is_empty() {
            return Err(SimError {
                cycle: self.session.clock_cycles as usize,
                pe: None,
                kind: HazardKind::AllChipsDead { chips },
            });
        }
        let part = partition_costs(self.partitioner, costs, parents, alive.len());
        if alive.len() == chips {
            return Ok(part);
        }
        let chip_of: Vec<usize> = part.chip_of.iter().map(|&c| alive[c]).collect();
        let mut chip_cost = vec![0u64; chips];
        for (i, &cost) in part.chip_cost.iter().enumerate() {
            chip_cost[alive[i]] = cost;
        }
        Ok(Partition {
            chip_of,
            cut_edges: part.cut_edges,
            chip_cost,
        })
    }

    /// The cluster's static configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The active placement policy.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Number of chips.
    pub fn num_chips(&self) -> usize {
        self.chips.len()
    }

    /// One chip (its shards' session meters survive cluster runs).
    pub fn chip(&self, i: usize) -> &LacChip {
        &self.chips[i]
    }

    /// Lifetime meters across every completed run since construction.
    pub fn session(&self) -> &ClusterSession {
        &self.session
    }

    /// Run a dependency graph sharded across the cluster's chips under
    /// `sched`.
    ///
    /// The graph is partitioned first (see [`Partitioner`]), then
    /// executed in deterministic waves: each chip plans its own ready
    /// bucket per wave from cost hints, cross-chip edges delay children
    /// by the modeled transfer, and the shared simulated clock advances
    /// by the slowest bucket anywhere. Outputs come back in submission
    /// order regardless of placement, bit-identical across reruns,
    /// policies and host interleavings (the same guarantee as
    /// [`LacChip::run_graph`], which an N=1 cluster reproduces exactly).
    ///
    /// Error semantics match [`LacChip::run_graph`]: the earliest
    /// observed failure (by global core index, then bucket position) is
    /// returned, peers stop at their next job boundary, and work that
    /// already simulated stays metered in the shard sessions.
    pub fn run_graph(
        &mut self,
        graph: &JobGraph<J>,
        sched: Scheduler,
    ) -> Result<ClusterRun<J::Output>, SimError> {
        let costs: Vec<u64> = graph.jobs.iter().map(|j| j.cost_hint()).collect();
        let transfer_words: Vec<u64> = graph.jobs.iter().map(|j| j.transfer_words()).collect();
        let partition = self.partition_alive(
            &costs.iter().map(|&c| c.max(1)).collect::<Vec<_>>(),
            &graph.parents,
        )?;
        let tenant_of = vec![0usize; costs.len()];
        let mut usage = [0u64];
        let mut chip_of = partition.chip_of.clone();
        let run = self.run_scoped(
            |job| &graph.jobs[job],
            &costs,
            &transfer_words,
            &graph.parents,
            &graph.children,
            &mut chip_of,
            &tenant_of,
            &[1],
            &mut usage,
            &[u64::MAX],
            sched,
        )?;
        self.session.clock_cycles += run.stats.makespan_cycles;
        self.session.graphs_run += 1;
        self.session.transferred_words += run.stats.transferred_words;
        self.session.transfer_cycles += run.stats.transfer_cycles;
        Ok(ClusterRun {
            outputs: run.outputs,
            partition,
            assignment: run.assignment,
            wave_of: run.wave_of,
            waves: run.waves,
            wave_end_cycles: run.wave_ends,
            idle_per_core: run.idle_per_core,
            transfers: run.transfers,
            stats: run.stats,
            events: run.events,
        })
    }

    /// Register a tenant on the cluster-wide multi-tenant door. The
    /// tenant's admission budget and fair-share weight span every chip —
    /// one budget, however many chips its graphs land on.
    pub fn add_tenant(&mut self, cfg: TenantConfig) -> TenantId {
        let id = TenantId::from_index(self.tenants.len());
        self.tenants.push((cfg, TenantSession::default()));
        id
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The policy knobs tenant `t` registered with.
    pub fn tenant_config(&self, t: TenantId) -> &TenantConfig {
        &self.tenants[t.index()].0
    }

    /// The tenant's lifetime meters (updated only by completed rounds).
    pub fn tenant_session(&self, t: TenantId) -> &TenantSession {
        &self.tenants[t.index()].1
    }

    /// Model a gap between rounds: every chip sits powered but idle for
    /// `cycles`. Only the cluster clock advances — the open-loop door the
    /// traffic layer uses to fast-forward to the next arrival (the
    /// cluster counterpart of
    /// [`crate::service::LacService::advance_idle`]).
    pub fn advance_idle(&mut self, cycles: u64) {
        self.session.clock_cycles += cycles;
    }

    /// Graphs admitted and waiting for the next
    /// [`LacCluster::run_admitted`].
    pub fn pending_graphs(&self) -> usize {
        self.pending.len()
    }

    /// Submit a graph through tenant `t`'s cluster-wide admission door —
    /// identical deterministic-backpressure semantics to
    /// [`crate::service::LacService::enqueue`] (it runs the same
    /// admission function), with one budget covering all chips.
    pub fn enqueue(&mut self, t: TenantId, graph: JobGraph<J>) -> Result<GraphTicket, Rejected<J>> {
        let pending = admit(&mut self.tenants, &mut self.next_seq, t, graph)?;
        let ticket = pending.ticket;
        self.pending.push(pending);
        Ok(ticket)
    }

    /// Run every admitted graph in one interleaved, sharded round: the
    /// graphs fuse into a single pool (edges never cross graphs), the
    /// pool is partitioned across chips, and execution interleaves
    /// wave-by-wave under `sched` with the same fair-share deficits,
    /// banked-credit cap and failure semantics as
    /// [`crate::service::LacService::run_admitted`]. On success the round
    /// folds into the cluster session and each tenant's
    /// [`TenantSession`]; on error the round's graphs are dropped and
    /// their in-flight cost drains.
    pub fn run_admitted(&mut self, sched: Scheduler) -> Result<ClusterRound<J::Output>, SimError> {
        let boost = vec![u64::MAX; self.tenants.len()];
        self.run_admitted_boosted(sched, &boost)
    }

    /// [`LacCluster::run_admitted`] with a per-tenant SLO boost —
    /// identical semantics to
    /// [`crate::service::LacService::run_admitted_boosted`]: `boost[t]` is
    /// tenant `t`'s deadline slack in simulated cycles (`u64::MAX` =
    /// unboosted), served least-slack-first by the fair-share planner on
    /// every chip, without preemption and without changing any output
    /// bits.
    pub fn run_admitted_boosted(
        &mut self,
        sched: Scheduler,
        boost: &[u64],
    ) -> Result<ClusterRound<J::Output>, SimError> {
        assert_eq!(
            boost.len(),
            self.tenants.len(),
            "one boost slack per registered tenant"
        );
        let pending = std::mem::take(&mut self.pending);
        let chips = self.chips.len();
        if pending.is_empty() {
            return Ok(ClusterRound {
                graphs: Vec::new(),
                partition: Partition {
                    chip_of: Vec::new(),
                    cut_edges: Vec::new(),
                    chip_cost: vec![0; chips],
                },
                waves: 0,
                wave_end_cycles: Vec::new(),
                transfers: Vec::new(),
                stats: ClusterStats {
                    per_chip: self
                        .cfg
                        .chips
                        .iter()
                        .map(|c| ChipStats {
                            per_core: vec![ExecStats::default(); c.cores],
                            jobs_per_core: vec![0; c.cores],
                            makespan_cycles: 0,
                            aggregate: ExecStats::default(),
                        })
                        .collect(),
                    makespan_cycles: 0,
                    transferred_words: 0,
                    transfer_cycles: 0,
                    transfer_stall_cycles: 0,
                    aggregate: ExecStats::default(),
                },
                events: EventLog::new(),
            });
        }

        let pool = FusedPool::new(pending);
        let partition = match self.partition_alive(
            &pool.costs.iter().map(|&c| c.max(1)).collect::<Vec<_>>(),
            &pool.parents,
        ) {
            Ok(p) => p,
            Err(e) => {
                drain_inflight(&mut self.tenants, &pool);
                return Err(e);
            }
        };
        let weights: Vec<u64> = self.tenants.iter().map(|(c, _)| c.weight.max(1)).collect();
        let mut usage: Vec<u64> = self.tenants.iter().map(|(_, s)| s.cost_completed).collect();
        cap_banked_credit(&mut usage, &weights, &pool.backlog(self.tenants.len()));

        let mut chip_of = partition.chip_of.clone();
        let run = self.run_scoped(
            |job| {
                let (g, local) = pool.owner[job];
                &pool.graphs[g].jobs[local]
            },
            &pool.costs,
            &pool.transfer_words,
            &pool.parents,
            &pool.children,
            &mut chip_of,
            &pool.tenant_of,
            &weights,
            &mut usage,
            boost,
            sched,
        );
        let run = match run {
            Ok(run) => run,
            Err(e) => {
                drain_inflight(&mut self.tenants, &pool);
                return Err(e);
            }
        };

        self.session.clock_cycles += run.stats.makespan_cycles;
        self.session.graphs_run += pool.graphs.len() as u64;
        self.session.transferred_words += run.stats.transferred_words;
        self.session.transfer_cycles += run.stats.transfer_cycles;
        settle_round(&mut self.tenants, &pool, &run.per_tenant);

        // Flatten (chip, core) to global core indices for the shared
        // GraphCompletion shape.
        let mut chip_base = vec![0usize; chips];
        for c in 1..chips {
            chip_base[c] = chip_base[c - 1] + self.cfg.chips[c - 1].cores;
        }
        let global: Vec<usize> = run
            .assignment
            .iter()
            .map(|&(chip, core)| chip_base[chip] + core)
            .collect();
        let completions = pool.completions(run.outputs, &global, &run.wave_of);
        Ok(ClusterRound {
            graphs: completions,
            partition,
            waves: run.waves,
            wave_end_cycles: run.wave_ends,
            transfers: run.transfers,
            stats: run.stats,
            events: run.events,
        })
    }

    /// Spawn one scoped worker per core per chip and drive the fused job
    /// pool through [`drive_cluster`]. `job_of` resolves a pool index to
    /// the job to run (identity for [`LacCluster::run_graph`], the owner
    /// map for rounds). `chip_of` is mutable because a fault requeues
    /// jobs off the dead chip in place; chips killed during the run stay
    /// marked in `self.dead` for every later round.
    #[allow(clippy::too_many_arguments)] // mirrors the coordinator it feeds
    fn run_scoped<'j>(
        &mut self,
        job_of: impl Fn(usize) -> &'j J + Sync,
        costs: &[u64],
        transfer_words: &[u64],
        parents: &[Vec<usize>],
        children: &[Vec<usize>],
        chip_of: &mut [usize],
        tenant_of: &[usize],
        weights: &[u64],
        usage: &mut [u64],
        boost: &[u64],
        sched: Scheduler,
    ) -> Result<ClusterMultiRun<J::Output>, SimError>
    where
        J: 'j,
    {
        let faults: Vec<FaultEvent> = self.fault_plan.kills().to_vec();
        let base = self.session.clock_cycles;
        let cfg = &self.cfg;
        let chips = &mut self.chips;
        let dead = &mut self.dead;
        let abort = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (done_tx, done_rx) = std::sync::mpsc::channel::<Done<J::Output>>();
            let mut txs = Vec::with_capacity(cfg.total_cores());
            for chip in chips.iter_mut() {
                for eng in chip.shards_mut().iter_mut() {
                    let core = txs.len();
                    let (tx, rx) = std::sync::mpsc::channel::<usize>();
                    txs.push(tx);
                    let done_tx = done_tx.clone();
                    let abort = &abort;
                    let job_of = &job_of;
                    scope.spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let outcome = run_one(eng, job_of(job), abort);
                            if done_tx.send(Done { core, job, outcome }).is_err() {
                                break;
                            }
                        }
                    });
                }
            }
            let dispatch = |core: usize, job| txs[core].send(job).expect("cluster worker hung up");
            let collect = || done_rx.recv().expect("cluster worker hung up");
            match cfg.sim_mode {
                SimMode::Wave => drive_cluster(
                    cfg,
                    costs,
                    transfer_words,
                    parents,
                    children,
                    chip_of,
                    dead,
                    &faults,
                    base,
                    tenant_of,
                    weights,
                    usage,
                    boost,
                    sched,
                    dispatch,
                    collect,
                ),
                SimMode::Event => {
                    let topo = EventTopology {
                        cores_per_chip: cfg.chips.iter().map(|c| c.cores).collect(),
                        link_words_per_cycle: cfg.link_words_per_cycle,
                        hop_latency_cycles: cfg.hop_latency_cycles,
                    };
                    drive_event(
                        &topo,
                        costs,
                        transfer_words,
                        parents,
                        children,
                        chip_of,
                        dead,
                        &faults,
                        base,
                        tenant_of,
                        weights,
                        usage,
                        boost,
                        sched,
                        dispatch,
                        collect,
                    )
                    .map(|run| package_event_run(cfg, run))
                }
            }
            // `txs` drop here; the scoped workers drain and the scope
            // joins them.
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ProgramJob;
    use crate::config::LacConfig;
    use crate::isa::{ExtOp, ProgramBuilder, Source};

    /// One external load + one MAC + `extra` idle cycles, with a chosen
    /// scheduler cost.
    fn job(extra: usize, cost: u64) -> ProgramJob {
        let cfg = LacConfig::default();
        let mut b = ProgramBuilder::new(cfg.nr);
        let t = b.push_step();
        b.ext(t, ExtOp::Load { col: 0, addr: 0 });
        b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
        b.idle(cfg.fpu.pipeline_depth + extra);
        let mut j = ProgramJob::new(b.build());
        j.cost = cost;
        j
    }

    /// `count` independent diamond components (1 → {2} → 1 jobs each).
    fn diamonds(count: usize) -> JobGraph<ProgramJob> {
        let mut g = JobGraph::new();
        for k in 0..count {
            let a = g.add(job(k, 4));
            let b = g.add_after(job(k + 1, 2), &[a]);
            let c = g.add_after(job(k + 2, 2), &[a]);
            g.add_after(job(k, 1), &[b, c]);
        }
        g
    }

    #[test]
    fn cost_bins_keep_components_whole_and_balance_load() {
        let g = diamonds(4);
        let part = Partitioner::CostBins.partition(&g, 2);
        assert_eq!(part.chip_of.len(), 16);
        // Components stay whole: all four jobs of a diamond share a chip.
        for k in 0..4 {
            let chips: Vec<usize> = (4 * k..4 * k + 4).map(|j| part.chip_of[j]).collect();
            assert!(
                chips.windows(2).all(|w| w[0] == w[1]),
                "component {k} split"
            );
        }
        assert!(part.cut_edges.is_empty(), "no component edges were cut");
        // Equal-cost components split two per chip.
        assert_eq!(part.chip_cost, vec![18, 18]);
    }

    #[test]
    fn striped_partition_cuts_edges_and_charges_each_once() {
        let g = diamonds(2);
        let cfg = ClusterConfig::homogeneous(2, ChipConfig::new(2, LacConfig::default()))
            .with_link(2, 50);
        let part = Partitioner::Striped.partition(&g, 2);
        assert!(!part.cut_edges.is_empty());
        let mut cluster: LacCluster<ProgramJob> =
            LacCluster::new(cfg).with_partitioner(Partitioner::Striped);
        let run = cluster.run_graph(&g, Scheduler::CriticalPath).unwrap();
        // Exactly one transfer per cut edge, each edge exactly once.
        assert_eq!(run.transfers.len(), part.cut_edges.len());
        let mut charged: Vec<(JobId, JobId)> =
            run.transfers.iter().map(|t| (t.parent, t.child)).collect();
        charged.sort();
        let mut cut = part.cut_edges.clone();
        cut.sort();
        assert_eq!(charged, cut);
        // ProgramJob's default transfer hint is 1 word: every charge is
        // hop + ceil(1/2) cycles, and the totals add up.
        for t in &run.transfers {
            assert_eq!(t.words, 1);
            assert_eq!(t.cycles, 50 + 1);
            assert_ne!(t.from_chip, t.to_chip);
        }
        assert_eq!(run.stats.transferred_words, run.transfers.len() as u64);
        assert_eq!(
            run.stats.transfer_cycles,
            run.transfers.iter().map(|t| t.cycles).sum::<u64>()
        );
        // Cross-chip latency showed up on the clock.
        assert!(run.stats.transfer_stall_cycles > 0);
        assert!(run.stats.makespan_cycles > run.stats.aggregate.cycles / 4);
    }

    #[test]
    fn single_chip_cluster_is_bit_identical_to_the_chip_door() {
        let cfg = ChipConfig::new(3, LacConfig::default()).with_bandwidth_budget(12);
        for sched in [
            Scheduler::Fifo,
            Scheduler::LeastLoaded,
            Scheduler::CriticalPath,
            Scheduler::FairShare,
        ] {
            let mut cluster: LacCluster<ProgramJob> =
                LacCluster::new(ClusterConfig::homogeneous(1, cfg));
            let via_cluster = cluster.run_graph(&diamonds(3), sched).unwrap();
            let mut chip = LacChip::new(cfg);
            let via_chip = chip.run_graph(&diamonds(3), sched).unwrap();
            assert_eq!(via_cluster.outputs, via_chip.outputs, "{sched:?}");
            assert_eq!(
                via_cluster.stats.per_chip[0].per_core,
                via_chip.stats.per_core
            );
            assert_eq!(
                via_cluster.stats.makespan_cycles,
                via_chip.stats.makespan_cycles
            );
            assert_eq!(via_cluster.waves, via_chip.waves);
            assert_eq!(via_cluster.stats.transferred_words, 0);
            assert_eq!(via_cluster.stats.transfer_stall_cycles, 0);
            // (chip, core) assignment collapses to the chip's core picks.
            let cores: Vec<usize> = via_cluster.assignment.iter().map(|&(_, c)| c).collect();
            assert_eq!(cores, via_chip.assignment);
        }
    }

    #[test]
    fn reruns_and_policies_are_bit_identical() {
        let cfg = ClusterConfig::homogeneous(3, ChipConfig::new(2, LacConfig::default()));
        let mut baseline: Option<Vec<ExecStats>> = None;
        for sched in [
            Scheduler::Fifo,
            Scheduler::LeastLoaded,
            Scheduler::CriticalPath,
        ] {
            let mut cluster: LacCluster<ProgramJob> = LacCluster::new(cfg.clone());
            let first = cluster.run_graph(&diamonds(5), sched).unwrap();
            let second = cluster.run_graph(&diamonds(5), sched).unwrap();
            assert_eq!(first.outputs, second.outputs, "{sched:?}: rerun diverged");
            assert_eq!(first.stats, second.stats, "{sched:?}: rerun stats diverged");
            assert_eq!(first.transfers, second.transfers);
            match &baseline {
                None => baseline = Some(first.outputs),
                Some(b) => assert_eq!(b, &first.outputs, "{sched:?} changed results"),
            }
        }
    }

    #[test]
    fn sharding_independent_work_beats_one_chip() {
        let chip = ChipConfig::new(2, LacConfig::default());
        let mut solo: LacCluster<ProgramJob> = LacCluster::new(ClusterConfig::homogeneous(1, chip));
        let solo_run = solo
            .run_graph(&diamonds(8), Scheduler::CriticalPath)
            .unwrap();
        let mut quad: LacCluster<ProgramJob> = LacCluster::new(ClusterConfig::homogeneous(4, chip));
        let quad_run = quad
            .run_graph(&diamonds(8), Scheduler::CriticalPath)
            .unwrap();
        assert_eq!(solo_run.outputs, quad_run.outputs, "placement-free outputs");
        assert!(
            quad_run.stats.makespan_cycles * 2 < solo_run.stats.makespan_cycles,
            "4 chips must halve the makespan on embarrassingly shardable work \
             ({} vs {})",
            quad_run.stats.makespan_cycles,
            solo_run.stats.makespan_cycles
        );
        assert!(quad_run.transfers.is_empty());
    }

    #[test]
    fn cluster_tenants_share_one_budget_across_chips() {
        let cfg = ClusterConfig::homogeneous(2, ChipConfig::new(2, LacConfig::default()));
        let mut cluster: LacCluster<ProgramJob> = LacCluster::new(cfg);
        let t = cluster.add_tenant(TenantConfig::new("bounded").with_admission_budget(20));
        let free = cluster.add_tenant(TenantConfig::new("free"));
        let flat = |cost: u64| -> JobGraph<ProgramJob> { (0..4).map(|i| job(i, cost)).collect() };
        cluster.enqueue(t, flat(4)).unwrap(); // 16 in flight
        let rejected = cluster.enqueue(t, flat(2)).unwrap_err();
        assert_eq!(rejected.inflight_cost, 16);
        assert_eq!(rejected.budget, 20);
        cluster.enqueue(free, flat(3)).unwrap();
        assert_eq!(cluster.pending_graphs(), 2);

        let round = cluster.run_admitted(Scheduler::FairShare).unwrap();
        assert_eq!(round.graphs.len(), 2);
        assert_eq!(cluster.tenant_session(t).inflight_cost, 0);
        assert_eq!(cluster.tenant_session(t).graphs_completed, 1);
        assert_eq!(cluster.tenant_session(free).jobs_run, 4);
        // The budget drained: the bounced graph now fits.
        cluster.enqueue(t, rejected.graph).unwrap();
        let round2 = cluster.run_admitted(Scheduler::FairShare).unwrap();
        assert_eq!(round2.graphs.len(), 1);
        // Session meters accumulated both rounds.
        assert_eq!(cluster.session().graphs_run, 3);
        assert_eq!(
            cluster.session().clock_cycles,
            round.stats.makespan_cycles + round2.stats.makespan_cycles
        );
    }

    #[test]
    fn heterogeneous_chips_lay_cores_end_to_end() {
        let cfg = ClusterConfig {
            chips: vec![
                ChipConfig::new(1, LacConfig::default()),
                ChipConfig::new(3, LacConfig::default()),
            ],
            link_words_per_cycle: 4,
            hop_latency_cycles: 10,
            sim_mode: SimMode::Wave,
        };
        assert_eq!(cfg.total_cores(), 4);
        let mut cluster: LacCluster<ProgramJob> = LacCluster::new(cfg);
        let run = cluster
            .run_graph(&diamonds(4), Scheduler::LeastLoaded)
            .unwrap();
        assert_eq!(run.outputs.len(), 16);
        assert_eq!(run.idle_per_core[0].len(), 1);
        assert_eq!(run.idle_per_core[1].len(), 3);
        for (chip, core) in &run.assignment {
            assert!(*core < cluster.chip(*chip).num_cores());
        }
        // Busy + idle reconstructs the makespan on every core.
        for chip in 0..2 {
            for core in 0..run.idle_per_core[chip].len() {
                assert_eq!(
                    run.stats.per_chip[chip].per_core[core].cycles + run.idle_per_core[chip][core],
                    run.stats.makespan_cycles,
                    "chip {chip} core {core}"
                );
            }
        }
    }

    #[test]
    fn failing_job_aborts_the_cluster_run() {
        let bad = {
            let mut b = ProgramBuilder::new(LacConfig::default().nr);
            let t = b.push_step();
            b.pe_mut(t, 0, 0).mac = Some((Source::RowBus, Source::Const(1.0)));
            ProgramJob::new(b.build())
        };
        let mut g = JobGraph::new();
        let a = g.add(job(0, 1));
        g.add_after(bad, &[a]);
        let mut cluster: LacCluster<ProgramJob> = LacCluster::new(ClusterConfig::homogeneous(
            2,
            ChipConfig::new(2, LacConfig::default()),
        ));
        let err = cluster.run_graph(&g, Scheduler::Fifo).unwrap_err();
        assert_eq!(err.cycle, 0);
        assert_eq!(cluster.session().graphs_run, 0, "failed runs do not count");
        // The cluster recovers: the next run completes.
        let run = cluster.run_graph(&diamonds(2), Scheduler::Fifo).unwrap();
        assert_eq!(run.outputs.len(), 8);
        assert_eq!(cluster.session().graphs_run, 1);
    }

    #[test]
    fn chip_loss_preserves_output_bits() {
        use crate::fault::FaultPlan;
        let cfg = ClusterConfig::homogeneous(3, ChipConfig::new(2, LacConfig::default()));
        let mut healthy: LacCluster<ProgramJob> = LacCluster::new(cfg.clone());
        let baseline = healthy
            .run_graph(&diamonds(6), Scheduler::CriticalPath)
            .unwrap();

        let mut faulty: LacCluster<ProgramJob> =
            LacCluster::new(cfg).with_fault_plan(FaultPlan::new().kill(1, 1));
        let run = faulty
            .run_graph(&diamonds(6), Scheduler::CriticalPath)
            .unwrap();
        assert_eq!(
            run.outputs, baseline.outputs,
            "chip loss must never change output bits"
        );
        assert!(
            run.stats.makespan_cycles >= baseline.stats.makespan_cycles,
            "losing a chip cannot speed the run up"
        );
        assert!(faulty.dead_chips()[1]);
        assert_eq!(faulty.alive_chips(), 2);
        // The log tells the story: exactly one fault, at least one requeue,
        // and no job ever lands on the dead chip after its fault tick.
        let ev = run.events.events();
        let fault_tick = ev
            .iter()
            .find_map(|e| match *e {
                TraceEvent::Fault { chip, tick } => {
                    assert_eq!(chip, 1);
                    Some(tick)
                }
                _ => None,
            })
            .expect("fault recorded");
        assert_eq!(
            run.events.count(|e| matches!(e, TraceEvent::Fault { .. })),
            1
        );
        assert!(
            run.events
                .count(|e| matches!(e, TraceEvent::Requeue { .. }))
                > 0
        );
        for e in ev {
            if let TraceEvent::Job {
                chip,
                start,
                discarded,
                ..
            } = *e
            {
                if chip == 1 && !discarded {
                    assert!(start < fault_tick, "dead chip ran a job after dying");
                }
            }
        }
        // A later run still works, on survivors only.
        let run2 = faulty
            .run_graph(&diamonds(6), Scheduler::CriticalPath)
            .unwrap();
        assert_eq!(run2.outputs, baseline.outputs);
        assert!(run2.events.count(|e| matches!(e, TraceEvent::Fault { .. })) == 0);
        for &(chip, _) in &run2.assignment {
            assert_ne!(chip, 1, "dead chip must not receive new work");
        }
    }

    #[test]
    fn exactly_once_and_metering_under_chip_loss() {
        use crate::fault::FaultPlan;
        let cfg = ClusterConfig::homogeneous(2, ChipConfig::new(2, LacConfig::default()));
        let mut cluster: LacCluster<ProgramJob> =
            LacCluster::new(cfg).with_fault_plan(FaultPlan::new().kill(0, 1));
        let run = cluster
            .run_graph(&diamonds(5), Scheduler::CriticalPath)
            .unwrap();
        // Exactly once: every job has exactly one non-discarded Job event.
        let n = 5 * 4;
        let mut runs = vec![0usize; n];
        let mut discarded = vec![0usize; n];
        for e in run.events.events() {
            if let TraceEvent::Job {
                job, discarded: d, ..
            } = *e
            {
                if d {
                    discarded[job] += 1;
                } else {
                    runs[job] += 1;
                }
            }
        }
        assert!(
            runs.iter().all(|&r| r == 1),
            "each job retires exactly once"
        );
        assert!(
            discarded.iter().sum::<usize>() > 0,
            "the kill at tick 1 lands mid-wave and revokes work"
        );
        // Revoked work stays metered: per-core busy + idle still
        // reconstructs the makespan on every core, dead or alive.
        for chip in 0..2 {
            for core in 0..run.idle_per_core[chip].len() {
                assert_eq!(
                    run.stats.per_chip[chip].per_core[core].cycles + run.idle_per_core[chip][core],
                    run.stats.makespan_cycles,
                    "chip {chip} core {core}"
                );
            }
        }
    }

    #[test]
    fn killing_every_chip_is_a_hard_error() {
        use crate::error::HazardKind;
        use crate::fault::FaultPlan;
        let cfg = ClusterConfig::homogeneous(2, ChipConfig::new(1, LacConfig::default()));
        let mut cluster: LacCluster<ProgramJob> =
            LacCluster::new(cfg).with_fault_plan(FaultPlan::new().kill(0, 0).kill(1, 0));
        let err = cluster
            .run_graph(&diamonds(2), Scheduler::Fifo)
            .unwrap_err();
        assert_eq!(err.kind, HazardKind::AllChipsDead { chips: 2 });
        // With both chips dead, even a fresh graph cannot be placed.
        let err2 = cluster
            .run_graph(&diamonds(1), Scheduler::Fifo)
            .unwrap_err();
        assert_eq!(err2.kind, HazardKind::AllChipsDead { chips: 2 });
    }
}
