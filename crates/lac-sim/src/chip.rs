//! Chip-level simulation: a [`LacChip`] owns `S` [`LacEngine`] shards behind
//! a shared external-memory bandwidth budget and a [`Scheduler`] that
//! dispatches a queue of jobs across them (Chapter 4's multi-core LAP, made
//! executable).
//!
//! The analytical chip models in `lac-model` relate core count, on-chip
//! bandwidth and utilization; this module is their simulation counterpart.
//! Production clients of such a chip — e.g. interior-point solvers whose
//! iterations are dominated by independent Cholesky/GEMM factorizations —
//! submit *streams* of jobs, so the unit of work here is a [`ChipJob`]
//! queue, not a single program:
//!
//! * every shard is one [`LacEngine`] session (per-core architectural state
//!   and meters persist across queue runs);
//! * the chip's aggregate external bandwidth budget is partitioned evenly
//!   across the shards (the paper's per-core `x = y/S` words/cycle share of
//!   the on-chip memory's `y`), enforced per core by the simulator's
//!   [`LacConfig::ext_words_per_cycle`] hazard check;
//! * the [`Scheduler`] decides the job → core assignment *before* execution
//!   (from deterministic cost hints), so a queue run is reproducible
//!   bit-for-bit no matter how the host threads interleave;
//! * the shards then run their buckets in parallel on a hand-rolled
//!   [`std::thread::scope`] pool — one worker per core, no work stealing —
//!   and the per-core [`ExecStats`] deltas are merged into a [`ChipStats`]
//!   with per-core breakdown, aggregate counters, and the makespan.
//!
//! Simulated time and host time are distinct: the makespan is the slowest
//! core's *simulated* cycle count for its bucket, which is independent of
//! host scheduling.

use crate::config::LacConfig;
use crate::engine::LacEngine;
use crate::error::SimError;
use crate::isa::Program;
use crate::stats::ExecStats;

/// What one core's worker returns: its bucket's `(job index, output)`
/// pairs, or the first simulation error it hit.
type CoreResult<T> = Result<Vec<(usize, T)>, SimError>;

/// One unit of schedulable work: a job knows how to run itself on a core's
/// engine and how expensive it roughly is (for load-aware placement).
pub trait ChipJob: Send + Sync {
    /// What the job produces (functional outputs plus per-run stats).
    type Output: Send;

    /// Estimated cost in arbitrary-but-consistent units (e.g. flops). Only
    /// the *relative* magnitudes matter, and only to the
    /// [`Scheduler::LeastLoaded`] policy. Defaults to 1 (all jobs equal).
    fn cost_hint(&self) -> u64 {
        1
    }

    /// Execute on one core's engine. Stats must be metered into the
    /// engine's session accumulator (all `LacEngine` run doors do this).
    fn run_on(&self, eng: &mut LacEngine) -> Result<Self::Output, SimError>;
}

/// The simplest job: one [`Program`], optionally with a memory image staged
/// into the engine-owned bank first.
#[derive(Clone, Debug, Default)]
pub struct ProgramJob {
    pub prog: Program,
    /// Replaces the shard's memory bank before the run when present.
    pub image: Option<Vec<f64>>,
    /// Cost reported to the scheduler ([`ChipJob::cost_hint`]).
    pub cost: u64,
}

impl ProgramJob {
    pub fn new(prog: Program) -> Self {
        let cost = prog.steps.len() as u64;
        Self {
            prog,
            image: None,
            cost,
        }
    }

    pub fn with_image(mut self, image: Vec<f64>) -> Self {
        self.image = Some(image);
        self
    }
}

impl ChipJob for ProgramJob {
    type Output = ExecStats;

    fn cost_hint(&self) -> u64 {
        self.cost.max(1)
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<ExecStats, SimError> {
        if let Some(image) = &self.image {
            eng.load_image(image.clone());
        }
        eng.run_program(&self.prog)
    }
}

/// Job → core placement policy. Assignment happens up front from cost
/// hints, so every policy is deterministic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Hand jobs to cores round-robin in arrival order — the queue drains
    /// first-in-first-out with no load awareness.
    #[default]
    Fifo,
    /// Greedy list scheduling: each job (in arrival order) goes to the core
    /// with the least accumulated estimated load, ties to the lowest core
    /// index. With accurate hints this approximates makespan-minimizing
    /// placement (LPT without the sort, keeping arrival order).
    LeastLoaded,
}

impl Scheduler {
    /// Compute the job → core assignment for a queue of `costs` over
    /// `num_cores` cores. `assignment[j]` is the core that runs job `j`.
    pub fn assign(&self, costs: &[u64], num_cores: usize) -> Vec<usize> {
        assert!(num_cores >= 1, "a chip has at least one core");
        match self {
            Scheduler::Fifo => (0..costs.len()).map(|j| j % num_cores).collect(),
            Scheduler::LeastLoaded => {
                let mut load = vec![0u64; num_cores];
                costs
                    .iter()
                    .map(|&c| {
                        let core = (0..num_cores).min_by_key(|&i| (load[i], i)).unwrap();
                        load[core] += c.max(1);
                        core
                    })
                    .collect()
            }
        }
    }
}

/// Static configuration of a chip: `S` identical cores behind one external
/// bandwidth budget.
#[derive(Clone, Copy, Debug)]
pub struct ChipConfig {
    /// Number of cores `S`.
    pub cores: usize,
    /// Per-core configuration (every shard is identical).
    pub core: LacConfig,
    /// Aggregate external-memory bandwidth budget in words/cycle across the
    /// whole chip, split evenly over the cores (each shard gets
    /// `total / cores`, enforced as its `ext_words_per_cycle` cap).
    /// `None` leaves the cores unconstrained.
    pub ext_words_per_cycle_total: Option<usize>,
    /// Initial engine-owned bank size per shard, words.
    pub mem_words_per_core: Option<usize>,
}

impl ChipConfig {
    pub fn new(cores: usize, core: LacConfig) -> Self {
        Self {
            cores,
            core,
            ext_words_per_cycle_total: None,
            mem_words_per_core: None,
        }
    }

    /// Set the aggregate bandwidth budget (words/cycle for the whole chip).
    pub fn with_bandwidth_budget(mut self, words_per_cycle: usize) -> Self {
        self.ext_words_per_cycle_total = Some(words_per_cycle);
        self
    }

    /// The per-core share of the budget, if one is set. The split is even;
    /// a budget smaller than the core count still grants each core one
    /// word/cycle (a core that can never talk to memory cannot run any
    /// kernel at all).
    pub fn per_core_bandwidth(&self) -> Option<usize> {
        self.ext_words_per_cycle_total
            .map(|total| (total / self.cores).max(1))
    }

    /// The effective configuration a shard is built with: the core config
    /// plus this chip's per-core bandwidth cap (the tighter of the two when
    /// the core config already carries one).
    pub fn shard_config(&self) -> LacConfig {
        let cap = match (self.per_core_bandwidth(), self.core.ext_words_per_cycle) {
            (Some(share), Some(own)) => Some(share.min(own)),
            (Some(share), None) => Some(share),
            (None, own) => own,
        };
        LacConfig {
            ext_words_per_cycle: cap,
            ..self.core
        }
    }
}

/// Merged result of one queue run: per-core breakdown plus chip aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct ChipStats {
    /// Stats delta of each core over this queue run, in core order.
    pub per_core: Vec<ExecStats>,
    /// How many jobs each core ran.
    pub jobs_per_core: Vec<u64>,
    /// Simulated makespan: the slowest core's busy cycles for its bucket.
    pub makespan_cycles: u64,
    /// Sum of every core's counters (cycles summed too — that is aggregate
    /// busy time, not wall time; wall time is the makespan).
    pub aggregate: ExecStats,
}

impl ChipStats {
    /// Total jobs dispatched in this run.
    pub fn jobs(&self) -> u64 {
        self.jobs_per_core.iter().sum()
    }

    /// Floating-point operations across all cores.
    pub fn flops(&self) -> u64 {
        self.aggregate.flops()
    }

    /// Whole-chip MAC-slot utilization: executed MACs against the peak of
    /// `S` cores over the makespan. Idle cores (and the slack of cores that
    /// finish early) count against the chip, matching the paper's chip
    /// utilization axis.
    pub fn utilization(&self, nr: usize) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        let peak = self.makespan_cycles as f64 * self.per_core.len() as f64 * (nr * nr) as f64;
        (self.aggregate.mac_ops + self.aggregate.fma_ops) as f64 / peak
    }

    /// Aggregate external-memory traffic per makespan cycle (words/cycle
    /// demanded of the shared interface).
    pub fn ext_words_per_cycle(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        (self.aggregate.ext_reads + self.aggregate.ext_writes) as f64 / self.makespan_cycles as f64
    }

    /// Parallel speedup of this run against the same work on one core:
    /// aggregate busy cycles / makespan.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.aggregate.cycles as f64 / self.makespan_cycles as f64
    }
}

/// Everything a queue run produces: per-job outputs (in submission order)
/// plus the merged [`ChipStats`].
#[derive(Clone, Debug)]
pub struct ChipRun<T> {
    /// One output per job, in the order the jobs were submitted.
    pub outputs: Vec<T>,
    /// Which core ran each job (same order as `outputs`).
    pub assignment: Vec<usize>,
    pub stats: ChipStats,
}

/// A multi-core chip: `S` engine shards plus the scheduler-facing queue
/// door, [`LacChip::run_queue`].
pub struct LacChip {
    cfg: ChipConfig,
    shards: Vec<LacEngine>,
}

impl LacChip {
    pub fn new(cfg: ChipConfig) -> Self {
        assert!(cfg.cores >= 1, "a chip has at least one core");
        let shard_cfg = cfg.shard_config();
        let shards = (0..cfg.cores)
            .map(|_| {
                let mut b = LacEngine::builder().config(shard_cfg);
                if let Some(words) = cfg.mem_words_per_core {
                    b = b.mem_words(words);
                }
                b.build()
            })
            .collect();
        Self { cfg, shards }
    }

    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    pub fn num_cores(&self) -> usize {
        self.shards.len()
    }

    /// One shard's engine (per-core session meters survive queue runs).
    pub fn shard(&self, i: usize) -> &LacEngine {
        &self.shards[i]
    }

    pub fn shard_mut(&mut self, i: usize) -> &mut LacEngine {
        &mut self.shards[i]
    }

    /// Run a queue of jobs to completion under `sched`.
    ///
    /// The assignment is computed up front from the jobs' cost hints, then
    /// every core executes its bucket in arrival order on its own OS thread
    /// (a scoped pool — one worker per core, joined before return). Outputs
    /// come back in submission order regardless of placement.
    ///
    /// On a simulation error the first error (by core index, then bucket
    /// order) is returned; the other workers stop at their next job
    /// boundary rather than draining their buckets. Work that already
    /// simulated stays metered in the shard sessions — sessions meter, they
    /// do not roll back — so `Err` means "the queue did not complete", not
    /// "nothing ran". Use [`LacChip::shard`] session meters (or
    /// `reset_session` per shard) if a retry must not double-count.
    pub fn run_queue<J: ChipJob>(
        &mut self,
        jobs: &[J],
        sched: Scheduler,
    ) -> Result<ChipRun<J::Output>, SimError> {
        let cores = self.shards.len();
        let costs: Vec<u64> = jobs.iter().map(|j| j.cost_hint()).collect();
        let assignment = sched.assign(&costs, cores);

        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); cores];
        for (job, &core) in assignment.iter().enumerate() {
            buckets[core].push(job);
        }

        let before: Vec<ExecStats> = self.shards.iter().map(|e| *e.session_stats()).collect();

        // Hand-rolled scoped pool: one worker per core; each owns exactly
        // its shard (&mut) and reads the shared job slice. A failed worker
        // raises `abort` so its peers stop at the next job boundary instead
        // of simulating the rest of their buckets for a doomed run.
        let abort = std::sync::atomic::AtomicBool::new(false);
        let per_core_outputs: Vec<Vec<(usize, J::Output)>> = {
            let abort = &abort;
            let results: Vec<CoreResult<J::Output>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(&buckets)
                    .map(|(eng, bucket)| {
                        scope.spawn(move || {
                            let mut done = Vec::with_capacity(bucket.len());
                            for &j in bucket {
                                if abort.load(std::sync::atomic::Ordering::Relaxed) {
                                    break;
                                }
                                match jobs[j].run_on(eng) {
                                    Ok(out) => done.push((j, out)),
                                    Err(e) => {
                                        abort.store(true, std::sync::atomic::Ordering::Relaxed);
                                        return Err(e);
                                    }
                                }
                            }
                            Ok(done)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chip worker thread panicked"))
                    .collect()
            });
            results.into_iter().collect::<Result<Vec<_>, _>>()?
        };

        let per_core: Vec<ExecStats> = self
            .shards
            .iter()
            .zip(&before)
            .map(|(eng, b)| eng.session_stats().since(b))
            .collect();
        let mut aggregate = ExecStats::default();
        for s in &per_core {
            aggregate.merge(s);
        }
        let makespan_cycles = per_core.iter().map(|s| s.cycles).max().unwrap_or(0);
        let jobs_per_core: Vec<u64> = buckets.iter().map(|b| b.len() as u64).collect();

        let mut slots: Vec<Option<J::Output>> = (0..jobs.len()).map(|_| None).collect();
        for (j, out) in per_core_outputs.into_iter().flatten() {
            debug_assert!(slots[j].is_none(), "job {j} ran twice");
            slots[j] = Some(out);
        }
        let outputs = slots
            .into_iter()
            .enumerate()
            .map(|(j, o)| o.unwrap_or_else(|| panic!("job {j} never ran")))
            .collect();

        Ok(ChipRun {
            outputs,
            assignment,
            stats: ChipStats {
                per_core,
                jobs_per_core,
                makespan_cycles,
                aggregate,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ExtOp, ProgramBuilder, Source};

    /// A program that issues one MAC and `extra` idle cycles.
    fn job(extra: usize) -> ProgramJob {
        let cfg = LacConfig::default();
        let mut b = ProgramBuilder::new(cfg.nr);
        let t = b.push_step();
        b.ext(t, ExtOp::Load { col: 0, addr: 0 });
        b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
        b.idle(cfg.fpu.pipeline_depth + extra);
        ProgramJob::new(b.build())
    }

    #[test]
    fn fifo_round_robins_in_order() {
        let s = Scheduler::Fifo;
        assert_eq!(s.assign(&[1, 1, 1, 1, 1], 2), vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn least_loaded_balances_uneven_costs() {
        let s = Scheduler::LeastLoaded;
        // Core 0 takes the heavy job, cores alternate around it.
        assert_eq!(s.assign(&[10, 1, 1, 1], 2), vec![0, 1, 1, 1]);
        // Zero-cost jobs still count as load (no core starves the others).
        assert_eq!(s.assign(&[0, 0, 0, 0], 2), vec![0, 1, 0, 1]);
    }

    #[test]
    fn queue_outputs_in_submission_order_and_stats_merge() {
        let jobs: Vec<ProgramJob> = (0..5).map(|i| job(4 * i)).collect();
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let run = chip.run_queue(&jobs, Scheduler::Fifo).unwrap();
        assert_eq!(run.outputs.len(), 5);
        assert_eq!(run.stats.jobs(), 5);
        // Outputs in submission order: cycle counts grow with the idle tail.
        for w in run.outputs.windows(2) {
            assert!(w[1].cycles > w[0].cycles);
        }
        // Aggregate equals the sum of per-core deltas.
        let mut sum = ExecStats::default();
        for s in &run.stats.per_core {
            sum.merge(s);
        }
        assert_eq!(sum, run.stats.aggregate);
        assert_eq!(run.stats.aggregate.mac_ops, 5);
        assert_eq!(
            run.stats.makespan_cycles,
            run.stats.per_core.iter().map(|s| s.cycles).max().unwrap()
        );
        // Shards keep their session meters (they are LacEngine sessions).
        assert_eq!(
            chip.shard(0).cycles() + chip.shard(1).cycles(),
            run.stats.aggregate.cycles
        );
    }

    #[test]
    fn bandwidth_budget_splits_across_shards() {
        let cfg = ChipConfig::new(4, LacConfig::default()).with_bandwidth_budget(16);
        assert_eq!(cfg.per_core_bandwidth(), Some(4));
        let chip = LacChip::new(cfg);
        assert_eq!(chip.shard(0).config().ext_words_per_cycle, Some(4));
        // The tighter of chip share and an existing core cap wins.
        let capped = ChipConfig::new(
            2,
            LacConfig {
                ext_words_per_cycle: Some(2),
                ..Default::default()
            },
        )
        .with_bandwidth_budget(16);
        assert_eq!(capped.shard_config().ext_words_per_cycle, Some(2));
    }

    #[test]
    fn same_queue_same_results_under_both_policies() {
        let jobs: Vec<ProgramJob> = (0..6).map(job).collect();
        let mut outs = Vec::new();
        for sched in [Scheduler::Fifo, Scheduler::LeastLoaded] {
            let mut chip = LacChip::new(ChipConfig::new(3, LacConfig::default()));
            let run = chip.run_queue(&jobs, sched).unwrap();
            outs.push(run.outputs);
        }
        assert_eq!(outs[0], outs[1], "placement must not change results");
    }

    #[test]
    fn failing_job_aborts_queue_but_sessions_keep_metering() {
        // Job 1 reads an undriven row bus — a hard SimError.
        let bad = {
            let mut b = ProgramBuilder::new(LacConfig::default().nr);
            let t = b.push_step();
            b.pe_mut(t, 0, 0).mac = Some((Source::RowBus, Source::Const(1.0)));
            ProgramJob::new(b.build())
        };
        let jobs = vec![job(0), bad, job(0)];
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let err = chip.run_queue(&jobs, Scheduler::Fifo).unwrap_err();
        assert_eq!(err.cycle, 0, "the bad job fails on its first cycle");
        // Partial work stays metered: Err means "queue incomplete", not
        // "nothing ran". Core 0 ran job 0 and, depending on when it saw the
        // abort flag, possibly job 2 — either way its session kept count.
        assert!(chip.shard(0).cycles() > 0);
        assert!((1..=2).contains(&chip.shard(0).programs_run()));
        assert_eq!(
            chip.shard(1).programs_run(),
            0,
            "the bad job never finished"
        );
    }

    #[test]
    fn single_core_chip_serializes() {
        let jobs: Vec<ProgramJob> = (0..3).map(|_| job(0)).collect();
        let mut chip = LacChip::new(ChipConfig::new(1, LacConfig::default()));
        let run = chip.run_queue(&jobs, Scheduler::LeastLoaded).unwrap();
        assert_eq!(run.stats.makespan_cycles, run.stats.aggregate.cycles);
        assert!((run.stats.speedup() - 1.0).abs() < 1e-12);
    }
}
