//! Chip-level simulation: a [`LacChip`] owns `S` [`LacEngine`] shards behind
//! a shared external-memory bandwidth budget and runs [`JobGraph`]s of
//! [`ChipJob`]s across them (Chapter 4's multi-core LAP, made executable).
//!
//! The analytical chip models in `lac-model` relate core count, on-chip
//! bandwidth and utilization; this module is their simulation counterpart.
//! Production clients of such a chip — e.g. interior-point solvers whose
//! iterations are chained Cholesky/TRSM/GEMM factorizations — submit
//! *dependency graphs* of jobs, so the front door here is
//! [`LacChip::run_graph`] (and, for long-lived submission sessions, the
//! persistent [`crate::service::LacService`]):
//!
//! * every shard is one [`LacEngine`] session (per-core architectural state
//!   and meters persist across graph runs);
//! * the chip's aggregate external bandwidth budget is partitioned across
//!   the shards (the paper's per-core `x = y/S` words/cycle share of the
//!   on-chip memory's `y`, with the division remainder spread over the
//!   first shards so the shares sum exactly to the budget), enforced per
//!   core by the simulator's [`LacConfig::ext_words_per_cycle`] hazard
//!   check;
//! * the [`Scheduler`] plans each dependency wave *before* execution
//!   (from deterministic cost hints — see [`crate::service::plan_wave`]),
//!   so a graph run is reproducible bit-for-bit no matter how the host
//!   threads interleave;
//! * the shards then run their buckets in parallel — one worker per core,
//!   no work stealing — and the per-core [`ExecStats`] deltas are merged
//!   into a [`ChipStats`] with per-core breakdown, aggregate counters, and
//!   the makespan (dependency stalls included).
//!
//! Simulated time and host time are distinct: the makespan is accumulated
//! from each wave's slowest bucket in *simulated* cycles, which is
//! independent of host scheduling.

use crate::compile::ProgramCache;
use crate::config::LacConfig;
use crate::engine::LacEngine;
use crate::error::SimError;
use crate::event::{drive_event_graph, SimMode};
use crate::isa::Program;
use crate::service::{drive, plan_wave, run_one, Done, GraphRun, JobGraph};
use crate::stats::ExecStats;

/// One unit of schedulable work: a job knows how to run itself on a core's
/// engine and how expensive it roughly is (for load-aware placement).
pub trait ChipJob: Send + Sync {
    /// What the job produces (functional outputs plus per-run stats).
    type Output: Send;

    /// Estimated cost in arbitrary-but-consistent units (e.g. flops). Only
    /// the *relative* magnitudes matter, and only to the load-aware
    /// policies ([`Scheduler::LeastLoaded`], [`Scheduler::CriticalPath`]).
    /// Defaults to 1 (all jobs equal).
    fn cost_hint(&self) -> u64 {
        1
    }

    /// Estimated size of this job's output in words — what a dependent
    /// job placed on *another chip* must pull over the inter-chip link
    /// (see [`crate::cluster::LacCluster`]). Like [`ChipJob::cost_hint`]
    /// this is a deterministic modeling hint, not a measurement; it only
    /// prices cross-chip dependency edges. Defaults to 1 (a scalar
    /// handoff).
    fn transfer_words(&self) -> u64 {
        1
    }

    /// Execute on one core's engine. Stats must be metered into the
    /// engine's session accumulator (all `LacEngine` run doors do this).
    fn run_on(&self, eng: &mut LacEngine) -> Result<Self::Output, SimError>;
}

/// References dispatch like the jobs they point at — this is what lets a
/// borrowed queue run through an owned [`JobGraph`].
impl<J: ChipJob + ?Sized> ChipJob for &J {
    type Output = J::Output;

    fn cost_hint(&self) -> u64 {
        (**self).cost_hint()
    }

    fn transfer_words(&self) -> u64 {
        (**self).transfer_words()
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<Self::Output, SimError> {
        (**self).run_on(eng)
    }
}

/// The simplest job: one [`Program`], optionally with a memory image staged
/// into the engine-owned bank first.
#[derive(Clone, Debug, Default)]
pub struct ProgramJob {
    /// The microprogram to execute.
    pub prog: Program,
    /// Replaces the shard's memory bank before the run when present.
    pub image: Option<Vec<f64>>,
    /// Cost reported to the scheduler ([`ChipJob::cost_hint`]).
    pub cost: u64,
}

impl ProgramJob {
    /// A job whose scheduler cost defaults to the program length.
    pub fn new(prog: Program) -> Self {
        let cost = prog.steps.len() as u64;
        Self {
            prog,
            image: None,
            cost,
        }
    }

    /// Stage `image` into the shard's bank before the program runs.
    pub fn with_image(mut self, image: Vec<f64>) -> Self {
        self.image = Some(image);
        self
    }
}

impl ChipJob for ProgramJob {
    type Output = ExecStats;

    fn cost_hint(&self) -> u64 {
        self.cost.max(1)
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<ExecStats, SimError> {
        if let Some(image) = &self.image {
            eng.load_image(image.clone());
        }
        eng.run_program(&self.prog)
    }
}

/// Job → core placement policy. Every dependency wave (for a flat queue:
/// the single wave holding every job) is planned up front from cost hints,
/// so every policy is deterministic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Hand ready jobs to cores round-robin in submission order — the
    /// wave drains first-in-first-out with no load awareness.
    #[default]
    Fifo,
    /// Greedy list scheduling: each ready job (in submission order) goes
    /// to the core with the least accumulated estimated load, ties to the
    /// lowest core index. With accurate hints this approximates
    /// makespan-minimizing placement (LPT without the sort, keeping
    /// submission order).
    LeastLoaded,
    /// Critical-path-first list scheduling: ready jobs are served in
    /// descending order of their longest remaining cost-hint path through
    /// the graph (ties to the lower job id), each placed on the
    /// least-loaded core. Long dependency chains start as early as
    /// possible; on a flat queue the priority degenerates to the job's own
    /// cost, i.e. longest-processing-time-first.
    CriticalPath,
    /// Deficit-weighted fair sharing across tenants, the multi-tenant
    /// service's streaming policy: each wave dispatches at most one job
    /// per core (the streaming quantum), picking jobs whose tenant has the
    /// lowest accumulated cost-hint usage normalized by its weight (ties
    /// broken by critical-path priority, then job id — see
    /// [`crate::service::plan_wave_tenanted`]). Planned purely from cost
    /// hints and tenant deficits, so runs stay bit-deterministic. With a
    /// single tenant every deficit is equal and the pick order degenerates
    /// to [`Scheduler::CriticalPath`]'s, quantum by quantum.
    FairShare,
}

impl Scheduler {
    /// Compute the job → core assignment for a flat queue of `costs` over
    /// `num_cores` cores. `assignment[j]` is the core that runs job `j`.
    /// This is [`plan_wave`] over the everything-ready wave, inverted —
    /// repeated until the queue drains for the quantum-capped
    /// [`Scheduler::FairShare`] (the other policies dispatch everything in
    /// one wave).
    pub fn assign(&self, costs: &[u64], num_cores: usize) -> Vec<usize> {
        let mut assignment = vec![0usize; costs.len()];
        let mut ready: Vec<usize> = (0..costs.len()).collect();
        while !ready.is_empty() {
            let buckets = plan_wave(*self, &ready, costs, costs, num_cores);
            let mut planned = vec![false; costs.len()];
            for (core, bucket) in buckets.iter().enumerate() {
                for &j in bucket {
                    assignment[j] = core;
                    planned[j] = true;
                }
            }
            ready.retain(|&j| !planned[j]);
        }
        assignment
    }
}

/// Static configuration of a chip: `S` identical cores behind one external
/// bandwidth budget.
#[derive(Clone, Copy, Debug)]
pub struct ChipConfig {
    /// Number of cores `S`.
    pub cores: usize,
    /// Per-core configuration (every shard is identical).
    pub core: LacConfig,
    /// Aggregate external-memory bandwidth budget in words/cycle across the
    /// whole chip, split across the cores (see
    /// [`ChipConfig::shard_bandwidth`]). `None` leaves the cores
    /// unconstrained.
    pub ext_words_per_cycle_total: Option<usize>,
    /// Initial engine-owned bank size per shard, words.
    pub mem_words_per_core: Option<usize>,
    /// Which coordinator drives graph runs: lock-step waves (the
    /// default, the compatibility mode) or the discrete-event core (see
    /// [`crate::event`]). Outputs are bit-identical either way; clocks
    /// may differ.
    pub sim_mode: SimMode,
}

impl ChipConfig {
    /// `cores` identical cores, no bandwidth cap, default bank size,
    /// wave coordination.
    pub fn new(cores: usize, core: LacConfig) -> Self {
        Self {
            cores,
            core,
            ext_words_per_cycle_total: None,
            mem_words_per_core: None,
            sim_mode: SimMode::Wave,
        }
    }

    /// Set the aggregate bandwidth budget (words/cycle for the whole chip).
    pub fn with_bandwidth_budget(mut self, words_per_cycle: usize) -> Self {
        self.ext_words_per_cycle_total = Some(words_per_cycle);
        self
    }

    /// Select the coordinator ([`SimMode::Wave`] is the default).
    pub fn with_sim_mode(mut self, mode: SimMode) -> Self {
        self.sim_mode = mode;
        self
    }

    /// Shard `core`'s share of the budget, if one is set: `total / cores`
    /// words/cycle, with the division remainder handed out one word to
    /// each of the first `total % cores` shards — so the shares sum
    /// exactly to the budget instead of silently dropping up to
    /// `cores − 1` words/cycle. A budget smaller than the core count
    /// still grants each core one word/cycle (a core that can never talk
    /// to memory cannot run any kernel at all); only in that degenerate
    /// case may the sum exceed the budget.
    pub fn shard_bandwidth(&self, core: usize) -> Option<usize> {
        assert!(
            core < self.cores,
            "shard {core} of a {}-core chip",
            self.cores
        );
        self.ext_words_per_cycle_total.map(|total| {
            let base = total / self.cores;
            let extra = usize::from(core < total % self.cores);
            (base + extra).max(1)
        })
    }

    /// The effective configuration shard `core` is built with: the core
    /// config plus this chip's per-core bandwidth share (the tighter of
    /// the two when the core config already carries a cap).
    pub fn shard_config(&self, core: usize) -> LacConfig {
        let cap = match (self.shard_bandwidth(core), self.core.ext_words_per_cycle) {
            (Some(share), Some(own)) => Some(share.min(own)),
            (Some(share), None) => Some(share),
            (None, own) => own,
        };
        LacConfig {
            ext_words_per_cycle: cap,
            ..self.core
        }
    }

    /// The bandwidth split must conserve the budget: outside the
    /// one-word-minimum degenerate case, the shard shares sum exactly to
    /// the chip total. Checked whenever shards are built.
    pub(crate) fn assert_budget_conserved(&self) {
        if let Some(total) = self.ext_words_per_cycle_total {
            if total >= self.cores {
                let sum: usize = (0..self.cores)
                    .map(|c| self.shard_bandwidth(c).unwrap())
                    .sum();
                assert_eq!(
                    sum, total,
                    "bandwidth split dropped words: shards sum to {sum} of {total}"
                );
            }
        }
    }
}

/// Merged result of one graph run: per-core breakdown plus chip aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct ChipStats {
    /// Stats delta of each core over this run, in core order.
    pub per_core: Vec<ExecStats>,
    /// How many jobs each core ran.
    pub jobs_per_core: Vec<u64>,
    /// Simulated makespan: the sum over dependency waves of each wave's
    /// slowest bucket (for a flat queue: the slowest core's busy cycles).
    pub makespan_cycles: u64,
    /// Sum of every core's counters (cycles summed too — that is aggregate
    /// busy time, not wall time; wall time is the makespan).
    pub aggregate: ExecStats,
}

impl ChipStats {
    /// Total jobs dispatched in this run.
    pub fn jobs(&self) -> u64 {
        self.jobs_per_core.iter().sum()
    }

    /// Floating-point operations across all cores.
    pub fn flops(&self) -> u64 {
        self.aggregate.flops()
    }

    /// Whole-chip MAC-slot utilization: executed MACs against the peak of
    /// `S` cores over the makespan. Idle cores (dependency stalls, and the
    /// slack of cores that finish early) count against the chip, matching
    /// the paper's chip utilization axis.
    pub fn utilization(&self, nr: usize) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        let peak = self.makespan_cycles as f64 * self.per_core.len() as f64 * (nr * nr) as f64;
        (self.aggregate.mac_ops + self.aggregate.fma_ops) as f64 / peak
    }

    /// Aggregate external-memory traffic per makespan cycle (words/cycle
    /// demanded of the shared interface).
    pub fn ext_words_per_cycle(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        (self.aggregate.ext_reads + self.aggregate.ext_writes) as f64 / self.makespan_cycles as f64
    }

    /// Parallel speedup of this run against the same work on one core:
    /// aggregate busy cycles / makespan.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.aggregate.cycles as f64 / self.makespan_cycles as f64
    }
}

/// A multi-core chip: `S` engine shards plus the scheduler-facing graph
/// door, [`LacChip::run_graph`].
///
/// `LacChip` borrows the calling thread and scoped workers per run; for a
/// persistent submission service whose workers (and shards) outlive
/// individual graphs, see [`crate::service::LacService`].
///
/// ```
/// use lac_sim::{ChipConfig, JobGraph, LacChip, LacConfig, ProgramBuilder, ProgramJob, Scheduler};
///
/// // Two cores sharing a 8-words/cycle external bandwidth budget.
/// let cfg = ChipConfig::new(2, LacConfig::default()).with_bandwidth_budget(8);
/// let mut chip = LacChip::new(cfg);
///
/// // Four independent idle-loop jobs collect into a flat (edge-free) graph.
/// let graph: JobGraph<ProgramJob> = (1..=4)
///     .map(|i| {
///         let mut b = ProgramBuilder::new(LacConfig::default().nr);
///         b.idle(8 * i);
///         ProgramJob::new(b.build())
///     })
///     .collect();
///
/// let run = chip.run_graph(&graph, Scheduler::LeastLoaded).unwrap();
/// assert_eq!(run.outputs.len(), 4);          // submission order
/// assert_eq!(run.stats.jobs(), 4);
/// assert_eq!(run.waves, 1);                  // flat graph, single wave
/// assert!(run.stats.makespan_cycles < run.stats.aggregate.cycles);
/// ```
pub struct LacChip {
    cfg: ChipConfig,
    shards: Vec<LacEngine>,
    program_cache: ProgramCache,
}

impl LacChip {
    /// Build every shard per [`ChipConfig::shard_config`]. All shards
    /// share one compile cache, so a program dispatched to every core
    /// compiles once (see [`LacChip::program_cache`]).
    pub fn new(cfg: ChipConfig) -> Self {
        Self::with_program_cache(cfg, ProgramCache::new())
    }

    /// Like [`LacChip::new`], but the shards join an external compile
    /// cache — [`crate::cluster::LacCluster`] spans one cache across all
    /// of its chips this way.
    pub fn with_program_cache(cfg: ChipConfig, cache: ProgramCache) -> Self {
        assert!(cfg.cores >= 1, "a chip has at least one core");
        cfg.assert_budget_conserved();
        let shards = (0..cfg.cores)
            .map(|core| {
                let mut b = LacEngine::builder()
                    .config(cfg.shard_config(core))
                    .program_cache(cache.clone());
                if let Some(words) = cfg.mem_words_per_core {
                    b = b.mem_words(words);
                }
                b.build()
            })
            .collect();
        Self {
            cfg,
            shards,
            program_cache: cache,
        }
    }

    /// The compile cache shared by every shard of this chip.
    pub fn program_cache(&self) -> &ProgramCache {
        &self.program_cache
    }

    /// The chip's static configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// Number of cores (shards).
    pub fn num_cores(&self) -> usize {
        self.shards.len()
    }

    /// One shard's engine (per-core session meters survive graph runs).
    pub fn shard(&self, i: usize) -> &LacEngine {
        &self.shards[i]
    }

    /// Mutable access to one shard's engine.
    pub fn shard_mut(&mut self, i: usize) -> &mut LacEngine {
        &mut self.shards[i]
    }

    /// Crate-internal: every shard at once — the cluster coordinator
    /// spawns one scoped worker per shard across all of its chips.
    pub(crate) fn shards_mut(&mut self) -> &mut [LacEngine] {
        &mut self.shards
    }

    /// Run a dependency graph of jobs to completion under `sched`.
    ///
    /// Execution proceeds in deterministic waves over the ready set (see
    /// the [`crate::service`] module docs): each wave is planned up front
    /// from the jobs' cost hints, then every core executes its bucket in
    /// plan order on its own scoped worker thread. Outputs come back in
    /// submission order regardless of placement.
    ///
    /// On a simulation error the earliest *observed* error (by core
    /// index, then bucket position) is returned; the other workers stop
    /// at their next job boundary and no later wave is dispatched. (If
    /// several jobs of one wave would fail, which of them still ran
    /// before seeing the abort flag is host-timing dependent, so the
    /// reported error may vary — determinism covers successful runs, not
    /// failure identity.) Work that already simulated stays metered in
    /// the shard sessions — sessions meter, they do not roll back — so
    /// `Err` means "the graph did not complete", not "nothing ran". Use
    /// [`LacChip::shard`] session meters (or `reset_session` per shard)
    /// if a retry must not double-count.
    pub fn run_graph<J: ChipJob>(
        &mut self,
        graph: &JobGraph<J>,
        sched: Scheduler,
    ) -> Result<GraphRun<J::Output>, SimError> {
        let cores = self.shards.len();
        let mode = self.cfg.sim_mode;
        let costs: Vec<u64> = graph.jobs.iter().map(|j| j.cost_hint()).collect();
        let abort = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (done_tx, done_rx) = std::sync::mpsc::channel::<Done<J::Output>>();
            let mut txs = Vec::with_capacity(cores);
            for (core, eng) in self.shards.iter_mut().enumerate() {
                let (tx, rx) = std::sync::mpsc::channel::<usize>();
                txs.push(tx);
                let done_tx = done_tx.clone();
                let abort = &abort;
                scope.spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let outcome = run_one(eng, &graph.jobs[job], abort);
                        if done_tx.send(Done { core, job, outcome }).is_err() {
                            break;
                        }
                    }
                });
            }
            let dispatch = |core: usize, job| txs[core].send(job).expect("chip worker hung up");
            let collect = || done_rx.recv().expect("chip worker hung up");
            match mode {
                SimMode::Wave => drive(
                    &costs,
                    &graph.parents,
                    &graph.children,
                    sched,
                    cores,
                    dispatch,
                    collect,
                ),
                SimMode::Event => drive_event_graph(
                    &costs,
                    &graph.parents,
                    &graph.children,
                    sched,
                    cores,
                    dispatch,
                    collect,
                ),
            }
            // `txs` drop here, closing the submission channels; the scoped
            // workers drain and exit, and the scope joins them.
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ExtOp, ProgramBuilder, Source};

    /// A program that issues one MAC and `extra` idle cycles.
    fn job(extra: usize) -> ProgramJob {
        let cfg = LacConfig::default();
        let mut b = ProgramBuilder::new(cfg.nr);
        let t = b.push_step();
        b.ext(t, ExtOp::Load { col: 0, addr: 0 });
        b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
        b.idle(cfg.fpu.pipeline_depth + extra);
        ProgramJob::new(b.build())
    }

    #[test]
    fn fifo_round_robins_in_order() {
        let s = Scheduler::Fifo;
        assert_eq!(s.assign(&[1, 1, 1, 1, 1], 2), vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn least_loaded_balances_uneven_costs() {
        let s = Scheduler::LeastLoaded;
        // Core 0 takes the heavy job, cores alternate around it.
        assert_eq!(s.assign(&[10, 1, 1, 1], 2), vec![0, 1, 1, 1]);
        // Zero-cost jobs still count as load (no core starves the others).
        assert_eq!(s.assign(&[0, 0, 0, 0], 2), vec![0, 1, 0, 1]);
    }

    #[test]
    fn critical_path_on_flat_queue_is_lpt() {
        // Longest job first, then greedy balance: 9→core0, 7→core1,
        // 5→core1 (7+5=12 vs 9… no, core1 has 7 < 9 → 5 joins core1),
        // 3→core0 (9 vs 12).
        let s = Scheduler::CriticalPath;
        assert_eq!(s.assign(&[3, 9, 5, 7], 2), vec![0, 0, 1, 1]);
    }

    #[test]
    fn graph_outputs_in_submission_order_and_stats_merge() {
        let graph: JobGraph<ProgramJob> = (0..5).map(|i| job(4 * i)).collect();
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let run = chip.run_graph(&graph, Scheduler::Fifo).unwrap();
        assert_eq!(run.outputs.len(), 5);
        assert_eq!(run.stats.jobs(), 5);
        assert_eq!(run.waves, 1, "a flat graph is a single wave");
        // Outputs in submission order: cycle counts grow with the idle tail.
        for w in run.outputs.windows(2) {
            assert!(w[1].cycles > w[0].cycles);
        }
        // Aggregate equals the sum of per-core deltas.
        let mut sum = ExecStats::default();
        for s in &run.stats.per_core {
            sum.merge(s);
        }
        assert_eq!(sum, run.stats.aggregate);
        assert_eq!(run.stats.aggregate.mac_ops, 5);
        assert_eq!(
            run.stats.makespan_cycles,
            run.stats.per_core.iter().map(|s| s.cycles).max().unwrap()
        );
        // Shards keep their session meters (they are LacEngine sessions).
        assert_eq!(
            chip.shard(0).cycles() + chip.shard(1).cycles(),
            run.stats.aggregate.cycles
        );
    }

    #[test]
    fn bandwidth_budget_splits_across_shards_without_remainder_loss() {
        let cfg = ChipConfig::new(4, LacConfig::default()).with_bandwidth_budget(16);
        assert_eq!(cfg.shard_bandwidth(0), Some(4));
        let chip = LacChip::new(cfg);
        assert_eq!(chip.shard(0).config().ext_words_per_cycle, Some(4));
        // A non-divisible budget hands the remainder to the first shards
        // and conserves the total.
        let uneven = ChipConfig::new(4, LacConfig::default()).with_bandwidth_budget(18);
        let shares: Vec<usize> = (0..4).map(|c| uneven.shard_bandwidth(c).unwrap()).collect();
        assert_eq!(shares, vec![5, 5, 4, 4]);
        assert_eq!(shares.iter().sum::<usize>(), 18);
        let chip = LacChip::new(uneven);
        assert_eq!(chip.shard(0).config().ext_words_per_cycle, Some(5));
        assert_eq!(chip.shard(3).config().ext_words_per_cycle, Some(4));
        // The tighter of chip share and an existing core cap wins.
        let capped = ChipConfig::new(
            2,
            LacConfig {
                ext_words_per_cycle: Some(2),
                ..Default::default()
            },
        )
        .with_bandwidth_budget(16);
        assert_eq!(capped.shard_config(0).ext_words_per_cycle, Some(2));
    }

    #[test]
    fn same_graph_same_results_under_every_policy() {
        let mut outs = Vec::new();
        for sched in [
            Scheduler::Fifo,
            Scheduler::LeastLoaded,
            Scheduler::CriticalPath,
        ] {
            let graph: JobGraph<ProgramJob> = (0..6).map(job).collect();
            let mut chip = LacChip::new(ChipConfig::new(3, LacConfig::default()));
            let run = chip.run_graph(&graph, sched).unwrap();
            outs.push(run.outputs);
        }
        assert_eq!(outs[0], outs[1], "placement must not change results");
        assert_eq!(outs[1], outs[2], "placement must not change results");
    }

    /// A job that reads an undriven row bus — a hard SimError at cycle 0.
    fn bad_job() -> ProgramJob {
        let mut b = ProgramBuilder::new(LacConfig::default().nr);
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::RowBus, Source::Const(1.0)));
        ProgramJob::new(b.build())
    }

    #[test]
    fn failing_job_aborts_graph_but_sessions_keep_metering() {
        // The bad job sits alone in wave 2, so wave 1 completes everywhere
        // before the failure — the partial metering is deterministic.
        let mut graph = JobGraph::new();
        let first = graph.add(job(0));
        graph.add_after(bad_job(), &[first]);
        graph.add(job(0));
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let err = chip.run_graph(&graph, Scheduler::Fifo).unwrap_err();
        assert_eq!(err.cycle, 0, "the bad job fails on its first cycle");
        // Partial work stays metered: Err means "graph incomplete", not
        // "nothing ran". Core 0 completed job 0 (the bad job errored out
        // mid-run, so it never counted); core 1 completed job 2.
        assert!(chip.shard(0).cycles() > 0);
        assert_eq!(chip.shard(0).programs_run(), 1);
        assert_eq!(chip.shard(1).programs_run(), 1);
    }

    #[test]
    fn peers_stop_at_the_next_job_boundary_after_a_failure() {
        // Same-wave failure: the bad job leads core 0's bucket, so core 0
        // skips its remaining jobs; core 1 stops wherever the abort flag
        // catches it (host-timing dependent, bounded by its bucket).
        let graph: JobGraph<ProgramJob> = vec![bad_job(), job(0), job(0), job(0), job(0)]
            .into_iter()
            .collect();
        let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
        let err = chip.run_graph(&graph, Scheduler::Fifo).unwrap_err();
        assert_eq!(err.cycle, 0);
        assert_eq!(
            chip.shard(0).programs_run(),
            0,
            "bucket skipped after the failure"
        );
        assert!(chip.shard(1).programs_run() <= 2);
    }

    #[test]
    fn single_core_chip_serializes() {
        let graph: JobGraph<ProgramJob> = (0..3).map(|_| job(0)).collect();
        let mut chip = LacChip::new(ChipConfig::new(1, LacConfig::default()));
        let run = chip.run_graph(&graph, Scheduler::LeastLoaded).unwrap();
        assert_eq!(run.stats.makespan_cycles, run.stats.aggregate.cycles);
        assert!((run.stats.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn borrowed_queue_collects_into_a_flat_graph() {
        // The `&J` forwarding impl is what lets a borrowed slice of jobs
        // collect into an owned flat graph — the shape the old queue door
        // used to wrap. It must stay bit-identical to the owned graph.
        let jobs: Vec<ProgramJob> = (0..7).map(|i| job(3 * i)).collect();
        for sched in [
            Scheduler::Fifo,
            Scheduler::LeastLoaded,
            Scheduler::CriticalPath,
        ] {
            let mut via_borrow = LacChip::new(ChipConfig::new(3, LacConfig::default()));
            let borrowed: JobGraph<&ProgramJob> = jobs.iter().collect();
            let borrow_run = via_borrow.run_graph(&borrowed, sched).unwrap();
            let mut via_graph = LacChip::new(ChipConfig::new(3, LacConfig::default()));
            let graph: JobGraph<ProgramJob> = jobs.iter().cloned().collect();
            let graph_run = via_graph.run_graph(&graph, sched).unwrap();
            assert_eq!(borrow_run.outputs, graph_run.outputs);
            assert_eq!(borrow_run.assignment, graph_run.assignment);
            assert_eq!(borrow_run.stats, graph_run.stats);
        }
    }
}
