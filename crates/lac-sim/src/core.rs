//! The cycle-by-cycle execution engine for one LAC.
//!
//! Two backends share this module's architectural state (see
//! [`crate::config::ExecBackend`]): the reference **interpreter** below,
//! which decodes every [`Source`] of every PE on every cycle, and the
//! decode-once **compiled** backend in [`mod@crate::compile`], which lowers a
//! program to a flat op tape once and replays it. Both address the same
//! unified state arena (`Lac::state`, laid out by the compile module's
//! private `ArenaLayout`), so a
//! core can switch backends between programs with bit-identical results.

use crate::compile::ProgramCache;
use crate::config::{ExecBackend, LacConfig};
use crate::error::{HazardKind, SimError};
use crate::isa::{ExtOp, Program, Source, Step};
use crate::stats::ExecStats;
use lac_fpu::{DivSqrtImpl, MacUnit, SpecialFnUnit};

/// The memory the core talks to over its column buses — the paper's
/// per-core bank of on-chip memory (Figure 1.1).
#[derive(Clone, Debug)]
pub struct ExternalMem {
    data: Vec<f64>,
}

impl ExternalMem {
    /// A zeroed bank of `words` words.
    pub fn new(words: usize) -> Self {
        Self {
            data: vec![0.0; words],
        }
    }

    /// Wrap a packed operand image as the bank's contents.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self { data }
    }

    /// Bank size, words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-word bank.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read word `addr` (host-side staging access, not metered).
    pub fn read(&self, addr: usize) -> f64 {
        self.data[addr]
    }

    /// Write word `addr` (host-side staging access, not metered).
    pub fn write(&mut self, addr: usize, v: f64) {
        self.data[addr] = v;
    }

    /// The whole bank as a slice (result unpacking).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// Architectural state of one PE that is *not* plain words (the word
/// state — SRAMs and the register file — lives in the core's unified
/// arena, see [`ArenaLayout`]).
#[derive(Clone, Debug)]
pub(crate) struct PeState {
    pub(crate) mac: MacUnit,
    pub(crate) mac_result: Option<f64>,
    pub(crate) sfu: Option<SpecialFnUnit>,
    pub(crate) sfu_result: Option<f64>,
}

/// Offsets of each PE's word-state regions inside the core's flat arena:
/// `[ sram_a (all PEs) | sram_b (all PEs) | rf (all PEs) ]`. The compiled
/// backend appends its execution regions (buses, latches, pipeline slots,
/// constants, temps) after `words`; those bases are derived per config in
/// [`crate::compile`] so offsets stay valid across same-config shards.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ArenaLayout {
    sram_a_words: usize,
    sram_b_words: usize,
    rf_entries: usize,
    sram_b_base: usize,
    rf_base: usize,
    /// Total architectural words (the compiled suffix starts here).
    pub(crate) words: usize,
}

impl ArenaLayout {
    pub(crate) fn new(cfg: &LacConfig) -> Self {
        let pes = cfg.nr * cfg.nr;
        let sram_b_base = pes * cfg.sram_a_words;
        let rf_base = sram_b_base + pes * cfg.sram_b_words;
        Self {
            sram_a_words: cfg.sram_a_words,
            sram_b_words: cfg.sram_b_words,
            rf_entries: cfg.rf_entries,
            sram_b_base,
            rf_base,
            words: rf_base + pes * cfg.rf_entries,
        }
    }

    #[inline]
    pub(crate) fn sram_a(&self, pe: usize, addr: usize) -> usize {
        pe * self.sram_a_words + addr
    }

    #[inline]
    pub(crate) fn sram_b(&self, pe: usize, addr: usize) -> usize {
        self.sram_b_base + pe * self.sram_b_words + addr
    }

    #[inline]
    pub(crate) fn rf(&self, pe: usize, idx: usize) -> usize {
        self.rf_base + pe * self.rf_entries + idx
    }
}

/// Per-cycle port-usage counters for one PE (reset each cycle).
#[derive(Clone, Copy, Default)]
struct PortUse {
    sram_a: usize,
    sram_b: usize,
    rf_reads: usize,
}

/// Per-cycle scratch buffers, owned by the core and reused across cycles so
/// the hot loop never allocates (a chip run simulates tens of millions of
/// cycles across many shard threads — per-cycle `Vec`s turn into allocator
/// contention, not just wasted time).
#[derive(Default)]
struct Scratch {
    port_use: Vec<PortUse>,
    row_bus: Vec<Option<f64>>,
    col_bus: Vec<Option<f64>>,
    commits: Vec<Commit>,
}

/// Deferred register/SRAM/accumulator writes (commit at end of cycle).
enum Commit {
    SramA(usize, usize, f64),
    SramB(usize, usize, f64),
    Reg(usize, usize, f64),
    AccLoad(usize, f64),
    Ext(usize, f64),
}

/// One simulated Linear Algebra Core.
pub struct Lac {
    pub(crate) cfg: LacConfig,
    pub(crate) pes: Vec<PeState>,
    /// Unified word-state arena (SRAMs + register files, then the compiled
    /// backend's execution regions — grown on demand, prefix preserved).
    pub(crate) state: Vec<f64>,
    pub(crate) layout: ArenaLayout,
    stats: ExecStats,
    scratch: Scratch,
    cache: ProgramCache,
}

impl Lac {
    /// A fresh core in the given configuration: zeroed memories and
    /// registers, drained pipelines, zero counters.
    pub fn new(cfg: LacConfig) -> Self {
        let per_pe_sfu = match cfg.divsqrt {
            DivSqrtImpl::Software => true,     // microcode runs on every PE
            DivSqrtImpl::Isolated => false,    // one shared unit (index 0 below)
            DivSqrtImpl::DiagonalPes => false, // diagonal PEs only
        };
        let nr = cfg.nr;
        let pes = (0..nr * nr)
            .map(|idx| {
                let (r, c) = (idx / nr, idx % nr);
                let has_sfu = per_pe_sfu
                    || (cfg.divsqrt == DivSqrtImpl::DiagonalPes && r == c)
                    || (cfg.divsqrt == DivSqrtImpl::Isolated && idx == 0);
                PeState {
                    mac: MacUnit::new(cfg.fpu),
                    mac_result: None,
                    sfu: has_sfu.then(|| SpecialFnUnit::new(cfg.divsqrt)),
                    sfu_result: None,
                }
            })
            .collect();
        let layout = ArenaLayout::new(&cfg);
        Self {
            cfg,
            pes,
            state: vec![0.0; layout.words],
            layout,
            stats: ExecStats::default(),
            scratch: Scratch::default(),
            cache: ProgramCache::new(),
        }
    }

    /// Replace the core's compile cache with a shared one (the door
    /// `LacChip`/`LacService`/`LacCluster` use so every same-config shard
    /// compiles each distinct program shape once). Handles are cheap
    /// clones of one shared store.
    pub fn set_program_cache(&mut self, cache: ProgramCache) {
        self.cache = cache;
    }

    /// The compile cache this core resolves programs through.
    pub fn program_cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// The configuration the core was built with.
    pub fn config(&self) -> &LacConfig {
        &self.cfg
    }

    /// Stats accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn pe_index(&self, r: usize, c: usize) -> usize {
        r * self.cfg.nr + c
    }

    /// Direct (test/preload) access to a PE's A memory.
    pub fn sram_a_mut(&mut self, r: usize, c: usize) -> &mut [f64] {
        let i = self.pe_index(r, c);
        let base = self.layout.sram_a(i, 0);
        &mut self.state[base..base + self.cfg.sram_a_words]
    }

    /// Direct (test/preload) access to a PE's B memory.
    pub fn sram_b_mut(&mut self, r: usize, c: usize) -> &mut [f64] {
        let i = self.pe_index(r, c);
        let base = self.layout.sram_b(i, 0);
        &mut self.state[base..base + self.cfg.sram_b_words]
    }

    /// Read a PE's accumulator (test/verification access; does not check the
    /// drain hazard — use only after a program completes).
    pub fn acc(&self, r: usize, c: usize) -> f64 {
        self.pes[self.pe_index(r, c)].mac.read_acc()
    }

    /// Read a PE's register (test/verification access).
    pub fn reg(&self, r: usize, c: usize, idx: usize) -> f64 {
        self.state[self.layout.rf(self.pe_index(r, c), idx)]
    }

    /// A PE's wide accumulator (the extended-format read port, §A.2).
    pub fn acc_wide(&self, r: usize, c: usize) -> lac_fpu::ExtendedAccumulator {
        *self.pes[self.pe_index(r, c)].mac.acc_wide()
    }

    /// Execute a whole program against `mem`, returning the run's stats.
    ///
    /// Dispatches on [`LacConfig::backend`]: the interpreter walks the
    /// program cycle by cycle; the compiled backend replays a memoized
    /// decode-once lowering (falling back to the interpreter for programs
    /// the lowering does not cover). The two are bit-identical.
    pub fn run(&mut self, prog: &Program, mem: &mut ExternalMem) -> Result<ExecStats, SimError> {
        match self.cfg.backend {
            ExecBackend::Interpreter => self.run_interpreted(prog, mem),
            ExecBackend::Compiled => self.run_compiled(prog, mem),
        }
    }

    /// Execute a whole program on the reference interpreter, regardless of
    /// the configured backend (the semantics oracle and the fallback door
    /// of [`Lac::run_compiled`]).
    pub fn run_interpreted(
        &mut self,
        prog: &Program,
        mem: &mut ExternalMem,
    ) -> Result<ExecStats, SimError> {
        assert_eq!(prog.nr, self.cfg.nr, "program/mesh dimension mismatch");
        let start = self.stats;
        for (t, step) in prog.steps.iter().enumerate() {
            self.exec_step(t, step, mem)?;
        }
        Ok(self.stats.since(&start))
    }

    /// Crate-internal: the stats accumulator (the compiled backend merges
    /// a run's static counters in one shot).
    pub(crate) fn stats_mut(&mut self) -> &mut ExecStats {
        &mut self.stats
    }

    fn exec_step(&mut self, t: usize, step: &Step, mem: &mut ExternalMem) -> Result<(), SimError> {
        // The scratch buffers move out for the duration of the step so the
        // borrow checker lets `resolve` (&mut self) run while they are in
        // use; they move back afterwards, capacity intact.
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.exec_step_inner(t, step, mem, &mut scratch);
        self.scratch = scratch;
        result
    }

    fn exec_step_inner(
        &mut self,
        t: usize,
        step: &Step,
        mem: &mut ExternalMem,
        scratch: &mut Scratch,
    ) -> Result<(), SimError> {
        let nr = self.cfg.nr;
        let err = |pe: Option<(usize, usize)>, kind: HazardKind| SimError { cycle: t, pe, kind };

        // --- external bandwidth check -----------------------------------
        if let Some(limit) = self.cfg.ext_words_per_cycle {
            if step.ext.len() > limit {
                return Err(err(
                    None,
                    HazardKind::ExtBandwidthExceeded {
                        used: step.ext.len(),
                        limit,
                    },
                ));
            }
        }

        let port_use = &mut scratch.port_use;
        port_use.clear();
        port_use.resize(nr * nr, PortUse::default());

        // --- phase 1: resolve bus writers --------------------------------
        let row_bus = &mut scratch.row_bus;
        let col_bus = &mut scratch.col_bus;
        row_bus.clear();
        row_bus.resize(nr, None);
        col_bus.clear();
        col_bus.resize(nr, None);

        // External loads drive column buses.
        for op in &step.ext {
            if let ExtOp::Load { col, addr } = *op {
                if addr >= mem.len() {
                    return Err(err(
                        None,
                        HazardKind::ExtOutOfRange {
                            addr,
                            size: mem.len(),
                        },
                    ));
                }
                if col >= nr || col_bus[col].is_some() {
                    return Err(err(None, HazardKind::ColBusConflict { col }));
                }
                col_bus[col] = Some(mem.read(addr));
                self.stats.ext_reads += 1;
                self.stats.col_bus_transfers += 1;
            }
        }

        #[allow(clippy::needless_range_loop)] // (r, c) index PEs and buses alike
        for r in 0..nr {
            for c in 0..nr {
                let idx = r * nr + c;
                let instr = &step.pes[idx];
                if let Some(src) = instr.row_write {
                    let v = self.resolve_nonbus(t, (r, c), src, &mut port_use[idx])?;
                    if row_bus[r].is_some() {
                        return Err(err(Some((r, c)), HazardKind::RowBusConflict { row: r }));
                    }
                    row_bus[r] = Some(v);
                    self.stats.row_bus_transfers += 1;
                }
                if let Some(src) = instr.col_write {
                    let v = self.resolve_nonbus(t, (r, c), src, &mut port_use[idx])?;
                    if col_bus[c].is_some() {
                        return Err(err(Some((r, c)), HazardKind::ColBusConflict { col: c }));
                    }
                    col_bus[c] = Some(v);
                    self.stats.col_bus_transfers += 1;
                }
            }
        }

        // --- phase 2: resolve datapath inputs, issue MAC/FMA/SFU ---------
        let commits = &mut scratch.commits;
        commits.clear();
        let mut any_issue = false;

        for r in 0..nr {
            for c in 0..nr {
                let idx = r * nr + c;
                let instr = &step.pes[idx];
                let here = Some((r, c));

                if instr.mac.is_some() && instr.fma.is_some() {
                    return Err(err(here, HazardKind::MacIssueConflict));
                }

                // Software divide/sqrt monopolizes the MAC.
                let sfu_blocks = self.cfg.divsqrt.blocks_mac()
                    && self.pes[idx].sfu.as_ref().is_some_and(|s| !s.idle());
                if sfu_blocks && (instr.mac.is_some() || instr.fma.is_some()) {
                    return Err(err(here, HazardKind::MacBusyWithSfu));
                }

                if let Some((sa, sb)) = instr.mac {
                    let a = self.resolve(t, (r, c), sa, row_bus, col_bus, &mut port_use[idx])?;
                    let b = self.resolve(t, (r, c), sb, row_bus, col_bus, &mut port_use[idx])?;
                    self.pes[idx]
                        .mac
                        .issue_mac_signed(a, b, instr.negate_product)
                        .map_err(|_| err(here, HazardKind::MacIssueConflict))?;
                    self.stats.mac_ops += 1;
                    any_issue = true;
                }
                if let Some((sa, sb, sc)) = instr.fma {
                    let a = self.resolve(t, (r, c), sa, row_bus, col_bus, &mut port_use[idx])?;
                    let b = self.resolve(t, (r, c), sb, row_bus, col_bus, &mut port_use[idx])?;
                    let cv = self.resolve(t, (r, c), sc, row_bus, col_bus, &mut port_use[idx])?;
                    self.pes[idx]
                        .mac
                        .issue_fma_signed(a, b, cv, instr.negate_product)
                        .map_err(|_| err(here, HazardKind::MacIssueConflict))?;
                    self.stats.fma_ops += 1;
                    any_issue = true;
                }
                if let Some(cmp) = instr.cmp_update {
                    if cmp.val_reg >= self.cfg.rf_entries || cmp.tag_reg >= self.cfg.rf_entries {
                        return Err(err(
                            here,
                            HazardKind::RegOutOfRange {
                                idx: cmp.val_reg.max(cmp.tag_reg),
                                size: self.cfg.rf_entries,
                            },
                        ));
                    }
                    let v =
                        self.resolve(t, (r, c), cmp.value, row_bus, col_bus, &mut port_use[idx])?;
                    let cur = self.state[self.layout.rf(idx, cmp.val_reg)];
                    self.stats.cmp_ops += 1;
                    if !lac_fpu::magnitude_ge(cur, v) {
                        commits.push(Commit::Reg(idx, cmp.val_reg, v));
                        commits.push(Commit::Reg(idx, cmp.tag_reg, cmp.tag));
                        self.stats.rf_writes += 2;
                    }
                }
                if let Some(src) = instr.acc_load {
                    if !self.pes[idx].mac.idle() {
                        return Err(err(here, HazardKind::AccHazard));
                    }
                    let v = self.resolve(t, (r, c), src, row_bus, col_bus, &mut port_use[idx])?;
                    commits.push(Commit::AccLoad(idx, v));
                    self.stats.acc_accesses += 1;
                }
                if let Some((addr, src)) = instr.sram_a_write {
                    if addr >= self.cfg.sram_a_words {
                        return Err(err(
                            here,
                            HazardKind::SramOutOfRange {
                                which: 'A',
                                addr,
                                size: self.cfg.sram_a_words,
                            },
                        ));
                    }
                    let v = self.resolve(t, (r, c), src, row_bus, col_bus, &mut port_use[idx])?;
                    port_use[idx].sram_a += 1;
                    commits.push(Commit::SramA(idx, addr, v));
                    self.stats.sram_a_writes += 1;
                }
                if let Some((addr, src)) = instr.sram_b_write {
                    if addr >= self.cfg.sram_b_words {
                        return Err(err(
                            here,
                            HazardKind::SramOutOfRange {
                                which: 'B',
                                addr,
                                size: self.cfg.sram_b_words,
                            },
                        ));
                    }
                    let v = self.resolve(t, (r, c), src, row_bus, col_bus, &mut port_use[idx])?;
                    port_use[idx].sram_b += 1;
                    commits.push(Commit::SramB(idx, addr, v));
                    self.stats.sram_b_writes += 1;
                }
                if let Some((ridx, src)) = instr.reg_write {
                    if ridx >= self.cfg.rf_entries {
                        return Err(err(
                            here,
                            HazardKind::RegOutOfRange {
                                idx: ridx,
                                size: self.cfg.rf_entries,
                            },
                        ));
                    }
                    let v = self.resolve(t, (r, c), src, row_bus, col_bus, &mut port_use[idx])?;
                    commits.push(Commit::Reg(idx, ridx, v));
                    self.stats.rf_writes += 1;
                }
                if let Some((op, sa, sb)) = instr.sfu {
                    let a = self.resolve(t, (r, c), sa, row_bus, col_bus, &mut port_use[idx])?;
                    let b = self.resolve(t, (r, c), sb, row_bus, col_bus, &mut port_use[idx])?;
                    let unit_idx = match self.cfg.divsqrt {
                        DivSqrtImpl::Software => idx,
                        DivSqrtImpl::DiagonalPes => {
                            if r != c {
                                return Err(err(here, HazardKind::SfuNotPresent));
                            }
                            idx
                        }
                        // Isolated: the single shared unit lives at index 0;
                        // any PE may feed it (operand rides the buses).
                        DivSqrtImpl::Isolated => 0,
                    };
                    // Wide-accumulator square root (§A.2): with the exponent
                    // extension, √acc is formed from the wide mantissa and a
                    // halved exponent, so an out-of-range sum of squares
                    // still yields a finite norm.
                    let wide_sqrt = (op == lac_fpu::DivSqrtOp::Sqrt
                        && sa == Source::Acc
                        && self.cfg.fpu.exponent_extension)
                        .then(|| self.pes[idx].mac.read_acc_sqrt());
                    let unit = self.pes[unit_idx]
                        .sfu
                        .as_mut()
                        .ok_or_else(|| err(here, HazardKind::SfuNotPresent))?;
                    match wide_sqrt {
                        Some(r) => unit
                            .issue_precomputed(op, r)
                            .map_err(|_| err(here, HazardKind::SfuBusy))?,
                        None => unit
                            .issue(op, a, b)
                            .map_err(|_| err(here, HazardKind::SfuBusy))?,
                    }
                    self.stats.sfu_ops += 1;
                }
            }
        }

        // --- phase 3: port-count checks -----------------------------------
        for r in 0..nr {
            for c in 0..nr {
                let idx = r * nr + c;
                let u = &port_use[idx];
                if u.sram_a > 1 {
                    return Err(err(Some((r, c)), HazardKind::SramAPortConflict));
                }
                if u.sram_b > 2 {
                    return Err(err(Some((r, c)), HazardKind::SramBPortConflict));
                }
                if u.rf_reads > 2 {
                    return Err(err(
                        Some((r, c)),
                        HazardKind::RegOutOfRange {
                            idx: usize::MAX, // sentinel: too many read ports
                            size: self.cfg.rf_entries,
                        },
                    ));
                }
            }
        }

        // --- phase 4: external stores capture column buses ----------------
        for op in &step.ext {
            if let ExtOp::Store { col, addr } = *op {
                if addr >= mem.len() {
                    return Err(err(
                        None,
                        HazardKind::ExtOutOfRange {
                            addr,
                            size: mem.len(),
                        },
                    ));
                }
                let v = col_bus
                    .get(col)
                    .copied()
                    .flatten()
                    .ok_or_else(|| err(None, HazardKind::ExtStoreUndriven { col }))?;
                commits.push(Commit::Ext(addr, v));
                self.stats.ext_writes += 1;
            }
        }

        // --- phase 5: commit writes ---------------------------------------
        for cmt in commits.drain(..) {
            match cmt {
                Commit::SramA(idx, addr, v) => self.state[self.layout.sram_a(idx, addr)] = v,
                Commit::SramB(idx, addr, v) => self.state[self.layout.sram_b(idx, addr)] = v,
                Commit::Reg(idx, ridx, v) => self.state[self.layout.rf(idx, ridx)] = v,
                Commit::AccLoad(idx, v) => self.pes[idx].mac.load_acc(v),
                Commit::Ext(addr, v) => mem.write(addr, v),
            }
        }

        // --- phase 6: advance pipelines -----------------------------------
        for pe in &mut self.pes {
            pe.mac.step();
            if let Some(v) = pe.mac.take_result() {
                pe.mac_result = Some(v);
            }
            if let Some(sfu) = &mut pe.sfu {
                if let Some(v) = sfu.step() {
                    pe.sfu_result = Some(v);
                }
            }
        }

        self.stats.cycles += 1;
        if any_issue {
            self.stats.active_cycles += 1;
        }
        Ok(())
    }

    /// Resolve a source that is *not* allowed to be a bus (bus writers).
    fn resolve_nonbus(
        &mut self,
        t: usize,
        pe: (usize, usize),
        src: Source,
        ports: &mut PortUse,
    ) -> Result<f64, SimError> {
        match src {
            Source::RowBus | Source::ColBus => Err(SimError {
                cycle: t,
                pe: Some(pe),
                kind: HazardKind::BusToBusSameCycle,
            }),
            other => self.resolve_inner(t, pe, other, None, None, ports),
        }
    }

    fn resolve(
        &mut self,
        t: usize,
        pe: (usize, usize),
        src: Source,
        row_bus: &[Option<f64>],
        col_bus: &[Option<f64>],
        ports: &mut PortUse,
    ) -> Result<f64, SimError> {
        self.resolve_inner(t, pe, src, Some(row_bus), Some(col_bus), ports)
    }

    fn resolve_inner(
        &mut self,
        t: usize,
        (r, c): (usize, usize),
        src: Source,
        row_bus: Option<&[Option<f64>]>,
        col_bus: Option<&[Option<f64>]>,
        ports: &mut PortUse,
    ) -> Result<f64, SimError> {
        let idx = r * self.cfg.nr + c;
        let err = |kind| SimError {
            cycle: t,
            pe: Some((r, c)),
            kind,
        };
        match src {
            Source::RowBus => row_bus.and_then(|b| b[r]).ok_or_else(|| {
                err(HazardKind::BusUndriven {
                    row_bus: true,
                    index: r,
                })
            }),
            Source::ColBus => col_bus.and_then(|b| b[c]).ok_or_else(|| {
                err(HazardKind::BusUndriven {
                    row_bus: false,
                    index: c,
                })
            }),
            Source::SramA(addr) => {
                if addr >= self.cfg.sram_a_words {
                    return Err(err(HazardKind::SramOutOfRange {
                        which: 'A',
                        addr,
                        size: self.cfg.sram_a_words,
                    }));
                }
                ports.sram_a += 1;
                self.stats.sram_a_reads += 1;
                Ok(self.state[self.layout.sram_a(idx, addr)])
            }
            Source::SramB(addr) => {
                if addr >= self.cfg.sram_b_words {
                    return Err(err(HazardKind::SramOutOfRange {
                        which: 'B',
                        addr,
                        size: self.cfg.sram_b_words,
                    }));
                }
                ports.sram_b += 1;
                self.stats.sram_b_reads += 1;
                Ok(self.state[self.layout.sram_b(idx, addr)])
            }
            Source::Reg(ridx) => {
                if ridx >= self.cfg.rf_entries {
                    return Err(err(HazardKind::RegOutOfRange {
                        idx: ridx,
                        size: self.cfg.rf_entries,
                    }));
                }
                ports.rf_reads += 1;
                self.stats.rf_reads += 1;
                Ok(self.state[self.layout.rf(idx, ridx)])
            }
            Source::Acc => {
                if !self.pes[idx].mac.idle() {
                    return Err(err(HazardKind::AccHazard));
                }
                self.stats.acc_accesses += 1;
                Ok(self.pes[idx].mac.read_acc())
            }
            Source::MacResult => self.pes[idx]
                .mac_result
                .ok_or_else(|| err(HazardKind::MacResultEmpty)),
            Source::SfuResult => {
                let unit_idx = match self.cfg.divsqrt {
                    DivSqrtImpl::Isolated => 0,
                    _ => idx,
                };
                self.pes[unit_idx]
                    .sfu_result
                    .ok_or_else(|| err(HazardKind::SfuResultEmpty))
            }
            Source::Const(v) => Ok(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{PeInstr, ProgramBuilder};
    use lac_fpu::DivSqrtOp;

    fn small_cfg() -> LacConfig {
        LacConfig {
            nr: 2,
            sram_a_words: 16,
            sram_b_words: 16,
            ..Default::default()
        }
    }

    #[test]
    fn broadcast_and_mac() {
        // PE(0,0) broadcasts 3.0 on row 0; both row-0 PEs MAC it with 2.0.
        let cfg = small_cfg();
        let p = cfg.fpu.pipeline_depth;
        let mut lac = Lac::new(cfg);
        lac.sram_a_mut(0, 0)[0] = 3.0;
        let mut b = ProgramBuilder::new(2);
        let t = b.push_step();
        b.set_pe(t, 0, 0, PeInstr::default().row_write(Source::SramA(0)));
        b.pe_mut(t, 0, 0).mac = Some((Source::RowBus, Source::Const(2.0)));
        b.pe_mut(t, 0, 1).mac = Some((Source::RowBus, Source::Const(4.0)));
        b.idle(p);
        let prog = b.build();
        let mut mem = ExternalMem::new(4);
        let stats = lac.run(&prog, &mut mem).unwrap();
        assert_eq!(lac.acc(0, 0), 6.0);
        assert_eq!(lac.acc(0, 1), 12.0);
        assert_eq!(stats.mac_ops, 2);
        assert_eq!(stats.row_bus_transfers, 1);
    }

    #[test]
    fn row_bus_conflict_detected() {
        let mut lac = Lac::new(small_cfg());
        let mut b = ProgramBuilder::new(2);
        let t = b.push_step();
        b.set_pe(t, 0, 0, PeInstr::default().row_write(Source::Const(1.0)));
        b.set_pe(t, 0, 1, PeInstr::default().row_write(Source::Const(2.0)));
        let mut mem = ExternalMem::new(1);
        let e = lac.run(&b.build(), &mut mem).unwrap_err();
        assert!(matches!(e.kind, HazardKind::RowBusConflict { row: 0 }));
    }

    #[test]
    fn sram_a_single_port_enforced() {
        let mut lac = Lac::new(small_cfg());
        let mut b = ProgramBuilder::new(2);
        let t = b.push_step();
        // read SramA twice in one cycle on the same PE
        b.pe_mut(t, 0, 0).mac = Some((Source::SramA(0), Source::SramA(1)));
        let mut mem = ExternalMem::new(1);
        let e = lac.run(&b.build(), &mut mem).unwrap_err();
        assert!(matches!(e.kind, HazardKind::SramAPortConflict));
    }

    #[test]
    fn sram_b_dual_port_allows_two() {
        let mut lac = Lac::new(small_cfg());
        lac.sram_b_mut(0, 0)[0] = 5.0;
        lac.sram_b_mut(0, 0)[1] = 7.0;
        let mut b = ProgramBuilder::new(2);
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::SramB(0), Source::SramB(1)));
        b.idle(5);
        let mut mem = ExternalMem::new(1);
        lac.run(&b.build(), &mut mem).unwrap();
        assert_eq!(lac.acc(0, 0), 35.0);
    }

    #[test]
    fn acc_read_during_flight_is_hazard() {
        let mut lac = Lac::new(small_cfg());
        let mut b = ProgramBuilder::new(2);
        let t0 = b.push_step();
        b.pe_mut(t0, 0, 0).mac = Some((Source::Const(1.0), Source::Const(1.0)));
        let t1 = b.push_step();
        b.pe_mut(t1, 0, 0).row_write = Some(Source::Acc);
        let mut mem = ExternalMem::new(1);
        let e = lac.run(&b.build(), &mut mem).unwrap_err();
        assert!(matches!(e.kind, HazardKind::AccHazard));
    }

    #[test]
    fn external_roundtrip_through_column_bus() {
        let mut lac = Lac::new(small_cfg());
        let mut mem = ExternalMem::from_vec(vec![42.0, 0.0]);
        let mut b = ProgramBuilder::new(2);
        // cycle 0: mem[0] -> col bus 1 -> PE(0,1) reg 0
        let t0 = b.push_step();
        b.ext(t0, ExtOp::Load { col: 1, addr: 0 });
        b.pe_mut(t0, 0, 1).reg_write = Some((0, Source::ColBus));
        // cycle 1: PE(0,1) drives col bus 1 from reg; store to mem[1]
        let t1 = b.push_step();
        b.pe_mut(t1, 0, 1).col_write = Some(Source::Reg(0));
        b.ext(t1, ExtOp::Store { col: 1, addr: 1 });
        let stats = lac.run(&b.build(), &mut mem).unwrap();
        assert_eq!(mem.read(1), 42.0);
        assert_eq!(stats.ext_reads, 1);
        assert_eq!(stats.ext_writes, 1);
        assert_eq!(stats.col_bus_transfers, 2);
    }

    #[test]
    fn ext_bandwidth_limit_enforced() {
        let cfg = LacConfig {
            ext_words_per_cycle: Some(1),
            ..small_cfg()
        };
        let mut lac = Lac::new(cfg);
        let mut b = ProgramBuilder::new(2);
        let t = b.push_step();
        b.ext(t, ExtOp::Load { col: 0, addr: 0 });
        b.ext(t, ExtOp::Load { col: 1, addr: 1 });
        let mut mem = ExternalMem::new(4);
        let e = lac.run(&b.build(), &mut mem).unwrap_err();
        assert!(matches!(
            e.kind,
            HazardKind::ExtBandwidthExceeded { used: 2, limit: 1 }
        ));
    }

    #[test]
    fn sfu_reciprocal_via_isolated_unit() {
        let cfg = small_cfg();
        let lat = cfg.divsqrt.latency(DivSqrtOp::Reciprocal);
        let mut lac = Lac::new(cfg);
        let mut b = ProgramBuilder::new(2);
        let t0 = b.push_step();
        b.pe_mut(t0, 1, 1).sfu = Some((
            DivSqrtOp::Reciprocal,
            Source::Const(8.0),
            Source::Const(0.0),
        ));
        b.idle(lat);
        let t1 = b.push_step();
        b.pe_mut(t1, 1, 1).reg_write = Some((0, Source::SfuResult));
        let mut mem = ExternalMem::new(1);
        lac.run(&b.build(), &mut mem).unwrap();
        assert!((lac.reg(1, 1, 0) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn diagonal_sfu_rejects_offdiagonal_use() {
        let cfg = LacConfig {
            divsqrt: DivSqrtImpl::DiagonalPes,
            ..small_cfg()
        };
        let mut lac = Lac::new(cfg);
        let mut b = ProgramBuilder::new(2);
        let t = b.push_step();
        b.pe_mut(t, 0, 1).sfu = Some((
            DivSqrtOp::Reciprocal,
            Source::Const(2.0),
            Source::Const(0.0),
        ));
        let mut mem = ExternalMem::new(1);
        let e = lac.run(&b.build(), &mut mem).unwrap_err();
        assert!(matches!(e.kind, HazardKind::SfuNotPresent));
    }

    #[test]
    fn software_divsqrt_blocks_mac() {
        let cfg = LacConfig {
            divsqrt: DivSqrtImpl::Software,
            ..small_cfg()
        };
        let mut lac = Lac::new(cfg);
        let mut b = ProgramBuilder::new(2);
        let t0 = b.push_step();
        b.pe_mut(t0, 0, 0).sfu = Some((
            DivSqrtOp::Reciprocal,
            Source::Const(2.0),
            Source::Const(0.0),
        ));
        let t1 = b.push_step();
        b.pe_mut(t1, 0, 0).mac = Some((Source::Const(1.0), Source::Const(1.0)));
        let mut mem = ExternalMem::new(1);
        let e = lac.run(&b.build(), &mut mem).unwrap_err();
        assert!(matches!(e.kind, HazardKind::MacBusyWithSfu));
    }

    #[test]
    fn fma_result_latch_readable_after_p_cycles() {
        let cfg = small_cfg();
        let p = cfg.fpu.pipeline_depth;
        let mut lac = Lac::new(cfg);
        let mut b = ProgramBuilder::new(2);
        let t0 = b.push_step();
        b.pe_mut(t0, 0, 0).fma = Some((Source::Const(2.0), Source::Const(3.0), Source::Const(1.0)));
        b.idle(p - 1);
        let t1 = b.push_step();
        b.pe_mut(t1, 0, 0).reg_write = Some((1, Source::MacResult));
        let mut mem = ExternalMem::new(1);
        lac.run(&b.build(), &mut mem).unwrap();
        assert_eq!(lac.reg(0, 0, 1), 7.0);
    }

    #[test]
    fn undriven_bus_read_is_error() {
        let mut lac = Lac::new(small_cfg());
        let mut b = ProgramBuilder::new(2);
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::RowBus, Source::Const(1.0)));
        let mut mem = ExternalMem::new(1);
        let e = lac.run(&b.build(), &mut mem).unwrap_err();
        assert!(matches!(
            e.kind,
            HazardKind::BusUndriven { row_bus: true, .. }
        ));
    }
}
