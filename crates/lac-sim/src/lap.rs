//! Multi-core Linear Algebra Processor (LAP) wrapper (Chapter 4).
//!
//! The chip-level organization is `S` LACs, each with a dedicated bank of
//! on-chip memory plus a shared region (Figure 4.1). Work is distributed by
//! row panels, and the cores run in lock step with no inter-core
//! communication (GEMM's panels are independent) — so the simulator runs each
//! core's program against its own bank and reports the *makespan* (slowest
//! core) plus aggregate event counts. Shared-memory port contention is a
//! chip-level concern handled analytically in `lac-model`; the per-core
//! bandwidth cap is enforced here via [`crate::LacConfig::ext_words_per_cycle`].

use crate::config::LacConfig;
use crate::core::{ExternalMem, Lac};
use crate::error::SimError;
use crate::isa::Program;
use crate::stats::ExecStats;

/// A processor built from `S` identical LACs.
pub struct Lap {
    cores: Vec<Lac>,
}

/// Outcome of running one program per core.
#[derive(Clone, Debug)]
pub struct LapRunSummary {
    /// Per-core stats, in core order.
    pub per_core: Vec<ExecStats>,
    /// Makespan: cycles of the slowest core.
    pub makespan_cycles: u64,
    /// Sum of all event counters (cycles summed too — divide by S for time).
    pub aggregate: ExecStats,
}

impl Lap {
    /// `num_cores` fresh identical cores.
    pub fn new(cfg: LacConfig, num_cores: usize) -> Self {
        assert!(num_cores >= 1);
        Self {
            cores: (0..num_cores).map(|_| Lac::new(cfg)).collect(),
        }
    }

    /// Number of cores in the array.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Mutable access to core `i` (per-core staging and inspection).
    pub fn core_mut(&mut self, i: usize) -> &mut Lac {
        &mut self.cores[i]
    }

    /// Run one `(program, memory bank)` pair per core.
    pub fn run(
        &mut self,
        work: Vec<(Program, ExternalMem)>,
    ) -> Result<(LapRunSummary, Vec<ExternalMem>), SimError> {
        assert_eq!(work.len(), self.cores.len(), "one program per core");
        let mut per_core = Vec::with_capacity(work.len());
        let mut banks = Vec::with_capacity(work.len());
        let mut aggregate = ExecStats::default();
        let mut makespan = 0;
        for (core, (prog, mut mem)) in self.cores.iter_mut().zip(work) {
            let stats = core.run(&prog, &mut mem)?;
            makespan = makespan.max(stats.cycles);
            aggregate.merge(&stats);
            per_core.push(stats);
            banks.push(mem);
        }
        Ok((
            LapRunSummary {
                per_core,
                makespan_cycles: makespan,
                aggregate,
            },
            banks,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{PeInstr, ProgramBuilder, Source};

    #[test]
    fn two_cores_run_independently() {
        let cfg = LacConfig {
            nr: 2,
            sram_a_words: 8,
            sram_b_words: 8,
            ..Default::default()
        };
        let mut lap = Lap::new(cfg, 2);
        let mk = |v: f64, idle: usize| {
            let mut b = ProgramBuilder::new(2);
            let t = b.push_step();
            b.set_pe(
                t,
                0,
                0,
                PeInstr::default().mac(Source::Const(v), Source::Const(v)),
            );
            b.idle(cfg.fpu.pipeline_depth + idle);
            b.build()
        };
        let work = vec![
            (mk(2.0, 0), ExternalMem::new(1)),
            (mk(3.0, 10), ExternalMem::new(1)),
        ];
        let (summary, _) = lap.run(work).unwrap();
        assert_eq!(summary.per_core.len(), 2);
        assert_eq!(summary.aggregate.mac_ops, 2);
        assert_eq!(
            summary.makespan_cycles,
            summary.per_core.iter().map(|s| s.cycles).max().unwrap()
        );
        assert_eq!(lap.core_mut(0).acc(0, 0), 4.0);
        assert_eq!(lap.core_mut(1).acc(0, 0), 9.0);
    }
}
