//! Convergence-driven dynamic job graphs: the continuation subsystem.
//!
//! Every layer below this module serves graphs whose shape is fixed at
//! submission time. Real interior-point clients are not like that: an
//! IP-PMM QP solve or an IPDDP trajectory optimization iterates *until a
//! residual converges*, so the number of factorization rounds — the graph
//! shape — is unknown when the first segment is submitted. This module
//! closes that loop:
//!
//! * [`Continuation`] — the client's convergence test: after a submitted
//!   segment completes, the continuation inspects that segment's outputs
//!   and deterministically decides to [`Continue::Append`] a successor
//!   segment or declare the request [`Continue::Done`].
//! * [`DynamicGraph`] — an initial [`JobGraph`] paired with its
//!   continuation: a request whose total shape is discovered round by
//!   round.
//! * [`ContinuationBackend`] — the *re-admission door*: the projection of
//!   [`LacService`] / [`LacCluster`] the driver needs (tenant admission +
//!   one serving round). Appended segments go back through the same
//!   [`LacService::enqueue`] budget charge as the initial one — a graph
//!   that grows can never sneak past its tenant's
//!   [`crate::TenantConfig::max_inflight_cost`].
//! * [`run_dynamic`] — the driver: admit pending segments in request
//!   order, run one round, feed each completed segment to its
//!   continuation, re-admit what grew, repeat until every request is
//!   done. A segment bounced by admission backpressure retries after the
//!   next round (in-flight cost drains); a segment that can *never* fit
//!   (its cost alone exceeds the budget with nothing in flight) surfaces
//!   as the typed [`DynamicError::BudgetExhausted`] instead of a
//!   spin-forever deadlock.
//!
//! **Determinism.** The driver admits in request order, rounds are the
//! wave-synchronized deterministic rounds of the layers below, and a
//! continuation is required to be a pure function of the outputs it is
//! shown. A whole dynamic run — outputs, segment counts, iteration
//! counts — is therefore a pure function of `(requests, tenant configs,
//! cost hints)`: bit-identical across reruns, scheduler policies and
//! backends (policies move *when* jobs run, never what they compute).
//! `tests/dynamic_props.rs` property-tests exactly that.

use crate::chip::{ChipJob, Scheduler};
use crate::cluster::LacCluster;
use crate::error::SimError;
use crate::service::{GraphCompletion, GraphTicket, JobGraph, LacService, Rejected, TenantId};
use std::collections::BTreeMap;
use std::fmt;

/// A continuation's verdict on its just-completed segment.
pub enum Continue<J: ChipJob> {
    /// Not converged: append this successor segment to the live request.
    /// It re-enters through the tenant's admission door and is charged
    /// against the same `max_inflight_cost` budget as any fresh graph.
    Append(JobGraph<J>),
    /// Converged (or hit the client's iteration cap): the request is
    /// complete.
    Done,
}

/// The convergence test of a dynamic request: shown the outputs of each
/// completed segment, it deterministically decides whether the request
/// grows or finishes.
///
/// Implementations must be pure functions of the outputs they are shown
/// (plus their own captured, deterministic state) — never of host time,
/// scheduling order or placement. That is what lets a dynamic run stay
/// bit-identical across policies and backends. Any `FnMut(usize,
/// &[J::Output]) -> Continue<J> + Send` closure is a continuation.
pub trait Continuation<J: ChipJob>: Send {
    /// Decide after segment `segment` (0 = the initial graph) completed
    /// with `outputs`, one per job in the segment's submission order.
    fn next(&mut self, segment: usize, outputs: &[J::Output]) -> Continue<J>;
}

impl<J: ChipJob, F> Continuation<J> for F
where
    F: FnMut(usize, &[J::Output]) -> Continue<J> + Send,
{
    fn next(&mut self, segment: usize, outputs: &[J::Output]) -> Continue<J> {
        self(segment, outputs)
    }
}

/// A request whose graph shape is discovered at run time: the initial
/// segment plus the continuation that decides how it grows.
pub struct DynamicGraph<J: ChipJob> {
    initial: JobGraph<J>,
    cont: Box<dyn Continuation<J>>,
}

impl<J: ChipJob> DynamicGraph<J> {
    /// Pair an initial segment with its continuation.
    pub fn new(initial: JobGraph<J>, cont: impl Continuation<J> + 'static) -> Self {
        Self {
            initial,
            cont: Box::new(cont),
        }
    }

    /// A static graph lifted into the dynamic API: one segment, then
    /// done. Lets fixed and convergence-driven requests share a driver.
    pub fn fixed(graph: JobGraph<J>) -> Self {
        Self::new(graph, |_: usize, _: &[J::Output]| Continue::<J>::Done)
    }

    /// Re-type every job of the request — initial segment and everything
    /// the continuation will ever append — through `f`, preserving graph
    /// shapes and the continuation's decisions exactly. The target job
    /// type must produce the same output type, so the wrapped
    /// continuation sees the very outputs it would have seen unwrapped.
    ///
    /// This is the heterogeneity adapter: a backend serves exactly one
    /// job type, so to mix clients (say IP-PMM QP solves and IPDDP
    /// fleets from `lac-kernels`) on one service, map each request into
    /// a shared enum that dispatches [`ChipJob::run_on`] per variant.
    pub fn map_job<K, F>(self, mut f: F) -> DynamicGraph<K>
    where
        K: ChipJob<Output = J::Output>,
        F: FnMut(J) -> K + Send + 'static,
        J: 'static,
    {
        let (initial, mut cont) = self.into_parts();
        let initial = initial.map(&mut f);
        DynamicGraph::new(
            initial,
            move |segment: usize, outputs: &[K::Output]| match cont.next(segment, outputs) {
                Continue::Append(g) => Continue::Append(g.map(&mut f)),
                Continue::Done => Continue::Done,
            },
        )
    }

    /// Split the request into its initial segment and continuation —
    /// how drivers (this module's [`run_dynamic`], the open-loop dynamic
    /// replay in `lac-traffic`) take it apart.
    pub fn into_parts(self) -> (JobGraph<J>, Box<dyn Continuation<J>>) {
        (self.initial, self.cont)
    }
}

impl<J: ChipJob> fmt::Debug for DynamicGraph<J> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynamicGraph")
            .field("initial_jobs", &self.initial.len())
            .field("initial_cost", &self.initial.total_cost())
            .finish_non_exhaustive()
    }
}

/// The serving-backend projection the dynamic driver needs: the tenant
/// admission door and the round door. Implemented for [`LacService`]
/// (one chip, persistent workers) and [`LacCluster`] (N chips, modeled
/// transfers), so one dynamic request replays identically against
/// either.
pub trait ContinuationBackend<J: ChipJob> {
    /// Offer a segment through tenant `t`'s admission door, charging its
    /// cost against the tenant's in-flight budget.
    fn offer(&mut self, t: TenantId, graph: JobGraph<J>) -> Result<GraphTicket, Rejected<J>>;
    /// Run one wave-synchronized round over everything admitted and
    /// return the per-graph completions in admission order.
    fn run_round(&mut self, sched: Scheduler) -> Result<Vec<GraphCompletion<J::Output>>, SimError>;
}

impl<J: ChipJob + 'static> ContinuationBackend<J> for LacService<J> {
    fn offer(&mut self, t: TenantId, graph: JobGraph<J>) -> Result<GraphTicket, Rejected<J>> {
        self.enqueue(t, graph)
    }

    fn run_round(&mut self, sched: Scheduler) -> Result<Vec<GraphCompletion<J::Output>>, SimError> {
        Ok(self.run_admitted(sched)?.graphs)
    }
}

impl<J: ChipJob> ContinuationBackend<J> for LacCluster<J> {
    fn offer(&mut self, t: TenantId, graph: JobGraph<J>) -> Result<GraphTicket, Rejected<J>> {
        self.enqueue(t, graph)
    }

    fn run_round(&mut self, sched: Scheduler) -> Result<Vec<GraphCompletion<J::Output>>, SimError> {
        Ok(self.run_admitted(sched)?.graphs)
    }
}

/// Why a dynamic run stopped early.
#[derive(Debug)]
pub enum DynamicError {
    /// A serving round failed (a hard simulation hazard).
    Sim(SimError),
    /// Typed backpressure turned terminal: a segment bounced off its
    /// tenant's admission budget with *nothing* in flight, so the budget
    /// can never drain and the segment can never be admitted. The classic
    /// trigger is a continuation appending a segment whose cost alone
    /// exceeds `max_inflight_cost`.
    BudgetExhausted {
        /// The tenant whose budget was exceeded.
        tenant: TenantId,
        /// Index of the starved request in the driver's request list.
        request: usize,
        /// The segment that could not be admitted (0 = the initial one).
        segment: usize,
        /// Total cost hint of the unadmittable segment.
        graph_cost: u64,
        /// The tenant's admission budget.
        budget: u64,
    },
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicError::Sim(e) => write!(f, "dynamic round failed: {e}"),
            DynamicError::BudgetExhausted {
                request,
                segment,
                graph_cost,
                budget,
                ..
            } => write!(
                f,
                "dynamic budget exhausted: request {request} segment {segment} \
                 costs {graph_cost} but the tenant's admission budget is {budget} \
                 with nothing left in flight"
            ),
        }
    }
}

impl std::error::Error for DynamicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DynamicError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for DynamicError {
    fn from(e: SimError) -> Self {
        DynamicError::Sim(e)
    }
}

/// One dynamic request's final accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct DynamicOutcome<T> {
    /// Each completed segment's outputs, in segment order (index 0 = the
    /// initial graph); within a segment, one output per job in submission
    /// order.
    pub segments: Vec<Vec<T>>,
    /// Total jobs the request ran across all segments.
    pub jobs: usize,
    /// Total cost hint admitted across all segments.
    pub total_cost: u64,
    /// Cost admitted *after* the initial segment — the work the request
    /// grew at run time (all of it charged against the tenant budget).
    pub appended_cost: u64,
}

impl<T> DynamicOutcome<T> {
    /// Segments the request took to converge (its iteration count for
    /// one-segment-per-iteration clients like IP-PMM).
    pub fn iterations(&self) -> usize {
        self.segments.len()
    }
}

/// Everything one [`run_dynamic`] call produces.
#[derive(Clone, Debug, PartialEq)]
pub struct DynamicRun<T> {
    /// Per-request outcomes, in the request order given to the driver.
    pub outcomes: Vec<DynamicOutcome<T>>,
    /// Serving rounds the run took (segments of independent requests
    /// share rounds).
    pub rounds: usize,
}

/// Drive a set of dynamic requests to completion against a backend.
///
/// Each pass admits every request's pending segment in request order
/// (bounced segments retry on the next pass, after in-flight cost has
/// drained), runs one serving round, and feeds every completed segment
/// to its request's continuation; segments the continuations append are
/// re-admitted on the next pass. Independent requests' segments share
/// rounds, so a fleet of dynamic solvers interleaves on the backend the
/// same way a batch of static graphs would.
///
/// Graphs other callers admitted directly on the backend are served
/// alongside and their completions ignored here.
///
/// # Errors
///
/// [`DynamicError::Sim`] on a hard simulation hazard, and
/// [`DynamicError::BudgetExhausted`] when a segment bounces with nothing
/// in flight (it can never be admitted) — typed backpressure, never a
/// spin.
pub fn run_dynamic<J: ChipJob, B: ContinuationBackend<J>>(
    backend: &mut B,
    requests: Vec<(TenantId, DynamicGraph<J>)>,
    sched: Scheduler,
) -> Result<DynamicRun<J::Output>, DynamicError> {
    struct Req<J: ChipJob> {
        tenant: TenantId,
        cont: Box<dyn Continuation<J>>,
        pending: Option<JobGraph<J>>,
        segment: usize,
        segments: Vec<Vec<J::Output>>,
        jobs: usize,
        total_cost: u64,
        appended_cost: u64,
        last_bounce: Option<(u64, u64)>,
    }

    let mut reqs: Vec<Req<J>> = requests
        .into_iter()
        .map(|(tenant, dg)| {
            let (initial, cont) = dg.into_parts();
            Req {
                tenant,
                cont,
                pending: Some(initial),
                segment: 0,
                segments: Vec::new(),
                jobs: 0,
                total_cost: 0,
                appended_cost: 0,
                last_bounce: None,
            }
        })
        .collect();
    // Admission seq → request index, for routing completions back.
    let mut inflight: BTreeMap<u64, usize> = BTreeMap::new();
    let mut rounds = 0usize;

    loop {
        // Admit pending segments in request order.
        for (i, r) in reqs.iter_mut().enumerate() {
            if let Some(g) = r.pending.take() {
                let cost = g.total_cost();
                let jobs = g.len();
                match backend.offer(r.tenant, g) {
                    Ok(ticket) => {
                        r.jobs += jobs;
                        r.total_cost += cost;
                        if r.segment > 0 {
                            r.appended_cost += cost;
                        }
                        inflight.insert(ticket.seq, i);
                    }
                    Err(rej) => {
                        r.last_bounce = Some((rej.graph_cost, rej.budget));
                        r.pending = Some(rej.graph);
                    }
                }
            }
        }

        if inflight.is_empty() {
            match reqs.iter().enumerate().find(|(_, r)| r.pending.is_some()) {
                Some((i, r)) => {
                    // Nothing in flight, so no budget can drain: a still-
                    // bounced segment is permanently unadmittable.
                    let (graph_cost, budget) = r
                        .last_bounce
                        .expect("a pending segment bounced at least once");
                    return Err(DynamicError::BudgetExhausted {
                        tenant: r.tenant,
                        request: i,
                        segment: r.segment,
                        graph_cost,
                        budget,
                    });
                }
                None => break, // every request is done
            }
        }

        let completions = backend.run_round(sched)?;
        rounds += 1;
        for c in completions {
            // Completions of graphs admitted outside this driver are the
            // caller's business; skip them.
            let Some(i) = inflight.remove(&c.ticket.seq) else {
                continue;
            };
            let r = &mut reqs[i];
            match r.cont.next(r.segment, &c.outputs) {
                Continue::Append(g) => {
                    r.segments.push(c.outputs);
                    r.segment += 1;
                    r.pending = Some(g);
                }
                Continue::Done => {
                    r.segments.push(c.outputs);
                }
            }
        }
    }

    Ok(DynamicRun {
        outcomes: reqs
            .into_iter()
            .map(|r| DynamicOutcome {
                segments: r.segments,
                jobs: r.jobs,
                total_cost: r.total_cost,
                appended_cost: r.appended_cost,
            })
            .collect(),
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{ChipConfig, ProgramJob, Scheduler};
    use crate::config::LacConfig;
    use crate::isa::ProgramBuilder;
    use crate::service::TenantConfig;

    fn idle_job(cost: u64) -> ProgramJob {
        let cfg = LacConfig::default();
        let mut b = ProgramBuilder::new(cfg.nr);
        b.idle(8);
        let mut j = ProgramJob::new(b.build());
        j.cost = cost;
        j
    }

    fn chain(jobs: usize, cost: u64) -> JobGraph<ProgramJob> {
        let mut g = JobGraph::new();
        let mut prev = None;
        for _ in 0..jobs {
            let id = match prev {
                None => g.add(idle_job(cost)),
                Some(p) => g.add_after(idle_job(cost), &[p]),
            };
            prev = Some(id);
        }
        g
    }

    /// A request that appends `extra` successor segments, then stops.
    fn growing(extra: usize) -> DynamicGraph<ProgramJob> {
        DynamicGraph::new(chain(2, 40), move |segment: usize, _: &[_]| {
            if segment < extra {
                Continue::Append(chain(1, 25))
            } else {
                Continue::Done
            }
        })
    }

    #[test]
    fn appended_segments_run_and_are_charged() {
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let t = svc.add_tenant(TenantConfig::new("dyn"));
        let run = run_dynamic(&mut svc, vec![(t, growing(3))], Scheduler::FairShare).unwrap();
        let out = &run.outcomes[0];
        assert_eq!(out.segments.len(), 4, "initial + 3 appended");
        assert_eq!(out.jobs, 2 + 3);
        assert_eq!(out.total_cost, 2 * 40 + 3 * 25);
        assert_eq!(out.appended_cost, 3 * 25);
        assert_eq!(run.rounds, 4, "each segment needs its own round");
        // The budget fully drained: nothing left in flight.
        assert_eq!(svc.tenant_session(t).inflight_cost, 0);
        assert_eq!(svc.tenant_session(t).cost_completed, out.total_cost);
    }

    #[test]
    fn fixed_requests_take_one_segment() {
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(2, LacConfig::default()));
        let t = svc.add_tenant(TenantConfig::new("fixed"));
        let run = run_dynamic(
            &mut svc,
            vec![(t, DynamicGraph::fixed(chain(3, 10)))],
            Scheduler::Fifo,
        )
        .unwrap();
        assert_eq!(run.outcomes[0].segments.len(), 1);
        assert_eq!(run.outcomes[0].appended_cost, 0);
        assert_eq!(run.rounds, 1);
    }

    #[test]
    fn bounced_segment_retries_after_budget_drains() {
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(1, LacConfig::default()));
        // Budget fits one 80-cost chain at a time, so two growing
        // requests must interleave through bounce-retry.
        let t = svc.add_tenant(TenantConfig::new("tight").with_admission_budget(100));
        let run = run_dynamic(
            &mut svc,
            vec![(t, growing(2)), (t, growing(2))],
            Scheduler::FairShare,
        )
        .unwrap();
        assert_eq!(run.outcomes.len(), 2);
        for out in &run.outcomes {
            assert_eq!(out.segments.len(), 3);
        }
        assert!(
            svc.tenant_session(t).graphs_rejected > 0,
            "backpressure engaged"
        );
        assert_eq!(svc.tenant_session(t).inflight_cost, 0);
    }

    #[test]
    fn unadmittable_appended_segment_is_a_typed_error() {
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(1, LacConfig::default()));
        let t = svc.add_tenant(TenantConfig::new("starved").with_admission_budget(90));
        // The initial segment fits (80); the continuation appends one
        // that can never fit (120 > 90).
        let dg = DynamicGraph::new(chain(2, 40), move |segment: usize, _: &[_]| {
            if segment == 0 {
                Continue::Append(chain(3, 40))
            } else {
                Continue::Done
            }
        });
        let err = run_dynamic(&mut svc, vec![(t, dg)], Scheduler::Fifo).unwrap_err();
        match err {
            DynamicError::BudgetExhausted {
                segment,
                graph_cost,
                budget,
                ..
            } => {
                assert_eq!(segment, 1);
                assert_eq!(graph_cost, 120);
                assert_eq!(budget, 90);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn service_and_cluster_dynamic_runs_agree() {
        let run_on_service = || {
            let mut svc: LacService<ProgramJob> =
                LacService::new(ChipConfig::new(2, LacConfig::default()));
            let t = svc.add_tenant(TenantConfig::new("a"));
            run_dynamic(
                &mut svc,
                vec![(t, growing(2)), (t, growing(1))],
                Scheduler::Fifo,
            )
            .unwrap()
        };
        let run_on_cluster = || {
            let mut cl: LacCluster<ProgramJob> =
                LacCluster::new(crate::cluster::ClusterConfig::homogeneous(
                    2,
                    ChipConfig::new(1, LacConfig::default()),
                ));
            let t = cl.add_tenant(TenantConfig::new("a"));
            run_dynamic(
                &mut cl,
                vec![(t, growing(2)), (t, growing(1))],
                Scheduler::Fifo,
            )
            .unwrap()
        };
        let s = run_on_service();
        let c = run_on_cluster();
        // Segment structure and costs agree across backends (ExecStats
        // outputs differ in cycle accounting only for idle programs —
        // compare the shape here; kernel-output bit-equality is proven in
        // tests/dynamic_props.rs with real factorization jobs).
        assert_eq!(s.outcomes.len(), c.outcomes.len());
        for (a, b) in s.outcomes.iter().zip(&c.outcomes) {
            assert_eq!(a.segments.len(), b.segments.len());
            assert_eq!(a.jobs, b.jobs);
            assert_eq!(a.total_cost, b.total_cost);
            assert_eq!(a.appended_cost, b.appended_cost);
        }
        assert_eq!(run_on_service(), s, "warm rerun is bit-identical");
    }
}
