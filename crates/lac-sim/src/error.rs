//! Simulator errors: every structural or data hazard is reported with the
//! cycle it occurred in and the PE involved.

use std::fmt;

/// A hard simulation error (mis-scheduled microprogram or bad config).
#[derive(Clone, Debug, PartialEq)]
pub struct SimError {
    pub cycle: usize,
    pub pe: Option<(usize, usize)>,
    pub kind: HazardKind,
}

/// The kinds of violations the simulator enforces.
#[derive(Clone, Debug, PartialEq)]
pub enum HazardKind {
    /// Two writers drove the same row bus.
    RowBusConflict { row: usize },
    /// Two writers (PE or external) drove the same column bus.
    ColBusConflict { col: usize },
    /// A bus was read but nobody drove it this cycle.
    BusUndriven { row_bus: bool, index: usize },
    /// Single-ported A memory saw more than one access.
    SramAPortConflict,
    /// Dual-ported B memory saw more than two accesses.
    SramBPortConflict,
    /// SRAM address out of configured range.
    SramOutOfRange {
        which: char,
        addr: usize,
        size: usize,
    },
    /// Register index out of range.
    RegOutOfRange { idx: usize, size: usize },
    /// Accumulator read or loaded while MACs are still in flight.
    AccHazard,
    /// MAC issued while the software divide/sqrt occupies it.
    MacBusyWithSfu,
    /// MAC double issue (mac + fma in one cycle).
    MacIssueConflict,
    /// MacResult read before any FMA retired.
    MacResultEmpty,
    /// SFU issued while busy.
    SfuBusy,
    /// SfuResult read before any SFU op retired.
    SfuResultEmpty,
    /// SFU used on a PE that has none under this divide/sqrt option.
    SfuNotPresent,
    /// External transfer count exceeded the configured words/cycle.
    ExtBandwidthExceeded { used: usize, limit: usize },
    /// External address out of range.
    ExtOutOfRange { addr: usize, size: usize },
    /// An external store targeted a column bus nobody drove.
    ExtStoreUndriven { col: usize },
    /// Bus-to-bus forwarding in a single cycle is not implementable.
    BusToBusSameCycle,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.cycle)?;
        if let Some((r, c)) = self.pe {
            write!(f, ", PE ({r},{c})")?;
        }
        write!(f, ": {:?}", self.kind)
    }
}

impl std::error::Error for SimError {}
