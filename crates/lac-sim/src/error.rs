//! Simulator errors: every structural or data hazard is reported with the
//! cycle it occurred in and the PE involved.

use std::fmt;

/// A hard simulation error (mis-scheduled microprogram or bad config).
#[derive(Clone, Debug, PartialEq)]
pub struct SimError {
    /// Simulated cycle (program step index) the violation occurred in.
    pub cycle: usize,
    /// The PE involved, as `(row, col)`, when one can be named.
    pub pe: Option<(usize, usize)>,
    /// What was violated.
    pub kind: HazardKind,
}

/// The kinds of violations the simulator enforces.
#[derive(Clone, Debug, PartialEq)]
pub enum HazardKind {
    /// Two writers drove the same row bus.
    RowBusConflict {
        /// Row index of the contested bus.
        row: usize,
    },
    /// Two writers (PE or external) drove the same column bus.
    ColBusConflict {
        /// Column index of the contested bus.
        col: usize,
    },
    /// A bus was read but nobody drove it this cycle.
    BusUndriven {
        /// True for a row bus, false for a column bus.
        row_bus: bool,
        /// Index of the undriven bus.
        index: usize,
    },
    /// Single-ported A memory saw more than one access.
    SramAPortConflict,
    /// Dual-ported B memory saw more than two accesses.
    SramBPortConflict,
    /// SRAM address out of configured range.
    SramOutOfRange {
        /// Which memory: `'A'` or `'B'`.
        which: char,
        /// The offending address.
        addr: usize,
        /// The configured memory size, words.
        size: usize,
    },
    /// Register index out of range.
    RegOutOfRange {
        /// The offending register index.
        idx: usize,
        /// The configured register-file size.
        size: usize,
    },
    /// Accumulator read or loaded while MACs are still in flight.
    AccHazard,
    /// MAC issued while the software divide/sqrt occupies it.
    MacBusyWithSfu,
    /// MAC double issue (mac + fma in one cycle).
    MacIssueConflict,
    /// MacResult read before any FMA retired.
    MacResultEmpty,
    /// SFU issued while busy.
    SfuBusy,
    /// SfuResult read before any SFU op retired.
    SfuResultEmpty,
    /// SFU used on a PE that has none under this divide/sqrt option.
    SfuNotPresent,
    /// External transfer count exceeded the configured words/cycle.
    ExtBandwidthExceeded {
        /// Words the step tried to move this cycle.
        used: usize,
        /// The configured words/cycle cap.
        limit: usize,
    },
    /// External address out of range.
    ExtOutOfRange {
        /// The offending address.
        addr: usize,
        /// The external memory size, words.
        size: usize,
    },
    /// An external store targeted a column bus nobody drove.
    ExtStoreUndriven {
        /// Column index of the undriven bus.
        col: usize,
    },
    /// Bus-to-bus forwarding in a single cycle is not implementable.
    BusToBusSameCycle,
    /// A fault plan killed every chip in the cluster: no survivor is
    /// left to requeue in-flight work onto (see
    /// `lac_sim::FaultPlan`). `cycle` carries the session-clock tick the
    /// last chip died at.
    AllChipsDead {
        /// Total chips in the cluster — all of them dead.
        chips: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.cycle)?;
        if let Some((r, c)) = self.pe {
            write!(f, ", PE ({r},{c})")?;
        }
        write!(f, ": {:?}", self.kind)
    }
}

impl std::error::Error for SimError {}
