//! Decode-once compiled backend: lower a [`Program`] to a flat op tape.
//!
//! The reference interpreter in [`crate::core`] re-decodes every
//! [`Source`] of every PE on every cycle. For the long, regular programs
//! the kernel generators emit (GEMM inner loops, panel factorizations)
//! that decode work dominates host time. This module removes it:
//!
//! ```text
//!   Program ──structural_hash──▶ ProgramCache ──compile──▶ CompiledProgram
//!                                     │                        │
//!                                 (memoized,               flat op tape,
//!                              shared cluster-wide)     pre-resolved offsets
//!                                                            │
//!                                            Lac::run ──▶ replay on the
//!                                                       unified state arena
//! ```
//!
//! [`compile`] walks the program once, performing every static check the
//! interpreter would (bus conflicts, SRAM ports, address ranges, pipeline
//! hazards) and resolving every operand to a flat offset into the core's
//! state arena. Execution then replays batched op records — contiguous
//! runs of moves, MAC issues, and retirements — with no per-cycle decode
//! and no per-cycle branching on `Source`.
//!
//! Programs the lowering does not cover return a [`FallbackReason`] and
//! run on the interpreter instead, so the compiled backend is always safe
//! to select: results, [`ExecStats`], and hazard errors are bit-identical
//! either way (property-tested in `tests/compiled_props.rs`).
//!
//! Compilation is memoized in a [`ProgramCache`] keyed by
//! ([`Program::structural_hash`], config fingerprint). `LacChip`,
//! `LacService`, and `LacCluster` share one cache across all their
//! same-config shards, so each distinct program shape is hashed and
//! compiled exactly once per cluster. See `docs/PERFORMANCE.md` for the
//! measured speedups and `docs/ARCHITECTURE.md` for the pipeline diagram.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::config::LacConfig;
use crate::core::{ArenaLayout, ExternalMem, Lac};
use crate::error::SimError;
use crate::isa::{ExtOp, PeInstr, Program, Source, Step};
use crate::stats::ExecStats;
use lac_fpu::{DivSqrtImpl, DivSqrtOp, Precision};

/// Why a program could not be lowered to a [`CompiledProgram`].
///
/// A fallback is not an error: [`Lac::run_compiled`] transparently runs
/// the program on the reference interpreter instead, which reproduces the
/// exact result — including the exact [`SimError`] when the reason is
/// [`FallbackReason::WouldHazard`].
///
/// ```
/// use lac_sim::{compile, FallbackReason, LacConfig, ProgramBuilder, Source};
///
/// // Reading an undriven row bus is a hazard the static walk catches.
/// let mut b = ProgramBuilder::new(4);
/// let t = b.push_step();
/// b.pe_mut(t, 0, 0).mac = Some((Source::RowBus, Source::Const(1.0)));
/// let outcome = compile(&LacConfig::default(), &b.build());
/// assert!(matches!(outcome, Err(FallbackReason::WouldHazard)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// The static walk found a cycle on which the interpreter would
    /// raise a [`SimError`] (bus conflict, port overuse, range violation,
    /// pipeline hazard, …). The interpreter runs the program to produce
    /// the identical error and identical partial state.
    WouldHazard,
    /// The program reads a `MacResult`/`SfuResult` latch before any
    /// in-program retirement. The read may still succeed at run time if a
    /// *previous* program left the latch set — a dynamic condition the
    /// static lowering cannot resolve.
    LatchCarryIn,
    /// The program ends with work still in flight (a MAC op or SFU op
    /// that retires after the last cycle), so pipeline state would have
    /// to carry out into the next program.
    PipelineCarryOut,
    /// The configuration is too large (or degenerate, e.g. a zero-depth
    /// pipeline) for the tape's 32-bit operand offsets.
    Oversized,
}

// ---------------------------------------------------------------------------
// Structural hashing
// ---------------------------------------------------------------------------

/// Two independently-seeded 64-bit hashers written in lockstep, giving a
/// 128-bit key; collisions would need to defeat both streams at once.
struct WideHasher {
    lo: DefaultHasher,
    hi: DefaultHasher,
}

impl WideHasher {
    fn new() -> Self {
        let mut lo = DefaultHasher::new();
        let mut hi = DefaultHasher::new();
        0x9e37_79b9_7f4a_7c15u64.hash(&mut lo);
        0xc2b2_ae3d_27d4_eb4fu64.hash(&mut hi);
        Self { lo, hi }
    }

    fn write_u8(&mut self, v: u8) {
        v.hash(&mut self.lo);
        v.hash(&mut self.hi);
    }

    fn write_u64(&mut self, v: u64) {
        v.hash(&mut self.lo);
        v.hash(&mut self.hi);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn finish128(&self) -> u128 {
        ((self.hi.finish() as u128) << 64) | self.lo.finish() as u128
    }
}

fn source_code(s: Source) -> u8 {
    match s {
        Source::RowBus => 0,
        Source::ColBus => 1,
        Source::SramA(_) => 2,
        Source::SramB(_) => 3,
        Source::Reg(_) => 4,
        Source::Acc => 5,
        Source::MacResult => 6,
        Source::SfuResult => 7,
        Source::Const(_) => 8,
    }
}

fn hash_source(h: &mut WideHasher, s: Source) {
    h.write_u8(source_code(s));
    match s {
        Source::SramA(a) | Source::SramB(a) | Source::Reg(a) => h.write_usize(a),
        Source::Const(v) => h.write_u64(v.to_bits()),
        _ => {}
    }
}

fn hash_opt_source(h: &mut WideHasher, s: Option<Source>) {
    match s {
        None => h.write_u8(0xff),
        Some(s) => hash_source(h, s),
    }
}

fn divsqrt_op_code(op: DivSqrtOp) -> u8 {
    match op {
        DivSqrtOp::Reciprocal => 0,
        DivSqrtOp::Divide => 1,
        DivSqrtOp::Sqrt => 2,
        DivSqrtOp::InvSqrt => 3,
    }
}

fn hash_instr(h: &mut WideHasher, pi: &PeInstr) {
    hash_opt_source(h, pi.row_write);
    hash_opt_source(h, pi.col_write);
    match pi.mac {
        None => h.write_u8(0xff),
        Some((a, b)) => {
            h.write_u8(1);
            hash_source(h, a);
            hash_source(h, b);
        }
    }
    match pi.fma {
        None => h.write_u8(0xff),
        Some((a, b, c)) => {
            h.write_u8(2);
            hash_source(h, a);
            hash_source(h, b);
            hash_source(h, c);
        }
    }
    h.write_u8(pi.negate_product as u8);
    match pi.cmp_update {
        None => h.write_u8(0xff),
        Some(c) => {
            h.write_u8(3);
            hash_source(h, c.value);
            h.write_u64(c.tag.to_bits());
            h.write_usize(c.val_reg);
            h.write_usize(c.tag_reg);
        }
    }
    hash_opt_source(h, pi.acc_load);
    match pi.sram_a_write {
        None => h.write_u8(0xff),
        Some((addr, s)) => {
            h.write_u8(4);
            h.write_usize(addr);
            hash_source(h, s);
        }
    }
    match pi.sram_b_write {
        None => h.write_u8(0xff),
        Some((addr, s)) => {
            h.write_u8(5);
            h.write_usize(addr);
            hash_source(h, s);
        }
    }
    match pi.reg_write {
        None => h.write_u8(0xff),
        Some((idx, s)) => {
            h.write_u8(6);
            h.write_usize(idx);
            hash_source(h, s);
        }
    }
    match pi.sfu {
        None => h.write_u8(0xff),
        Some((op, a, b)) => {
            h.write_u8(7);
            h.write_u8(divsqrt_op_code(op));
            hash_source(h, a);
            hash_source(h, b);
        }
    }
}

/// 128-bit structural hash of a program (see [`Program::structural_hash`],
/// which memoizes this): mesh size, step count, every external transfer,
/// and every non-idle `PeInstr` with its cycle and PE position. Idle PEs
/// and idle steps contribute only their position in the count.
pub(crate) fn hash_program(prog: &Program) -> u128 {
    let mut h = WideHasher::new();
    h.write_usize(prog.nr);
    h.write_usize(prog.steps.len());
    for (t, step) in prog.steps.iter().enumerate() {
        for op in &step.ext {
            match *op {
                ExtOp::Load { col, addr } => {
                    h.write_u8(0xe1);
                    h.write_usize(t);
                    h.write_usize(col);
                    h.write_usize(addr);
                }
                ExtOp::Store { col, addr } => {
                    h.write_u8(0xe2);
                    h.write_usize(t);
                    h.write_usize(col);
                    h.write_usize(addr);
                }
            }
        }
        for (i, pi) in step.pes.iter().enumerate() {
            if pi.is_nop() {
                continue;
            }
            h.write_u8(0xd0);
            h.write_usize(t);
            h.write_usize(i);
            hash_instr(&mut h, pi);
        }
    }
    h.finish128()
}

fn divsqrt_impl_code(imp: DivSqrtImpl) -> u8 {
    match imp {
        DivSqrtImpl::Software => 0,
        DivSqrtImpl::Isolated => 1,
        DivSqrtImpl::DiagonalPes => 2,
    }
}

/// Fingerprint of every configuration field the lowering depends on.
/// [`crate::config::ExecBackend`] is deliberately excluded: it selects
/// *whether* to use the tape, not what the tape contains.
fn config_fingerprint(cfg: &LacConfig) -> u64 {
    let mut h = DefaultHasher::new();
    cfg.nr.hash(&mut h);
    cfg.sram_a_words.hash(&mut h);
    cfg.sram_b_words.hash(&mut h);
    cfg.rf_entries.hash(&mut h);
    cfg.fpu.pipeline_depth.hash(&mut h);
    cfg.fpu.sfu_latency.hash(&mut h);
    (cfg.fpu.precision == Precision::Single).hash(&mut h);
    cfg.fpu.exponent_extension.hash(&mut h);
    divsqrt_impl_code(cfg.divsqrt).hash(&mut h);
    cfg.ext_words_per_cycle.hash(&mut h);
    cfg.comparator_extension.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// The program cache
// ---------------------------------------------------------------------------

/// Counters describing a [`ProgramCache`]'s effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct (program, config) pairs currently cached.
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: Mutex<HashMap<(u128, u64), Arc<CompileOutcome>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A cluster-wide memo table of compiled programs.
///
/// Keys are ([`Program::structural_hash`], configuration fingerprint), so
/// shards with the same configuration share every lowering — a cluster
/// compiles each distinct program shape once, no matter how many cores
/// replay it. Handles are cheap [`Arc`] clones of one shared store; give
/// every core the same handle via [`Lac::set_program_cache`] (the
/// `LacChip` / `LacService` / `LacCluster` constructors do this for you).
///
/// ```
/// use lac_sim::{ExternalMem, Lac, LacConfig, ProgramBuilder, ProgramCache, Source};
///
/// let cfg = LacConfig::default();
/// let cache = ProgramCache::new();
/// let mut a = Lac::new(cfg);
/// let mut b = Lac::new(cfg);
/// a.set_program_cache(cache.clone());
/// b.set_program_cache(cache.clone());
///
/// let mut pb = ProgramBuilder::new(cfg.nr);
/// let t = pb.push_step();
/// pb.pe_mut(t, 0, 0).mac = Some((Source::Const(2.0), Source::Const(3.0)));
/// pb.idle(cfg.fpu.pipeline_depth);
/// let prog = pb.build();
///
/// let mut mem = ExternalMem::new(1);
/// a.run(&prog, &mut mem).unwrap();
/// b.run(&prog, &mut mem).unwrap(); // same shape: compiled once, replayed twice
/// assert_eq!(cache.stats().entries, 1);
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProgramCache {
    inner: Arc<CacheInner>,
}

impl ProgramCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.inner.map.lock().unwrap().len(),
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
        }
    }

    /// Resolve `prog` under `cfg` to a memoized compile outcome,
    /// compiling outside the lock on a miss.
    pub(crate) fn lookup(&self, cfg: &LacConfig, prog: &Program) -> Arc<CompileOutcome> {
        let key = (prog.structural_hash(), config_fingerprint(cfg));
        if let Some(hit) = self.inner.map.lock().unwrap().get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        let outcome = Arc::new(match compile(cfg, prog) {
            Ok(cp) => CompileOutcome::Compiled(Box::new(cp)),
            Err(reason) => CompileOutcome::Fallback(reason),
        });
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        self.inner
            .map
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(outcome)
            .clone()
    }
}

/// What the cache stores per (program, config): a tape, or the reason
/// there is none (so ineligible programs are not re-analyzed either).
#[derive(Debug)]
pub(crate) enum CompileOutcome {
    Compiled(Box<CompiledProgram>),
    Fallback(FallbackReason),
}

impl CompileOutcome {
    /// `Some(reason)` when the outcome is a fallback (diagnostics/tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn fallback_reason(&self) -> Option<FallbackReason> {
        match self {
            CompileOutcome::Compiled(_) => None,
            CompileOutcome::Fallback(r) => Some(*r),
        }
    }
}

// ---------------------------------------------------------------------------
// The op tape
// ---------------------------------------------------------------------------

/// `state[dst] = state[src]`.
#[derive(Clone, Copy, Debug)]
struct MovePair {
    src: u32,
    dst: u32,
}

/// External transfer between `mem[addr]` and a column-bus arena slot.
#[derive(Clone, Copy, Debug)]
struct ExtRec {
    addr: u32,
    bus: u32,
}

/// A MAC issue: round + sign the operands into the pipeline slot.
#[derive(Clone, Copy, Debug)]
struct IssueRec {
    a: u32,
    b: u32,
    slot: u32,
    negate: bool,
}

/// A free-standing FMA issue (three operands).
#[derive(Clone, Copy, Debug)]
struct FmaRec {
    a: u32,
    b: u32,
    c: u32,
    slot: u32,
    negate: bool,
}

/// A retirement: apply pipeline slot `slot` to PE `pe`'s unit.
#[derive(Clone, Copy, Debug)]
struct RetireRec {
    pe: u32,
    slot: u32,
}

/// A comparator micro-op, split into its phase-2 compare (`Cmp`) and its
/// end-of-cycle conditional commit (`CmpCommit`).
#[derive(Clone, Copy, Debug)]
struct CmpRec {
    /// Arena offset of the pivot-magnitude register (read and maybe written).
    val: u32,
    /// Resolved offset of the candidate value.
    value: u32,
    /// Temp holding the compare outcome (1.0 = replace).
    flag: u32,
    /// Temp staging the candidate for the commit.
    staged: u32,
    /// Arena offset of the tag register.
    tag_dst: u32,
    /// Tag constant latched alongside a new maximum.
    tag: f64,
}

/// An SFU issue: compute the functional result at issue, park it in the
/// unit's pending slot until the retirement move publishes it.
#[derive(Clone, Copy, Debug)]
struct SfuRec {
    /// Wide-accumulator square root (§A.2): read the issuing PE's wide
    /// accumulator instead of an IEEE operand.
    wide: bool,
    op: DivSqrtOp,
    a: u32,
    b: u32,
    /// Pending-result slot of the executing unit.
    pending: u32,
    /// Issuing PE (whose accumulator the wide square root reads).
    pe: u32,
}

/// One tape record. Run variants (`start`, `len`) batch contiguous spans
/// of a side table so steady-state cycles replay as a handful of tight
/// slice loops.
#[derive(Clone, Copy, Debug)]
enum COp {
    Moves { start: u32, len: u32 },
    ExtLoads { start: u32, len: u32 },
    ExtStores { start: u32, len: u32 },
    MacIssues { start: u32, len: u32 },
    FmaIssues { start: u32, len: u32 },
    MacRetires { start: u32, len: u32 },
    FmaRetires { start: u32, len: u32 },
    ReadAcc { pe: u32, dst: u32 },
    AccLoad { pe: u32, src: u32 },
    Cmp { idx: u32 },
    CmpCommit { idx: u32 },
    SfuIssue { idx: u32 },
}

/// A program lowered to a flat, decode-free op tape.
///
/// Produced by [`compile`] (usually via a [`ProgramCache`]) and replayed
/// by [`Lac::run_compiled`]. Every operand is a precomputed offset into
/// the core's unified state arena; the tape carries the run's entire
/// static [`ExecStats`] so execution only counts the one data-dependent
/// event (comparator register updates).
///
/// ```
/// use lac_sim::{compile, LacConfig, ProgramBuilder, Source};
///
/// let cfg = LacConfig::default();
/// let mut b = ProgramBuilder::new(cfg.nr);
/// let t = b.push_step();
/// b.pe_mut(t, 0, 0).mac = Some((Source::Const(2.0), Source::Const(3.0)));
/// b.idle(cfg.fpu.pipeline_depth);
/// let cp = compile(&cfg, &b.build()).unwrap();
/// assert_eq!(cp.static_stats().mac_ops, 1);
/// assert_eq!(cp.static_stats().cycles, 1 + cfg.fpu.pipeline_depth as u64);
/// assert_eq!(cp.min_mem_words(), 0); // touches no external memory
/// ```
#[derive(Debug)]
pub struct CompiledProgram {
    ops: Vec<COp>,
    moves: Vec<MovePair>,
    ext_loads: Vec<ExtRec>,
    ext_stores: Vec<ExtRec>,
    mac_issues: Vec<IssueRec>,
    fma_issues: Vec<FmaRec>,
    mac_retires: Vec<RetireRec>,
    fma_retires: Vec<RetireRec>,
    cmps: Vec<CmpRec>,
    sfus: Vec<SfuRec>,
    /// Deduplicated `Source::Const` pool, copied into the arena per run.
    consts: Vec<f64>,
    /// Every counter of the run except data-dependent comparator writes.
    static_stats: ExecStats,
    /// Smallest external bank the program addresses without faulting.
    min_mem_words: usize,
    /// Arena size (architectural words + execution suffix) the tape needs.
    arena_words: usize,
    const_base: usize,
    mac_latch_base: usize,
    sfu_latch_base: usize,
    /// Round MAC/FMA operands through `f32` (single-precision datapath).
    round_single: bool,
    /// Per-PE MAC+FMA issue counts (energy model bookkeeping).
    mac_issue_counts: Vec<(u32, u64)>,
    /// Per-unit SFU issue counts.
    sfu_issue_counts: Vec<(u32, u64)>,
    /// PEs whose `MacResult` latch is defined when the program ends.
    mac_latched: Vec<u32>,
    /// Units whose `SfuResult` latch is defined when the program ends.
    sfu_latched: Vec<u32>,
}

impl CompiledProgram {
    /// Number of tape records (batched runs count as one).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The run's statically-known [`ExecStats`]. The only counter missing
    /// is the data-dependent part of `rf_writes` (comparator updates),
    /// which execution adds.
    pub fn static_stats(&self) -> &ExecStats {
        &self.static_stats
    }

    /// Smallest external bank (in words) the program can run against; a
    /// smaller bank makes [`Lac::run_compiled`] fall back to the
    /// interpreter, which raises the out-of-range error.
    pub fn min_mem_words(&self) -> usize {
        self.min_mem_words
    }

    /// Words of arena state the tape addresses (architectural words plus
    /// the execution suffix: buses, latches, pipeline slots, constants,
    /// cycle-local temps).
    pub fn arena_words(&self) -> usize {
        self.arena_words
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Lower `prog` to a [`CompiledProgram`] under `cfg`, or report why it
/// must run on the interpreter instead.
///
/// The walk mirrors the interpreter's six phases cycle for cycle —
/// resolving operands with the same checks and counting the same stats —
/// so the tape is bit-identical to interpretation by construction.
/// Usually invoked through a [`ProgramCache`] rather than directly.
///
/// # Panics
///
/// Panics if `prog.nr != cfg.nr` (same contract as [`Lac::run`]).
///
/// ```
/// use lac_sim::{compile, LacConfig, ProgramBuilder, Source};
///
/// let cfg = LacConfig::default();
/// let mut b = ProgramBuilder::new(cfg.nr);
/// let t = b.push_step();
/// b.pe_mut(t, 1, 1).reg_write = Some((0, Source::Const(7.0)));
/// let cp = compile(&cfg, &b.build()).unwrap();
/// assert_eq!(cp.static_stats().rf_writes, 1);
/// ```
pub fn compile(cfg: &LacConfig, prog: &Program) -> Result<CompiledProgram, FallbackReason> {
    assert_eq!(prog.nr, cfg.nr, "program/mesh dimension mismatch");
    Compiler::new(cfg, prog)?.run()
}

/// Per-PE, per-cycle port-usage counters (mirror of the interpreter's).
#[derive(Clone, Copy, Default)]
struct Ports {
    sram_a: usize,
    sram_b: usize,
    rf_reads: usize,
}

/// A deferred end-of-cycle write, kept in interpreter push order.
enum CommitRec {
    /// SRAM/RF word write (value already staged if clobberable).
    Word {
        src: u32,
        dst: u32,
    },
    AccLoad {
        pe: u32,
        src: u32,
    },
    Cmp(u32),
    Ext {
        bus: u32,
        addr: u32,
    },
}

/// An end-of-cycle retirement event.
#[derive(Clone, Copy)]
enum RetireEvt {
    Mac { pe: u32, slot: u32 },
    Fma { pe: u32, slot: u32 },
    Sfu { unit: u32 },
}

/// Pushes `$rec` onto the `$table` side table and extends the trailing
/// `COp::$variant` run if it is contiguous, else opens a new run.
macro_rules! push_run {
    ($self:ident, $table:ident, $variant:ident, $rec:expr) => {{
        $self.$table.push($rec);
        let end = $self.$table.len() - 1;
        if let Some(COp::$variant { start, len }) = $self.ops.last_mut() {
            if *start as usize + *len as usize == end {
                *len += 1;
                return;
            }
        }
        $self.ops.push(COp::$variant {
            start: end as u32,
            len: 1,
        });
    }};
}

struct Compiler<'a> {
    cfg: &'a LacConfig,
    prog: &'a Program,
    layout: ArenaLayout,
    nr: usize,
    npes: usize,
    p: usize,
    // Execution-suffix bases (absolute arena offsets).
    row_bus: usize,
    col_bus: usize,
    mac_latch: usize,
    sfu_latch: usize,
    sfu_pending: usize,
    mac_pending: usize,
    const_base: usize,
    temps_base: usize,
    consts: Vec<f64>,
    const_idx: HashMap<u64, u32>,
    has_sfu: Vec<bool>,
    // Tape under construction.
    ops: Vec<COp>,
    moves: Vec<MovePair>,
    ext_loads: Vec<ExtRec>,
    ext_stores: Vec<ExtRec>,
    mac_issues: Vec<IssueRec>,
    fma_issues: Vec<FmaRec>,
    mac_retires: Vec<RetireRec>,
    fma_retires: Vec<RetireRec>,
    cmps: Vec<CmpRec>,
    sfus: Vec<SfuRec>,
    stats: ExecStats,
    min_mem_words: usize,
    // Static pipeline/latch tracking (exact, given idle units at entry).
    mac_busy_through: Vec<Option<usize>>,
    mac_ready: Vec<usize>,
    sfu_busy_through: Vec<Option<usize>>,
    sfu_ready: Vec<usize>,
    mac_counts: Vec<u64>,
    sfu_counts: Vec<u64>,
    mac_latched: Vec<bool>,
    sfu_latched: Vec<bool>,
    retires: Vec<Vec<RetireEvt>>,
    // Per-cycle scratch.
    row_driven: Vec<bool>,
    col_driven: Vec<bool>,
    ports: Vec<Ports>,
    commits: Vec<CommitRec>,
    temp_count: usize,
    max_temps: usize,
}

impl<'a> Compiler<'a> {
    fn new(cfg: &'a LacConfig, prog: &'a Program) -> Result<Self, FallbackReason> {
        let nr = cfg.nr;
        let npes = nr * nr;
        let p = cfg.fpu.pipeline_depth;
        if p == 0 {
            return Err(FallbackReason::Oversized);
        }
        let layout = ArenaLayout::new(cfg);

        // Deduplicated constant pool (known before the walk so the temps
        // region can start right after it).
        let mut consts = Vec::new();
        let mut const_bits = HashMap::new();
        for step in &prog.steps {
            for pi in &step.pes {
                if pi.is_nop() {
                    continue;
                }
                for_each_source(pi, &mut |s| {
                    if let Source::Const(v) = s {
                        const_bits.entry(v.to_bits()).or_insert_with(|| {
                            consts.push(v);
                            consts.len() - 1
                        });
                    }
                });
            }
        }

        let row_bus = layout.words;
        let col_bus = row_bus + nr;
        let mac_latch = col_bus + nr;
        let sfu_latch = mac_latch + npes;
        let sfu_pending = sfu_latch + npes;
        let mac_pending = sfu_pending + npes;
        let const_base = mac_pending
            .checked_add(
                npes.checked_mul(p)
                    .and_then(|x| x.checked_mul(3))
                    .ok_or(FallbackReason::Oversized)?,
            )
            .ok_or(FallbackReason::Oversized)?;
        let temps_base = const_base + consts.len();
        // Worst case ≤ 32 temps per PE per cycle (≤ 14 operand resolves,
        // 2 comparator temps, ≤ 4 commit stagings); guard the whole
        // suffix against the tape's 32-bit offsets up front so every
        // later `as u32` cast is infallible.
        match temps_base.checked_add(npes * 32) {
            Some(cap) if cap <= u32::MAX as usize => {}
            _ => return Err(FallbackReason::Oversized),
        }
        let const_idx = const_bits
            .into_iter()
            .map(|(bits, i)| (bits, (const_base + i) as u32))
            .collect();

        let has_sfu = (0..npes)
            .map(|idx| {
                let (r, c) = (idx / nr, idx % nr);
                match cfg.divsqrt {
                    DivSqrtImpl::Software => true,
                    DivSqrtImpl::Isolated => idx == 0,
                    DivSqrtImpl::DiagonalPes => r == c,
                }
            })
            .collect();

        Ok(Self {
            cfg,
            prog,
            layout,
            nr,
            npes,
            p,
            row_bus,
            col_bus,
            mac_latch,
            sfu_latch,
            sfu_pending,
            mac_pending,
            const_base,
            temps_base,
            consts,
            const_idx,
            has_sfu,
            ops: Vec::new(),
            moves: Vec::new(),
            ext_loads: Vec::new(),
            ext_stores: Vec::new(),
            mac_issues: Vec::new(),
            fma_issues: Vec::new(),
            mac_retires: Vec::new(),
            fma_retires: Vec::new(),
            cmps: Vec::new(),
            sfus: Vec::new(),
            stats: ExecStats::default(),
            min_mem_words: 0,
            mac_busy_through: vec![None; npes],
            mac_ready: vec![usize::MAX; npes],
            sfu_busy_through: vec![None; npes],
            sfu_ready: vec![usize::MAX; npes],
            mac_counts: vec![0; npes],
            sfu_counts: vec![0; npes],
            mac_latched: vec![false; npes],
            sfu_latched: vec![false; npes],
            retires: vec![Vec::new(); prog.steps.len()],
            row_driven: vec![false; nr],
            col_driven: vec![false; nr],
            ports: vec![Ports::default(); npes],
            commits: Vec::new(),
            temp_count: 0,
            max_temps: 0,
        })
    }

    fn run(mut self) -> Result<CompiledProgram, FallbackReason> {
        for t in 0..self.prog.steps.len() {
            let step = &self.prog.steps[t];
            self.compile_step(t, step)?;
        }
        let arena_words = self.temps_base + self.max_temps;
        debug_assert!(arena_words <= u32::MAX as usize);
        let pack = |counts: &[u64]| {
            counts
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u32, n))
                .collect::<Vec<_>>()
        };
        let indices = |flags: &[bool]| {
            flags
                .iter()
                .enumerate()
                .filter(|(_, &f)| f)
                .map(|(i, _)| i as u32)
                .collect::<Vec<_>>()
        };
        Ok(CompiledProgram {
            ops: self.ops,
            moves: self.moves,
            ext_loads: self.ext_loads,
            ext_stores: self.ext_stores,
            mac_issues: self.mac_issues,
            fma_issues: self.fma_issues,
            mac_retires: self.mac_retires,
            fma_retires: self.fma_retires,
            cmps: self.cmps,
            sfus: self.sfus,
            consts: self.consts,
            static_stats: self.stats,
            min_mem_words: self.min_mem_words,
            arena_words,
            const_base: self.const_base,
            mac_latch_base: self.mac_latch,
            sfu_latch_base: self.sfu_latch,
            round_single: self.cfg.fpu.precision == Precision::Single,
            mac_issue_counts: pack(&self.mac_counts),
            sfu_issue_counts: pack(&self.sfu_counts),
            mac_latched: indices(&self.mac_latched),
            sfu_latched: indices(&self.sfu_latched),
        })
    }

    // -- emitters -----------------------------------------------------------

    fn push_move(&mut self, src: u32, dst: u32) {
        push_run!(self, moves, Moves, MovePair { src, dst })
    }

    fn push_ext_load(&mut self, rec: ExtRec) {
        push_run!(self, ext_loads, ExtLoads, rec)
    }

    fn push_ext_store(&mut self, rec: ExtRec) {
        push_run!(self, ext_stores, ExtStores, rec)
    }

    fn push_mac_issue(&mut self, rec: IssueRec) {
        push_run!(self, mac_issues, MacIssues, rec)
    }

    fn push_fma_issue(&mut self, rec: FmaRec) {
        push_run!(self, fma_issues, FmaIssues, rec)
    }

    fn push_mac_retire(&mut self, rec: RetireRec) {
        push_run!(self, mac_retires, MacRetires, rec)
    }

    fn push_fma_retire(&mut self, rec: RetireRec) {
        push_run!(self, fma_retires, FmaRetires, rec)
    }

    /// Allocate a cycle-local temp slot.
    fn temp(&mut self) -> u32 {
        let off = self.temps_base + self.temp_count;
        self.temp_count += 1;
        self.max_temps = self.max_temps.max(self.temp_count);
        off as u32
    }

    /// Stage a commit value: arena words below `layout.words` (SRAM/RF)
    /// can be clobbered by an earlier commit of the same cycle, so they
    /// are copied to a temp while the cycle's reads are still in flight.
    /// Everything else (buses, latches, pending slots, constants, temps)
    /// is stable until the cycle ends and is read directly at commit.
    fn staged(&mut self, off: u32) -> u32 {
        if (off as usize) < self.layout.words {
            let tmp = self.temp();
            self.push_move(off, tmp);
            tmp
        } else {
            off
        }
    }

    // -- static pipeline state ----------------------------------------------

    fn mac_busy(&self, pe: usize, t: usize) -> bool {
        self.mac_busy_through[pe].is_some_and(|b| b >= t)
    }

    fn sfu_busy(&self, unit: usize, t: usize) -> bool {
        self.sfu_busy_through[unit].is_some_and(|b| b >= t)
    }

    /// Pipeline-slot offset for an issue at cycle `t` on `pe`. The ring
    /// reuses a slot after `p` cycles, which is safe because the retire
    /// that reads it (end of cycle `t + p - 1`) is emitted before the
    /// next issue that writes it (phase 2 of cycle `t + p`).
    fn pending_slot(&self, t: usize, pe: usize) -> u32 {
        (self.mac_pending + ((t % self.p) * self.npes + pe) * 3) as u32
    }

    fn schedule_mac_retire(
        &mut self,
        t: usize,
        pe: usize,
        slot: u32,
        is_fma: bool,
    ) -> Result<(), FallbackReason> {
        let retire = t + self.p - 1;
        if retire >= self.prog.steps.len() {
            return Err(FallbackReason::PipelineCarryOut);
        }
        self.retires[retire].push(if is_fma {
            RetireEvt::Fma {
                pe: pe as u32,
                slot,
            }
        } else {
            RetireEvt::Mac {
                pe: pe as u32,
                slot,
            }
        });
        self.mac_busy_through[pe] = Some(retire);
        self.mac_counts[pe] += 1;
        if is_fma {
            self.mac_ready[pe] = self.mac_ready[pe].min(t + self.p);
        }
        Ok(())
    }

    // -- operand resolution -------------------------------------------------

    /// Mirror of the interpreter's `resolve`/`resolve_nonbus`: performs
    /// the identical static checks and stats accounting, and returns the
    /// arena offset the value will live at when the op executes.
    fn resolve(
        &mut self,
        t: usize,
        r: usize,
        c: usize,
        src: Source,
        buses: bool,
    ) -> Result<u32, FallbackReason> {
        use FallbackReason::*;
        let idx = r * self.nr + c;
        match src {
            Source::RowBus => {
                if !buses || !self.row_driven[r] {
                    return Err(WouldHazard);
                }
                Ok((self.row_bus + r) as u32)
            }
            Source::ColBus => {
                if !buses || !self.col_driven[c] {
                    return Err(WouldHazard);
                }
                Ok((self.col_bus + c) as u32)
            }
            Source::SramA(addr) => {
                if addr >= self.cfg.sram_a_words {
                    return Err(WouldHazard);
                }
                self.ports[idx].sram_a += 1;
                self.stats.sram_a_reads += 1;
                Ok(self.layout.sram_a(idx, addr) as u32)
            }
            Source::SramB(addr) => {
                if addr >= self.cfg.sram_b_words {
                    return Err(WouldHazard);
                }
                self.ports[idx].sram_b += 1;
                self.stats.sram_b_reads += 1;
                Ok(self.layout.sram_b(idx, addr) as u32)
            }
            Source::Reg(ridx) => {
                if ridx >= self.cfg.rf_entries {
                    return Err(WouldHazard);
                }
                self.ports[idx].rf_reads += 1;
                self.stats.rf_reads += 1;
                Ok(self.layout.rf(idx, ridx) as u32)
            }
            Source::Acc => {
                if self.mac_busy(idx, t) {
                    return Err(WouldHazard);
                }
                self.stats.acc_accesses += 1;
                let dst = self.temp();
                self.ops.push(COp::ReadAcc {
                    pe: idx as u32,
                    dst,
                });
                Ok(dst)
            }
            Source::MacResult => {
                if self.mac_ready[idx] > t {
                    return Err(LatchCarryIn);
                }
                Ok((self.mac_latch + idx) as u32)
            }
            Source::SfuResult => {
                let unit = match self.cfg.divsqrt {
                    DivSqrtImpl::Isolated => 0,
                    _ => idx,
                };
                if self.sfu_ready[unit] > t {
                    return Err(LatchCarryIn);
                }
                Ok((self.sfu_latch + unit) as u32)
            }
            Source::Const(v) => Ok(self.const_idx[&v.to_bits()]),
        }
    }

    /// One cycle of the walk, phase for phase in interpreter order.
    fn compile_step(&mut self, t: usize, step: &Step) -> Result<(), FallbackReason> {
        use FallbackReason::*;
        let nr = self.nr;
        self.temp_count = 0;
        self.row_driven.fill(false);
        self.col_driven.fill(false);
        self.ports.fill(Ports::default());
        self.commits.clear();
        let mut any_issue = false;

        // Phase 0: external bandwidth.
        if let Some(limit) = self.cfg.ext_words_per_cycle {
            if step.ext.len() > limit {
                return Err(WouldHazard);
            }
        }

        // Phase 1: external loads drive column buses…
        for op in &step.ext {
            if let ExtOp::Load { col, addr } = *op {
                self.min_mem_words = self.min_mem_words.max(addr + 1);
                let addr = u32::try_from(addr).map_err(|_| Oversized)?;
                if col >= nr || self.col_driven[col] {
                    return Err(WouldHazard);
                }
                self.col_driven[col] = true;
                self.stats.ext_reads += 1;
                self.stats.col_bus_transfers += 1;
                let bus = (self.col_bus + col) as u32;
                self.push_ext_load(ExtRec { addr, bus });
            }
        }

        // …then PE bus writers (non-bus sources only).
        for r in 0..nr {
            for c in 0..nr {
                let instr = &step.pes[r * nr + c];
                if let Some(src) = instr.row_write {
                    let off = self.resolve(t, r, c, src, false)?;
                    if self.row_driven[r] {
                        return Err(WouldHazard);
                    }
                    self.row_driven[r] = true;
                    self.stats.row_bus_transfers += 1;
                    self.push_move(off, (self.row_bus + r) as u32);
                }
                if let Some(src) = instr.col_write {
                    let off = self.resolve(t, r, c, src, false)?;
                    if self.col_driven[c] {
                        return Err(WouldHazard);
                    }
                    self.col_driven[c] = true;
                    self.stats.col_bus_transfers += 1;
                    self.push_move(off, (self.col_bus + c) as u32);
                }
            }
        }

        // Phase 2: resolve datapath inputs, issue MAC/FMA/SFU, stage
        // commits — in the interpreter's exact (r, c) and field order.
        for r in 0..nr {
            for c in 0..nr {
                let idx = r * nr + c;
                let instr = &step.pes[idx];

                if instr.mac.is_some() && instr.fma.is_some() {
                    return Err(WouldHazard);
                }
                let sfu_blocks =
                    self.cfg.divsqrt.blocks_mac() && self.has_sfu[idx] && self.sfu_busy(idx, t);
                if sfu_blocks && (instr.mac.is_some() || instr.fma.is_some()) {
                    return Err(WouldHazard);
                }

                if let Some((sa, sb)) = instr.mac {
                    let a = self.resolve(t, r, c, sa, true)?;
                    let b = self.resolve(t, r, c, sb, true)?;
                    let slot = self.pending_slot(t, idx);
                    self.push_mac_issue(IssueRec {
                        a,
                        b,
                        slot,
                        negate: instr.negate_product,
                    });
                    self.schedule_mac_retire(t, idx, slot, false)?;
                    self.stats.mac_ops += 1;
                    any_issue = true;
                }
                if let Some((sa, sb, sc)) = instr.fma {
                    let a = self.resolve(t, r, c, sa, true)?;
                    let b = self.resolve(t, r, c, sb, true)?;
                    let cv = self.resolve(t, r, c, sc, true)?;
                    let slot = self.pending_slot(t, idx);
                    self.push_fma_issue(FmaRec {
                        a,
                        b,
                        c: cv,
                        slot,
                        negate: instr.negate_product,
                    });
                    self.schedule_mac_retire(t, idx, slot, true)?;
                    self.stats.fma_ops += 1;
                    any_issue = true;
                }
                if let Some(cmp) = instr.cmp_update {
                    if cmp.val_reg >= self.cfg.rf_entries || cmp.tag_reg >= self.cfg.rf_entries {
                        return Err(WouldHazard);
                    }
                    let value = self.resolve(t, r, c, cmp.value, true)?;
                    self.stats.cmp_ops += 1;
                    let flag = self.temp();
                    let staged = self.temp();
                    let ci = self.cmps.len() as u32;
                    self.cmps.push(CmpRec {
                        val: self.layout.rf(idx, cmp.val_reg) as u32,
                        value,
                        flag,
                        staged,
                        tag_dst: self.layout.rf(idx, cmp.tag_reg) as u32,
                        tag: cmp.tag,
                    });
                    self.ops.push(COp::Cmp { idx: ci });
                    self.commits.push(CommitRec::Cmp(ci));
                }
                if let Some(src) = instr.acc_load {
                    if self.mac_busy(idx, t) {
                        return Err(WouldHazard);
                    }
                    let off = self.resolve(t, r, c, src, true)?;
                    let off = self.staged(off);
                    self.commits.push(CommitRec::AccLoad {
                        pe: idx as u32,
                        src: off,
                    });
                    self.stats.acc_accesses += 1;
                }
                if let Some((addr, src)) = instr.sram_a_write {
                    if addr >= self.cfg.sram_a_words {
                        return Err(WouldHazard);
                    }
                    let off = self.resolve(t, r, c, src, true)?;
                    self.ports[idx].sram_a += 1;
                    let off = self.staged(off);
                    self.commits.push(CommitRec::Word {
                        src: off,
                        dst: self.layout.sram_a(idx, addr) as u32,
                    });
                    self.stats.sram_a_writes += 1;
                }
                if let Some((addr, src)) = instr.sram_b_write {
                    if addr >= self.cfg.sram_b_words {
                        return Err(WouldHazard);
                    }
                    let off = self.resolve(t, r, c, src, true)?;
                    self.ports[idx].sram_b += 1;
                    let off = self.staged(off);
                    self.commits.push(CommitRec::Word {
                        src: off,
                        dst: self.layout.sram_b(idx, addr) as u32,
                    });
                    self.stats.sram_b_writes += 1;
                }
                if let Some((ridx, src)) = instr.reg_write {
                    if ridx >= self.cfg.rf_entries {
                        return Err(WouldHazard);
                    }
                    let off = self.resolve(t, r, c, src, true)?;
                    let off = self.staged(off);
                    self.commits.push(CommitRec::Word {
                        src: off,
                        dst: self.layout.rf(idx, ridx) as u32,
                    });
                    self.stats.rf_writes += 1;
                }
                if let Some((op, sa, sb)) = instr.sfu {
                    let a = self.resolve(t, r, c, sa, true)?;
                    let b = self.resolve(t, r, c, sb, true)?;
                    let unit = match self.cfg.divsqrt {
                        DivSqrtImpl::Software => idx,
                        DivSqrtImpl::DiagonalPes => {
                            if r != c {
                                return Err(WouldHazard);
                            }
                            idx
                        }
                        DivSqrtImpl::Isolated => 0,
                    };
                    if !self.has_sfu[unit] || self.sfu_busy(unit, t) {
                        return Err(WouldHazard);
                    }
                    let lat = self.cfg.divsqrt.latency(op);
                    let retire = t + lat - 1;
                    if retire >= self.prog.steps.len() {
                        return Err(PipelineCarryOut);
                    }
                    let wide = op == DivSqrtOp::Sqrt
                        && sa == Source::Acc
                        && self.cfg.fpu.exponent_extension;
                    let si = self.sfus.len() as u32;
                    self.sfus.push(SfuRec {
                        wide,
                        op,
                        a,
                        b,
                        pending: (self.sfu_pending + unit) as u32,
                        pe: idx as u32,
                    });
                    self.ops.push(COp::SfuIssue { idx: si });
                    self.retires[retire].push(RetireEvt::Sfu { unit: unit as u32 });
                    self.sfu_busy_through[unit] = Some(retire);
                    self.sfu_ready[unit] = self.sfu_ready[unit].min(t + lat);
                    self.sfu_counts[unit] += 1;
                    self.stats.sfu_ops += 1;
                }
            }
        }

        // Phase 3: port-count checks.
        for u in &self.ports {
            if u.sram_a > 1 || u.sram_b > 2 || u.rf_reads > 2 {
                return Err(WouldHazard);
            }
        }

        // Phase 4: external stores capture column buses.
        for op in &step.ext {
            if let ExtOp::Store { col, addr } = *op {
                self.min_mem_words = self.min_mem_words.max(addr + 1);
                let addr = u32::try_from(addr).map_err(|_| Oversized)?;
                if col >= nr || !self.col_driven[col] {
                    return Err(WouldHazard);
                }
                self.commits.push(CommitRec::Ext {
                    bus: (self.col_bus + col) as u32,
                    addr,
                });
                self.stats.ext_writes += 1;
            }
        }

        // Phase 5: emit commits in push order.
        let commits = std::mem::take(&mut self.commits);
        for cmt in &commits {
            match *cmt {
                CommitRec::Word { src, dst } => self.push_move(src, dst),
                CommitRec::AccLoad { pe, src } => self.ops.push(COp::AccLoad { pe, src }),
                CommitRec::Cmp(idx) => self.ops.push(COp::CmpCommit { idx }),
                CommitRec::Ext { bus, addr } => self.push_ext_store(ExtRec { addr, bus }),
            }
        }
        self.commits = commits;

        // Phase 6: retirements scheduled for the end of this cycle. The
        // events touch disjoint state (each PE's own accumulator or latch
        // slot), so their relative order is free.
        let evts = std::mem::take(&mut self.retires[t]);
        for evt in &evts {
            match *evt {
                RetireEvt::Mac { pe, slot } => self.push_mac_retire(RetireRec { pe, slot }),
                RetireEvt::Fma { pe, slot } => {
                    self.push_fma_retire(RetireRec { pe, slot });
                    self.mac_latched[pe as usize] = true;
                }
                RetireEvt::Sfu { unit } => {
                    self.push_move(
                        (self.sfu_pending + unit as usize) as u32,
                        (self.sfu_latch + unit as usize) as u32,
                    );
                    self.sfu_latched[unit as usize] = true;
                }
            }
        }

        self.stats.cycles += 1;
        if any_issue {
            self.stats.active_cycles += 1;
        }
        Ok(())
    }
}

/// Visit every [`Source`] an instruction reads (constant-pool pre-scan).
fn for_each_source(pi: &PeInstr, f: &mut impl FnMut(Source)) {
    if let Some(s) = pi.row_write {
        f(s);
    }
    if let Some(s) = pi.col_write {
        f(s);
    }
    if let Some((a, b)) = pi.mac {
        f(a);
        f(b);
    }
    if let Some((a, b, c)) = pi.fma {
        f(a);
        f(b);
        f(c);
    }
    if let Some(c) = pi.cmp_update {
        f(c.value);
    }
    if let Some(s) = pi.acc_load {
        f(s);
    }
    if let Some((_, s)) = pi.sram_a_write {
        f(s);
    }
    if let Some((_, s)) = pi.sram_b_write {
        f(s);
    }
    if let Some((_, s)) = pi.reg_write {
        f(s);
    }
    if let Some((_, a, b)) = pi.sfu {
        f(a);
        f(b);
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

impl Lac {
    /// Execute a program on the compiled backend, regardless of the
    /// configured [`crate::config::ExecBackend`].
    ///
    /// The program is resolved through the core's [`ProgramCache`]
    /// (compiling on first sight of the shape) and replayed as a flat op
    /// tape. Programs the lowering does not cover — see
    /// [`FallbackReason`] — and runs whose entry state the lowering did
    /// not assume (in-flight pipelines, an external bank smaller than
    /// [`CompiledProgram::min_mem_words`]) transparently run on
    /// [`Lac::run_interpreted`] instead. Results, [`ExecStats`], and
    /// errors are bit-identical between the two paths.
    ///
    /// ```
    /// use lac_sim::{ExternalMem, Lac, LacConfig, ProgramBuilder, Source};
    ///
    /// let cfg = LacConfig::default();
    /// let mut lac = Lac::new(cfg);
    /// let mut b = ProgramBuilder::new(cfg.nr);
    /// let t = b.push_step();
    /// b.pe_mut(t, 0, 0).mac = Some((Source::Const(2.0), Source::Const(3.0)));
    /// b.idle(cfg.fpu.pipeline_depth);
    /// let mut mem = ExternalMem::new(1);
    /// let stats = lac.run_compiled(&b.build(), &mut mem).unwrap();
    /// assert_eq!(lac.acc(0, 0), 6.0);
    /// assert_eq!(stats.mac_ops, 1);
    /// ```
    pub fn run_compiled(
        &mut self,
        prog: &Program,
        mem: &mut ExternalMem,
    ) -> Result<ExecStats, SimError> {
        assert_eq!(prog.nr, self.cfg.nr, "program/mesh dimension mismatch");
        let outcome = self.program_cache().clone().lookup(self.config(), prog);
        match &*outcome {
            CompileOutcome::Fallback(_) => self.run_interpreted(prog, mem),
            CompileOutcome::Compiled(cp) => {
                if !self.compiled_eligible(cp, mem) {
                    return self.run_interpreted(prog, mem);
                }
                Ok(self.exec_compiled(cp, mem))
            }
        }
    }

    /// The lowering assumes idle pipelines at entry (its hazard analysis
    /// is exact only then) and an external bank large enough for every
    /// address the program touches.
    fn compiled_eligible(&self, cp: &CompiledProgram, mem: &ExternalMem) -> bool {
        mem.len() >= cp.min_mem_words
            && self
                .pes
                .iter()
                .all(|pe| pe.mac.idle() && pe.sfu.as_ref().is_none_or(|s| s.idle()))
    }

    /// Replay a tape. Infallible: every check was done at compile time
    /// or by [`Lac::compiled_eligible`].
    fn exec_compiled(&mut self, cp: &CompiledProgram, mem: &mut ExternalMem) -> ExecStats {
        if self.state.len() < cp.arena_words {
            self.state.resize(cp.arena_words, 0.0);
        }
        self.state[cp.const_base..cp.const_base + cp.consts.len()].copy_from_slice(&cp.consts);

        let mut rf_dyn = 0u64;
        {
            let state = &mut self.state;
            let pes = &mut self.pes;
            let round_single = cp.round_single;
            for op in &cp.ops {
                match *op {
                    COp::Moves { start, len } => {
                        for m in &cp.moves[start as usize..(start + len) as usize] {
                            state[m.dst as usize] = state[m.src as usize];
                        }
                    }
                    COp::ExtLoads { start, len } => {
                        for e in &cp.ext_loads[start as usize..(start + len) as usize] {
                            state[e.bus as usize] = mem.read(e.addr as usize);
                        }
                    }
                    COp::ExtStores { start, len } => {
                        for e in &cp.ext_stores[start as usize..(start + len) as usize] {
                            mem.write(e.addr as usize, state[e.bus as usize]);
                        }
                    }
                    COp::MacIssues { start, len } => {
                        for i in &cp.mac_issues[start as usize..(start + len) as usize] {
                            let mut a = state[i.a as usize];
                            let mut b = state[i.b as usize];
                            if round_single {
                                a = a as f32 as f64;
                                b = b as f32 as f64;
                            }
                            state[i.slot as usize] = if i.negate { -a } else { a };
                            state[i.slot as usize + 1] = b;
                        }
                    }
                    COp::FmaIssues { start, len } => {
                        for i in &cp.fma_issues[start as usize..(start + len) as usize] {
                            let mut a = state[i.a as usize];
                            let mut b = state[i.b as usize];
                            let mut c = state[i.c as usize];
                            if round_single {
                                a = a as f32 as f64;
                                b = b as f32 as f64;
                                c = c as f32 as f64;
                            }
                            state[i.slot as usize] = if i.negate { -a } else { a };
                            state[i.slot as usize + 1] = b;
                            state[i.slot as usize + 2] = c;
                        }
                    }
                    COp::MacRetires { start, len } => {
                        for r in &cp.mac_retires[start as usize..(start + len) as usize] {
                            pes[r.pe as usize].mac.apply_retired_mac(
                                state[r.slot as usize],
                                state[r.slot as usize + 1],
                            );
                        }
                    }
                    COp::FmaRetires { start, len } => {
                        for r in &cp.fma_retires[start as usize..(start + len) as usize] {
                            let v = pes[r.pe as usize].mac.apply_retired_fma(
                                state[r.slot as usize],
                                state[r.slot as usize + 1],
                                state[r.slot as usize + 2],
                            );
                            state[cp.mac_latch_base + r.pe as usize] = v;
                        }
                    }
                    COp::ReadAcc { pe, dst } => {
                        state[dst as usize] = pes[pe as usize].mac.read_acc();
                    }
                    COp::AccLoad { pe, src } => {
                        pes[pe as usize].mac.load_acc(state[src as usize]);
                    }
                    COp::Cmp { idx } => {
                        let r = &cp.cmps[idx as usize];
                        let cur = state[r.val as usize];
                        let v = state[r.value as usize];
                        state[r.flag as usize] = if !lac_fpu::magnitude_ge(cur, v) {
                            1.0
                        } else {
                            0.0
                        };
                        state[r.staged as usize] = v;
                    }
                    COp::CmpCommit { idx } => {
                        let r = &cp.cmps[idx as usize];
                        if state[r.flag as usize] != 0.0 {
                            state[r.val as usize] = state[r.staged as usize];
                            state[r.tag_dst as usize] = r.tag;
                            rf_dyn += 2;
                        }
                    }
                    COp::SfuIssue { idx } => {
                        let r = &cp.sfus[idx as usize];
                        let v = if r.wide {
                            pes[r.pe as usize].mac.read_acc_sqrt()
                        } else {
                            lac_fpu::divsqrt_compute(r.op, state[r.a as usize], state[r.b as usize])
                        };
                        state[r.pending as usize] = v;
                    }
                }
            }
        }

        // Lifetime issue counters (energy model) and end-of-program latch
        // materialization, matching what the interpreter accumulates as
        // it goes.
        for &(pe, n) in &cp.mac_issue_counts {
            self.pes[pe as usize].mac.ops_issued += n;
        }
        for &(unit, n) in &cp.sfu_issue_counts {
            if let Some(sfu) = self.pes[unit as usize].sfu.as_mut() {
                sfu.ops_issued += n;
            }
        }
        for &pe in &cp.mac_latched {
            self.pes[pe as usize].mac_result = Some(self.state[cp.mac_latch_base + pe as usize]);
        }
        for &unit in &cp.sfu_latched {
            self.pes[unit as usize].sfu_result =
                Some(self.state[cp.sfu_latch_base + unit as usize]);
        }

        let mut run = cp.static_stats;
        run.rf_writes += rf_dyn;
        self.stats_mut().merge(&run);
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecBackend;
    use crate::error::HazardKind;
    use crate::isa::{CmpUpdate, ProgramBuilder};

    fn small_cfg() -> LacConfig {
        LacConfig {
            nr: 2,
            sram_a_words: 16,
            sram_b_words: 16,
            ..Default::default()
        }
    }

    /// A little program exercising buses, MAC, FMA, SRAM, RF, ext memory.
    fn mixed_program(cfg: &LacConfig) -> Program {
        let p = cfg.fpu.pipeline_depth;
        let mut b = ProgramBuilder::new(cfg.nr);
        let t0 = b.push_step();
        b.ext(t0, ExtOp::Load { col: 0, addr: 0 });
        b.pe_mut(t0, 0, 0).reg_write = Some((0, Source::ColBus));
        b.pe_mut(t0, 0, 0).mac = Some((Source::ColBus, Source::Const(2.0)));
        b.pe_mut(t0, 1, 1).fma = Some((Source::Const(3.0), Source::Const(4.0), Source::Const(1.0)));
        let t1 = b.push_step();
        b.pe_mut(t1, 0, 0).sram_a_write = Some((3, Source::Reg(0)));
        b.idle(p);
        let t2 = b.push_step();
        b.pe_mut(t2, 1, 1).reg_write = Some((1, Source::MacResult));
        b.pe_mut(t2, 0, 0).col_write = Some(Source::Acc);
        b.ext(t2, ExtOp::Store { col: 0, addr: 1 });
        b.build()
    }

    fn run_both(cfg: LacConfig, prog: &Program, init: f64) -> (ExecStats, ExecStats) {
        let mut ilac = Lac::new(LacConfig {
            backend: ExecBackend::Interpreter,
            ..cfg
        });
        let mut clac = Lac::new(LacConfig {
            backend: ExecBackend::Compiled,
            ..cfg
        });
        let mut imem = ExternalMem::from_vec(vec![init, 0.0]);
        let mut cmem = ExternalMem::from_vec(vec![init, 0.0]);
        let is = ilac.run(prog, &mut imem).unwrap();
        let cs = clac.run(prog, &mut cmem).unwrap();
        assert_eq!(imem.as_slice(), cmem.as_slice(), "external memory differs");
        for r in 0..cfg.nr {
            for c in 0..cfg.nr {
                assert_eq!(
                    ilac.acc(r, c).to_bits(),
                    clac.acc(r, c).to_bits(),
                    "acc ({r},{c})"
                );
                for i in 0..cfg.rf_entries {
                    assert_eq!(
                        ilac.reg(r, c, i).to_bits(),
                        clac.reg(r, c, i).to_bits(),
                        "reg ({r},{c},{i})"
                    );
                }
            }
        }
        (is, cs)
    }

    #[test]
    fn mixed_program_bit_identical() {
        let cfg = small_cfg();
        let prog = mixed_program(&cfg);
        let (is, cs) = run_both(cfg, &prog, 2.5);
        assert_eq!(is, cs);
        assert!(cs.mac_ops == 1 && cs.fma_ops == 1 && cs.ext_writes == 1);
    }

    #[test]
    fn comparator_dynamic_rf_writes_match() {
        let cfg = LacConfig {
            comparator_extension: true,
            ..small_cfg()
        };
        let mut b = ProgramBuilder::new(cfg.nr);
        for (i, v) in [1.0, -3.0, 2.0].iter().enumerate() {
            let t = b.push_step();
            b.pe_mut(t, 0, 0).cmp_update = Some(CmpUpdate {
                value: Source::Const(*v),
                tag: i as f64,
                val_reg: 0,
                tag_reg: 1,
            });
        }
        let prog = b.build();
        let (is, cs) = run_both(cfg, &prog, 0.0);
        assert_eq!(is, cs);
        assert_eq!(cs.cmp_ops, 3);
        // 1.0 then -3.0 replace; 2.0 does not: 2 updates × 2 regs.
        assert_eq!(cs.rf_writes, 4);
    }

    #[test]
    fn sfu_program_bit_identical() {
        let cfg = small_cfg();
        let lat = cfg.divsqrt.latency(DivSqrtOp::Reciprocal);
        let mut b = ProgramBuilder::new(cfg.nr);
        let t0 = b.push_step();
        b.pe_mut(t0, 1, 0).sfu = Some((
            DivSqrtOp::Reciprocal,
            Source::Const(8.0),
            Source::Const(0.0),
        ));
        b.idle(lat);
        let t1 = b.push_step();
        b.pe_mut(t1, 1, 0).reg_write = Some((0, Source::SfuResult));
        let prog = b.build();
        let (is, cs) = run_both(cfg, &prog, 0.0);
        assert_eq!(is, cs);
        assert_eq!(cs.sfu_ops, 1);
    }

    #[test]
    fn hazard_errors_identical_via_fallback() {
        let cfg = small_cfg();
        let mut b = ProgramBuilder::new(cfg.nr);
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::SramA(0), Source::SramA(1)));
        b.idle(cfg.fpu.pipeline_depth);
        let prog = b.build();
        assert_eq!(
            compile(&cfg, &prog).err(),
            Some(FallbackReason::WouldHazard)
        );
        let mut lac = Lac::new(cfg);
        let mut mem = ExternalMem::new(1);
        let e = lac.run_compiled(&prog, &mut mem).unwrap_err();
        assert!(matches!(e.kind, HazardKind::SramAPortConflict));
    }

    #[test]
    fn latch_carry_in_falls_back() {
        let cfg = small_cfg();
        let mut b = ProgramBuilder::new(cfg.nr);
        let t = b.push_step();
        b.pe_mut(t, 0, 0).reg_write = Some((0, Source::MacResult));
        let prog = b.build();
        assert_eq!(
            compile(&cfg, &prog).err(),
            Some(FallbackReason::LatchCarryIn)
        );
    }

    #[test]
    fn pipeline_carry_out_falls_back() {
        let cfg = small_cfg();
        let mut b = ProgramBuilder::new(cfg.nr);
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::Const(1.0), Source::Const(1.0)));
        // No drain padding: the op would still be in flight at the end.
        let prog = b.build();
        assert_eq!(
            compile(&cfg, &prog).err(),
            Some(FallbackReason::PipelineCarryOut)
        );
    }

    #[test]
    fn cache_shares_compiles_and_counts_hits() {
        let cfg = small_cfg();
        let cache = ProgramCache::new();
        let prog = mixed_program(&cfg);
        let mut a = Lac::new(cfg);
        let mut b = Lac::new(cfg);
        a.set_program_cache(cache.clone());
        b.set_program_cache(cache.clone());
        let mut m1 = ExternalMem::from_vec(vec![1.0, 0.0]);
        let mut m2 = ExternalMem::from_vec(vec![1.0, 0.0]);
        a.run(&prog, &mut m1).unwrap();
        b.run(&prog, &mut m2).unwrap();
        let s = cache.stats();
        assert_eq!((s.entries, s.misses, s.hits), (1, 1, 1));
        assert_eq!(cache.lookup(&cfg, &prog).fallback_reason(), None);
        // A structurally identical rebuild hits the same entry.
        let rebuilt = mixed_program(&cfg);
        assert_eq!(prog.structural_hash(), rebuilt.structural_hash());
        a.run(&rebuilt, &mut m1).unwrap();
        assert_eq!(cache.stats().hits, 3); // +1 from the lookup above
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn dirty_entry_state_falls_back_to_interpreter() {
        // Leave an op in flight via an interpreted run, then ask for a
        // compiled run: eligibility must route it to the interpreter.
        let cfg = small_cfg();
        let p = cfg.fpu.pipeline_depth;
        let mut lac = Lac::new(cfg);
        let mut carry = ProgramBuilder::new(cfg.nr);
        let t = carry.push_step();
        carry.pe_mut(t, 0, 0).mac = Some((Source::Const(2.0), Source::Const(5.0)));
        let mut mem = ExternalMem::new(1);
        lac.run_interpreted(&carry.build(), &mut mem).unwrap();

        let mut rest = ProgramBuilder::new(cfg.nr);
        rest.idle(p);
        // The in-flight MAC retires during this (compiled-ineligible) run.
        lac.run_compiled(&rest.build(), &mut mem).unwrap();
        assert_eq!(lac.acc(0, 0), 10.0);
    }

    #[test]
    fn wide_hash_differs_on_small_edits() {
        let mk = |v: f64| {
            let mut b = ProgramBuilder::new(2);
            let t = b.push_step();
            b.pe_mut(t, 0, 0).mac = Some((Source::Const(v), Source::Const(1.0)));
            b.idle(5);
            b.build()
        };
        assert_ne!(mk(1.0).structural_hash(), mk(2.0).structural_hash());
        assert_eq!(mk(1.0).structural_hash(), mk(1.0).structural_hash());
        // Clones re-derive the same hash.
        let p = mk(3.0);
        assert_eq!(p.clone().structural_hash(), p.structural_hash());
    }

    #[test]
    fn config_fingerprint_separates_shapes() {
        let a = small_cfg();
        let b = LacConfig {
            ext_words_per_cycle: Some(4),
            ..a
        };
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        // Backend choice must NOT affect the key.
        let c = LacConfig {
            backend: ExecBackend::Interpreter,
            ..a
        };
        assert_eq!(config_fingerprint(&a), config_fingerprint(&c));
    }
}
