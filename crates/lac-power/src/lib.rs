//! Power and area models (§1.3.2–§1.3.3, §3.6, §4.4–§4.5, Appendix A/B).
//!
//! The dissertation's methodology: anchor component models (FMAC, SRAM,
//! buses, register files) at published 45 nm data points, then compute
//!
//! ```text
//! Power = Σᵢ P_dyn,i + Σᵢ P_idle,i
//! P_dyn,i  = P_max,i · activityᵢ
//! P_idle,i = P_max,i · ratio          (ratio ≈ 0.25–0.30)
//! ```
//!
//! with activity factors taken from the simulator's event counts. The same
//! model, re-parameterized with published component sizes, produces the
//! GPU/CPU comparisons of §4.5.
//!
//! Anchor points (all quoted in the dissertation):
//! * DP FMAC: 0.04 mm², 40–50 mW at ~1 GHz / 0.8 V; SP: 0.01 mm², 8–10 mW.
//! * 16 KB dual-ported PE SRAM: ~0.13 mm², 13.5 mW per port at 2.5 GHz.
//! * Broadcast bus: 0.023 mm²/PE, negligible power at nr = 4.
//! * Idle/leakage: 25–30% of dynamic power.

pub mod chip;
pub mod cluster;
pub mod compare;
pub mod components;
pub mod energy;
pub mod extensions;
pub mod fft_designs;
pub mod pe;
pub mod sram;

pub use chip::{ChipEnergy, ChipEnergyModel, TenantEnergy};
pub use cluster::{ClusterEnergy, ClusterEnergyModel};
pub use compare::{platform_cores_table, platform_systems_table, power_breakdown, PlatformRow};
pub use components::{FmacModel, Precision, Technology};
pub use energy::{EnergyModel, EnergySummary, SessionEnergy};
pub use extensions::{divsqrt_area_breakdown, DivSqrtOption};
pub use fft_designs::{fft_pe_designs, PeDesign};
pub use pe::{chip_metrics, core_metrics, CoreMetrics, PeMetrics, PeModel};
pub use sram::{NucaModel, SramModel};
