//! SRAM and NUCA cache models (the CACTI stand-in; see DESIGN.md).
//!
//! CACTI's role in the dissertation is to supply scalar area/energy numbers
//! for each memory configuration. We encode the standard scaling laws
//! (access energy ∝ √capacity, area ≈ linear in capacity plus periphery,
//! port count multiplying both) anchored at the quoted points: a 16 KB
//! dual-ported PE store at ~0.13 mm² and 13.5 mW/port at 2.5 GHz (≈5.4 pJ
//! per access).

/// A software-managed SRAM (no tags, no associativity).
#[derive(Clone, Copy, Debug)]
pub struct SramModel {
    pub capacity_bytes: usize,
    pub ports: usize,
}

impl SramModel {
    pub fn new(capacity_bytes: usize, ports: usize) -> Self {
        assert!(ports >= 1);
        Self {
            capacity_bytes,
            ports,
        }
    }

    /// Area in mm² at 45 nm.
    pub fn area_mm2(&self) -> f64 {
        let cap_ratio = self.capacity_bytes as f64 / (16.0 * 1024.0);
        // Dual-ported 16 KB anchor: 0.13 mm²; extra ports cost ~40% each;
        // small arrays pay a periphery floor.
        let port_factor = 1.0 + 0.4 * (self.ports as f64 - 2.0);
        0.01 + 0.12 * cap_ratio.powf(0.92) * port_factor.max(0.6)
    }

    /// Energy per access in pJ.
    pub fn energy_pj_per_access(&self) -> f64 {
        let cap_ratio = self.capacity_bytes as f64 / (16.0 * 1024.0);
        5.4 * cap_ratio.sqrt().max(0.25)
    }

    /// Dynamic power in mW when accessed `accesses_per_cycle` times at
    /// `f_ghz`.
    pub fn power_mw(&self, f_ghz: f64, accesses_per_cycle: f64) -> f64 {
        self.energy_pj_per_access() * accesses_per_cycle * f_ghz
    }

    /// Leakage in mW (low-power ITRS: "negligible in relation to dynamic" —
    /// a fraction of a mW per 16 KB).
    pub fn leakage_mw(&self) -> f64 {
        0.2 * self.capacity_bytes as f64 / (16.0 * 1024.0)
    }
}

/// A NUCA cache bank array (the §4.4 alternative to the domain-specific
/// SRAM): tag arrays, associativity and high-performance banks cost area
/// and energy, especially when a small capacity must sustain high
/// bandwidth (Figures 4.11/4.12).
#[derive(Clone, Copy, Debug)]
pub struct NucaModel {
    pub capacity_bytes: usize,
    /// Bandwidth the cache must sustain, words/cycle.
    pub bandwidth_words: f64,
}

impl NucaModel {
    pub fn new(capacity_bytes: usize, bandwidth_words: f64) -> Self {
        Self {
            capacity_bytes,
            bandwidth_words,
        }
    }

    fn equivalent_sram(&self) -> SramModel {
        SramModel::new(self.capacity_bytes, 2)
    }

    /// Area: tags + network + high-performance banks when bandwidth per MB
    /// is high.
    pub fn area_mm2(&self) -> f64 {
        let mb = self.capacity_bytes as f64 / (1024.0 * 1024.0);
        let hp_factor = 1.0 + 0.5 * (self.bandwidth_words / mb.max(0.05)).min(16.0) / 4.0;
        self.equivalent_sram().area_mm2() * 2.2 * hp_factor
    }

    /// Energy per access: tag compare + way muxing + longer wires.
    pub fn energy_pj_per_access(&self) -> f64 {
        let mb = self.capacity_bytes as f64 / (1024.0 * 1024.0);
        let hp_factor = 1.0 + 0.6 * (self.bandwidth_words / mb.max(0.05)).min(16.0) / 4.0;
        self.equivalent_sram().energy_pj_per_access() * 3.0 * hp_factor
    }

    pub fn power_mw(&self, f_ghz: f64, accesses_per_cycle: f64) -> f64 {
        self.energy_pj_per_access() * accesses_per_cycle * f_ghz
    }

    /// High-performance banks leak much more than low-power SRAM.
    pub fn leakage_mw(&self) -> f64 {
        self.equivalent_sram().leakage_mw() * 20.0
    }
}

/// Table B.2-style report row for a PE SRAM option.
#[derive(Clone, Debug)]
pub struct SramOptionRow {
    pub label: String,
    pub capacity_bytes: usize,
    pub ports: usize,
    pub area_mm2: f64,
    pub energy_pj: f64,
    pub leakage_mw: f64,
}

/// Enumerate the PE SRAM options of Table B.2 (sizes × port counts).
pub fn sram_option_table() -> Vec<SramOptionRow> {
    let mut rows = Vec::new();
    for &kb in &[2usize, 4, 8, 16, 32] {
        for &ports in &[1usize, 2] {
            let m = SramModel::new(kb * 1024, ports);
            rows.push(SramOptionRow {
                label: format!("{kb} KB, {ports}-ported"),
                capacity_bytes: kb * 1024,
                ports,
                area_mm2: m.area_mm2(),
                energy_pj: m.energy_pj_per_access(),
                leakage_mw: m.leakage_mw(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_point_16kb_dual() {
        let m = SramModel::new(16 * 1024, 2);
        assert!((m.area_mm2() - 0.13).abs() < 0.01, "area {}", m.area_mm2());
        assert!((m.energy_pj_per_access() - 5.4).abs() < 0.1);
        // 13.5 mW per port at 2.5 GHz:
        let p = m.power_mw(2.5, 1.0);
        assert!((p - 13.5).abs() < 0.3, "power {p}");
    }

    #[test]
    fn energy_scales_sublinearly_with_capacity() {
        let small = SramModel::new(4 * 1024, 2);
        let big = SramModel::new(64 * 1024, 2);
        assert!(
            big.energy_pj_per_access() < 8.0 * small.energy_pj_per_access(),
            "sublinear in the 16x capacity"
        );
        assert!(big.energy_pj_per_access() > small.energy_pj_per_access());
    }

    #[test]
    fn single_port_cheaper_than_dual() {
        let one = SramModel::new(16 * 1024, 1);
        let two = SramModel::new(16 * 1024, 2);
        assert!(one.area_mm2() < two.area_mm2());
    }

    #[test]
    fn nuca_worse_than_sram_and_worse_when_small_and_fast() {
        // Figures 4.11/4.12: NUCA occupies more space than the cores and a
        // small high-bandwidth NUCA is worse than a big slow one.
        let sram = SramModel::new(1024 * 1024, 2);
        let nuca = NucaModel::new(1024 * 1024, 4.0);
        assert!(nuca.area_mm2() > 2.0 * sram.area_mm2());
        assert!(nuca.energy_pj_per_access() > 2.5 * sram.energy_pj_per_access());
        let small_fast = NucaModel::new(512 * 1024, 16.0);
        let big_slow = NucaModel::new(8 * 1024 * 1024, 4.0);
        // energy per access: the small/fast one pays the high-perf premium
        assert!(
            small_fast.energy_pj_per_access() * 4.0 > big_slow.energy_pj_per_access(),
            "hp premium visible"
        );
    }

    #[test]
    fn option_table_covers_b2_axes() {
        let rows = sram_option_table();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().any(|r| r.ports == 1));
    }
}
