//! Event-count → energy conversion (§1.3: "by plugging in power consumption
//! numbers for MAC units, memories, register files, and buses, our simulator
//! is able to produce an accurate power profile of the overall execution").

use crate::components::{FmacModel, Precision, BUS_ENERGY_PJ_PER_WORD, RF_ENERGY_PJ};
use crate::sram::SramModel;
use lac_sim::ExecStats;

/// Converts simulator event counts into energy and average power.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    pub precision: Precision,
    pub freq_ghz: f64,
    /// Per-PE A-memory configuration.
    pub sram_a: SramModel,
    /// Per-PE B-memory configuration.
    pub sram_b: SramModel,
    /// Idle power fraction of average dynamic power.
    pub idle_ratio: f64,
    /// Whether the §A.2 comparator extension exists; without it a compare
    /// costs a full FMAC pass of energy.
    pub comparator_extension: bool,
    /// Energy per SFU (divide/sqrt family) operation, pJ.
    pub sfu_energy_pj: f64,
}

impl EnergyModel {
    /// The canonical LAC design point: DP, 1 GHz, 12 KB + 4 KB local stores.
    pub fn lac_default() -> Self {
        Self {
            precision: Precision::Double,
            freq_ghz: 1.0,
            sram_a: SramModel::new(12 * 1024, 1),
            sram_b: SramModel::new(4 * 1024, 2),
            idle_ratio: 0.25,
            comparator_extension: true,
            sfu_energy_pj: 120.0, // several MAC-passes worth of multiplies
        }
    }

    fn fmac(&self) -> FmacModel {
        FmacModel::new(self.precision)
    }

    /// Total energy of a run, in nanojoules.
    pub fn energy_nj(&self, stats: &ExecStats) -> f64 {
        let mac_pj = self.fmac().energy_pj(self.freq_ghz);
        let cmp_pj = if self.comparator_extension {
            mac_pj * 0.15
        } else {
            mac_pj
        };
        let a_pj = self.sram_a.energy_pj_per_access();
        let b_pj = self.sram_b.energy_pj_per_access();
        let dyn_pj = (stats.mac_ops + stats.fma_ops) as f64 * mac_pj
            + stats.cmp_ops as f64 * cmp_pj
            + stats.sfu_ops as f64 * self.sfu_energy_pj
            + (stats.sram_a_reads + stats.sram_a_writes) as f64 * a_pj
            + (stats.sram_b_reads + stats.sram_b_writes) as f64 * b_pj
            + (stats.rf_reads + stats.rf_writes) as f64 * RF_ENERGY_PJ
            + (stats.row_bus_transfers + stats.col_bus_transfers) as f64
                * BUS_ENERGY_PJ_PER_WORD
            + (stats.ext_reads + stats.ext_writes) as f64 * 12.0 // on-chip bank access
            + stats.acc_accesses as f64 * 0.5;
        dyn_pj * (1.0 + self.idle_ratio) / 1000.0
    }

    /// Average power in mW over the run.
    pub fn avg_power_mw(&self, stats: &ExecStats) -> f64 {
        if stats.cycles == 0 {
            return 0.0;
        }
        let seconds = stats.cycles as f64 / (self.freq_ghz * 1e9);
        self.energy_nj(stats) * 1e-9 / seconds * 1e3
    }

    /// Power efficiency in GFLOPS/W for a run.
    pub fn gflops_per_w(&self, stats: &ExecStats) -> f64 {
        let seconds = stats.cycles as f64 / (self.freq_ghz * 1e9);
        let gflops = stats.flops() as f64 / seconds / 1e9;
        gflops / (self.avg_power_mw(stats) / 1000.0)
    }

    /// All three energy axes of a run at once.
    pub fn summarize(&self, stats: &ExecStats) -> EnergySummary {
        EnergySummary {
            energy_nj: self.energy_nj(stats),
            avg_power_mw: self.avg_power_mw(stats),
            gflops_per_w: self.gflops_per_w(stats),
        }
    }
}

/// Energy/power/efficiency of one run or session, as the paper reports them.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergySummary {
    /// Total energy, nanojoules.
    pub energy_nj: f64,
    /// Average power over the run, milliwatts.
    pub avg_power_mw: f64,
    /// Power efficiency, GFLOPS/W.
    pub gflops_per_w: f64,
}

/// Energy reporting for a whole [`lac_sim::LacEngine`] session.
///
/// Lives here rather than on the engine itself because `lac-power` depends
/// on `lac-sim` (for [`ExecStats`]); bring this trait into scope and every
/// engine gains `.energy_summary(&model)` over its accumulated session
/// stats.
pub trait SessionEnergy {
    fn energy_summary(&self, model: &EnergyModel) -> EnergySummary;
}

impl SessionEnergy for lac_sim::LacEngine {
    fn energy_summary(&self, model: &EnergyModel) -> EnergySummary {
        model.summarize(self.session_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_like_stats(cycles: u64) -> ExecStats {
        ExecStats {
            cycles,
            mac_ops: cycles * 16,
            sram_a_reads: cycles * 4,
            sram_b_reads: cycles * 16,
            row_bus_transfers: cycles * 4,
            active_cycles: cycles,
            ..Default::default()
        }
    }

    #[test]
    fn gemm_power_in_pe_envelope() {
        // A fully-active 4×4 DP core at 1 GHz should land near 16 PEs ×
        // ~40 mW (Table 3.1's neighbourhood).
        let m = EnergyModel::lac_default();
        let p = m.avg_power_mw(&gemm_like_stats(100_000));
        assert!((400.0..1000.0).contains(&p), "core power {p} mW");
    }

    #[test]
    fn gemm_efficiency_order_of_magnitude() {
        // DP GEMM at 1 GHz: tens of GFLOPS/W (the dissertation's headline).
        let m = EnergyModel::lac_default();
        let eff = m.gflops_per_w(&gemm_like_stats(100_000));
        assert!((25.0..80.0).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn idle_core_consumes_idle_power_only() {
        let m = EnergyModel::lac_default();
        let idle = ExecStats {
            cycles: 1000,
            ..Default::default()
        };
        assert_eq!(m.energy_nj(&idle), 0.0, "no events, no modeled energy");
    }

    #[test]
    fn comparator_extension_cheapens_compares() {
        let stats = ExecStats {
            cycles: 1000,
            cmp_ops: 1000,
            ..Default::default()
        };
        let with = EnergyModel::lac_default();
        let without = EnergyModel {
            comparator_extension: false,
            ..with
        };
        assert!(without.energy_nj(&stats) > 3.0 * with.energy_nj(&stats));
    }

    #[test]
    fn single_precision_cheaper() {
        let stats = gemm_like_stats(10_000);
        let dp = EnergyModel::lac_default();
        let sp = EnergyModel {
            precision: Precision::Single,
            ..dp
        };
        assert!(sp.energy_nj(&stats) < dp.energy_nj(&stats));
    }
}
