//! Divide/square-root architecture options: area breakdown (Figure 6.5) and
//! the per-option energy/latency parameters behind Table A.2 and
//! Figures 6.6/6.7.

use crate::components::{FmacModel, Precision};
use crate::pe::PeModel;

/// The three §A.2 options (plus the shared naming used by `lac-fpu`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivSqrtOption {
    /// Goldschmidt microcode on the existing MACs — zero area, many cycles.
    Software,
    /// One isolated minimax-table unit per core.
    Isolated,
    /// Lookup + control extensions on the diagonal PEs' MACs.
    DiagonalPes,
}

/// Area contributions for Figure 6.5's stacked bars (mm², 45 nm, 4×4 core).
#[derive(Clone, Debug)]
pub struct AreaBreakdown {
    pub option: DivSqrtOption,
    pub pes_mm2: f64,
    pub mac_extension_mm2: f64,
    pub lookup_mm2: f64,
    pub special_logic_mm2: f64,
}

impl AreaBreakdown {
    pub fn total(&self) -> f64 {
        self.pes_mm2 + self.mac_extension_mm2 + self.lookup_mm2 + self.special_logic_mm2
    }
}

/// Figure 6.5: LAC area with each divide/square-root option.
pub fn divsqrt_area_breakdown(option: DivSqrtOption) -> AreaBreakdown {
    let pe = PeModel {
        precision: Precision::Double,
        ..Default::default()
    };
    let pes = 16.0 * pe.area_mm2();
    // Lookup tables (~2×128-entry minimax seeds) and the surrounding
    // datapath muxing, per Figure A.2.
    let fmac = FmacModel::new(Precision::Double).area_mm2();
    match option {
        DivSqrtOption::Software => AreaBreakdown {
            option,
            pes_mm2: pes,
            mac_extension_mm2: 0.0,
            lookup_mm2: 0.0,
            special_logic_mm2: 0.0,
        },
        DivSqrtOption::Isolated => AreaBreakdown {
            option,
            pes_mm2: pes,
            mac_extension_mm2: 0.0,
            lookup_mm2: 0.035,
            special_logic_mm2: fmac * 1.2, // a near-full multiplier datapath
        },
        DivSqrtOption::DiagonalPes => AreaBreakdown {
            option,
            pes_mm2: pes,
            mac_extension_mm2: 4.0 * fmac * 0.25, // per-diagonal-PE overhead
            lookup_mm2: 4.0 * 0.018,
            special_logic_mm2: 0.0,
        },
    }
}

/// Energy per divide/square-root operation in pJ under each option
/// (feeds the Table A.2 energy columns through `EnergyModel::sfu_energy_pj`).
pub fn divsqrt_energy_pj(option: DivSqrtOption) -> f64 {
    let mac_pj = FmacModel::new(Precision::Double).energy_pj(1.0);
    match option {
        // ~6 dependent MAC passes plus control.
        DivSqrtOption::Software => 8.0 * mac_pj,
        // Dedicated narrow datapath: ~3 multiplies' worth + table.
        DivSqrtOption::Isolated => 3.5 * mac_pj,
        // Reuses the local MAC with the table bolted on.
        DivSqrtOption::DiagonalPes => 3.0 * mac_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_5_total_area_range() {
        // Figure 6.5's y-axis spans ~2.0–2.7 mm² for the whole LAC.
        for opt in [
            DivSqrtOption::Software,
            DivSqrtOption::Isolated,
            DivSqrtOption::DiagonalPes,
        ] {
            let b = divsqrt_area_breakdown(opt);
            assert!((2.0..3.5).contains(&b.total()), "{opt:?}: {}", b.total());
        }
    }

    #[test]
    fn software_is_smallest_diag_between() {
        let sw = divsqrt_area_breakdown(DivSqrtOption::Software).total();
        let iso = divsqrt_area_breakdown(DivSqrtOption::Isolated).total();
        let diag = divsqrt_area_breakdown(DivSqrtOption::DiagonalPes).total();
        assert!(sw < iso && sw < diag);
        // Extensions stay small relative to the PEs (the §6.1.4 point:
        // "by adding minimal logic, we can overcome corresponding
        // complexities").
        assert!((iso - sw) / sw < 0.05);
        assert!((diag - sw) / sw < 0.06);
    }

    #[test]
    fn energy_ordering_matches_latency_ordering() {
        let sw = divsqrt_energy_pj(DivSqrtOption::Software);
        let iso = divsqrt_energy_pj(DivSqrtOption::Isolated);
        let diag = divsqrt_energy_pj(DivSqrtOption::DiagonalPes);
        assert!(sw > iso);
        assert!(iso > diag);
    }
}
